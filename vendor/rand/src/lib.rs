//! Vendored, dependency-free stand-in for the parts of the `rand` crate
//! this workspace uses.
//!
//! The build environment has no access to crates.io, so instead of the real
//! `rand` we ship this minimal, API-compatible subset:
//!
//! * [`rngs::StdRng`] — a xoshiro256++ generator (seeded through SplitMix64),
//!   **not** the ChaCha12 core of the real `StdRng`. Streams are therefore
//!   deterministic per seed but different from upstream `rand 0.8`.
//! * [`SeedableRng::seed_from_u64`], [`RngCore`], [`Rng`]
//!   (`gen`, `gen_bool`, `gen_range` over integer/float ranges),
//! * [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! Everything in the workspace seeds RNGs explicitly, so determinism — two
//! runs with the same seed observe identical streams — is the only contract
//! the algorithms and tests rely on, and this crate preserves it.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random `u32`/`u64` words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: seeding from a single `u64`).
pub trait SeedableRng: Sized {
    /// Deterministically builds the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from their full value range by
/// [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample a `T` from.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Widening-multiply bounded sampling (Lemire); bias is
                // < 2^-64 per draw, irrelevant at test scales.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                SampleRange::sample_single(lo..hi.wrapping_add(1), rng)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = Standard::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample over the full range of `T` (`[0,1)` for floats).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0,1]");
        let unit: f64 = self.gen();
        unit < p
    }

    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng`. Same-seed streams are stable across runs and platforms.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 seed expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Random-order operations on slices (subset of `rand::seq`).
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5i64..=9);
            assert!((5..=9).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(5);
        let v: Vec<u8> = Vec::new();
        assert!(v.choose(&mut rng).is_none());
        let w = [9u8];
        assert_eq!(w.choose(&mut rng), Some(&9));
    }
}
