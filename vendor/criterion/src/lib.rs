//! Vendored, dependency-free stand-in for the parts of `criterion` this
//! workspace's benches use.
//!
//! The build environment has no access to crates.io, so this crate
//! provides a tiny wall-clock harness with the same surface syntax:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] (with
//! `sample_size` / `bench_with_input` / `finish`), [`BenchmarkId`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. No statistics, no HTML reports — each benchmark is timed for a
//! fixed number of samples and the median per-iteration time is printed.
//!
//! Bench targets must still set `harness = false` in their manifest, as
//! with the real criterion.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported like criterion's.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for one benchmark within a group: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", function_id.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    samples: usize,
    last: Vec<Duration>,
}

impl Bencher {
    /// Runs `routine` `samples` times, recording wall-clock time per run.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.last.clear();
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.last.push(t0.elapsed());
        }
    }

    fn median(&mut self) -> Duration {
        if self.last.is_empty() {
            return Duration::ZERO;
        }
        self.last.sort_unstable();
        self.last[self.last.len() / 2]
    }
}

fn run_one(name: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        last: Vec::new(),
    };
    f(&mut b);
    println!(
        "bench {name:<60} median {:>12.3?} ({samples} samples)",
        b.median()
    );
}

/// Entry point handed to `criterion_group!` functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Times `f` under `id`.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(id, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` on `input` under `group_name/id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.full),
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Times `f` under `group_name/id`.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), self.sample_size, f);
        self
    }

    /// Ends the group (kept for API compatibility; no-op here).
    pub fn finish(self) {}
}

/// Declares a benchmark group function list, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut total = 0u64;
        group.bench_with_input(BenchmarkId::new("f", 7), &5u64, |b, &x| {
            b.iter(|| x * 2);
            total += x;
        });
        group.finish();
        assert_eq!(total, 5);
    }
}
