//! Vendored, dependency-free stand-in for the parts of `proptest` this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements the subset of the real `proptest` API the test suites
//! call:
//!
//! * the [`proptest!`] macro (with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header),
//! * strategies: integer/float ranges, tuples, [`collection::vec`],
//!   [`strategy::any`], [`strategy::Just`], and
//!   [`strategy::Strategy::prop_map`],
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`].
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its inputs verbatim.
//! * **Fully deterministic.** Each test derives its RNG stream from an
//!   FNV-1a hash of the test's name plus the case index — no environment
//!   variables, no persistence files, identical on every run.
//! * `prop_assume!` skips the case rather than resampling.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Number of generated cases per property (subset of the real config).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` generated inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-test, per-case RNG.
    #[derive(Clone, Debug)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// RNG for case `case` of the property named `name`: seeded by
        /// FNV-1a(name) mixed with the case index, so every property gets
        /// an independent, reproducible stream.
        pub fn for_case(name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(StdRng::seed_from_u64(
                h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type [`Strategy::Value`].
    pub trait Strategy {
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);

    /// Types with a canonical "sample anything" strategy ([`any`]).
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.gen()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (used as `any::<bool>()`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`vec()`]: an exact `usize` or a range.
    pub trait IntoLenRange {
        /// Half-open `(min, max_exclusive)` bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoLenRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl IntoLenRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoLenRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        min: usize,
        max: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.min + 1 >= self.max {
                self.min
            } else {
                rng.gen_range(self.min..self.max)
            };
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// `proptest::collection::vec(elem, len)` — vectors of `elem` samples.
    pub fn vec<S: Strategy>(elem: S, len: impl IntoLenRange) -> VecStrategy<S> {
        let (min, max) = len.bounds();
        assert!(min < max, "empty length range for collection::vec");
        VecStrategy { elem, min, max }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines `#[test]` functions that run their body over generated inputs.
///
/// Supported grammar (a subset of the real macro):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(24))]
///     /// docs / attributes allowed
///     fn my_property(x in 0u64..100, v in proptest::collection::vec(0usize..9, 0..20)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* $vis:vis fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            $vis fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )+
                    let __inputs = [$(format!(concat!(stringify!($arg), " = {:?}"), &$arg)),+]
                        .join(", ");
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__msg) = __outcome {
                        panic!(
                            "property `{}` failed at case {}/{}:\n  {}\n  inputs: {}",
                            stringify!($name),
                            __case,
                            __cfg.cases,
                            __msg,
                            __inputs
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current generated case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("prop_assert!({}) failed", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                format!("prop_assert!({}) failed: {}", stringify!($cond), format!($($fmt)+)));
        }
    };
}

/// Fails the current generated case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(
                format!("prop_assert_eq! failed: {:?} != {:?}", l, r));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(
                format!("prop_assert_eq! failed: {:?} != {:?}: {}", l, r, format!($($fmt)+)));
        }
    }};
}

/// Fails the current generated case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err(format!(
                "prop_assert_ne! failed: both sides are {:?}",
                l
            ));
        }
    }};
}

/// Skips the current generated case unless `cond` holds (no resampling).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]
        fn ranges_in_bounds(x in 3usize..17, y in 0u64..=5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 5);
        }

        fn vec_lengths(v in collection::vec(0usize..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for e in v {
                prop_assert!(e < 10);
            }
        }

        fn fixed_len_vec(v in collection::vec(any::<bool>(), 8)) {
            prop_assert_eq!(v.len(), 8);
        }

        fn tuples_and_map(p in (0usize..4, 0usize..4), d in (0usize..10).prop_map(|x| x * 2)) {
            prop_assert!(p.0 < 4 && p.1 < 4);
            prop_assert_eq!(d % 2, 0);
        }

        fn just_is_constant(k in Just(7usize)) {
            prop_assert_eq!(k, 7);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_case("demo", 3);
        let mut b = TestRng::for_case("demo", 3);
        let s = 0usize..1000;
        use crate::strategy::Strategy;
        for _ in 0..32 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failure_reports_inputs() {
        // Expand the macro in an inner module so the generated #[test]
        // attribute doesn't run it twice; call the generated fn directly.
        mod inner {
            use crate::prelude::*;
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(1))]
                pub fn always_fails(x in 0usize..1) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
        }
        inner::always_fails();
    }
}
