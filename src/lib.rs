//! # connectivity-decomposition
//!
//! Umbrella crate for the reproduction of *Distributed Connectivity
//! Decomposition* (Censor-Hillel, Ghaffari & Kuhn, PODC 2014).
//!
//! Re-exports the workspace crates so that examples and downstream users
//! can depend on a single crate:
//!
//! * [`graph`] — graph substrate (generators, flow, exact connectivity, MST);
//! * [`congest`] — synchronous V-CONGEST / E-CONGEST simulator;
//! * [`core`] — the paper's contribution: fractional dominating-tree (CDS)
//!   packing, fractional/integral spanning-tree packing, verification, and
//!   vertex-connectivity approximation;
//! * [`broadcast`] — applications: gossiping, throughput, oblivious routing;
//! * [`lowerbound`] — Appendix G's lower-bound construction and two-party
//!   simulation.
//!
//! # Quickstart
//!
//! ```
//! use connectivity_decomposition::graph::generators;
//! use connectivity_decomposition::core::cds::centralized::{cds_packing, CdsPackingConfig};
//!
//! let g = generators::harary(8, 64);
//! let packing = cds_packing(&g, &CdsPackingConfig::with_known_k(8, 1));
//! assert!(packing.num_classes() > 0);
//! ```

pub use decomp_broadcast as broadcast;
pub use decomp_congest as congest;
pub use decomp_core as core;
pub use decomp_graph as graph;
pub use decomp_lowerbound as lowerbound;
