//! Lower-bound pipeline: construction → exact connectivity oracle →
//! two-party simulation, across the lowerbound / graph crates.

use connectivity_decomposition::graph::connectivity::vertex_connectivity;
use connectivity_decomposition::graph::traversal::diameter;
use connectivity_decomposition::lowerbound::construction::{build_g, round_lower_bound, LbParams};
use connectivity_decomposition::lowerbound::simulation::{
    distinguishing_cost, simulate_two_party, theorem_g2_params,
};
use std::collections::BTreeSet;

#[test]
fn cut_dichotomy_drives_disjointness_decision() {
    let p = LbParams { h: 5, ell: 2, w: 6 };
    for (x, y) in [
        (vec![1usize, 2], vec![4usize, 5]), // disjoint
        (vec![1, 3], vec![3, 5]),           // intersect at 3
    ] {
        let xs: BTreeSet<usize> = x.iter().copied().collect();
        let ys: BTreeSet<usize> = y.iter().copied().collect();
        let inst = build_g(&p, &xs, &ys);
        let k = vertex_connectivity(&inst.graph);
        let intersects = xs.intersection(&ys).next().is_some();
        if intersects {
            assert_eq!(k, 4, "intersecting inputs must give the 4-cut");
        } else {
            assert!(k >= p.w, "disjoint inputs must stay {}-connected", p.w);
        }
        // Deciding connectivity therefore decides disjointness — the
        // two-party protocol agrees with the graph-side ground truth.
        let (_, found) = simulate_two_party(&p, &xs, &ys, inst.graph.n());
        assert_eq!(found.is_some(), intersects);
        assert!(diameter(&inst.graph).unwrap() <= 3);
    }
}

#[test]
fn theorem_g2_scaling_shape() {
    // The achievable distinguishing cost must grow at least like the
    // theorem's bound (up to constants) along the parameter family, and
    // the exact (deterministic) costs are pinned in the golden registry.
    let mut prev_cost = 0usize;
    for n in [500usize, 4000, 32_000] {
        let (p, n_real) = theorem_g2_params(n, 4);
        let cost = distinguishing_cost(&p, n_real);
        let bound = round_lower_bound(n_real, 1.0, 4);
        assert!(
            cost as f64 + 1.0 >= bound / 4.0,
            "cost {cost} must not fall far below the bound {bound}"
        );
        assert!(cost >= prev_cost, "cost must not shrink with n");
        prev_cost = cost;
        decomp_testkit::golden::check(&format!("lowerbound/g2_n{n}_alpha4/cost"), cost);
    }
}
