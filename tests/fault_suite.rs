//! Fault & churn scenario suite: seeded mid-run vertex/edge deletions
//! against the full stack — the k-connectivity robustness claim of
//! Theorem 1.1 (a CDS packing survives up to `k − 1` failures) exercised
//! end to end.
//!
//! Covers: gossip completion via surviving trees under `f < κ` deletions
//! on every fixture family (greedy and weighted schedules, vertex and
//! edge faults), seed-reproducibility of `FaultPlan` schedules,
//! bit-for-bit equivalence of incremental deletion-aware repacking
//! against from-scratch rebuilds, and the distributed two-phase repair
//! protocol on the env-selected engine (CI sweeps `DECOMP_ENGINE`).

use connectivity_decomposition::broadcast::gossip::{
    gossip_via_trees_faulty, gossip_via_trees_with, GossipConfig,
};
use connectivity_decomposition::broadcast::gossip_distributed::gossip_protocol_faulty;
use connectivity_decomposition::congest::{Fault, FaultPlan, ScheduledFault};
use connectivity_decomposition::core::cds::centralized::{cds_packing, CdsPackingConfig};
use connectivity_decomposition::core::cds::class_state::ClassState;
use connectivity_decomposition::core::cds::tree_extract::to_dom_tree_packing;
use connectivity_decomposition::core::packing::DomTreePacking;
use connectivity_decomposition::core::virtual_graph::{VType, VirtualLayout};
use decomp_testkit::{fixtures, SEEDS};

/// The fixture's dominating-tree packing, built the same way the
/// end-to-end pipeline builds it.
fn packing_for(f: &fixtures::Fixture) -> DomTreePacking {
    let cds = cds_packing(&f.graph, &CdsPackingConfig::with_known_k(f.kappa.max(1), 4));
    to_dom_tree_packing(&f.graph, &cds).packing
}

#[test]
fn vertex_faults_below_kappa_still_complete_on_every_family() {
    for f in fixtures::small() {
        let packing = packing_for(&f);
        let origins: Vec<usize> = (0..f.graph.n()).collect();
        let faults = f.kappa.saturating_sub(1);
        for seed in SEEDS {
            let plan = FaultPlan::random_vertices(&f.graph, faults, (2, 6), seed);
            let dead = plan.dead_vertices_after(usize::MAX).len();
            for config in [GossipConfig::default(), GossipConfig::weighted()] {
                let r = gossip_via_trees_faulty(&f.graph, &packing, &origins, seed, config, &plan)
                    .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", f.name));
                assert_eq!(
                    r.lost_messages, 0,
                    "{} seed {seed}: f = κ − 1 must never lose a message",
                    f.name
                );
                assert_eq!(r.num_messages, f.graph.n());
                // The degradation curve ends on the post-fault state.
                if let Some(last) = r.degradation.last() {
                    assert_eq!(last.live_vertices, f.graph.n() - dead, "{}", f.name);
                    assert!(last.faults_fired <= plan.len());
                }
            }
        }
    }
}

#[test]
fn edge_faults_below_kappa_still_complete() {
    for f in fixtures::small() {
        if f.kappa < 2 {
            continue; // zero cuttable edges below λ ≥ κ = 1
        }
        let packing = packing_for(&f);
        let origins: Vec<usize> = (0..f.graph.n()).collect();
        let plan = FaultPlan::random_edges(&f.graph, f.kappa - 1, (2, 6), 7);
        let r = gossip_via_trees_faulty(
            &f.graph,
            &packing,
            &origins,
            7,
            GossipConfig::default(),
            &plan,
        )
        .unwrap();
        assert_eq!(r.lost_messages, 0, "{}: cuts below λ lose nothing", f.name);
        // Edge cuts kill no vertices.
        for s in &r.degradation {
            assert_eq!(s.live_vertices, f.graph.n(), "{}", f.name);
        }
    }
}

#[test]
fn rlnc_coded_gossip_degrades_but_survives_tree_deaths() {
    // Coded gossip commits to no trees, so killing κ − 1 vertices mid-run
    // (enough to destroy every committed tree of the packing) must only
    // shrink the decodable span at the dead vertices' generations — the
    // run degrades (more rounds, recorded degradation samples) but never
    // stalls, and with the faults firing after the origins have injected
    // and relayed once, nothing is lost.
    let f = fixtures::small()
        .into_iter()
        .find(|f| f.name == "harary_k8_n40")
        .unwrap();
    let packing = packing_for(&f);
    let origins: Vec<usize> = (0..f.graph.n()).collect();
    let plan = FaultPlan::random_vertices(&f.graph, f.kappa - 1, (2, 6), 13);
    let config = GossipConfig::rlnc(8, 21);
    let r = gossip_via_trees_faulty(&f.graph, &packing, &origins, 13, config, &plan).unwrap();
    assert_eq!(
        r.lost_messages, 0,
        "faults after first relay must not lose coded symbols"
    );
    assert_eq!(r.num_messages, f.graph.n());
    assert!(
        !r.degradation.is_empty(),
        "fault rounds must record degradation samples"
    );
    let clean = gossip_via_trees_with(&f.graph, &packing, &origins, 13, config);
    assert!(
        r.rounds >= clean.rounds,
        "a faulted run cannot beat the fault-free schedule ({} vs {})",
        r.rounds,
        clean.rounds
    );
    // Reproducibility under faults, coded regime included.
    let again = gossip_via_trees_faulty(&f.graph, &packing, &origins, 13, config, &plan).unwrap();
    assert_eq!(r, again, "faulty coded schedule must be seed-deterministic");
}

#[test]
fn mixed_vertex_and_edge_faults_complete() {
    let f = fixtures::small()
        .into_iter()
        .find(|f| f.name == "harary_k8_n40")
        .unwrap();
    let packing = packing_for(&f);
    let origins: Vec<usize> = (0..f.graph.n()).collect();
    // 3 vertex deaths + 4 edge cuts = 7 = κ − 1 total faults.
    let mut events: Vec<ScheduledFault> = FaultPlan::random_vertices(&f.graph, 3, (2, 4), 5)
        .events()
        .to_vec();
    events.extend(
        FaultPlan::random_edges(&f.graph, 4, (3, 6), 5)
            .events()
            .iter()
            .cloned(),
    );
    let plan = FaultPlan::new(events);
    let r = gossip_via_trees_faulty(
        &f.graph,
        &packing,
        &origins,
        5,
        GossipConfig::weighted(),
        &plan,
    )
    .unwrap();
    assert_eq!(r.lost_messages, 0);
    assert_eq!(r.num_messages, f.graph.n());
}

#[test]
fn fault_schedules_and_reports_are_seed_reproducible() {
    let f = fixtures::small()
        .into_iter()
        .find(|f| f.name == "harary_k8_n40")
        .unwrap();
    let packing = packing_for(&f);
    let origins: Vec<usize> = (0..f.graph.n()).collect();
    let run = |seed: u64| {
        let plan = FaultPlan::random_vertices(&f.graph, 7, (2, 6), seed);
        let report = gossip_via_trees_faulty(
            &f.graph,
            &packing,
            &origins,
            3,
            GossipConfig::default(),
            &plan,
        )
        .unwrap();
        (plan.events().to_vec(), report)
    };
    // Same seed ⇒ identical failure schedule and identical report
    // (degradation curve and schedule digest included).
    assert_eq!(run(1), run(1));
    // Distinct seeds draw distinct schedules on this instance.
    assert_ne!(run(1).0, run(7).0);
}

#[test]
fn faulty_run_without_faults_matches_the_fault_free_schedule() {
    // An empty plan must take the exact fault-free code path: same
    // rounds, same digest, same per-tree loads — the faulty entry point
    // adds no overhead and no RNG drift when nothing fails.
    for f in fixtures::small() {
        let packing = packing_for(&f);
        let origins: Vec<usize> = (0..f.graph.n()).collect();
        let plain =
            gossip_via_trees_with(&f.graph, &packing, &origins, 9, GossipConfig::weighted());
        let faulty = gossip_via_trees_faulty(
            &f.graph,
            &packing,
            &origins,
            9,
            GossipConfig::weighted(),
            &FaultPlan::none(),
        )
        .unwrap();
        assert_eq!(plain, faulty, "{}", f.name);
    }
}

#[test]
fn incremental_repack_is_bit_identical_to_scratch() {
    // Deletion-aware repacking vs. the from-scratch oracle, on every
    // family, across a worst-case (highest-degree-first) deletion
    // sequence: component counts, excess, projections, and the exact
    // densified component labels must all match a freshly replayed
    // state — this is the equivalence CI's determinism step re-runs.
    for f in fixtures::small() {
        let g = &f.graph;
        let n = g.n();
        let layout = VirtualLayout::new(n, 4);
        let t = 3usize;
        let joins: Vec<(usize, usize)> = (0..n).map(|i| (i * 7 % n, i % t)).collect();
        let mut st = ClassState::new(layout, t);
        for &(v, c) in &joins {
            st.join(g, layout.vid(v, 0, VType::ALL[c]), c);
        }
        let plan = FaultPlan::worst_case_vertices(g, n / 4, 1);
        let mut deleted: Vec<usize> = Vec::new();
        for dead in plan.dead_vertices_after(usize::MAX) {
            let touched = st.delete_vertex(g, dead);
            deleted.push(dead);
            assert!(touched.len() <= t, "{}", f.name);
            let (counts, excess) = st.recompute_from_scratch(g);
            for (c, &want) in counts.iter().enumerate() {
                assert_eq!(
                    st.component_count(c),
                    want,
                    "{} class {c} after deleting {deleted:?}",
                    f.name
                );
            }
            assert_eq!(st.excess(), excess, "{} after {deleted:?}", f.name);
            let mut fresh = ClassState::new(layout, t);
            for &(v, c) in joins.iter().filter(|(v, _)| !deleted.contains(v)) {
                fresh.join(g, layout.vid(v, 0, VType::ALL[c]), c);
            }
            for c in 0..t {
                assert_eq!(st.comp_of(c), fresh.comp_of(c), "{} labels", f.name);
            }
        }
    }
}

#[test]
fn distributed_repair_protocol_completes_on_env_engine() {
    // The two-phase distributed protocol (faulted run + repair
    // re-injection) on the engine CI selects via DECOMP_ENGINE.
    for name in ["harary_k4_n24", "hypercube_d4"] {
        let f = fixtures::small()
            .into_iter()
            .find(|f| f.name == name)
            .unwrap();
        let packing = packing_for(&f);
        let origins: Vec<usize> = (0..f.graph.n()).collect();
        let plan = FaultPlan::random_vertices(&f.graph, f.kappa - 1, (2, 5), 13);
        let r = gossip_protocol_faulty(
            &f.graph,
            &packing,
            &origins,
            13,
            GossipConfig::default(),
            &plan,
            decomp_testkit::engine_from_env(),
        )
        .unwrap();
        assert!(r.complete, "{name}: surviving nodes must converge");
        assert_eq!(r.lost_messages, 0, "{name}: f < κ loses nothing");
        assert_eq!(r.per_tree_load.iter().sum::<usize>(), f.graph.n());
        assert!(r.stats.rounds > 0);
    }
}

#[test]
fn arrival_waves_complete_on_every_family() {
    // Pure-arrival plans (PR 9): some vertices are dormant until a
    // mid-run round. Nothing dies, so nothing may be lost, and every
    // final vertex — late arrivals included — must be served; messages
    // from dormant origins simply wait for their vertex.
    for f in fixtures::small() {
        let packing = packing_for(&f);
        let origins: Vec<usize> = (0..f.graph.n()).collect();
        let plan = FaultPlan::random_arrivals(&f.graph, f.graph.n() / 8, (2, 6), 11);
        for config in [GossipConfig::default(), GossipConfig::weighted()] {
            let r = gossip_via_trees_faulty(&f.graph, &packing, &origins, 11, config, &plan)
                .unwrap_or_else(|e| panic!("{}: {e}", f.name));
            assert_eq!(r.lost_messages, 0, "{}: arrivals lose nothing", f.name);
            assert_eq!(r.num_messages, f.graph.n());
            if let Some(last) = r.degradation.last() {
                assert_eq!(
                    last.live_vertices,
                    f.graph.n(),
                    "{}: everyone is present once all arrivals fired",
                    f.name
                );
            }
        }
    }
}

#[test]
fn arrival_after_kills_redelivers_via_repair() {
    // Mixed churn: kills below κ followed by arrivals. The repair pass
    // must reseed messages already complete among the old population so
    // the newcomers catch up — across all three regimes.
    let f = fixtures::small()
        .into_iter()
        .find(|f| f.name == "harary_k8_n40")
        .unwrap();
    let packing = packing_for(&f);
    let n = f.graph.n();
    // Vertices 30 and 31 arrive late; two others die early.
    let plan = FaultPlan::new([
        ScheduledFault {
            round: 2,
            fault: Fault::Vertex(3),
        },
        ScheduledFault {
            round: 4,
            fault: Fault::Vertex(17),
        },
        ScheduledFault {
            round: 40,
            fault: Fault::AddVertex(30),
        },
        ScheduledFault {
            round: 44,
            fault: Fault::AddVertex(31),
        },
    ]);
    let origins: Vec<usize> = (0..n).filter(|&v| ![3, 17, 30, 31].contains(&v)).collect();
    for config in [
        GossipConfig::default(),
        GossipConfig::weighted(),
        GossipConfig::rlnc(8, 7),
    ] {
        let r = gossip_via_trees_faulty(&f.graph, &packing, &origins, 7, config, &plan).unwrap();
        assert_eq!(r.lost_messages, 0, "{config:?}");
        assert!(
            r.rounds >= 40,
            "{config:?}: the run must extend to the arrivals, got {}",
            r.rounds
        );
    }
    // The tree regimes repair through reseeds; the counters say so.
    let r = gossip_via_trees_faulty(
        &f.graph,
        &packing,
        &origins,
        7,
        GossipConfig::default(),
        &plan,
    )
    .unwrap();
    assert!(
        r.repair_events > 0,
        "late arrivals need reseeded redelivery"
    );
}

#[test]
fn distributed_protocol_serves_arrival_scenarios() {
    // gossip_protocol_faulty with arrivals in the plan, on the engine
    // CI selects via DECOMP_ENGINE: the engines handle dormancy
    // natively and the repair phase serves the newcomers.
    let f = fixtures::small()
        .into_iter()
        .find(|f| f.name == "harary_k4_n24")
        .unwrap();
    let packing = packing_for(&f);
    let plan = FaultPlan::new([
        ScheduledFault {
            round: 3,
            fault: Fault::Vertex(5),
        },
        ScheduledFault {
            round: 6,
            fault: Fault::AddVertex(20),
        },
    ]);
    let origins: Vec<usize> = (0..f.graph.n()).filter(|&v| v != 5 && v != 20).collect();
    let r = gossip_protocol_faulty(
        &f.graph,
        &packing,
        &origins,
        9,
        GossipConfig::default(),
        &plan,
        decomp_testkit::engine_from_env(),
    )
    .unwrap();
    assert!(r.complete, "the newcomer must converge too");
    assert_eq!(r.lost_messages, 0);
}

#[test]
fn worst_case_plans_target_high_degree_vertices() {
    // The adversarial policy is deterministic and kills the
    // highest-degree vertices first — on a star that is the hub.
    let g = connectivity_decomposition::graph::generators::star(6);
    let plan = FaultPlan::worst_case_vertices(&g, 1, 3);
    assert_eq!(plan.events().len(), 1);
    match plan.events()[0].fault {
        Fault::Vertex(v) => assert_eq!(g.degree(v), 5, "hub dies first"),
        ref other => panic!("unexpected fault {other:?}"),
    }
    assert_eq!(plan.events()[0].round, 3);
}
