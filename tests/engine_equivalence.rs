//! Engine equivalence: the sequential and sharded backends must produce
//! **bit-identical** results — program outputs, per-node RNG streams, and
//! `RunStats` — on every testkit fixture family (the determinism contract
//! of `decomp_congest::engine`). The one normalization: the `RunStats`
//! locality split describes the engine's partition, not the protocol, so
//! comparisons go through `RunStats::locality_blind`.
//!
//! Coverage: raw primitives (BFS, leader election, multi-key flooding in
//! both models), the full Appendix B distributed CDS pipeline, the
//! Appendix E distributed verifier, the error path, and a proptest sweep
//! over random connected graphs with a message-heavy program.

use connectivity_decomposition::congest::bfs::distributed_bfs;
use connectivity_decomposition::congest::leader::flood_max;
use connectivity_decomposition::congest::multiflood::{multikey_flood, Combine};
use connectivity_decomposition::congest::{
    EngineKind, Inbox, Message, Model, NodeCtx, NodeProgram, RunStats, SimError, Simulator,
};
use connectivity_decomposition::core::cds::centralized::CdsPackingConfig;
use connectivity_decomposition::core::cds::distributed::cds_packing_distributed;
use connectivity_decomposition::core::cds::verify::{membership_of, verify_distributed};
use connectivity_decomposition::graph::{generators, Graph};
use decomp_testkit::{fixtures, golden};
use proptest::prelude::*;
use rand::Rng;
use std::collections::HashMap;

/// Runs `f` under every engine in the sweep and asserts all observations
/// equal the sequential baseline.
fn assert_equivalent<T: PartialEq + std::fmt::Debug>(
    ctx: &str,
    mut f: impl FnMut(EngineKind) -> T,
) {
    let engines = decomp_testkit::engines();
    assert_eq!(engines[0], EngineKind::Sequential, "baseline first");
    let baseline = f(EngineKind::Sequential);
    for &engine in &engines[1..] {
        let got = f(engine);
        assert_eq!(got, baseline, "{ctx}: {engine} diverged from sequential");
    }
}

#[test]
fn bfs_bit_identical_on_every_fixture() {
    for f in fixtures::small() {
        assert_equivalent(&f.name, |engine| {
            let mut sim = Simulator::new(&f.graph, Model::VCongest).with_engine(engine);
            let tree = distributed_bfs(&mut sim, 0).unwrap();
            (tree.dist, tree.parent, sim.stats().locality_blind())
        });
    }
}

#[test]
fn leader_election_bit_identical_on_every_fixture() {
    for f in fixtures::small() {
        let values: Vec<u64> = (0..f.graph.n() as u64).map(|v| v * 7 % 31).collect();
        assert_equivalent(&f.name, |engine| {
            let mut sim = Simulator::new(&f.graph, Model::VCongest).with_engine(engine);
            let winner = flood_max(&mut sim, &values).unwrap();
            (winner, sim.stats().locality_blind())
        });
    }
}

#[test]
fn multiflood_bit_identical_in_both_models() {
    for f in fixtures::small() {
        for model in [Model::VCongest, Model::ECongest] {
            let tables: Vec<HashMap<u64, u64>> = (0..f.graph.n())
                .map(|v| {
                    [(0u64, v as u64), (v as u64 % 3 + 1, (v * v) as u64)]
                        .into_iter()
                        .collect()
                })
                .collect();
            assert_equivalent(&format!("{} {model}", f.name), |engine| {
                let mut sim = Simulator::new(&f.graph, model).with_engine(engine);
                let fixpoint = multikey_flood(&mut sim, tables.clone(), Combine::Min).unwrap();
                // HashMaps compare unordered; canonicalize for the tuple.
                let canon: Vec<Vec<(u64, u64)>> = fixpoint
                    .into_iter()
                    .map(|t| {
                        let mut kv: Vec<_> = t.into_iter().collect();
                        kv.sort_unstable();
                        kv
                    })
                    .collect();
                (canon, sim.stats().locality_blind())
            });
        }
    }
}

#[test]
fn cds_pipeline_bit_identical_on_well_connected_fixtures() {
    for f in fixtures::small() {
        if f.kappa < 2 {
            continue;
        }
        let cfg = CdsPackingConfig::with_known_k(f.kappa, 6);
        assert_equivalent(&f.name, |engine| {
            let mut sim = Simulator::new(&f.graph, Model::VCongest).with_engine(engine);
            let p = cds_packing_distributed(&mut sim, &cfg).unwrap();
            (p.classes, p.class_of, p.trace, sim.stats().locality_blind())
        });
    }
}

#[test]
fn verifier_bit_identical_on_every_fixture() {
    for f in fixtures::small() {
        // A deliberately fragile input: one full class plus one class
        // holding only node 0 (fails domination/connectivity on most
        // families) — both verdict and round accounting must agree.
        let classes: Vec<Vec<usize>> = vec![(0..f.graph.n()).collect(), vec![0]];
        let membership = membership_of(&classes, f.graph.n());
        assert_equivalent(&f.name, |engine| {
            let mut sim = Simulator::new(&f.graph, Model::VCongest).with_engine(engine);
            let verdict = verify_distributed(&mut sim, &membership, classes.len(), 5).unwrap();
            (verdict, sim.stats().locality_blind())
        });
    }
}

#[test]
fn round_limit_error_context_identical() {
    #[derive(Debug)]
    struct Chatter;
    impl NodeProgram for Chatter {
        fn round(&mut self, ctx: &mut NodeCtx<'_>, _inbox: &Inbox<'_>) {
            ctx.broadcast(Message::from_words([ctx.id() as u64]));
        }
        fn is_done(&self) -> bool {
            false
        }
    }
    for f in fixtures::small() {
        assert_equivalent(&f.name, |engine| {
            let mut sim = Simulator::new(&f.graph, Model::VCongest).with_engine(engine);
            let err = sim
                .run((0..f.graph.n()).map(|_| Chatter).collect(), 7)
                .unwrap_err();
            match err {
                SimError::ExceededMaxRounds {
                    max_rounds,
                    undelivered,
                    unfinished,
                } => {
                    assert_eq!(max_rounds, 7);
                    assert_eq!(undelivered, 2 * f.graph.m(), "all edges carry traffic");
                    assert_eq!(unfinished, f.graph.n());
                    (undelivered, unfinished, sim.stats().locality_blind())
                }
            }
        });
    }
}

#[test]
fn round_limit_error_context_identical_under_faults() {
    use connectivity_decomposition::congest::fault::FaultPlan;
    // The cap hits with messages in flight mid-run *and* part of the
    // network dead: both engines must report the same post-purge
    // `undelivered` count and the same live-only `unfinished` count —
    // the unified counting point in `engine::cutoff_context`.
    #[derive(Debug)]
    struct Chatter;
    impl NodeProgram for Chatter {
        fn round(&mut self, ctx: &mut NodeCtx<'_>, _inbox: &Inbox<'_>) {
            ctx.broadcast(Message::from_words([ctx.id() as u64]));
        }
        fn is_done(&self) -> bool {
            false
        }
    }
    for f in fixtures::small() {
        let dead = f.graph.n() / 3;
        let plan = FaultPlan::random_vertices(&f.graph, dead, (2, 5), 77);
        assert_equivalent(&f.name, |engine| {
            let mut sim = Simulator::new(&f.graph, Model::VCongest)
                .with_engine(engine)
                .with_faults(plan.clone());
            let err = sim
                .run((0..f.graph.n()).map(|_| Chatter).collect(), 7)
                .unwrap_err();
            match err {
                SimError::ExceededMaxRounds {
                    max_rounds,
                    undelivered,
                    unfinished,
                } => {
                    assert_eq!(max_rounds, 7);
                    // Only live programs are unfinished, and only
                    // live-to-live traffic is still in flight.
                    assert_eq!(unfinished, f.graph.n() - dead);
                    let surviving = plan.surviving_graph(&f.graph, 7);
                    assert_eq!(undelivered, 2 * surviving.m(), "dead lanes purged");
                    (undelivered, unfinished, sim.stats().locality_blind())
                }
            }
        });
    }
}

#[test]
fn rlnc_schedule_is_seed_deterministic() {
    use connectivity_decomposition::broadcast::gossip::{gossip_via_trees_with, GossipConfig};
    use connectivity_decomposition::broadcast::gossip_distributed::gossip_protocol_on;
    use connectivity_decomposition::core::cds::centralized::cds_packing;
    use connectivity_decomposition::core::cds::tree_extract::to_dom_tree_packing;

    for f in fixtures::small() {
        if f.kappa < 2 {
            continue;
        }
        let p = cds_packing(&f.graph, &CdsPackingConfig::with_known_k(f.kappa, 6));
        let packing = to_dom_tree_packing(&f.graph, &p).packing;
        let origins: Vec<usize> = (0..f.graph.n()).collect();

        // Schedule level: the coded round loop is a pure function of
        // (graph, packing, origins, seed, generation size, coeff seed) —
        // a double run must reproduce the whole report bit-for-bit, and
        // the registry pins rounds + relay digest against silent drift
        // in the coefficient stream.
        let config = GossipConfig::rlnc(8, 5);
        let a = gossip_via_trees_with(&f.graph, &packing, &origins, 9, config);
        let b = gossip_via_trees_with(&f.graph, &packing, &origins, 9, config);
        assert_eq!(a, b, "{}: coded schedule not reproducible", f.name);
        golden::check(&format!("{}/rlnc/rounds", f.name), a.rounds);
        golden::check(&format!("{}/rlnc/digest", f.name), a.schedule_digest);

        // Protocol level: coefficient draws come from the simulator's
        // per-node RNG streams, so the engine-determinism contract makes
        // sequential and every sharded partition bit-identical.
        assert_equivalent(&format!("{} rlnc", f.name), |engine| {
            let mut sim = Simulator::with_seed(&f.graph, Model::VCongest, 9).with_engine(engine);
            let r = gossip_protocol_on(&mut sim, &packing, &origins, 9, config).unwrap();
            (r.complete, r.per_tree_load, r.stats.locality_blind())
        });
    }
}

/// A message-heavy randomized program: every node gossips random words to
/// its neighbors for a few rounds and folds everything it hears into an
/// accumulator. Exercises RNG streams, V-CONGEST broadcast, activity
/// wake-ups, and quiescence under arbitrary topologies.
struct GossipMix {
    rounds_left: usize,
    acc: u64,
}

impl NodeProgram for GossipMix {
    fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &Inbox<'_>) {
        for (from, m) in inbox {
            for &w in m.words() {
                self.acc = self
                    .acc
                    .wrapping_mul(0x9e3779b97f4a7c15)
                    .wrapping_add(w ^ from as u64);
            }
        }
        if self.rounds_left > 0 {
            self.rounds_left -= 1;
            let word: u64 = ctx.rng().gen();
            ctx.broadcast(Message::from_words([word, ctx.id() as u64]));
        }
    }
    fn is_done(&self) -> bool {
        self.rounds_left == 0
    }
}

fn gossip_digest(g: &Graph, engine: EngineKind, seed: u64) -> (Vec<u64>, RunStats) {
    let mut sim = Simulator::with_seed(g, Model::VCongest, seed).with_engine(engine);
    let programs = (0..g.n())
        .map(|v| GossipMix {
            rounds_left: 3 + (v % 4),
            acc: 0,
        })
        .collect();
    let (programs, _) = sim.run_to_quiescence(programs).unwrap();
    let stats = sim.stats();
    assert_eq!(
        stats.local_words + stats.cross_shard_words,
        stats.words,
        "locality split must partition the delivered words ({engine})"
    );
    (
        programs.into_iter().map(|p| p.acc).collect(),
        stats.locality_blind(),
    )
}

#[test]
fn gossip_on_a_growing_topology_bit_identical() {
    use connectivity_decomposition::congest::fault::{Fault, FaultPlan, ScheduledFault};
    // Adjacency revealed only at arrival: the last three vertices are
    // isolated in the base CSR, and their edges exist only in the
    // growth overlay, activating at the arrival rounds. Every engine
    // must deliver over the same per-round neighbor lists.
    let gfull = generators::random_connected(24, 30, 5);
    let newcomers = [21usize, 22, 23];
    let base = Graph::from_edges(
        gfull.n(),
        (0..gfull.n()).flat_map(|u| {
            gfull
                .neighbors(u)
                .iter()
                .filter(move |&&v| u < v && !newcomers.contains(&u) && !newcomers.contains(&v))
                .map(move |&v| (u, v))
        }),
    );
    let mut events = Vec::new();
    for (i, &w) in newcomers.iter().enumerate() {
        let round = 2 + 2 * i;
        events.push(ScheduledFault {
            round,
            fault: Fault::AddVertex(w),
        });
        for &u in gfull.neighbors(w) {
            // An edge between two newcomers activates at the *later*
            // arrival (referencing the earlier one is fine; the other
            // way round the plan would be invalid).
            if newcomers
                .iter()
                .position(|&x| x == u)
                .is_some_and(|j| j > i)
            {
                continue;
            }
            events.push(ScheduledFault {
                round,
                fault: Fault::AddEdge(w, u),
            });
        }
    }
    let plan = FaultPlan::new(events);
    assert_eq!(plan.validate(&gfull), Ok(()));
    let gg = plan.growth_topology(&base);
    assert!(
        gg.overlay_len() > 0,
        "newcomer edges must live in the overlay"
    );
    assert_equivalent("growing gossip", |engine| {
        let mut sim = Simulator::with_seed(gg.base(), Model::VCongest, 5)
            .with_engine(engine)
            .with_growth(&gg)
            .with_faults(plan.clone());
        let programs = (0..gfull.n())
            .map(|v| GossipMix {
                rounds_left: 3 + (v % 4),
                acc: 0,
            })
            .collect();
        let (programs, _) = sim.run_to_quiescence(programs).unwrap();
        let stats = sim.stats();
        assert_eq!(stats.local_words + stats.cross_shard_words, stats.words);
        (
            programs.into_iter().map(|p| p.acc).collect::<Vec<_>>(),
            stats.locality_blind(),
        )
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random connected graphs, random seeds, random shard counts: both
    /// sharded partitions must match the sequential digest bit-for-bit.
    fn random_graphs_gossip_identical(
        n in 2usize..48,
        extra in 0usize..40,
        seed in 0u64..1000,
        shards in 2usize..9,
    ) {
        let g = generators::random_connected(n, extra.min(n * (n - 1) / 2), seed);
        let baseline = gossip_digest(&g, EngineKind::Sequential, seed);
        let contig = gossip_digest(&g, EngineKind::sharded(shards), seed);
        prop_assert_eq!(&baseline, &contig, "n={} shards={} seed={}", n, shards, seed);
        let topo = gossip_digest(&g, EngineKind::sharded_topo(shards), seed);
        prop_assert_eq!(&baseline, &topo, "topo n={} shards={} seed={}", n, shards, seed);
    }
}
