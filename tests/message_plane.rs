//! Message-plane representation equivalence (PR 4 invariants).
//!
//! The zero-allocation message plane stores small payloads inline in the
//! `Message` struct and spills longer ones to a heap `Vec`. The two
//! representations must be **observationally identical** — every
//! accessor, equality, and hashing goes through the payload words, never
//! the representation — and the word-budget enforcement must reject
//! exactly the payloads it rejected before (length is all that counts).
//!
//! `Message::from_words` builds the inline representation whenever the
//! payload fits ([`congest::INLINE_WORDS`] words); `From<Vec<u64>>`
//! deliberately preserves the heap representation even for payloads that
//! would fit inline, which is what lets these tests pin a heap twin of
//! any small message.

use connectivity_decomposition::congest::{
    Inbox, Message, Model, NodeCtx, NodeProgram, Simulator, INLINE_WORDS,
};
use connectivity_decomposition::graph::generators;
use proptest::prelude::*;
use std::hash::{Hash, Hasher};

fn hash_of(m: &Message) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    m.hash(&mut h);
    h.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Inline vs heap `Message`s over the same words round-trip every
    /// accessor identically.
    fn representations_observationally_identical(
        words in proptest::collection::vec(any::<u64>(), 0..=2 * INLINE_WORDS + 1),
    ) {
        let inline_built = Message::from_words(words.iter().copied());
        let heap_built: Message = words.clone().into();

        prop_assert_eq!(inline_built.words(), words.as_slice());
        prop_assert_eq!(heap_built.words(), words.as_slice());
        prop_assert_eq!(inline_built.len(), words.len());
        prop_assert_eq!(heap_built.len(), words.len());
        prop_assert_eq!(inline_built.is_empty(), words.is_empty());
        prop_assert_eq!(heap_built.is_empty(), words.is_empty());
        for i in 0..words.len() + 2 {
            prop_assert_eq!(inline_built.get(i), words.get(i).copied());
            prop_assert_eq!(heap_built.get(i), words.get(i).copied());
        }

        // Observational equality and hashing are representation-blind.
        prop_assert_eq!(&inline_built, &heap_built);
        prop_assert_eq!(hash_of(&inline_built), hash_of(&heap_built));
    }

    /// Pushing keeps the two representations in lockstep — including
    /// across the inline→heap spill boundary.
    fn push_keeps_representations_in_lockstep(
        words in proptest::collection::vec(any::<u64>(), 0..=INLINE_WORDS + 2),
        extra in proptest::collection::vec(any::<u64>(), 1..=INLINE_WORDS + 2),
    ) {
        let mut inline_built = Message::from_words(words.iter().copied());
        let mut heap_built: Message = words.clone().into();
        let mut expect = words;
        for &w in &extra {
            inline_built = inline_built.push(w);
            heap_built = heap_built.push(w);
            expect.push(w);
            prop_assert_eq!(inline_built.words(), expect.as_slice());
            prop_assert_eq!(&inline_built, &heap_built);
            prop_assert_eq!(hash_of(&inline_built), hash_of(&heap_built));
        }
    }

    /// The word budget rejects exactly the same payloads for both
    /// representations: `len()` (the quantity the simulator checks) is
    /// representation-independent, so a payload is over budget iff its
    /// word count is — same as before the inline rewrite.
    fn word_budget_is_representation_blind(
        words in proptest::collection::vec(any::<u64>(), 0..=2 * INLINE_WORDS + 1),
        budget in 0usize..=2 * INLINE_WORDS + 1,
    ) {
        let inline_built = Message::from_words(words.iter().copied());
        let heap_built: Message = words.clone().into();
        let over = words.len() > budget;
        prop_assert_eq!(inline_built.len() > budget, over);
        prop_assert_eq!(heap_built.len() > budget, over);
    }
}

/// A program that broadcasts one fixed message once.
struct SendOnce {
    m: Option<Message>,
}

impl NodeProgram for SendOnce {
    fn round(&mut self, ctx: &mut NodeCtx<'_>, _inbox: &Inbox<'_>) {
        if let Some(m) = self.m.take() {
            ctx.broadcast(m);
        }
    }
    fn is_done(&self) -> bool {
        self.m.is_none()
    }
}

fn run_budgeted(budget: usize, m: Message) {
    let g = generators::path(2);
    let mut sim = Simulator::new(&g, Model::VCongest).with_word_budget(budget);
    let programs = vec![SendOnce { m: Some(m) }, SendOnce { m: None }];
    let _ = sim.run(programs, 4);
}

#[test]
#[should_panic(expected = "word budget")]
fn budget_rejects_oversized_inline_payload() {
    // 3 words, inline representation, budget 2.
    run_budgeted(2, Message::from_words([1, 2, 3]));
}

#[test]
#[should_panic(expected = "word budget")]
fn budget_rejects_oversized_heap_payload() {
    // The heap twin of the same payload must be rejected identically.
    run_budgeted(2, vec![1, 2, 3].into());
}

#[test]
fn budget_admits_exact_fit_in_both_representations() {
    run_budgeted(3, Message::from_words([1, 2, 3]));
    run_budgeted(3, vec![1, 2, 3].into());
    // Heap-spilled payload under a budget wider than the inline cap.
    run_budgeted(
        INLINE_WORDS + 2,
        Message::from_words(0..(INLINE_WORDS as u64 + 1)),
    );
}
