//! Spanning-tree packing pipeline across crates: exact connectivity →
//! MWU / sampled / integral packings → throughput & congestion, with the
//! MWU leg swept over testkit fixtures and pinned to golden values.

use connectivity_decomposition::broadcast::oblivious::edge_congestion;
use connectivity_decomposition::core::stp::integral::{check_integral_stp, integral_stp};
use connectivity_decomposition::core::stp::mwu::{fractional_stp_mwu, MwuConfig};
use connectivity_decomposition::core::stp::sampled::sampled_stp;
use connectivity_decomposition::graph::{connectivity, generators};
use decomp_testkit::{asserts, fixtures, golden};

#[test]
fn mwu_size_tracks_lambda() {
    let mut last = 0.0;
    for lambda in [2usize, 4, 8] {
        let g = generators::harary(lambda, 24);
        assert_eq!(connectivity::edge_connectivity(&g), lambda);
        let r = fractional_stp_mwu(&g, lambda, &MwuConfig::default());
        asserts::assert_span_tree_packing_feasible(
            &g,
            &r.packing,
            lambda,
            last, // monotone in lambda
            &format!("harary({lambda},24)"),
        );
        last = r.packing.size();
    }
    assert!(last >= 4.0 * (1.0 - 0.6));
}

#[test]
fn mwu_matches_golden_registry_on_fixtures() {
    for f in fixtures::well_connected() {
        let r = fractional_stp_mwu(&f.graph, f.lambda, &MwuConfig::default());
        golden::check(
            &format!("{}/stp_mwu/size", f.name),
            golden::f4(r.packing.size()),
        );
    }
}

#[test]
fn sampled_pipeline_on_dense_graph() {
    let g = generators::complete(40);
    let r = sampled_stp(&g, 0.15, 5);
    asserts::assert_span_tree_packing_feasible(&g, &r.packing, 39, 1.0, "complete(40)");
}

#[test]
fn integral_trees_support_congestion_free_routing() {
    let g = generators::complete(32); // lambda = 31
    let r = integral_stp(&g, 31, 2.0, 3);
    check_integral_stp(&g, &r.trees).unwrap();
    assert!(r.trees.len() >= 2);
    // Edge-disjoint trees: total per-edge usage across trees is <= 1.
    let mut used = vec![0usize; g.m()];
    for t in &r.trees {
        for &e in t {
            used[e] += 1;
        }
    }
    assert!(used.into_iter().all(|u| u <= 1));
}

#[test]
fn congestion_pipeline() {
    let g = generators::harary(6, 30);
    let lambda = connectivity::edge_connectivity(&g);
    let packing = fractional_stp_mwu(&g, lambda, &MwuConfig::default()).packing;
    let r = edge_congestion(&g, &packing, lambda, 3000, 7);
    // O(1)-competitiveness with a generous constant.
    assert!(
        r.competitiveness <= 10.0,
        "competitiveness {}",
        r.competitiveness
    );
}
