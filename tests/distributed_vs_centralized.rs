//! Distributed and centralized implementations must produce the same
//! *kind* of object with the same guarantees (the random choices differ,
//! so outputs are compared through their invariants, not bitwise).

use connectivity_decomposition::congest::{Model, Simulator};
use connectivity_decomposition::core::cds::centralized::{cds_packing, CdsPackingConfig};
use connectivity_decomposition::core::cds::distributed::cds_packing_distributed;
use connectivity_decomposition::core::cds::tree_extract::to_dom_tree_packing;
use connectivity_decomposition::core::cds::verify::{verify_centralized, VerifyOutcome};
use connectivity_decomposition::core::stp::distributed::distributed_stp_mwu;
use connectivity_decomposition::core::stp::mwu::{fractional_stp_mwu, MwuConfig};
use connectivity_decomposition::graph::generators;

#[test]
fn cds_both_sides_valid_and_same_shape() {
    let g = generators::harary(8, 40);
    let cfg = CdsPackingConfig::with_known_k(8, 6);

    let central = cds_packing(&g, &cfg);
    let mut sim = Simulator::new(&g, Model::VCongest);
    let distributed = cds_packing_distributed(&mut sim, &cfg).unwrap();

    for p in [&central, &distributed] {
        assert_eq!(p.num_classes(), cfg.num_classes);
        assert_eq!(verify_centralized(&g, &p.classes), VerifyOutcome::Pass);
        assert!(p.max_real_multiplicity() <= 3 * p.layout.layers());
        let trees = to_dom_tree_packing(&g, p);
        trees.packing.validate(&g, 1e-9).unwrap();
    }
    assert!(sim.stats().rounds > 0, "distributed run must spend rounds");
}

#[test]
fn stp_both_sides_meet_target() {
    let g = generators::harary(4, 16); // lambda = 4, target = 2
    let central = fractional_stp_mwu(&g, 4, &MwuConfig::default());
    let mut sim = Simulator::new(&g, Model::ECongest);
    let distributed = distributed_stp_mwu(&mut sim, 4, &MwuConfig::default()).unwrap();
    for r in [&central, &distributed] {
        r.packing.validate(&g, 1e-9).unwrap();
        assert!(
            r.packing.size() >= 2.0 * (1.0 - 0.6) - 1e-9,
            "size {}",
            r.packing.size()
        );
    }
}

#[test]
fn distributed_rounds_scale_with_instance() {
    // Rounds must grow with n on a diameter-controlled family.
    let rounds_for = |len: usize| {
        let g = generators::thick_path(4, len);
        let mut sim = Simulator::new(&g, Model::VCongest);
        cds_packing_distributed(&mut sim, &CdsPackingConfig::with_known_k(4, 2)).unwrap();
        sim.stats().rounds
    };
    let short = rounds_for(4);
    let long = rounds_for(12);
    assert!(
        long > short,
        "larger diameter must cost more rounds: {short} vs {long}"
    );
}
