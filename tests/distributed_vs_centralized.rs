//! Distributed and centralized implementations must produce the same
//! *kind* of object with the same guarantees (the random choices differ,
//! so outputs are compared through their invariants, not bitwise).
//!
//! The cross-check sweeps every testkit fixture family: for each
//! deterministic instance, the distributed pipeline must satisfy exactly
//! the invariants the centralized one does.

use connectivity_decomposition::congest::{Model, RunStats, Simulator};
use connectivity_decomposition::core::cds::centralized::{cds_packing, CdsPackingConfig};
use connectivity_decomposition::core::cds::class_state::ClassState;
use connectivity_decomposition::core::cds::distributed::cds_packing_distributed;
use connectivity_decomposition::core::cds::tree_extract::to_dom_tree_packing;
use connectivity_decomposition::core::stp::distributed::distributed_stp_mwu;
use connectivity_decomposition::core::stp::mwu::{fractional_stp_mwu, MwuConfig};
use connectivity_decomposition::core::virtual_graph::VType;
use connectivity_decomposition::graph::generators;
use decomp_testkit::{asserts, fixtures};

#[test]
fn cds_agrees_on_every_fixture_family() {
    // Every CONGEST-sized, >= 2-connected fixture: both sides must pass
    // the same invariant set and extract feasible packings. The
    // distributed side is swept across every execution engine, whose
    // outputs and round accounting must be bit-identical.
    for f in fixtures::small() {
        if f.kappa < 2 {
            continue;
        }
        let cfg = CdsPackingConfig::with_known_k(f.kappa, 6);

        let central = cds_packing(&f.graph, &cfg);
        let mut baseline: Option<(Vec<Vec<usize>>, RunStats)> = None;
        for engine in decomp_testkit::engines() {
            let mut sim = Simulator::new(&f.graph, Model::VCongest).with_engine(engine);
            let distributed = cds_packing_distributed(&mut sim, &cfg).unwrap();

            for (side, p) in [("central", &central), ("distributed", &distributed)] {
                let ctx = format!("{} {side} ({engine})", f.name);
                assert_eq!(p.num_classes(), cfg.num_classes, "{ctx}");
                asserts::assert_cds_packing_invariants(&f.graph, p, &ctx);
                let trees = to_dom_tree_packing(&f.graph, p);
                asserts::assert_dom_tree_packing_feasible(&f.graph, &trees, f.kappa, &ctx);
            }
            assert!(
                sim.stats().rounds > 0,
                "{}: distributed run must spend rounds",
                f.name
            );
            match &baseline {
                None => {
                    baseline = Some((distributed.classes.clone(), sim.stats().locality_blind()))
                }
                Some((classes, stats)) => {
                    assert_eq!(
                        (&distributed.classes, sim.stats().locality_blind()),
                        (classes, *stats),
                        "{}: {engine} diverged from sequential",
                        f.name
                    );
                }
            }
        }
    }
}

#[test]
fn distributed_trace_matches_replayed_class_state() {
    // The distributed port derives its per-layer excess counts `M_ℓ` from
    // flood-computed component tables (Theorem B.2 stand-in). Replaying
    // its class assignments layer by layer into the centralized side's
    // incremental `ClassState` must reproduce the exact same counts —
    // cross-validating the message-passing component identification
    // against the union-find bookkeeping.
    for f in fixtures::small() {
        if f.kappa < 2 {
            continue;
        }
        let cfg = CdsPackingConfig::with_known_k(f.kappa, 6);
        let mut sim = decomp_testkit::sim(&f.graph, Model::VCongest);
        let p = cds_packing_distributed(&mut sim, &cfg).unwrap();

        let layout = p.layout;
        let mut st = ClassState::new(layout, p.num_classes());
        let join_layer = |st: &mut ClassState, layer: usize| {
            for v in 0..f.graph.n() {
                for ty in VType::ALL {
                    let vid = layout.vid(v, layer, ty);
                    let class = p.class_of[vid].expect("fully assigned") as usize;
                    st.join(&f.graph, vid, class);
                }
            }
        };
        for layer in 0..layout.jump_start() {
            join_layer(&mut st, layer);
        }
        for (tr, layer) in p.trace.iter().zip(layout.jump_start()..layout.layers()) {
            assert_eq!(tr.layer, layer, "{}", f.name);
            assert_eq!(
                st.excess(),
                tr.excess_before,
                "{}: M_{layer} (flooded) vs replayed ClassState",
                f.name
            );
            join_layer(&mut st, layer);
            assert_eq!(
                st.excess(),
                tr.excess_after,
                "{}: M_{} (flooded) vs replayed ClassState",
                f.name,
                layer + 1
            );
        }
        // Final projection agrees with the packing's classes.
        for (c, members) in p.classes.iter().enumerate() {
            let got: Vec<usize> = (0..f.graph.n())
                .filter(|&v| st.classes_at(v).contains(&(c as u32)))
                .collect();
            assert_eq!(&got, members, "{}: class {c} projection", f.name);
        }
    }
}

#[test]
fn stp_agrees_on_every_fixture_family() {
    // E-CONGEST MWU packing vs. the centralized MWU, same sweep. The
    // MWU guarantee is (1 - eps) * lambda / 2 with the default eps.
    for f in fixtures::small() {
        if f.lambda < 2 {
            continue;
        }
        let eps = MwuConfig::default().epsilon;
        let target = (f.lambda as f64) / 2.0 * (1.0 - eps);

        let central = fractional_stp_mwu(&f.graph, f.lambda, &MwuConfig::default());
        let mut sim = decomp_testkit::sim(&f.graph, Model::ECongest);
        let distributed = distributed_stp_mwu(&mut sim, f.lambda, &MwuConfig::default()).unwrap();

        for (side, r) in [("central", &central), ("distributed", &distributed)] {
            let ctx = format!("{} {side}", f.name);
            asserts::assert_span_tree_packing_feasible(
                &f.graph, &r.packing, f.lambda, target, &ctx,
            );
        }
    }
}

#[test]
fn stp_both_sides_meet_target() {
    let g = generators::harary(4, 16); // lambda = 4, target = 2
    let central = fractional_stp_mwu(&g, 4, &MwuConfig::default());
    let mut sim = decomp_testkit::sim(&g, Model::ECongest);
    let distributed = distributed_stp_mwu(&mut sim, 4, &MwuConfig::default()).unwrap();
    for r in [&central, &distributed] {
        r.packing.validate(&g, decomp_testkit::TOL).unwrap();
        assert!(
            r.packing.size() >= 2.0 * (1.0 - 0.6) - decomp_testkit::TOL,
            "size {}",
            r.packing.size()
        );
    }
}

#[test]
fn distributed_rounds_scale_with_instance() {
    // Rounds must grow with n on a diameter-controlled family.
    let rounds_for = |len: usize| {
        let g = generators::thick_path(4, len);
        let mut sim = decomp_testkit::sim(&g, Model::VCongest);
        cds_packing_distributed(&mut sim, &CdsPackingConfig::with_known_k(4, 2)).unwrap();
        sim.stats().rounds
    };
    let short = rounds_for(4);
    let long = rounds_for(12);
    assert!(
        long > short,
        "larger diameter must cost more rounds: {short} vs {long}"
    );
}
