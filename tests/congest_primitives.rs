//! Cross-validation of the distributed primitives against centralized
//! oracles over randomized instances (integration-level property tests).
//!
//! Randomness flows through `decomp_testkit::rng`, and the BFS round
//! counts on the fixture roster are pinned in the golden registry.

use connectivity_decomposition::congest::aggregate::{tree_aggregate, AggOp};
use connectivity_decomposition::congest::bfs::distributed_bfs;
use connectivity_decomposition::congest::broadcast::pipelined_broadcast;
use connectivity_decomposition::congest::components::component_labels;
use connectivity_decomposition::congest::leader::flood_max;
use connectivity_decomposition::congest::mst::distributed_mst;
use connectivity_decomposition::congest::Model;
use connectivity_decomposition::graph::{generators, mst, traversal};
use decomp_testkit::{fixtures, golden};
use rand::Rng;

#[test]
fn bfs_matches_oracle_over_seeds() {
    for seed in 0..12 {
        let g = generators::random_connected(30, 15, seed);
        let reference = traversal::bfs(&g, (seed as usize) % g.n());
        let mut sim = decomp_testkit::sim(&g, Model::VCongest);
        let dist = distributed_bfs(&mut sim, (seed as usize) % g.n()).unwrap();
        assert_eq!(dist.dist, reference.dist, "seed {seed}");
    }
}

#[test]
fn bfs_rounds_on_fixtures_match_golden() {
    // Distributed BFS costs O(D) rounds and is deterministic per
    // instance; pin the exact counts on the roster.
    for f in fixtures::small() {
        let mut sim = decomp_testkit::sim(&f.graph, Model::VCongest);
        distributed_bfs(&mut sim, 0).unwrap();
        golden::check(&format!("{}/bfs0/rounds", f.name), sim.stats().rounds);
    }
}

#[test]
fn mst_matches_kruskal_over_seeds_and_models() {
    for seed in 0..8 {
        let g = generators::random_connected(18, 14, seed);
        let mut rng = decomp_testkit::rng(seed ^ 0xfeed);
        let weights: Vec<u64> = (0..g.m()).map(|_| rng.gen_range(0..500)).collect();
        let reference = mst::minimum_spanning_forest(&g, |e| weights[e] as f64);
        for model in [Model::VCongest, Model::ECongest] {
            let mut sim = decomp_testkit::sim(&g, model);
            let dist = distributed_mst(&mut sim, &weights).unwrap();
            assert_eq!(
                dist.edge_indices, reference.edge_indices,
                "seed {seed} {model:?}"
            );
        }
    }
}

#[test]
fn component_labels_match_oracle_on_random_subgraphs() {
    for seed in 0..8 {
        let g = generators::gnp(24, 0.2, seed);
        let mut rng = decomp_testkit::rng(seed);
        // Random vertex subset with random kept edges.
        let active: Vec<bool> = (0..g.n()).map(|_| rng.gen_bool(0.8)).collect();
        let keep_edge: Vec<bool> = (0..g.m()).map(|_| rng.gen_bool(0.7)).collect();
        let sub_neighbors: Vec<Vec<usize>> = (0..g.n())
            .map(|v| {
                g.neighbors(v)
                    .iter()
                    .copied()
                    .filter(|&u| active[u] && active[v] && keep_edge[g.edge_index(u, v).unwrap()])
                    .collect()
            })
            .collect();
        let init: Vec<u64> = (0..g.n() as u64).collect();
        let mut sim = decomp_testkit::sim(&g, Model::VCongest);
        let labels = component_labels(&mut sim, &active, &sub_neighbors, &init).unwrap();
        // Oracle: union-find over the same subgraph.
        let mut uf = connectivity_decomposition::graph::unionfind::UnionFind::new(g.n());
        for (v, neighbors) in sub_neighbors.iter().enumerate() {
            for &u in neighbors {
                uf.union(u, v);
            }
        }
        for u in 0..g.n() {
            for v in 0..g.n() {
                if active[u] && active[v] {
                    assert_eq!(
                        labels[u] == labels[v],
                        uf.same(u, v),
                        "seed {seed}: {u} vs {v}"
                    );
                }
            }
        }
    }
}

#[test]
fn aggregation_matches_direct_sums() {
    for seed in 0..6 {
        let g = generators::random_connected(22, 10, seed);
        let mut rng = decomp_testkit::rng(seed);
        let values: Vec<u64> = (0..g.n()).map(|_| rng.gen_range(0..1000)).collect();
        let mut sim = decomp_testkit::sim(&g, Model::VCongest);
        let tree = distributed_bfs(&mut sim, 0).unwrap();
        let sum = tree_aggregate(&mut sim, &tree, AggOp::Sum, &values).unwrap();
        assert_eq!(sum, values.iter().sum::<u64>());
        let max = tree_aggregate(&mut sim, &tree, AggOp::Max, &values).unwrap();
        assert_eq!(max, *values.iter().max().unwrap());
    }
}

#[test]
fn leader_is_global_max_value() {
    for seed in 0..6 {
        let g = generators::random_connected(20, 8, seed);
        let mut rng = decomp_testkit::rng(seed);
        let values: Vec<u64> = (0..g.n()).map(|_| rng.gen_range(0..100)).collect();
        let mut sim = decomp_testkit::sim(&g, Model::VCongest);
        let winner = flood_max(&mut sim, &values).unwrap();
        let best = (0..g.n()).max_by_key(|&v| (values[v], v)).unwrap();
        assert_eq!(winner, best, "seed {seed}");
    }
}

#[test]
fn pipelined_broadcast_delivers_in_depth_plus_b() {
    for seed in 0..4 {
        let g = generators::random_connected(25, 12, seed);
        let mut sim = decomp_testkit::sim(&g, Model::VCongest);
        let tree = distributed_bfs(&mut sim, 0).unwrap();
        let payloads: Vec<u64> = (0..15).collect();
        let r = pipelined_broadcast(&mut sim, &tree, &payloads).unwrap();
        for v in 0..g.n() {
            assert_eq!(r.received[v], payloads, "seed {seed} node {v}");
        }
        assert!(r.rounds <= tree.depth() + payloads.len() + 4);
    }
}
