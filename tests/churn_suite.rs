//! Live-churn scenario suite (PR 9): mid-run vertex arrivals, tree
//! re-extraction between fault waves, and vertex-disjoint degradation.
//!
//! Covers: a 10⁴-vertex alternating kill/arrive scenario whose gossip
//! returns to tree schedules between waves (per-wave flood rounds stay
//! bounded), a golden-pinned churn schedule digest, engine equivalence
//! of the distributed two-phase churn protocol, and the ≤-1-tree-per-
//! death degradation guarantee of vertex-disjoint (integral) packings.
//!
//! CI sweeps this suite under `DECOMP_ENGINE=sequential`, `sharded:4`,
//! and `sharded:4:topo`.

use connectivity_decomposition::broadcast::churn::{gossip_under_churn, gossip_under_growth};
use connectivity_decomposition::broadcast::gossip::{gossip_via_trees_faulty, GossipConfig};
use connectivity_decomposition::broadcast::gossip_distributed::{
    gossip_protocol_churn, gossip_protocol_growth,
};
use connectivity_decomposition::congest::{Fault, FaultPlan, ScheduledFault};
use connectivity_decomposition::core::cds::centralized::CdsPacking;
use connectivity_decomposition::core::cds::class_state::ClassState;
use connectivity_decomposition::core::cds::integral::{
    check_vertex_disjoint, integral_cds_packing,
};
use connectivity_decomposition::core::virtual_graph::{VType, VirtualLayout};
use connectivity_decomposition::graph::{generators, Graph};

/// A complete-bipartite fixture with `left` hand-built classes: class
/// `i` is `{left_i, right_{2i}, right_{2i+1}}` — a connected triple that
/// dominates both sides, so every class certifies, and killing one
/// right member leaves a certified pair. Deterministic by construction
/// (no RNG), which keeps the golden digest meaningful.
fn pair_fixture(left: usize, right: usize) -> (Graph, CdsPacking, ClassState) {
    assert!(right >= 2 * left);
    let g = generators::complete_bipartite(left, right);
    let n = g.n();
    let layout = VirtualLayout::new(n, 4);
    let mut state = ClassState::new(layout, left);
    let mut classes: Vec<Vec<usize>> = vec![Vec::new(); left];
    let mut class_of = vec![None; layout.total()];
    for (c, members) in classes.iter_mut().enumerate() {
        for v in [c, left + 2 * c, left + 2 * c + 1] {
            state.join(&g, layout.vid(v, 0, VType::T1), c);
            class_of[layout.vid(v, 0, VType::T1)] = Some(c as u32);
            members.push(v);
        }
        members.sort_unstable();
    }
    let cds = CdsPacking {
        layout,
        num_classes: left,
        class_of,
        classes,
        trace: Vec::new(),
    };
    (g, cds, state)
}

/// The 10⁴-vertex scenario from the issue: alternating kill and arrive
/// waves. Wave rounds: member arrivals (3), member kills (6), newcomer
/// arrivals (9), more member kills (12).
fn big_plan(left: usize) -> FaultPlan {
    let mut events = Vec::new();
    // Wave 1: the second right member of classes 0..4 arrives mid-run
    // (dormant before; its class runs as a certified pair meanwhile).
    for i in 0..4 {
        events.push(ScheduledFault {
            round: 3,
            fault: Fault::AddVertex(left + 2 * i + 1),
        });
    }
    // Wave 2: the first right member of classes 0..4 dies — each class
    // re-extracts over {left_i, right_{2i+1}}.
    for i in 0..4 {
        events.push(ScheduledFault {
            round: 6,
            fault: Fault::Vertex(left + 2 * i),
        });
    }
    // Wave 3: three class-free newcomers join and must still be served.
    for v in 0..3 {
        events.push(ScheduledFault {
            round: 9,
            fault: Fault::AddVertex(3 * left + v),
        });
    }
    // Wave 4: the first right member of classes 4..8 dies.
    for i in 4..left {
        events.push(ScheduledFault {
            round: 12,
            fault: Fault::Vertex(left + 2 * i),
        });
    }
    FaultPlan::new(events)
}

/// Origins avoiding the kill victims (an origin that dies before its
/// first relay legitimately loses its message — see DETERMINISM.md);
/// dormant member arrivals ARE included, so their messages wait.
fn big_origins(g: &Graph, left: usize, nmsg: usize) -> Vec<usize> {
    let victims: Vec<usize> = (0..left).map(|i| left + 2 * i).collect();
    (0..g.n())
        .filter(|v| !victims.contains(v))
        .take(nmsg)
        .collect()
}

/// Golden digest of the 10⁴ churn scenario (seed 9). Pins the entire
/// deterministic pipeline: hand-built classes, fault application order,
/// re-extraction BFS, repair-pass re-admission, and the fast-forward
/// idle rule. Update deliberately if the schedule semantics change.
const BIG_SCENARIO_DIGEST: u64 = 0x39f1_8ce6_5ef2_efd7;

#[test]
fn alternating_churn_returns_to_tree_schedules() {
    let left = 8;
    let (g, cds, mut state) = pair_fixture(left, 9992);
    let origins = big_origins(&g, left, 200);
    let plan = big_plan(left);
    let r = gossip_under_churn(&g, &cds, &mut state, &origins, 9, &plan).unwrap();
    assert!(r.complete, "survivors and newcomers must all be served");
    assert_eq!(r.lost_messages, 0, "no origin dies before relaying");
    assert_eq!(r.num_messages, 200);
    assert_eq!(r.waves.len(), 4, "four distinct wave rounds fired");

    // Live-population accounting: 10000 − 4 dormant members − 3 dormant
    // newcomers at the start; each wave adds/removes its vertices.
    assert_eq!(r.waves[0].live_vertices, 10_000 - 3);
    assert_eq!(r.waves[1].live_vertices, 10_000 - 3 - 4);
    assert_eq!(r.waves[2].live_vertices, 10_000 - 4);
    assert_eq!(r.waves[3].live_vertices, 10_000 - 8);

    // Tree re-extraction between waves: every touched class re-certifies
    // (member arrival: 4 classes; each kill wave: 4 classes).
    assert_eq!(r.reextractions, 12, "4 arrivals + 4 + 4 kills re-extract");
    for w in &r.waves {
        assert_eq!(
            w.certified_trees, left,
            "round {}: all classes must re-certify",
            w.round
        );
    }

    // Gossip returns to tree schedules between waves: the flood rounds
    // spent per wave stay bounded (they do not grow with the run).
    let mut prev = 0;
    for w in &r.waves {
        assert!(
            w.flood_rounds_before - prev <= 16,
            "round {}: flood must stay bounded per wave, got {}",
            w.round,
            w.flood_rounds_before - prev
        );
        prev = w.flood_rounds_before;
    }
    assert!(
        r.flood_rounds - prev <= 16,
        "flood after the last wave must die out, got {}",
        r.flood_rounds - prev
    );

    // Golden pin + exact double-run reproducibility.
    let (g2, cds2, mut state2) = pair_fixture(left, 9992);
    let r2 = gossip_under_churn(&g2, &cds2, &mut state2, &origins, 9, &plan).unwrap();
    assert_eq!(r, r2, "same inputs must reproduce the full report");
    assert_eq!(
        r.schedule_digest, BIG_SCENARIO_DIGEST,
        "churn schedule digest drifted — update deliberately"
    );
}

#[test]
fn distributed_churn_protocol_is_engine_equivalent() {
    // The same alternating shape at protocol scale: the two-phase
    // distributed repair must agree bit-for-bit across engines.
    let left = 6;
    let plan = FaultPlan::new([
        ScheduledFault {
            round: 2,
            fault: Fault::AddVertex(left + 1),
        },
        ScheduledFault {
            round: 4,
            fault: Fault::Vertex(left),
        },
        ScheduledFault {
            round: 6,
            fault: Fault::AddVertex(3 * left),
        },
    ]);
    let run = |engine| {
        let (g, cds, mut state) = pair_fixture(left, 200);
        let origins: Vec<usize> = (0..g.n()).filter(|&v| v != left).take(64).collect();
        let r = gossip_protocol_churn(
            &g,
            &cds,
            &mut state,
            &origins,
            17,
            GossipConfig::default(),
            &plan,
            engine,
        )
        .unwrap();
        (
            r.complete,
            r.lost_messages,
            r.reinjected,
            r.reextractions,
            r.certified_classes,
            r.stats.locality_blind(),
        )
    };
    let engines = decomp_testkit::engines();
    let baseline = run(engines[0]);
    assert!(baseline.0, "survivors must be served");
    assert_eq!(baseline.1, 0);
    assert_eq!(baseline.4, left, "every class re-certifies");
    for &engine in &engines[1..] {
        assert_eq!(run(engine), baseline, "{engine} diverged");
    }
    assert_eq!(run(engines[0]), baseline, "re-run diverged");
}

/// [`pair_fixture`] over a base CSR that also carries `extra` *isolated*
/// newcomer vertices: their adjacency (to every left vertex) exists only
/// in a growth overlay, never in the base — the packing predates them.
fn growth_fixture(left: usize, right: usize, extra: usize) -> (Graph, CdsPacking, ClassState) {
    assert!(right >= 2 * left);
    let bip = generators::complete_bipartite(left, right);
    let mut edges = Vec::new();
    for u in 0..bip.n() {
        for &v in bip.neighbors(u) {
            if u < v {
                edges.push((u, v));
            }
        }
    }
    let base = Graph::from_edges(bip.n() + extra, edges);
    let layout = VirtualLayout::new(base.n(), 4);
    let mut state = ClassState::new(layout, left);
    let mut classes: Vec<Vec<usize>> = vec![Vec::new(); left];
    let mut class_of = vec![None; layout.total()];
    for (c, members) in classes.iter_mut().enumerate() {
        for v in [c, left + 2 * c, left + 2 * c + 1] {
            state.join(&base, layout.vid(v, 0, VType::T1), c);
            class_of[layout.vid(v, 0, VType::T1)] = Some(c as u32);
            members.push(v);
        }
        members.sort_unstable();
    }
    let cds = CdsPacking {
        layout,
        num_classes: left,
        class_of,
        classes,
        trace: Vec::new(),
    };
    (base, cds, state)
}

/// The E12 growth plan: member arrivals at round 3, then `extra`
/// class-free newcomers at round 9 whose edges (to every left vertex)
/// are revealed only at the arrival round.
fn growth_plan(left: usize, base_pop: usize, extra: usize) -> FaultPlan {
    let mut events = Vec::new();
    for i in 0..4 {
        events.push(ScheduledFault {
            round: 3,
            fault: Fault::AddVertex(left + 2 * i + 1),
        });
    }
    for v in 0..extra {
        let w = base_pop + v;
        events.push(ScheduledFault {
            round: 9,
            fault: Fault::AddVertex(w),
        });
        for l in 0..left {
            events.push(ScheduledFault {
                round: 9,
                fault: Fault::AddEdge(w, l),
            });
        }
    }
    FaultPlan::new(events)
}

/// Golden digest of the growth scenario (seed 9): newcomers whose
/// adjacency is revealed only at arrival, admitted into the packing
/// incrementally. Update deliberately if admission or schedule
/// semantics change.
const GROWTH_SCENARIO_DIGEST: u64 = 0x5df1_343a_9330_9da5;

#[test]
fn growth_scenario_admits_newcomers_without_flooding() {
    // The end of the settled model, end to end: the final adjacency is
    // never built by the caller — three newcomers are isolated in the
    // base CSR and wired to the left side only at their arrival round.
    // Incremental admission must serve them from trees: zero flood
    // rounds, all three admitted.
    let (left, right, extra) = (8, 400, 3);
    let (base, cds, mut state) = growth_fixture(left, right, extra);
    let plan = growth_plan(left, left + right, extra);
    let gg = plan.growth_topology(&base);
    assert_eq!(
        gg.overlay_len(),
        extra * left,
        "newcomer edges live in the overlay"
    );
    let origins: Vec<usize> = (0..left + right).take(120).collect();
    let r = gossip_under_growth(&gg, &cds, &mut state, &origins, 9, &plan).unwrap();
    assert!(r.complete, "newcomers must be served");
    assert_eq!(r.lost_messages, 0);
    assert_eq!(
        r.admitted_via_packing, extra,
        "every newcomer joined a class"
    );
    assert_eq!(r.flood_served, 0);
    assert_eq!(r.flood_rounds, 0, "admission keeps every tree certified");
    for w in (left + right..base.n()).take(extra) {
        assert!(
            !state.classes_at(w).is_empty(),
            "newcomer {w} is a member now"
        );
    }

    // The settled counterpart on the materialized final topology: same
    // plan, same service, but the newcomers never enter the packing.
    let gfull = gg.final_graph();
    let (_, cds2, mut state2) = growth_fixture(left, right, extra);
    let s = gossip_under_churn(&gfull, &cds2, &mut state2, &origins, 9, &plan).unwrap();
    assert!(s.complete);
    assert_eq!(s.admitted_via_packing, 0, "settled runs never admit");
    assert_eq!(s.flood_served, extra);

    // Golden pin + exact double-run reproducibility.
    let (_, cds3, mut state3) = growth_fixture(left, right, extra);
    let r2 = gossip_under_growth(&gg, &cds3, &mut state3, &origins, 9, &plan).unwrap();
    assert_eq!(r, r2, "same inputs must reproduce the full report");
    assert_eq!(
        r.schedule_digest, GROWTH_SCENARIO_DIGEST,
        "growth schedule digest drifted — update deliberately"
    );
}

#[test]
fn distributed_growth_protocol_is_engine_equivalent() {
    // The distributed two-phase protocol on a growing topology:
    // phase 1 delivers over the view (adjacency revealed at arrival),
    // newcomers are admitted between the phases, and every engine must
    // agree bit-for-bit.
    let (left, right, extra) = (6, 200, 2);
    let (base, _, _) = growth_fixture(left, right, extra);
    let mut events = vec![
        ScheduledFault {
            round: 2,
            fault: Fault::AddVertex(left + 1),
        },
        ScheduledFault {
            round: 4,
            fault: Fault::Vertex(left),
        },
    ];
    for v in 0..extra {
        let w = left + right + v;
        events.push(ScheduledFault {
            round: 6,
            fault: Fault::AddVertex(w),
        });
        for l in 0..left {
            events.push(ScheduledFault {
                round: 6,
                fault: Fault::AddEdge(w, l),
            });
        }
    }
    let plan = FaultPlan::new(events);
    let gg = plan.growth_topology(&base);
    assert_eq!(gg.overlay_len(), extra * left);
    let run = |engine| {
        let (_, cds, mut state) = growth_fixture(left, right, extra);
        let origins: Vec<usize> = (0..left + right).filter(|&v| v != left).take(64).collect();
        let r = gossip_protocol_growth(
            &gg,
            &cds,
            &mut state,
            &origins,
            17,
            GossipConfig::default(),
            &plan,
            engine,
        )
        .unwrap();
        (
            r.complete,
            r.lost_messages,
            r.reinjected,
            r.reextractions,
            r.certified_classes,
            r.stats.locality_blind(),
        )
    };
    let engines = decomp_testkit::engines();
    let baseline = run(engines[0]);
    assert!(baseline.0, "survivors and newcomers must be served");
    assert_eq!(baseline.1, 0);
    assert_eq!(baseline.5.admitted_via_packing, extra);
    assert_eq!(baseline.5.flood_served, 0);
    for &engine in &engines[1..] {
        assert_eq!(run(engine), baseline, "{engine} diverged");
    }
    assert_eq!(run(engines[0]), baseline, "re-run diverged");
}

#[test]
fn vertex_disjoint_packing_degrades_one_tree_per_death() {
    // Integral (vertex-disjoint) packings degrade gracefully: a death
    // hits at most the one tree owning the vertex, so after `d` deaths
    // at least `trees − d` trees survive — pinned on every degradation
    // sample of a faulty run. (Fractional packings share vertices
    // across O(log n) trees, so one death may degrade several.)
    let g = generators::harary(16, 64);
    let integral = integral_cds_packing(&g, 3, 5);
    check_vertex_disjoint(&g, &integral.packing).unwrap();
    let trees = integral.packing.num_trees();
    assert!(trees >= 2, "fixture must pack ≥ 2 disjoint trees");

    // Kill one member of each of the first two trees (rounds ≥ 2: every
    // origin has relayed once, so nothing is lost below κ = 16).
    let victim = |t: usize| integral.packing.trees[t].vertices(g.n())[0];
    let plan = FaultPlan::new([
        ScheduledFault {
            round: 2,
            fault: Fault::Vertex(victim(0)),
        },
        ScheduledFault {
            round: 4,
            fault: Fault::Vertex(victim(1)),
        },
    ]);
    let origins: Vec<usize> = (0..g.n()).collect();
    for config in [GossipConfig::default(), GossipConfig::weighted()] {
        let r = gossip_via_trees_faulty(&g, &integral.packing, &origins, 5, config, &plan).unwrap();
        assert_eq!(r.lost_messages, 0);
        assert!(!r.degradation.is_empty());
        for s in &r.degradation {
            assert!(
                s.surviving_trees + s.faults_fired >= trees,
                "round {}: {} deaths may degrade at most {} trees",
                s.round,
                s.faults_fired,
                s.faults_fired
            );
        }
        let last = r.degradation.last().unwrap();
        assert_eq!(
            last.surviving_trees,
            trees - 2,
            "two deaths in two distinct trees degrade exactly two"
        );
    }
}

#[test]
fn arrivals_into_broken_classes_restore_certification() {
    // A class can be *broken* by the round-0 churn-out (its only right
    // member dormant) and heal when the member arrives: certification
    // must flip from t−1 to t across the wave.
    let left = 4;
    let (g, cds, mut state) = pair_fixture(left, 64);
    // Class 0 loses BOTH right members to dormancy: {left_0} alone
    // dominates no other left vertex, so the class starts broken.
    let plan = FaultPlan::new([
        ScheduledFault {
            round: 8,
            fault: Fault::AddVertex(left),
        },
        ScheduledFault {
            round: 8,
            fault: Fault::AddVertex(left + 1),
        },
    ]);
    let origins: Vec<usize> = (0..g.n()).filter(|&v| v != left && v != left + 1).collect();
    let r = gossip_under_churn(&g, &cds, &mut state, &origins, 3, &plan).unwrap();
    assert!(r.complete);
    assert_eq!(r.waves.len(), 1);
    assert_eq!(
        r.waves[0].certified_trees, left,
        "the arrival must re-certify the broken class"
    );
    assert!(r.waves[0].reextracted_classes >= 1);
    assert!(
        r.flood_rounds > 0 || r.repair_events > 0,
        "class 0's messages needed the fallback or a repair move"
    );
}
