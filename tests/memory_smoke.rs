//! Memory-regression smoke test for the zero-allocation message plane.
//!
//! An all-node gossip at n = 2·10⁴ (every node broadcasts a one-word
//! message for several rounds — ~1.6·10⁵ point-to-point deliveries in
//! flight per round) asserts that the engine's peak arena footprint
//! stays under a pinned ceiling. Before the inbox-arena rewrite, every
//! delivery materialized its own heap `Vec<u64>` clone (≈ 4+ words per
//! one-word payload, per receiver); the arena stores each broadcast
//! payload **once**, so the per-round footprint is ~degree× smaller and
//! a regression that reintroduces per-delivery copies blows through the
//! ceiling immediately.
//!
//! CI runs this suite under both `DECOMP_ENGINE=sequential` and
//! `DECOMP_ENGINE=sharded:4` in the engine-equivalence step (the peak
//! counters are engine-independent by construction — see
//! `docs/DETERMINISM.md`).

use connectivity_decomposition::congest::{Inbox, Message, Model, NodeCtx, NodeProgram, Simulator};
use connectivity_decomposition::graph::generators;
use rand::Rng;

const N: usize = 20_000;
const DEGREE: usize = 8;
const GOSSIP_ROUNDS: usize = 8;

/// Every node broadcasts one random word per round for a fixed number of
/// rounds and folds what it hears into an accumulator.
struct Gossip {
    rounds_left: usize,
    acc: u64,
}

impl NodeProgram for Gossip {
    fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &Inbox<'_>) {
        for (from, m) in inbox {
            self.acc = self
                .acc
                .wrapping_mul(0x9e3779b97f4a7c15)
                .wrapping_add(m.word(0) ^ from as u64);
        }
        if self.rounds_left > 0 {
            self.rounds_left -= 1;
            let w: u64 = ctx.rng().gen();
            ctx.broadcast(Message::from_words([w]));
        }
    }
    fn is_done(&self) -> bool {
        self.rounds_left == 0
    }
}

#[test]
fn all_node_gossip_peak_arena_words_under_ceiling() {
    let g = generators::random_regular(N, DEGREE, 1);
    let mut sim = Simulator::with_seed(&g, Model::VCongest, 42)
        .with_engine(decomp_testkit::engine_from_env());
    let programs = (0..N)
        .map(|_| Gossip {
            rounds_left: GOSSIP_ROUNDS,
            acc: 0,
        })
        .collect();
    let (_, stats) = sim.run_to_quiescence(programs).unwrap();

    // Every node broadcasts every gossip round: N one-word payloads in
    // the arena, N·d deliveries queued.
    assert_eq!(stats.peak_queued_messages, N * DEGREE);
    // The ceiling: one payload word per *sender* per round (not per
    // delivery). Pinned with zero slack on top of the exact expectation
    // — any per-receiver payload copy would multiply this by the degree.
    let ceiling = N;
    assert!(
        stats.peak_arena_words <= ceiling,
        "peak arena words {} exceed the pinned ceiling {} — did delivery \
         start copying payloads per receiver again?",
        stats.peak_arena_words,
        ceiling
    );
    // And the metric is live (a broken counter reading 0 must fail too).
    assert_eq!(stats.peak_arena_words, N);
}
