//! Property-style integration tests: the CDS pipeline's invariants must
//! hold across graph families, class counts, and seeds.
//!
//! Families, seeds, invariant checks, and golden values all come from
//! `decomp-testkit`, so every PR exercises the same deterministic
//! instances.

use connectivity_decomposition::core::cds::centralized::{cds_packing, CdsPackingConfig};
use connectivity_decomposition::core::cds::class_state::ClassState;
use connectivity_decomposition::core::cds::tree_extract::to_dom_tree_packing;
use connectivity_decomposition::core::cds::verify::{verify_centralized, VerifyOutcome};
use connectivity_decomposition::core::virtual_graph::{VType, VirtualLayout};
use connectivity_decomposition::graph::generators;
use decomp_testkit::{asserts, fixtures, golden, SEEDS, TOL};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn pipeline_invariants_across_families_and_seeds() {
    for f in fixtures::well_connected() {
        for seed in SEEDS {
            let ctx = format!("{} seed {seed}", f.name);
            let p = cds_packing(&f.graph, &CdsPackingConfig::with_known_k(f.kappa, seed));
            asserts::assert_cds_packing_invariants(&f.graph, &p, &ctx);
            let trees = to_dom_tree_packing(&f.graph, &p);
            asserts::assert_dom_tree_packing_feasible(&f.graph, &trees, f.kappa, &ctx);
        }
    }
}

#[test]
fn pipeline_outputs_match_golden_registry() {
    for f in fixtures::well_connected() {
        let p = cds_packing(&f.graph, &CdsPackingConfig::with_known_k(f.kappa, 1));
        let trees = to_dom_tree_packing(&f.graph, &p);
        golden::check(
            &format!("{}/cds_s1/num_trees", f.name),
            trees.packing.num_trees(),
        );
        golden::check(
            &format!("{}/cds_s1/size", f.name),
            golden::f4(trees.packing.size()),
        );
        golden::check(
            &format!("{}/cds_s1/invalid", f.name),
            trees.invalid_classes.len(),
        );
    }
}

#[test]
fn class_count_sweeps_never_break_feasibility() {
    // Even deliberately bad class counts (t way above k/4) must never
    // produce an infeasible *packing* — only invalid classes that the
    // extractor drops.
    let fixtures = fixtures::standard();
    let f = fixtures
        .iter()
        .find(|f| f.name == "harary_k8_n40")
        .expect("roster fixture");
    for t in [1usize, 2, 8, 20, 40] {
        let p = cds_packing(&f.graph, &CdsPackingConfig::with_classes(t, 3));
        let trees = to_dom_tree_packing(&f.graph, &p);
        trees.packing.validate(&f.graph, TOL).unwrap();
        assert_eq!(
            trees.packing.num_trees() + trees.invalid_classes.len(),
            t,
            "t = {t}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `insert_vertex` is the exact inverse of `delete_vertex` (the PR-9
    /// churn contract): after any delete immediately undone by a
    /// re-insert into the same classes, the incremental [`ClassState`]
    /// is label-identical to a from-scratch replay of the untouched
    /// membership — and the running component counts always match the
    /// scratch oracle, even while the vertex is out.
    #[test]
    fn insert_is_the_inverse_of_delete_bit_for_bit(
        seed in any::<u64>(),
        n in 10usize..28,
        extra in 0usize..16,
        t in 1usize..4,
    ) {
        let g = generators::random_connected(n, extra, seed);
        let layout = VirtualLayout::new(n, 4);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x1d1e_a5e5);
        let mut joins: Vec<(usize, usize)> = Vec::new();
        for v in 0..n {
            if rng.gen_range(0..4) > 0 {
                // ~3/4 of vertices join one class
                joins.push((v, rng.gen_range(0..t)));
            }
        }
        let mut st = ClassState::new(layout, t);
        for &(v, c) in &joins {
            st.join(&g, layout.vid(v, 0, VType::ALL[c % VType::ALL.len()]), c);
        }
        let mut fresh = ClassState::new(layout, t);
        for &(v, c) in &joins {
            fresh.join(&g, layout.vid(v, 0, VType::ALL[c % VType::ALL.len()]), c);
        }
        for _ in 0..4 {
            let v = rng.gen_range(0..n);
            let classes = st.classes_at(v).to_vec();
            st.delete_vertex(&g, v);
            // Mid-churn the counters must match the scratch oracle.
            let (counts, excess) = st.recompute_from_scratch(&g);
            for (c, &want) in counts.iter().enumerate() {
                prop_assert_eq!(st.component_count(c), want, "class {} with {} out", c, v);
            }
            prop_assert_eq!(st.excess(), excess, "excess with {} out", v);
            // Undo: re-admit into exactly the original classes.
            st.insert_vertex(&g, v, &classes);
            prop_assert_eq!(st.classes_at(v), classes.as_slice());
            // The round trip is bit-identical to the untouched replay.
            for c in 0..t {
                prop_assert_eq!(st.comp_of(c), fresh.comp_of(c), "labels, class {}", c);
                prop_assert_eq!(st.component_count(c), fresh.component_count(c));
            }
            for u in 0..n {
                prop_assert_eq!(st.classes_at(u), fresh.classes_at(u), "membership at {}", u);
            }
            prop_assert_eq!(st.excess(), fresh.excess());
        }
    }

    /// `admit_vertex` (the PR-10 growth contract): admitting a
    /// class-free newcomer through the maintained aggregates leaves the
    /// incremental [`ClassState`] label-identical to a from-scratch
    /// replay of the same final membership, and the admission rule
    /// itself is a pure function of the class partition (replaying the
    /// same history re-picks the same class).
    #[test]
    fn admit_matches_scratch_repack_bit_for_bit(
        seed in any::<u64>(),
        n in 10usize..28,
        extra in 0usize..16,
        t in 1usize..4,
    ) {
        let g = generators::random_connected(n, extra, seed);
        let layout = VirtualLayout::new(n, 4);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xad41_77e5);
        let mut joins: Vec<(usize, usize)> = Vec::new();
        let mut outside: Vec<usize> = Vec::new();
        for v in 0..n {
            if rng.gen_range(0..4) > 0 {
                joins.push((v, rng.gen_range(0..t)));
            } else {
                outside.push(v); // the class-free newcomers
            }
        }
        let mut st = ClassState::new(layout, t);
        for &(v, c) in &joins {
            st.join(&g, layout.vid(v, 0, VType::ALL[c % VType::ALL.len()]), c);
        }
        let mut member = joins.clone();
        for &v in &outside {
            let entered = st.admit_vertex(&g, v);
            prop_assert!(entered.len() <= 1, "admission picks at most one class");
            // Empty only when no neighbor carries any class.
            if entered.is_empty() {
                let absorbable = g.neighbors(v).iter().any(|&u| !st.classes_at(u).is_empty());
                prop_assert!(!absorbable, "refused an absorbable newcomer {}", v);
                continue;
            }
            member.push((v, entered[0] as usize));
            // Counters match the scratch oracle after every admission…
            let (counts, excess) = st.recompute_from_scratch(&g);
            for (c, &want) in counts.iter().enumerate() {
                prop_assert_eq!(st.component_count(c), want, "class {} after {}", c, v);
            }
            prop_assert_eq!(st.excess(), excess, "excess after {}", v);
            // …and the state is bit-identical to a fresh replay of the
            // same final membership.
            let mut fresh = ClassState::new(layout, t);
            for &(m, c) in &member {
                fresh.join(&g, layout.vid(m, 0, VType::ALL[c % VType::ALL.len()]), c);
            }
            for c in 0..t {
                prop_assert_eq!(st.comp_of(c), fresh.comp_of(c), "labels, class {}", c);
            }
            for u in 0..n {
                prop_assert_eq!(st.classes_at(u), fresh.classes_at(u), "membership at {}", u);
            }
        }
    }
}

#[test]
fn seeds_change_output_but_not_guarantees() {
    let fixtures = fixtures::standard();
    let f = fixtures
        .iter()
        .find(|f| f.name == "harary_k8_n40")
        .expect("roster fixture");
    let a = cds_packing(&f.graph, &CdsPackingConfig::with_known_k(f.kappa, 1));
    let b = cds_packing(&f.graph, &CdsPackingConfig::with_known_k(f.kappa, 2));
    assert!(
        a.class_of != b.class_of,
        "different seeds must give different assignments"
    );
    for p in [&a, &b] {
        assert_eq!(
            verify_centralized(&f.graph, &p.classes),
            VerifyOutcome::Pass
        );
    }
}
