//! Property-style integration tests: the CDS pipeline's invariants must
//! hold across graph families, class counts, and seeds.

use connectivity_decomposition::core::cds::centralized::{cds_packing, CdsPackingConfig};
use connectivity_decomposition::core::cds::tree_extract::to_dom_tree_packing;
use connectivity_decomposition::core::cds::verify::{verify_centralized, VerifyOutcome};
use connectivity_decomposition::graph::{connectivity, generators, Graph};

fn families() -> Vec<(String, Graph, usize)> {
    let mut out: Vec<(String, Graph, usize)> = Vec::new();
    for &(k, n) in &[(4usize, 24usize), (8, 40), (12, 48)] {
        out.push((format!("harary({k},{n})"), generators::harary(k, n), k));
    }
    out.push(("hypercube(5)".into(), generators::hypercube(5), 5));
    out.push(("thick_path(4,6)".into(), generators::thick_path(4, 6), 4));
    out.push((
        "random_regular(36,6)".into(),
        generators::random_regular(36, 6, 11),
        6,
    ));
    out
}

#[test]
fn pipeline_invariants_across_families_and_seeds() {
    for (name, g, k) in families() {
        for seed in [1u64, 7, 23] {
            let p = cds_packing(&g, &CdsPackingConfig::with_known_k(k, seed));
            // Invariant 1: every virtual node got a class.
            assert!(
                p.class_of.iter().all(|c| c.is_some()),
                "{name} seed {seed}: unassigned virtual node"
            );
            // Invariant 2: multiplicity bounded by 3L.
            assert!(
                p.max_real_multiplicity() <= 3 * p.layout.layers(),
                "{name} seed {seed}: multiplicity"
            );
            // Invariant 3: excess components non-increasing, final zero.
            for tr in &p.trace {
                assert!(
                    tr.excess_after <= tr.excess_before,
                    "{name} seed {seed}: excess grew at layer {}",
                    tr.layer
                );
            }
            // Invariant 4: every class verifies as a CDS on these safe
            // parameter settings.
            assert_eq!(
                verify_centralized(&g, &p.classes),
                VerifyOutcome::Pass,
                "{name} seed {seed}"
            );
            // Invariant 5: extraction yields a feasible packing with
            // size <= k (the cut bound).
            let trees = to_dom_tree_packing(&g, &p);
            trees.packing.validate(&g, 1e-9).unwrap();
            let true_k = connectivity::vertex_connectivity(&g);
            assert!(
                trees.packing.size() <= true_k as f64 + 1e-9,
                "{name} seed {seed}: size {} vs k {}",
                trees.packing.size(),
                true_k
            );
        }
    }
}

#[test]
fn class_count_sweeps_never_break_feasibility() {
    // Even deliberately bad class counts (t way above k/4) must never
    // produce an infeasible *packing* — only invalid classes that the
    // extractor drops.
    let g = generators::harary(8, 40);
    for t in [1usize, 2, 8, 20, 40] {
        let p = cds_packing(&g, &CdsPackingConfig::with_classes(t, 3));
        let trees = to_dom_tree_packing(&g, &p);
        trees.packing.validate(&g, 1e-9).unwrap();
        assert_eq!(
            trees.packing.num_trees() + trees.invalid_classes.len(),
            t,
            "t = {t}"
        );
    }
}

#[test]
fn seeds_change_output_but_not_guarantees() {
    let g = generators::harary(8, 32);
    let a = cds_packing(&g, &CdsPackingConfig::with_known_k(8, 1));
    let b = cds_packing(&g, &CdsPackingConfig::with_known_k(8, 2));
    assert!(
        a.class_of != b.class_of,
        "different seeds must give different assignments"
    );
    for p in [&a, &b] {
        assert_eq!(verify_centralized(&g, &p.classes), VerifyOutcome::Pass);
    }
}
