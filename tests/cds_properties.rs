//! Property-style integration tests: the CDS pipeline's invariants must
//! hold across graph families, class counts, and seeds.
//!
//! Families, seeds, invariant checks, and golden values all come from
//! `decomp-testkit`, so every PR exercises the same deterministic
//! instances.

use connectivity_decomposition::core::cds::centralized::{cds_packing, CdsPackingConfig};
use connectivity_decomposition::core::cds::tree_extract::to_dom_tree_packing;
use connectivity_decomposition::core::cds::verify::{verify_centralized, VerifyOutcome};
use decomp_testkit::{asserts, fixtures, golden, SEEDS, TOL};

#[test]
fn pipeline_invariants_across_families_and_seeds() {
    for f in fixtures::well_connected() {
        for seed in SEEDS {
            let ctx = format!("{} seed {seed}", f.name);
            let p = cds_packing(&f.graph, &CdsPackingConfig::with_known_k(f.kappa, seed));
            asserts::assert_cds_packing_invariants(&f.graph, &p, &ctx);
            let trees = to_dom_tree_packing(&f.graph, &p);
            asserts::assert_dom_tree_packing_feasible(&f.graph, &trees, f.kappa, &ctx);
        }
    }
}

#[test]
fn pipeline_outputs_match_golden_registry() {
    for f in fixtures::well_connected() {
        let p = cds_packing(&f.graph, &CdsPackingConfig::with_known_k(f.kappa, 1));
        let trees = to_dom_tree_packing(&f.graph, &p);
        golden::check(
            &format!("{}/cds_s1/num_trees", f.name),
            trees.packing.num_trees(),
        );
        golden::check(
            &format!("{}/cds_s1/size", f.name),
            golden::f4(trees.packing.size()),
        );
        golden::check(
            &format!("{}/cds_s1/invalid", f.name),
            trees.invalid_classes.len(),
        );
    }
}

#[test]
fn class_count_sweeps_never_break_feasibility() {
    // Even deliberately bad class counts (t way above k/4) must never
    // produce an infeasible *packing* — only invalid classes that the
    // extractor drops.
    let fixtures = fixtures::standard();
    let f = fixtures
        .iter()
        .find(|f| f.name == "harary_k8_n40")
        .expect("roster fixture");
    for t in [1usize, 2, 8, 20, 40] {
        let p = cds_packing(&f.graph, &CdsPackingConfig::with_classes(t, 3));
        let trees = to_dom_tree_packing(&f.graph, &p);
        trees.packing.validate(&f.graph, TOL).unwrap();
        assert_eq!(
            trees.packing.num_trees() + trees.invalid_classes.len(),
            t,
            "t = {t}"
        );
    }
}

#[test]
fn seeds_change_output_but_not_guarantees() {
    let fixtures = fixtures::standard();
    let f = fixtures
        .iter()
        .find(|f| f.name == "harary_k8_n40")
        .expect("roster fixture");
    let a = cds_packing(&f.graph, &CdsPackingConfig::with_known_k(f.kappa, 1));
    let b = cds_packing(&f.graph, &CdsPackingConfig::with_known_k(f.kappa, 2));
    assert!(
        a.class_of != b.class_of,
        "different seeds must give different assignments"
    );
    for p in [&a, &b] {
        assert_eq!(
            verify_centralized(&f.graph, &p.classes),
            VerifyOutcome::Pass
        );
    }
}
