//! End-to-end integration: decomposition → verification → dissemination,
//! across crates (graph substrate, core algorithms, broadcast apps).

use connectivity_decomposition::broadcast::gossip::gossip_via_trees;
use connectivity_decomposition::broadcast::oblivious::vertex_congestion;
use connectivity_decomposition::broadcast::throughput::edge_throughput;
use connectivity_decomposition::core::cds::centralized::{cds_packing, CdsPackingConfig};
use connectivity_decomposition::core::cds::tree_extract::to_dom_tree_packing;
use connectivity_decomposition::core::cds::verify::{
    membership_of, verify_centralized, verify_distributed, VerifyOutcome,
};
use connectivity_decomposition::core::stp::mwu::{fractional_stp_mwu, MwuConfig};
use connectivity_decomposition::congest::{Model, Simulator};
use connectivity_decomposition::graph::{connectivity, generators};

#[test]
fn vertex_pipeline_harary() {
    let g = generators::harary(12, 60);
    let k = connectivity::vertex_connectivity(&g);
    assert_eq!(k, 12);

    // Decompose.
    let packing = cds_packing(&g, &CdsPackingConfig::with_known_k(k, 4));
    // Verify (both testers agree).
    assert_eq!(verify_centralized(&g, &packing.classes), VerifyOutcome::Pass);
    let membership = membership_of(&packing.classes, g.n());
    let mut sim = Simulator::new(&g, Model::VCongest);
    assert_eq!(
        verify_distributed(&mut sim, &membership, packing.num_classes(), 1).unwrap(),
        VerifyOutcome::Pass
    );
    // Extract and validate trees.
    let trees = to_dom_tree_packing(&g, &packing);
    assert!(trees.invalid_classes.is_empty());
    trees.packing.validate(&g, 1e-9).unwrap();
    // κ <= k (cut bound).
    assert!(trees.packing.size() <= k as f64 + 1e-9);

    // Disseminate.
    let origins: Vec<usize> = (0..g.n()).collect();
    let gossip = gossip_via_trees(&g, &trees.packing, &origins, 2);
    assert_eq!(gossip.num_messages, g.n());

    // Oblivious congestion sane.
    let cong = vertex_congestion(&g, &trees.packing, k, 1000, 3);
    assert!(cong.max_congestion >= cong.opt_lower_bound);
}

#[test]
fn edge_pipeline_harary() {
    let g = generators::harary(8, 40);
    let lambda = connectivity::edge_connectivity(&g);
    assert_eq!(lambda, 8);
    let report = fractional_stp_mwu(&g, lambda, &MwuConfig::default());
    report.packing.validate(&g, 1e-9).unwrap();
    let tput = edge_throughput(&g, &report.packing, lambda);
    assert!(tput.messages_per_round >= tput.tutte_nash_williams as f64 * (1.0 - 0.6));
    assert!(tput.messages_per_round <= lambda as f64);
}

#[test]
fn invalid_packings_rejected_end_to_end() {
    // A deliberately broken "packing": one class that misses domination.
    let g = generators::star(8);
    let classes = vec![vec![1usize], vec![0usize]];
    assert_eq!(
        verify_centralized(&g, &classes),
        VerifyOutcome::DominationFailure
    );
    let membership = membership_of(&classes, g.n());
    let mut sim = Simulator::new(&g, Model::VCongest);
    assert_eq!(
        verify_distributed(&mut sim, &membership, 2, 5).unwrap(),
        VerifyOutcome::DominationFailure
    );
}

#[test]
fn unknown_k_pipeline() {
    let g = generators::hypercube(5);
    let r = connectivity_decomposition::core::cds::guess::cds_packing_unknown_k(&g, 9);
    assert_eq!(verify_centralized(&g, &r.packing.classes), VerifyOutcome::Pass);
    let trees = to_dom_tree_packing(&g, &r.packing);
    trees.packing.validate(&g, 1e-9).unwrap();
    let k = connectivity::vertex_connectivity(&g);
    assert!(trees.packing.size() <= k as f64 + 1e-9);
}
