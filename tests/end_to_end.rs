//! End-to-end integration: decomposition → verification → dissemination,
//! across crates (graph substrate, core algorithms, broadcast apps),
//! running on testkit fixtures with oracle-known connectivity.

use connectivity_decomposition::broadcast::gossip::gossip_via_trees;
use connectivity_decomposition::broadcast::oblivious::vertex_congestion;
use connectivity_decomposition::broadcast::throughput::edge_throughput;
use connectivity_decomposition::congest::Model;
use connectivity_decomposition::core::cds::centralized::{cds_packing, CdsPackingConfig};
use connectivity_decomposition::core::cds::tree_extract::to_dom_tree_packing;
use connectivity_decomposition::core::cds::verify::{
    membership_of, verify_centralized, verify_distributed, VerifyOutcome,
};
use connectivity_decomposition::core::stp::mwu::{fractional_stp_mwu, MwuConfig};
use connectivity_decomposition::graph::generators;
use decomp_testkit::{asserts, fixtures, TOL};

fn fixture(name: &str) -> decomp_testkit::fixtures::Fixture {
    fixtures::standard()
        .into_iter()
        .find(|f| f.name == name)
        .unwrap_or_else(|| panic!("fixture {name} missing from roster"))
}

#[test]
fn vertex_pipeline_harary() {
    let f = fixture("harary_k12_n48");
    assert_eq!(f.kappa, 12);

    // Decompose.
    let packing = cds_packing(&f.graph, &CdsPackingConfig::with_known_k(f.kappa, 4));
    // Verify (both testers agree).
    assert_eq!(
        verify_centralized(&f.graph, &packing.classes),
        VerifyOutcome::Pass
    );
    let membership = membership_of(&packing.classes, f.graph.n());
    let mut sim = decomp_testkit::sim(&f.graph, Model::VCongest);
    assert_eq!(
        verify_distributed(&mut sim, &membership, packing.num_classes(), 1).unwrap(),
        VerifyOutcome::Pass
    );
    // Extract and validate trees (includes the kappa cut bound).
    let trees = to_dom_tree_packing(&f.graph, &packing);
    assert!(trees.invalid_classes.is_empty());
    asserts::assert_dom_tree_packing_feasible(&f.graph, &trees, f.kappa, &f.name);

    // Disseminate.
    let origins: Vec<usize> = (0..f.graph.n()).collect();
    let gossip = gossip_via_trees(&f.graph, &trees.packing, &origins, 2);
    assert_eq!(gossip.num_messages, f.graph.n());

    // Oblivious congestion sane.
    let cong = vertex_congestion(&f.graph, &trees.packing, f.kappa, 1000, 3);
    assert!(cong.max_congestion >= cong.opt_lower_bound);
}

#[test]
fn edge_pipeline_harary() {
    let f = fixture("harary_k8_n40");
    assert_eq!(f.lambda, 8);
    let report = fractional_stp_mwu(&f.graph, f.lambda, &MwuConfig::default());
    let eps = MwuConfig::default().epsilon;
    asserts::assert_span_tree_packing_feasible(
        &f.graph,
        &report.packing,
        f.lambda,
        (f.lambda as f64) / 2.0 * (1.0 - eps),
        &f.name,
    );
    let tput = edge_throughput(&f.graph, &report.packing, f.lambda);
    assert!(tput.messages_per_round >= tput.tutte_nash_williams as f64 * (1.0 - eps));
    assert!(tput.messages_per_round <= f.lambda as f64);
}

#[test]
fn invalid_packings_rejected_end_to_end() {
    // A deliberately broken "packing": one class that misses domination.
    let g = generators::star(8);
    let classes = vec![vec![1usize], vec![0usize]];
    assert_eq!(
        verify_centralized(&g, &classes),
        VerifyOutcome::DominationFailure
    );
    let membership = membership_of(&classes, g.n());
    let mut sim = decomp_testkit::sim(&g, Model::VCongest);
    assert_eq!(
        verify_distributed(&mut sim, &membership, 2, 5).unwrap(),
        VerifyOutcome::DominationFailure
    );
}

#[test]
fn unknown_k_pipeline() {
    let f = fixture("hypercube_d5");
    let r = connectivity_decomposition::core::cds::guess::cds_packing_unknown_k(&f.graph, 9);
    assert_eq!(
        verify_centralized(&f.graph, &r.packing.classes),
        VerifyOutcome::Pass
    );
    let trees = to_dom_tree_packing(&f.graph, &r.packing);
    trees.packing.validate(&f.graph, TOL).unwrap();
    assert!(trees.packing.size() <= f.kappa as f64 + TOL);
}
