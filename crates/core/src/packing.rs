//! Packing types: weighted collections of dominating / spanning trees.
//!
//! Section 2 of the paper: a *κ-size fractional dominating tree packing*
//! assigns weights `x_τ ∈ [0,1]` to dominating trees with `Σ x_τ = κ` and
//! per-vertex load `Σ_{τ ∋ v} x_τ ≤ 1`; the spanning-tree version
//! constrains per-edge load instead. These types carry the trees, their
//! weights, and the feasibility/size accounting every experiment reports.

use decomp_graph::domination::{is_dominating_tree, is_spanning_tree};
use decomp_graph::{Graph, NodeId};

/// One weighted tree of a dominating-tree packing.
#[derive(Clone, Debug)]
pub struct WeightedDomTree {
    /// Class identifier (the paper's `ID_τ`).
    pub id: usize,
    /// Fractional weight `x_τ ∈ [0, 1]`.
    pub weight: f64,
    /// Tree edges over real vertices.
    pub edges: Vec<(NodeId, NodeId)>,
    /// For single-vertex trees: the vertex (edges empty).
    pub singleton: Option<NodeId>,
}

impl WeightedDomTree {
    /// The set of vertices this tree touches.
    pub fn vertices(&self, n: usize) -> Vec<NodeId> {
        let mut mask = vec![false; n];
        for &(u, v) in &self.edges {
            mask[u] = true;
            mask[v] = true;
        }
        if let Some(v) = self.singleton {
            mask[v] = true;
        }
        (0..n).filter(|&v| mask[v]).collect()
    }

    /// Tree diameter in edges (0 for singletons).
    pub fn diameter(&self, n: usize) -> usize {
        if self.edges.is_empty() {
            return 0;
        }
        let root = self.edges[0].0;
        decomp_graph::mst::RootedTree::from_edges(n, root, &self.edges)
            .map(|t| t.diameter())
            .unwrap_or(0)
    }
}

/// A fractional dominating-tree packing (Theorem 1.1 / 1.2 output).
#[derive(Clone, Debug, Default)]
pub struct DomTreePacking {
    /// The weighted trees.
    pub trees: Vec<WeightedDomTree>,
}

impl DomTreePacking {
    /// Total packing size `Σ x_τ`.
    pub fn size(&self) -> f64 {
        self.trees.iter().map(|t| t.weight).sum()
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Per-vertex load `Σ_{τ ∋ v} x_τ`.
    pub fn vertex_loads(&self, n: usize) -> Vec<f64> {
        let mut load = vec![0.0; n];
        for t in &self.trees {
            for v in t.vertices(n) {
                load[v] += t.weight;
            }
        }
        load
    }

    /// Maximum number of trees any single vertex belongs to (the paper's
    /// "each node is included in O(log n) trees").
    pub fn max_vertex_multiplicity(&self, n: usize) -> usize {
        let mut count = vec![0usize; n];
        for t in &self.trees {
            for v in t.vertices(n) {
                count[v] += 1;
            }
        }
        count.into_iter().max().unwrap_or(0)
    }

    /// Validates the packing against `g`:
    /// every tree is a dominating tree, weights lie in `[0, 1]`, and every
    /// per-vertex load is at most `1 + tol`.
    ///
    /// # Errors
    /// Returns a description of the first violation.
    pub fn validate(&self, g: &Graph, tol: f64) -> Result<(), String> {
        for (i, t) in self.trees.iter().enumerate() {
            if !(0.0..=1.0 + tol).contains(&t.weight) {
                return Err(format!("tree {i} has weight {} outside [0,1]", t.weight));
            }
            if !is_dominating_tree(g, &t.edges, t.singleton) {
                return Err(format!(
                    "tree {i} (class {}) is not a dominating tree",
                    t.id
                ));
            }
        }
        for (v, load) in self.vertex_loads(g.n()).into_iter().enumerate() {
            if load > 1.0 + tol {
                return Err(format!("vertex {v} overloaded: {load}"));
            }
        }
        Ok(())
    }
}

/// One weighted tree of a spanning-tree packing; edges are indices into
/// [`Graph::edges`].
#[derive(Clone, Debug)]
pub struct WeightedSpanTree {
    /// Fractional weight `x_τ ∈ [0, 1]`.
    pub weight: f64,
    /// Edge indices of the tree.
    pub edge_indices: Vec<usize>,
}

/// A fractional spanning-tree packing (Theorem 1.3 output).
#[derive(Clone, Debug, Default)]
pub struct SpanTreePacking {
    /// The weighted trees.
    pub trees: Vec<WeightedSpanTree>,
}

impl SpanTreePacking {
    /// Total packing size `Σ x_τ`.
    pub fn size(&self) -> f64 {
        self.trees.iter().map(|t| t.weight).sum()
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Per-edge load `Σ_{τ ∋ e} x_τ`, indexed by edge index.
    pub fn edge_loads(&self, g: &Graph) -> Vec<f64> {
        let mut load = vec![0.0; g.m()];
        for t in &self.trees {
            for &e in &t.edge_indices {
                load[e] += t.weight;
            }
        }
        load
    }

    /// Maximum number of trees any edge belongs to (Theorem 1.3: each edge
    /// in at most `O(log³ n)` trees).
    pub fn max_edge_multiplicity(&self, g: &Graph) -> usize {
        let mut count = vec![0usize; g.m()];
        for t in &self.trees {
            for &e in &t.edge_indices {
                count[e] += 1;
            }
        }
        count.into_iter().max().unwrap_or(0)
    }

    /// Validates: every tree spans `g`, weights in `[0,1]`, per-edge load
    /// at most `1 + tol`.
    ///
    /// # Errors
    /// Returns a description of the first violation.
    pub fn validate(&self, g: &Graph, tol: f64) -> Result<(), String> {
        for (i, t) in self.trees.iter().enumerate() {
            if !(0.0..=1.0 + tol).contains(&t.weight) {
                return Err(format!("tree {i} has weight {} outside [0,1]", t.weight));
            }
            let edges: Vec<(NodeId, NodeId)> =
                t.edge_indices.iter().map(|&e| g.edges()[e]).collect();
            if !is_spanning_tree(g, &edges) {
                return Err(format!("tree {i} is not a spanning tree"));
            }
        }
        for (e, load) in self.edge_loads(g).into_iter().enumerate() {
            if load > 1.0 + tol {
                return Err(format!("edge {e} overloaded: {load}"));
            }
        }
        Ok(())
    }

    /// Rescales all weights by `factor` (used to convert the MWU's
    /// total-weight-1 collection into the final `⌈(λ−1)/2⌉(1−ε)`-size
    /// packing).
    pub fn scale(&mut self, factor: f64) {
        for t in &mut self.trees {
            t.weight *= factor;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp_graph::generators;

    fn star_packing() -> (Graph, DomTreePacking) {
        let g = generators::star(5);
        let packing = DomTreePacking {
            trees: vec![WeightedDomTree {
                id: 0,
                weight: 1.0,
                edges: vec![],
                singleton: Some(0),
            }],
        };
        (g, packing)
    }

    #[test]
    fn singleton_dom_tree_packs() {
        let (g, p) = star_packing();
        assert_eq!(p.size(), 1.0);
        p.validate(&g, 1e-9).unwrap();
        assert_eq!(p.max_vertex_multiplicity(g.n()), 1);
    }

    #[test]
    fn overload_detected() {
        let (g, mut p) = star_packing();
        p.trees.push(WeightedDomTree {
            id: 1,
            weight: 0.5,
            edges: vec![(0, 1)],
            singleton: None,
        });
        // vertex 0 carries 1.5
        assert!(p.validate(&g, 1e-9).is_err());
    }

    #[test]
    fn non_dominating_tree_rejected() {
        let g = generators::path(4);
        let p = DomTreePacking {
            trees: vec![WeightedDomTree {
                id: 0,
                weight: 1.0,
                edges: vec![(0, 1)],
                singleton: None,
            }],
        };
        assert!(p.validate(&g, 1e-9).is_err());
    }

    #[test]
    fn dom_tree_diameter() {
        let t = WeightedDomTree {
            id: 0,
            weight: 1.0,
            edges: vec![(0, 1), (1, 2), (2, 3)],
            singleton: None,
        };
        assert_eq!(t.diameter(5), 3);
        assert_eq!(t.vertices(5), vec![0, 1, 2, 3]);
    }

    #[test]
    fn span_packing_feasible() {
        let g = generators::cycle(4);
        // two trees, each missing a different edge, weight 1/2 each
        let p = SpanTreePacking {
            trees: vec![
                WeightedSpanTree {
                    weight: 0.5,
                    edge_indices: vec![0, 1, 2],
                },
                WeightedSpanTree {
                    weight: 0.5,
                    edge_indices: vec![1, 2, 3],
                },
            ],
        };
        p.validate(&g, 1e-9).unwrap();
        assert_eq!(p.size(), 1.0);
        assert_eq!(p.max_edge_multiplicity(&g), 2);
        let loads = p.edge_loads(&g);
        assert_eq!(loads[1], 1.0);
        assert_eq!(loads[0], 0.5);
    }

    #[test]
    fn span_packing_rejects_nontree() {
        let g = generators::cycle(4);
        let p = SpanTreePacking {
            trees: vec![WeightedSpanTree {
                weight: 1.0,
                edge_indices: vec![0, 1],
            }],
        };
        assert!(p.validate(&g, 1e-9).is_err());
    }

    #[test]
    fn scale_changes_size() {
        let g = generators::cycle(4);
        let mut p = SpanTreePacking {
            trees: vec![WeightedSpanTree {
                weight: 1.0,
                edge_indices: vec![0, 1, 2],
            }],
        };
        p.scale(0.25);
        assert!((p.size() - 0.25).abs() < 1e-12);
        p.validate(&g, 1e-9).unwrap();
    }

    #[test]
    fn empty_packings() {
        let p = DomTreePacking::default();
        assert_eq!(p.size(), 0.0);
        assert_eq!(p.num_trees(), 0);
        let s = SpanTreePacking::default();
        assert_eq!(s.size(), 0.0);
    }

    mod properties {
        use super::*;
        use crate::stp::mwu::{fractional_stp_mwu, MwuConfig};
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(12))]

            /// Dropping trees from a feasible packing keeps it feasible,
            /// and scaling by any factor in [0,1] keeps it feasible.
            #[test]
            fn packing_feasibility_is_downward_closed(
                seed in 0u64..50,
                keep_mask in proptest::collection::vec(any::<bool>(), 64),
                scale in 0.0f64..1.0,
            ) {
                let g = generators::harary(6, 18);
                let mut p = fractional_stp_mwu(&g, 6, &MwuConfig::default()).packing;
                p.validate(&g, 1e-9).unwrap();
                let before = p.size();
                p.trees = p
                    .trees
                    .into_iter()
                    .enumerate()
                    .filter(|(i, _)| *keep_mask.get(i % 64).unwrap_or(&true))
                    .map(|(_, t)| t)
                    .collect();
                p.scale(scale);
                prop_assert!(p.validate(&g, 1e-9).is_ok());
                prop_assert!(p.size() <= before + 1e-9);
            }

            /// Vertex loads are consistent with multiplicities: for a
            /// uniform-weight packing, load = weight * multiplicity.
            #[test]
            fn loads_match_multiplicity(weight in 0.01f64..0.2) {
                let g = generators::star(6);
                let trees: Vec<WeightedDomTree> = (0..4)
                    .map(|i| WeightedDomTree {
                        id: i,
                        weight,
                        edges: vec![(0, i + 1)],
                        singleton: None,
                    })
                    .collect();
                let p = DomTreePacking { trees };
                let loads = p.vertex_loads(g.n());
                prop_assert!((loads[0] - 4.0 * weight).abs() < 1e-12);
                prop_assert!((loads[1] - weight).abs() < 1e-12);
                prop_assert_eq!(p.max_vertex_multiplicity(g.n()), 4);
            }
        }
    }
}
