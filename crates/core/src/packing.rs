//! Packing types: weighted collections of dominating / spanning trees.
//!
//! Section 2 of the paper: a *κ-size fractional dominating tree packing*
//! assigns weights `x_τ ∈ [0,1]` to dominating trees with `Σ x_τ = κ` and
//! per-vertex load `Σ_{τ ∋ v} x_τ ≤ 1`; the spanning-tree version
//! constrains per-edge load instead. These types carry the trees, their
//! weights, and the feasibility/size accounting every experiment reports.

use decomp_graph::domination::{is_dominating_tree, is_spanning_tree};
use decomp_graph::{Graph, NodeId};
use rand::Rng;

/// Weight-proportional tree sampler shared across the broadcast layer.
///
/// Draws tree indices with probability `x_τ / Σx` by one uniform draw in
/// `[0, Σx)` resolved against the cumulative weight walk — the
/// time-sharing distribution of the fractional regime (Theorem 1.1 /
/// Corollary 1.6): a packing of size `Σx` serves each tree in proportion
/// to its weight. Built via [`DomTreePacking::sampler`] /
/// [`SpanTreePacking::sampler`] and used by `broadcast::gossip`,
/// `broadcast::gossip_distributed`, and `broadcast::oblivious`.
#[derive(Clone, Debug)]
pub struct TreeSampler {
    weights: Vec<f64>,
    total: f64,
    /// Index of the last tree with positive weight — the fallback
    /// target when float rounding exhausts the cumulative walk, so a
    /// zero-weight tree is never selected even from a float-edge pick.
    last_positive: usize,
}

impl TreeSampler {
    /// Builds a sampler over `weights` (one per tree, in tree order).
    ///
    /// # Panics
    /// Panics on an empty weight vector, a negative or non-finite weight,
    /// or a zero total (nothing to time-share).
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "sampler needs at least one tree");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "tree weights must be finite and non-negative"
        );
        Self::try_new(weights).expect("packing must carry weight")
    }

    /// Non-panicking [`TreeSampler::new`]: returns `None` on an empty
    /// weight vector, a negative or non-finite weight, or a zero total —
    /// the degenerate packings the fault path can produce (every
    /// surviving tree pruned, or all weight on dead trees).
    pub fn try_new(weights: Vec<f64>) -> Option<Self> {
        if weights.is_empty() || weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
            return None;
        }
        let total: f64 = weights.iter().sum();
        let last_positive = weights.iter().rposition(|&w| w > 0.0)?;
        if total <= 0.0 {
            return None;
        }
        Some(TreeSampler {
            weights,
            total,
            last_positive,
        })
    }

    /// Total weight `Σx` (the denominator of the sampling distribution).
    pub fn total(&self) -> f64 {
        self.total
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.weights.len()
    }

    /// Resolves a point `pick ∈ [0, Σx)` to the tree whose cumulative
    /// weight interval contains it. Zero-weight trees have empty
    /// intervals and are never selected — including from the fallback
    /// arm, which resolves a float-edge `pick` near `Σx` (one that
    /// survives every `pick < w` test because subtraction rounding
    /// exhausted the walk) to the last *positive-weight* tree.
    pub fn index_for(&self, mut pick: f64) -> usize {
        let mut idx = self.last_positive;
        for (i, &w) in self.weights.iter().enumerate() {
            if pick < w {
                idx = i;
                break;
            }
            pick -= w;
        }
        idx
    }

    /// Samples one tree index proportional to `x_τ / Σx`.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        self.index_for(rng.gen_range(0.0..self.total))
    }
}

/// One weighted tree of a dominating-tree packing.
#[derive(Clone, Debug)]
pub struct WeightedDomTree {
    /// Class identifier (the paper's `ID_τ`).
    pub id: usize,
    /// Fractional weight `x_τ ∈ [0, 1]`.
    pub weight: f64,
    /// Tree edges over real vertices.
    pub edges: Vec<(NodeId, NodeId)>,
    /// For single-vertex trees: the vertex (edges empty).
    pub singleton: Option<NodeId>,
}

impl WeightedDomTree {
    /// The set of vertices this tree touches.
    pub fn vertices(&self, n: usize) -> Vec<NodeId> {
        let mut mask = vec![false; n];
        for &(u, v) in &self.edges {
            mask[u] = true;
            mask[v] = true;
        }
        if let Some(v) = self.singleton {
            mask[v] = true;
        }
        (0..n).filter(|&v| mask[v]).collect()
    }

    /// Tree diameter in edges (0 for singletons).
    pub fn diameter(&self, n: usize) -> usize {
        if self.edges.is_empty() {
            return 0;
        }
        let root = self.edges[0].0;
        decomp_graph::mst::RootedTree::from_edges(n, root, &self.edges)
            .map(|t| t.diameter())
            .unwrap_or(0)
    }
}

/// A fractional dominating-tree packing (Theorem 1.1 / 1.2 output).
#[derive(Clone, Debug, Default)]
pub struct DomTreePacking {
    /// The weighted trees.
    pub trees: Vec<WeightedDomTree>,
}

impl DomTreePacking {
    /// Total packing size `Σ x_τ`.
    pub fn size(&self) -> f64 {
        self.trees.iter().map(|t| t.weight).sum()
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Per-vertex load `Σ_{τ ∋ v} x_τ`.
    pub fn vertex_loads(&self, n: usize) -> Vec<f64> {
        let mut load = vec![0.0; n];
        for t in &self.trees {
            for v in t.vertices(n) {
                load[v] += t.weight;
            }
        }
        load
    }

    /// Maximum number of trees any single vertex belongs to (the paper's
    /// "each node is included in O(log n) trees").
    pub fn max_vertex_multiplicity(&self, n: usize) -> usize {
        let mut count = vec![0usize; n];
        for t in &self.trees {
            for v in t.vertices(n) {
                count[v] += 1;
            }
        }
        count.into_iter().max().unwrap_or(0)
    }

    /// A [`TreeSampler`] over this packing's tree weights.
    ///
    /// # Panics
    /// Panics if the packing is empty or carries no weight.
    pub fn sampler(&self) -> TreeSampler {
        TreeSampler::new(self.trees.iter().map(|t| t.weight).collect())
    }

    /// Non-panicking [`DomTreePacking::sampler`]: `None` if the packing
    /// is empty or carries no weight (e.g. after fault pruning zeroed
    /// every surviving tree).
    pub fn try_sampler(&self) -> Option<TreeSampler> {
        TreeSampler::try_new(self.trees.iter().map(|t| t.weight).collect())
    }

    /// Overwrites every tree weight with `1 / max-multiplicity` — the
    /// same uniform feasible assignment `cds::tree_extract` uses — and
    /// returns the weight. This is how hand-built packings (bench
    /// harnesses, experiments) become feasible *fractional* packings:
    /// weight 1.0 on overlapping trees overloads shared vertices.
    pub fn assign_uniform_feasible_weights(&mut self, n: usize) -> f64 {
        let w = 1.0 / self.max_vertex_multiplicity(n).max(1) as f64;
        for t in &mut self.trees {
            t.weight = w;
        }
        w
    }

    /// Validates the packing against `g`:
    /// every tree is a dominating tree, weights lie in `[0, 1]`, and every
    /// per-vertex load is at most `1 + tol`.
    ///
    /// # Errors
    /// Returns a description of the first violation.
    pub fn validate(&self, g: &Graph, tol: f64) -> Result<(), String> {
        for (i, t) in self.trees.iter().enumerate() {
            if !(0.0..=1.0 + tol).contains(&t.weight) {
                return Err(format!("tree {i} has weight {} outside [0,1]", t.weight));
            }
            if !is_dominating_tree(g, &t.edges, t.singleton) {
                return Err(format!(
                    "tree {i} (class {}) is not a dominating tree",
                    t.id
                ));
            }
        }
        for (v, load) in self.vertex_loads(g.n()).into_iter().enumerate() {
            if load > 1.0 + tol {
                return Err(format!("vertex {v} overloaded: {load}"));
            }
        }
        Ok(())
    }
}

/// One weighted tree of a spanning-tree packing; edges are indices into
/// [`Graph::edges`].
#[derive(Clone, Debug)]
pub struct WeightedSpanTree {
    /// Fractional weight `x_τ ∈ [0, 1]`.
    pub weight: f64,
    /// Edge indices of the tree.
    pub edge_indices: Vec<usize>,
}

/// A fractional spanning-tree packing (Theorem 1.3 output).
#[derive(Clone, Debug, Default)]
pub struct SpanTreePacking {
    /// The weighted trees.
    pub trees: Vec<WeightedSpanTree>,
}

impl SpanTreePacking {
    /// Total packing size `Σ x_τ`.
    pub fn size(&self) -> f64 {
        self.trees.iter().map(|t| t.weight).sum()
    }

    /// Number of trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Per-edge load `Σ_{τ ∋ e} x_τ`, indexed by edge index.
    pub fn edge_loads(&self, g: &Graph) -> Vec<f64> {
        let mut load = vec![0.0; g.m()];
        for t in &self.trees {
            for &e in &t.edge_indices {
                load[e] += t.weight;
            }
        }
        load
    }

    /// Maximum number of trees any edge belongs to (Theorem 1.3: each edge
    /// in at most `O(log³ n)` trees).
    pub fn max_edge_multiplicity(&self, g: &Graph) -> usize {
        let mut count = vec![0usize; g.m()];
        for t in &self.trees {
            for &e in &t.edge_indices {
                count[e] += 1;
            }
        }
        count.into_iter().max().unwrap_or(0)
    }

    /// A [`TreeSampler`] over this packing's tree weights.
    ///
    /// # Panics
    /// Panics if the packing is empty or carries no weight.
    pub fn sampler(&self) -> TreeSampler {
        TreeSampler::new(self.trees.iter().map(|t| t.weight).collect())
    }

    /// Validates: every tree spans `g`, weights in `[0,1]`, per-edge load
    /// at most `1 + tol`.
    ///
    /// # Errors
    /// Returns a description of the first violation.
    pub fn validate(&self, g: &Graph, tol: f64) -> Result<(), String> {
        for (i, t) in self.trees.iter().enumerate() {
            if !(0.0..=1.0 + tol).contains(&t.weight) {
                return Err(format!("tree {i} has weight {} outside [0,1]", t.weight));
            }
            let edges: Vec<(NodeId, NodeId)> =
                t.edge_indices.iter().map(|&e| g.edges()[e]).collect();
            if !is_spanning_tree(g, &edges) {
                return Err(format!("tree {i} is not a spanning tree"));
            }
        }
        for (e, load) in self.edge_loads(g).into_iter().enumerate() {
            if load > 1.0 + tol {
                return Err(format!("edge {e} overloaded: {load}"));
            }
        }
        Ok(())
    }

    /// Rescales all weights by `factor` (used to convert the MWU's
    /// total-weight-1 collection into the final `⌈(λ−1)/2⌉(1−ε)`-size
    /// packing).
    pub fn scale(&mut self, factor: f64) {
        for t in &mut self.trees {
            t.weight *= factor;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp_graph::generators;
    use rand::SeedableRng;

    fn star_packing() -> (Graph, DomTreePacking) {
        let g = generators::star(5);
        let packing = DomTreePacking {
            trees: vec![WeightedDomTree {
                id: 0,
                weight: 1.0,
                edges: vec![],
                singleton: Some(0),
            }],
        };
        (g, packing)
    }

    #[test]
    fn singleton_dom_tree_packs() {
        let (g, p) = star_packing();
        assert_eq!(p.size(), 1.0);
        p.validate(&g, 1e-9).unwrap();
        assert_eq!(p.max_vertex_multiplicity(g.n()), 1);
    }

    #[test]
    fn overload_detected() {
        let (g, mut p) = star_packing();
        p.trees.push(WeightedDomTree {
            id: 1,
            weight: 0.5,
            edges: vec![(0, 1)],
            singleton: None,
        });
        // vertex 0 carries 1.5
        assert!(p.validate(&g, 1e-9).is_err());
    }

    #[test]
    fn non_dominating_tree_rejected() {
        let g = generators::path(4);
        let p = DomTreePacking {
            trees: vec![WeightedDomTree {
                id: 0,
                weight: 1.0,
                edges: vec![(0, 1)],
                singleton: None,
            }],
        };
        assert!(p.validate(&g, 1e-9).is_err());
    }

    #[test]
    fn dom_tree_diameter() {
        let t = WeightedDomTree {
            id: 0,
            weight: 1.0,
            edges: vec![(0, 1), (1, 2), (2, 3)],
            singleton: None,
        };
        assert_eq!(t.diameter(5), 3);
        assert_eq!(t.vertices(5), vec![0, 1, 2, 3]);
    }

    #[test]
    fn span_packing_feasible() {
        let g = generators::cycle(4);
        // two trees, each missing a different edge, weight 1/2 each
        let p = SpanTreePacking {
            trees: vec![
                WeightedSpanTree {
                    weight: 0.5,
                    edge_indices: vec![0, 1, 2],
                },
                WeightedSpanTree {
                    weight: 0.5,
                    edge_indices: vec![1, 2, 3],
                },
            ],
        };
        p.validate(&g, 1e-9).unwrap();
        assert_eq!(p.size(), 1.0);
        assert_eq!(p.max_edge_multiplicity(&g), 2);
        let loads = p.edge_loads(&g);
        assert_eq!(loads[1], 1.0);
        assert_eq!(loads[0], 0.5);
    }

    #[test]
    fn span_packing_rejects_nontree() {
        let g = generators::cycle(4);
        let p = SpanTreePacking {
            trees: vec![WeightedSpanTree {
                weight: 1.0,
                edge_indices: vec![0, 1],
            }],
        };
        assert!(p.validate(&g, 1e-9).is_err());
    }

    #[test]
    fn scale_changes_size() {
        let g = generators::cycle(4);
        let mut p = SpanTreePacking {
            trees: vec![WeightedSpanTree {
                weight: 1.0,
                edge_indices: vec![0, 1, 2],
            }],
        };
        p.scale(0.25);
        assert!((p.size() - 0.25).abs() < 1e-12);
        p.validate(&g, 1e-9).unwrap();
    }

    #[test]
    fn empty_packings() {
        let p = DomTreePacking::default();
        assert_eq!(p.size(), 0.0);
        assert_eq!(p.num_trees(), 0);
        let s = SpanTreePacking::default();
        assert_eq!(s.size(), 0.0);
    }

    #[test]
    fn sampler_skips_zero_weight_leading_trees() {
        // Zero-weight trees occupy empty cumulative intervals: every
        // pick in [0, Σx) lands on the positive-weight tail.
        let s = TreeSampler::new(vec![0.0, 0.0, 2.0]);
        assert_eq!(s.index_for(0.0), 2);
        assert_eq!(s.index_for(1.999), 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..200 {
            assert_eq!(s.sample(&mut rng), 2);
        }
    }

    #[test]
    fn sampler_fallback_arm_resolves_float_edge_picks() {
        // 0.1 + 0.2 sums to slightly *more* than 0.3 in binary, so
        // `pick = total` survives both `pick < w` tests (total − 0.1 =
        // 0.2000...04 ≥ 0.2) and exhausts the walk — only the fallback
        // arm produces the answer. `gen_range` never returns `total`
        // itself, but intermediate subtraction rounding can leave any
        // near-total pick in the same exhausted state, so the arm must
        // hand back a valid index instead of walking off the end.
        let s = TreeSampler::new(vec![0.1, 0.2]);
        let total = s.total();
        assert!(total > 0.3, "test premise: rounding leaves slack");
        assert_eq!(s.index_for(total), 1, "fallback arm must fire");
        // Ordinary picks resolve through the normal `pick < w` arm.
        assert_eq!(s.index_for(0.05), 0);
        assert_eq!(s.index_for(f64::from_bits(total.to_bits() - 1)), 1);
        // The fallback must never select a trailing zero-weight tree:
        // it resolves to the last *positive* index, keeping the
        // zero-weight-trees-are-never-sampled invariant airtight.
        let s = TreeSampler::new(vec![0.1, 0.2, 0.0]);
        assert_eq!(s.index_for(s.total()), 1, "skip the trailing zero");
    }

    #[test]
    fn packing_samplers_expose_weights() {
        let (_, p) = star_packing();
        let s = p.sampler();
        assert_eq!(s.num_trees(), 1);
        assert!((s.total() - 1.0).abs() < 1e-12);
        let sp = SpanTreePacking {
            trees: vec![
                WeightedSpanTree {
                    weight: 0.5,
                    edge_indices: vec![0, 1, 2],
                },
                WeightedSpanTree {
                    weight: 0.25,
                    edge_indices: vec![1, 2, 3],
                },
            ],
        };
        let s = sp.sampler();
        assert_eq!(s.num_trees(), 2);
        assert!((s.total() - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "carry weight")]
    fn sampler_rejects_zero_total() {
        TreeSampler::new(vec![0.0, 0.0]);
    }

    #[test]
    fn try_new_rejects_every_degenerate_weight_vector() {
        // The shapes the fault path can produce: all surviving weight
        // pruned to zero, nothing left at all, or corrupted weights —
        // each must be a `None`, never a panic.
        assert!(TreeSampler::try_new(vec![]).is_none(), "empty");
        assert!(TreeSampler::try_new(vec![0.0, 0.0]).is_none(), "zero total");
        assert!(TreeSampler::try_new(vec![1.0, -0.5]).is_none(), "negative");
        assert!(TreeSampler::try_new(vec![f64::NAN]).is_none(), "NaN");
        assert!(
            TreeSampler::try_new(vec![f64::INFINITY, 1.0]).is_none(),
            "non-finite"
        );
        let s = TreeSampler::try_new(vec![0.0, 0.75]).expect("valid weights");
        assert_eq!(s.num_trees(), 2);
        assert!((s.total() - 0.75).abs() < 1e-12);
        assert_eq!(s.index_for(0.5), 1);
    }

    #[test]
    fn try_sampler_covers_pruned_and_single_tree_packings() {
        let (g, mut p) = star_packing();
        assert!(p.try_sampler().is_some());
        // Fault pruning zeroes every surviving tree's weight.
        for t in &mut p.trees {
            t.weight = 0.0;
        }
        assert!(p.try_sampler().is_none(), "all-zero-weight packing");
        // A single surviving tree still samples — always itself.
        p.trees.truncate(1);
        p.trees[0].weight = 0.5;
        let s = p.try_sampler().expect("single live tree");
        assert_eq!(s.num_trees(), 1);
        assert_eq!(s.index_for(0.25), 0);
        // And the empty packing is a `None`, not a panic.
        p.trees.clear();
        assert!(p.try_sampler().is_none(), "empty packing");
        let _ = g;
    }

    #[test]
    fn feasible_weight_assignment_matches_tree_extract_rule() {
        // Three pairwise-overlapping dominating stars on K_4: weight 1.0
        // each is infeasible (every vertex carries load 3); the helper
        // rescales to 1/max-multiplicity exactly like tree_extract.
        let g = generators::complete(4);
        let mut p = DomTreePacking {
            trees: (0..3)
                .map(|i| WeightedDomTree {
                    id: i,
                    weight: 1.0,
                    edges: (0..4).filter(|&v| v != i).map(|v| (i, v)).collect(),
                    singleton: None,
                })
                .collect(),
        };
        assert!(p.validate(&g, 1e-9).is_err(), "weight 1.0 must overload");
        let w = p.assign_uniform_feasible_weights(g.n());
        assert!((w - 1.0 / 3.0).abs() < 1e-12);
        p.validate(&g, 1e-9).unwrap();
    }

    mod properties {
        use super::*;
        use crate::stp::mwu::{fractional_stp_mwu, MwuConfig};
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(12))]

            /// Dropping trees from a feasible packing keeps it feasible,
            /// and scaling by any factor in [0,1] keeps it feasible.
            #[test]
            fn packing_feasibility_is_downward_closed(
                seed in 0u64..50,
                keep_mask in proptest::collection::vec(any::<bool>(), 64),
                scale in 0.0f64..1.0,
            ) {
                let g = generators::harary(6, 18);
                let mut p = fractional_stp_mwu(&g, 6, &MwuConfig::default()).packing;
                p.validate(&g, 1e-9).unwrap();
                let before = p.size();
                p.trees = p
                    .trees
                    .into_iter()
                    .enumerate()
                    .filter(|(i, _)| *keep_mask.get(i % 64).unwrap_or(&true))
                    .map(|(_, t)| t)
                    .collect();
                p.scale(scale);
                prop_assert!(p.validate(&g, 1e-9).is_ok());
                prop_assert!(p.size() <= before + 1e-9);
            }

            /// The shared sampler's empirical tree frequencies track
            /// `x_τ / Σx` on random weight vectors (the distribution the
            /// fractional regime time-shares by).
            #[test]
            fn sampler_frequencies_track_weights(
                weights in proptest::collection::vec(0.02f64..1.0, 1..8),
                seed in 0u64..1000,
            ) {
                let s = TreeSampler::new(weights.clone());
                let total: f64 = weights.iter().sum();
                let draws = 4000usize;
                let mut counts = vec![0usize; weights.len()];
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                for _ in 0..draws {
                    counts[s.sample(&mut rng)] += 1;
                }
                for (i, &w) in weights.iter().enumerate() {
                    let expect = w / total;
                    let got = counts[i] as f64 / draws as f64;
                    prop_assert!(
                        (got - expect).abs() < 0.05,
                        "tree {} frequency {} vs expected {}", i, got, expect
                    );
                }
            }

            /// Vertex loads are consistent with multiplicities: for a
            /// uniform-weight packing, load = weight * multiplicity.
            #[test]
            fn loads_match_multiplicity(weight in 0.01f64..0.2) {
                let g = generators::star(6);
                let trees: Vec<WeightedDomTree> = (0..4)
                    .map(|i| WeightedDomTree {
                        id: i,
                        weight,
                        edges: vec![(0, i + 1)],
                        singleton: None,
                    })
                    .collect();
                let p = DomTreePacking { trees };
                let loads = p.vertex_loads(g.n());
                prop_assert!((loads[0] - 4.0 * weight).abs() < 1e-12);
                prop_assert!((loads[1] - weight).abs() < 1e-12);
                prop_assert_eq!(p.max_vertex_multiplicity(g.n()), 4);
            }
        }
    }
}
