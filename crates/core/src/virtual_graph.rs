//! The virtual graph 𝒢 of Section 3.1.
//!
//! Each real node simulates `3L` virtual nodes — one per (layer, type) pair
//! with `L = Θ(log n)` layers and types `{1, 2, 3}` — and two virtual nodes
//! are adjacent iff they live on the same real node or on adjacent real
//! nodes. The adjacency is never materialized (it would be
//! `Θ(log² n · m)`); algorithms work through the index arithmetic here and
//! iterate real adjacency.

use decomp_graph::{Graph, NodeId};

/// The type of a virtual node (paper types 1, 2, 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VType {
    /// Type-1: random-class "short connectors".
    T1,
    /// Type-2: the matched connectors (the algorithm's key players).
    T2,
    /// Type-3: the far endpoints of long connectors.
    T3,
}

impl VType {
    /// All three types in order.
    pub const ALL: [VType; 3] = [VType::T1, VType::T2, VType::T3];

    fn index(self) -> usize {
        match self {
            VType::T1 => 0,
            VType::T2 => 1,
            VType::T3 => 2,
        }
    }

    fn from_index(i: usize) -> VType {
        match i {
            0 => VType::T1,
            1 => VType::T2,
            2 => VType::T3,
            _ => panic!("type index out of range"),
        }
    }
}

/// Identifier of a virtual node.
pub type VirtualId = usize;

/// Index layout for the virtual graph over a real graph.
///
/// Virtual node ids are `real * 3L + layer * 3 + type_index`, so all the
/// coordinate maps are O(1) arithmetic.
///
/// # Example
///
/// ```
/// use decomp_core::virtual_graph::{VirtualLayout, VType};
///
/// let layout = VirtualLayout::new(10, 4);
/// let vid = layout.vid(7, 2, VType::T3);
/// assert_eq!(layout.real(vid), 7);
/// assert_eq!(layout.layer(vid), 2);
/// assert_eq!(layout.vtype(vid), VType::T3);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VirtualLayout {
    n: usize,
    layers: usize,
}

impl VirtualLayout {
    /// A layout for `n` real nodes and `layers` layers (`L` in the paper).
    ///
    /// # Panics
    /// Panics if `layers == 0` or odd (the algorithm needs an `L/2`
    /// jump-start boundary).
    pub fn new(n: usize, layers: usize) -> Self {
        assert!(
            layers >= 2 && layers.is_multiple_of(2),
            "need an even number of layers >= 2"
        );
        VirtualLayout { n, layers }
    }

    /// Number of real nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of layers `L`.
    pub fn layers(&self) -> usize {
        self.layers
    }

    /// The jump-start boundary `L/2`: layers `0..L/2` get random classes.
    pub fn jump_start(&self) -> usize {
        self.layers / 2
    }

    /// Number of virtual nodes per real node (`3L`).
    pub fn per_real(&self) -> usize {
        3 * self.layers
    }

    /// Total number of virtual nodes.
    pub fn total(&self) -> usize {
        self.n * self.per_real()
    }

    /// Virtual id of `(real, layer, vtype)`.
    ///
    /// # Panics
    /// Panics on out-of-range coordinates.
    pub fn vid(&self, real: NodeId, layer: usize, vtype: VType) -> VirtualId {
        assert!(
            real < self.n && layer < self.layers,
            "coordinate out of range"
        );
        real * self.per_real() + layer * 3 + vtype.index()
    }

    /// The real node simulating `vid`.
    pub fn real(&self, vid: VirtualId) -> NodeId {
        vid / self.per_real()
    }

    /// The layer of `vid`.
    pub fn layer(&self, vid: VirtualId) -> usize {
        (vid % self.per_real()) / 3
    }

    /// The type of `vid`.
    pub fn vtype(&self, vid: VirtualId) -> VType {
        VType::from_index(vid % 3)
    }

    /// All virtual ids of one real node.
    pub fn virtuals_of(&self, real: NodeId) -> std::ops::Range<VirtualId> {
        real * self.per_real()..(real + 1) * self.per_real()
    }

    /// Whether two virtual nodes are adjacent in 𝒢: same real node, or
    /// adjacent real nodes.
    pub fn adjacent(&self, g: &Graph, a: VirtualId, b: VirtualId) -> bool {
        if a == b {
            return false;
        }
        let (ra, rb) = (self.real(a), self.real(b));
        ra == rb || g.has_edge(ra, rb)
    }
}

/// The default layer count: `L = layers_factor * ceil(log2 n)` rounded up
/// to even, at least 4. The paper sets `L = Θ(log n)`.
pub fn default_layers(n: usize, layers_factor: f64) -> usize {
    let log = (n.max(2) as f64).log2().ceil();
    let mut layers = (layers_factor * log).ceil() as usize;
    layers = layers.max(4);
    if layers % 2 == 1 {
        layers += 1;
    }
    layers
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp_graph::generators;

    #[test]
    fn roundtrip_coordinates() {
        let layout = VirtualLayout::new(7, 6);
        for real in 0..7 {
            for layer in 0..6 {
                for vtype in VType::ALL {
                    let vid = layout.vid(real, layer, vtype);
                    assert_eq!(layout.real(vid), real);
                    assert_eq!(layout.layer(vid), layer);
                    assert_eq!(layout.vtype(vid), vtype);
                }
            }
        }
        assert_eq!(layout.total(), 7 * 18);
    }

    #[test]
    fn virtuals_of_covers_all() {
        let layout = VirtualLayout::new(3, 4);
        let all: Vec<usize> = (0..3).flat_map(|r| layout.virtuals_of(r)).collect();
        assert_eq!(all.len(), layout.total());
        assert_eq!(all, (0..layout.total()).collect::<Vec<_>>());
    }

    #[test]
    fn adjacency_same_real_and_neighbors() {
        let g = generators::path(3);
        let layout = VirtualLayout::new(3, 4);
        let a = layout.vid(0, 0, VType::T1);
        let b = layout.vid(0, 3, VType::T2);
        let c = layout.vid(1, 2, VType::T3);
        let d = layout.vid(2, 1, VType::T1);
        assert!(layout.adjacent(&g, a, b)); // same real
        assert!(layout.adjacent(&g, a, c)); // real edge (0,1)
        assert!(!layout.adjacent(&g, a, d)); // reals 0 and 2 not adjacent
        assert!(!layout.adjacent(&g, a, a));
    }

    #[test]
    #[should_panic(expected = "even number of layers")]
    fn odd_layers_rejected() {
        VirtualLayout::new(3, 5);
    }

    #[test]
    fn default_layers_even_and_logarithmic() {
        for n in [2, 10, 100, 1000, 100_000] {
            let l = default_layers(n, 2.0);
            assert!(l.is_multiple_of(2) && l >= 4);
            assert!(l <= 2 * ((n as f64).log2().ceil() as usize) + 4);
        }
        assert_eq!(default_layers(2, 2.0) % 2, 0);
    }

    #[test]
    fn jump_start_is_half() {
        let layout = VirtualLayout::new(5, 8);
        assert_eq!(layout.jump_start(), 4);
    }
}
