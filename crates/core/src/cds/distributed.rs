//! Distributed CDS packing in V-CONGEST (Theorem 1.1, Appendix B).
//!
//! Each real node simulates its `3L = Θ(log n)` virtual nodes; one
//! *meta-round* (`Θ(log n)` virtual-graph rounds) corresponds to one
//! simulator round carrying `O(log n)` words. The per-layer pipeline is
//! Appendix B's:
//!
//! 1. **component identification** of the old nodes, per class — our
//!    Theorem-B.2 stand-in is multi-key min-label flooding
//!    ([`decomp_congest::multiflood`]), running all classes simultaneously;
//! 2. **deactivation** of components already bridged by a type-1 new node
//!    (connector announcements + component-wide OR flood);
//! 3. **bridging-graph formation** — type-3 new nodes announce their
//!    suitable components (`(class, comp)` or the `connector` symbol);
//!    type-2 new nodes assemble their neighbor lists;
//! 4. **maximal matching** in `O(log n)` stages of Luby-style proposals:
//!    type-2 nodes propose with random values, components accept their
//!    maximum via a component-wide max flood, winners join the class.
//!
//! Single-round neighborhood exchanges (class lists, component tables,
//! proposals) are performed by the driver on locally-known state and
//! charged one meta-round each — their message content is exactly the
//! neighbor state being read, so round accounting matches the protocol.
//! All component-wide steps run as real message-passing floods.

use crate::cds::centralized::{CdsPacking, CdsPackingConfig, LayerTrace};
use crate::virtual_graph::{default_layers, VType, VirtualLayout};
use decomp_congest::multiflood::{multikey_flood, Combine};
use decomp_congest::{Model, SimError, Simulator};
use decomp_graph::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

/// Runs the distributed CDS-packing construction on `sim` (V-CONGEST).
///
/// Produces the same object as [`crate::cds::centralized::cds_packing`];
/// round costs accumulate in `sim.stats()`.
///
/// # Errors
/// Propagates simulator round-limit errors from the flooding subroutines.
///
/// # Panics
/// Panics if `sim` is not a V-CONGEST simulator or the graph is empty.
#[allow(clippy::needless_range_loop)] // lockstep loops index several per-node arrays at once
pub fn cds_packing_distributed(
    sim: &mut Simulator<'_>,
    config: &CdsPackingConfig,
) -> Result<CdsPacking, SimError> {
    assert_eq!(
        sim.model(),
        Model::VCongest,
        "Theorem 1.1 is a V-CONGEST result"
    );
    let n = sim.graph().n();
    assert!(n > 0, "CDS packing needs a non-empty graph");
    let layers = default_layers(n, config.layers_factor);
    let layout = VirtualLayout::new(n, layers);
    let t = config.num_classes;
    let half = layout.jump_start();
    let mut class_of: Vec<Option<u32>> = vec![None; layout.total()];
    // Per-node private coins.
    let mut rngs: Vec<StdRng> = (0..n)
        .map(|v| StdRng::seed_from_u64(config.seed.wrapping_mul(0x100000001b3) ^ v as u64))
        .collect();

    // old_classes[v] = sorted classes with an old virtual node on v.
    let mut old_classes: Vec<Vec<u32>> = vec![Vec::new(); n];
    let add_class = |oc: &mut Vec<Vec<u32>>, v: usize, c: u32| {
        if let Err(pos) = oc[v].binary_search(&c) {
            oc[v].insert(pos, c);
        }
    };

    // --- Jump start (local coin flips; no communication) ----------------
    for layer in 0..half {
        for v in 0..n {
            for vtype in VType::ALL {
                let c = rngs[v].gen_range(0..t) as u32;
                class_of[layout.vid(v, layer, vtype)] = Some(c);
                add_class(&mut old_classes, v, c);
            }
        }
    }

    let graph = sim.graph().clone();
    let neighborhood = |v: usize| -> Vec<usize> {
        let mut out = Vec::with_capacity(1 + graph.degree(v));
        out.push(v);
        out.extend_from_slice(graph.neighbors(v));
        out
    };
    let comp_key = |class: u32, comp: u64| -> u64 { class as u64 * n as u64 + comp };

    let mut trace = Vec::with_capacity(layers - half);
    for layer in half..layers {
        // (1) Component identification per class: key = class,
        //     value = real id; fixpoint = component-min per class.
        let tables: Vec<HashMap<u64, u64>> = (0..n)
            .map(|v| {
                old_classes[v]
                    .iter()
                    .map(|&c| (c as u64, v as u64))
                    .collect()
            })
            .collect();
        let comp = multikey_flood(sim, tables, Combine::Min)?;
        let excess_before = excess_components(&comp, t, n);

        // One meta-round: everyone learns the neighbors' (class, comp)
        // tables.
        sim.charge_rounds(1);

        // (2) Type-1 / type-3 random classes (local).
        let c1: Vec<u32> = (0..n).map(|v| rngs[v].gen_range(0..t) as u32).collect();
        let c3: Vec<u32> = (0..n).map(|v| rngs[v].gen_range(0..t) as u32).collect();
        for v in 0..n {
            class_of[layout.vid(v, layer, VType::T1)] = Some(c1[v]);
            class_of[layout.vid(v, layer, VType::T3)] = Some(c3[v]);
        }

        // Deactivation: type-1 connectors announce; adjacent components
        // deactivate and flood the flag component-wide.
        let mut deactivate_seed: Vec<HashMap<u64, u64>> = vec![HashMap::new(); n];
        let mut deactivated_count = 0usize;
        for v in 0..n {
            let i = c1[v];
            let mut seen: Vec<u64> = Vec::new();
            for x in neighborhood(v) {
                if let Some(&cid) = comp[x].get(&(i as u64)) {
                    if !seen.contains(&cid) {
                        seen.push(cid);
                    }
                }
            }
            if seen.len() >= 2 {
                // The connector message reaches the adjacent old nodes,
                // which seed the component-wide OR flood.
                for x in neighborhood(v) {
                    if let Some(&cid) = comp[x].get(&(i as u64)) {
                        deactivate_seed[x].insert(comp_key(i, cid), 1);
                    }
                }
            }
        }
        sim.charge_rounds(1); // connector announcement meta-round
                              // Component-wide OR: every member of a component must learn the
                              // flag, so all members participate with default 0.
        let or_tables: Vec<HashMap<u64, u64>> = (0..n)
            .map(|v| {
                let mut tbl: HashMap<u64, u64> = comp[v]
                    .iter()
                    .map(|(&c, &cid)| (comp_key(c as u32, cid), 0))
                    .collect();
                for (k, &flag) in &deactivate_seed[v] {
                    tbl.insert(*k, flag);
                }
                tbl
            })
            .collect();
        let deactivated_flags = multikey_flood(sim, or_tables, Combine::Max)?;
        let is_deactivated = |v: usize, class: u32, cid: u64| -> bool {
            deactivated_flags[v]
                .get(&comp_key(class, cid))
                .copied()
                .unwrap_or(0)
                == 1
        };
        {
            let mut seen: HashSet<u64> = HashSet::new();
            for v in 0..n {
                for (&c, &cid) in &comp[v] {
                    let key = comp_key(c as u32, cid);
                    if deactivated_flags[v].get(&key).copied().unwrap_or(0) == 1 && seen.insert(key)
                    {
                        deactivated_count += 1;
                    }
                }
            }
        }

        // (3) Bridging graph: type-3 announcements -> type-2 lists.
        //     mw = None | One(comp) | Connector, per type-3 node.
        #[derive(Clone, Copy, PartialEq)]
        enum Mw {
            None,
            One(u64),
            Connector,
        }
        let mw: Vec<Mw> = (0..n)
            .map(|v| {
                let i = c3[v] as u64;
                let mut seen: Vec<u64> = Vec::new();
                for x in neighborhood(v) {
                    if let Some(&cid) = comp[x].get(&i) {
                        if !seen.contains(&cid) {
                            seen.push(cid);
                        }
                    }
                }
                match seen.len() {
                    0 => Mw::None,
                    1 => Mw::One(seen[0]),
                    _ => Mw::Connector,
                }
            })
            .collect();
        sim.charge_rounds(1); // type-3 announcement meta-round

        // Type-2 node x's neighbor list: active components (class i, comp c)
        // with an old node in the closed neighborhood, passing condition (c).
        let mut lists: Vec<Vec<(u32, u64)>> = vec![Vec::new(); n];
        for x in 0..n {
            let mut list: Vec<(u32, u64)> = Vec::new();
            for y in neighborhood(x) {
                for (&cu, &cid) in &comp[y] {
                    let class = cu as u32;
                    if is_deactivated(y, class, cid) {
                        continue;
                    }
                    // condition (c): some type-3 new neighbor w of x joined
                    // `class` and reaches a component != cid (or connector).
                    let ok = neighborhood(x).into_iter().any(|w| {
                        c3[w] == class
                            && match mw[w] {
                                Mw::None => false,
                                Mw::One(other) => other != cid,
                                Mw::Connector => true,
                            }
                    });
                    if ok && !list.contains(&(class, cid)) {
                        list.push((class, cid));
                    }
                }
            }
            lists[x] = list;
        }

        // (4) Maximal matching in O(log n) proposal stages.
        let stages = 2 * ((n.max(2) as f64).log2().ceil() as usize) + 2;
        let mut c2: Vec<Option<u32>> = vec![None; n];
        let mut matched_components: HashSet<u64> = HashSet::new();
        let mut matched = 0usize;
        for _stage in 0..stages {
            // Unmatched type-2 nodes propose to their best random option.
            // proposal value = (random 31 bits) << 32 | proposer id.
            let mut proposals: Vec<Option<(u32, u64, u64)>> = vec![None; n];
            let mut any = false;
            for x in 0..n {
                if c2[x].is_some() || lists[x].is_empty() {
                    continue;
                }
                let (mut best, mut best_val) = ((0u32, 0u64), 0u64);
                for &(class, cid) in &lists[x] {
                    let r = (rngs[x].gen::<u32>() as u64 >> 1) << 32 | x as u64;
                    if r > best_val {
                        best_val = r;
                        best = (class, cid);
                    }
                }
                proposals[x] = Some((best.0, best.1, best_val));
                any = true;
            }
            if !any {
                break;
            }
            sim.charge_rounds(1); // proposal meta-round
                                  // Old nodes adjacent to proposers seed the component-wide max.
            let mut max_tables: Vec<HashMap<u64, u64>> = (0..n)
                .map(|v| {
                    comp[v]
                        .iter()
                        .map(|(&c, &cid)| (comp_key(c as u32, cid), 0))
                        .collect()
                })
                .collect();
            for x in 0..n {
                if let Some((class, cid, val)) = proposals[x] {
                    for y in neighborhood(x) {
                        if comp[y].get(&(class as u64)) == Some(&cid) {
                            let key = comp_key(class, cid);
                            let slot = max_tables[y].entry(key).or_insert(0);
                            *slot = (*slot).max(val);
                        }
                    }
                }
            }
            let accepted = multikey_flood(sim, max_tables, Combine::Max)?;
            sim.charge_rounds(1); // acceptance announcement meta-round
                                  // Winners join; losers prune accepted components from lists.
            for x in 0..n {
                if let Some((class, cid, val)) = proposals[x] {
                    let key = comp_key(class, cid);
                    // x hears the accepted value from any adjacent member.
                    let heard = neighborhood(x)
                        .into_iter()
                        .filter(|&y| comp[y].get(&(class as u64)) == Some(&cid))
                        .filter_map(|y| accepted[y].get(&key).copied())
                        .max()
                        .unwrap_or(0);
                    if heard == val && !matched_components.contains(&key) {
                        c2[x] = Some(class);
                        matched_components.insert(key);
                        matched += 1;
                    }
                }
            }
            // Prune matched components from every list.
            for x in 0..n {
                lists[x]
                    .retain(|&(class, cid)| !matched_components.contains(&comp_key(class, cid)));
            }
        }
        // Unmatched type-2 nodes pick random classes.
        for x in 0..n {
            let c = match c2[x] {
                Some(c) => c,
                None => rngs[x].gen_range(0..t) as u32,
            };
            class_of[layout.vid(x, layer, VType::T2)] = Some(c);
            c2[x] = Some(c);
        }

        // Finalize the layer locally.
        for v in 0..n {
            add_class(&mut old_classes, v, c1[v]);
            add_class(&mut old_classes, v, c3[v]);
            add_class(&mut old_classes, v, c2[v].unwrap());
        }

        // Post-layer instrumentation (driver-side; not a protocol step).
        let tables: Vec<HashMap<u64, u64>> = (0..n)
            .map(|v| {
                old_classes[v]
                    .iter()
                    .map(|&c| (c as u64, v as u64))
                    .collect()
            })
            .collect();
        let mut probe = Simulator::new(&graph, Model::VCongest).with_engine(sim.engine());
        let comp_after = multikey_flood(&mut probe, tables, Combine::Min)?;
        let excess_after = excess_components(&comp_after, t, n);
        trace.push(LayerTrace {
            layer,
            excess_before,
            excess_after,
            matched,
            deactivated: deactivated_count,
        });
    }

    // Projection.
    let mut classes: Vec<Vec<NodeId>> = vec![Vec::new(); t];
    for v in 0..n {
        for &c in &old_classes[v] {
            classes[c as usize].push(v);
        }
    }
    Ok(CdsPacking {
        layout,
        num_classes: t,
        class_of,
        classes,
        trace,
    })
}

/// Counts `Σ_i max(0, N_i − 1)` from per-node component tables.
#[allow(clippy::needless_range_loop)]
fn excess_components(comp: &[HashMap<u64, u64>], t: usize, n: usize) -> usize {
    let mut comps_per_class: Vec<HashSet<u64>> = vec![HashSet::new(); t];
    for v in 0..n {
        for (&c, &cid) in &comp[v] {
            comps_per_class[c as usize].insert(cid);
        }
    }
    comps_per_class
        .into_iter()
        .map(|s| s.len().saturating_sub(1))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cds::verify::{verify_centralized, VerifyOutcome};
    use decomp_graph::generators;

    #[test]
    fn distributed_packing_classes_are_cds() {
        let g = generators::harary(12, 48);
        let mut sim = Simulator::new(&g, Model::VCongest);
        let p = cds_packing_distributed(&mut sim, &CdsPackingConfig::with_known_k(12, 3)).unwrap();
        assert!(p.num_classes() >= 2);
        assert_eq!(verify_centralized(&g, &p.classes), VerifyOutcome::Pass);
        assert!(sim.stats().rounds > 0);
        assert!(sim.stats().messages > 0);
    }

    #[test]
    fn hypercube_distributed() {
        let g = generators::hypercube(5); // 32 nodes, k = 5
        let mut sim = Simulator::new(&g, Model::VCongest);
        let p = cds_packing_distributed(&mut sim, &CdsPackingConfig::with_known_k(5, 7)).unwrap();
        assert_eq!(verify_centralized(&g, &p.classes), VerifyOutcome::Pass);
    }

    #[test]
    fn single_class_any_connected_graph() {
        let g = generators::random_connected(24, 8, 5);
        let mut sim = Simulator::new(&g, Model::VCongest);
        let p = cds_packing_distributed(&mut sim, &CdsPackingConfig::with_classes(1, 2)).unwrap();
        assert_eq!(verify_centralized(&g, &p.classes), VerifyOutcome::Pass);
    }

    #[test]
    fn excess_never_increases() {
        let g = generators::harary(8, 40);
        let mut sim = Simulator::new(&g, Model::VCongest);
        let p = cds_packing_distributed(&mut sim, &CdsPackingConfig::with_known_k(8, 1)).unwrap();
        for tr in &p.trace {
            assert!(
                tr.excess_after <= tr.excess_before,
                "layer {}: {} -> {}",
                tr.layer,
                tr.excess_before,
                tr.excess_after
            );
        }
        assert_eq!(p.trace.last().unwrap().excess_after, 0);
    }

    #[test]
    fn multiplicity_logarithmic() {
        let g = generators::harary(10, 50);
        let mut sim = Simulator::new(&g, Model::VCongest);
        let p = cds_packing_distributed(&mut sim, &CdsPackingConfig::with_known_k(10, 9)).unwrap();
        assert!(p.max_real_multiplicity() <= 3 * p.layout.layers());
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::harary(6, 30);
        let run = |seed| {
            let mut sim = Simulator::new(&g, Model::VCongest);
            cds_packing_distributed(&mut sim, &CdsPackingConfig::with_known_k(6, seed))
                .unwrap()
                .classes
        };
        assert_eq!(run(4), run(4));
    }
}
