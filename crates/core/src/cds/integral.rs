//! Integral (vertex-disjoint) dominating-tree packings.
//!
//! Section 1.2 ("Integral Tree Packings"): the fractional construction can
//! be adapted, via the random-layering technique of \[12, Theorem 1.2\], to
//! produce `Ω(κ/log² n)` *vertex-disjoint* dominating trees, where `κ` is
//! the connectivity surviving 1/2-vertex-sampling.
//!
//! We implement the random-layering skeleton: partition the vertices into
//! `t` random groups (each vertex in exactly one group — so any trees we
//! build are automatically vertex-disjoint), keep the groups that form
//! CDSs, and extract one tree per surviving group. For `k ≫ t·log n`
//! every group survives w.h.p.; at smaller scales the surviving count
//! degrades gracefully and the report says so.

use crate::packing::{DomTreePacking, WeightedDomTree};
use decomp_graph::domination::is_cds;
use decomp_graph::{traversal, Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of the integral packing attempt.
#[derive(Clone, Debug)]
pub struct IntegralCds {
    /// The vertex-disjoint dominating trees (weight 1 each — an integral
    /// packing is trivially feasible).
    pub packing: DomTreePacking,
    /// Groups attempted.
    pub groups: usize,
    /// Groups that failed the CDS test.
    pub failed_groups: usize,
}

/// Random-layering integral CDS packing with `t` groups.
///
/// # Panics
/// Panics if `g` is disconnected/empty or `t == 0`.
pub fn integral_cds_packing(g: &Graph, t: usize, seed: u64) -> IntegralCds {
    assert!(
        traversal::is_connected(g) && g.n() > 0,
        "integral packing requires a connected graph"
    );
    assert!(t >= 1, "need at least one group");
    let mut rng = StdRng::seed_from_u64(seed);
    let group_of: Vec<usize> = (0..g.n()).map(|_| rng.gen_range(0..t)).collect();
    let mut groups: Vec<Vec<NodeId>> = vec![Vec::new(); t];
    for (v, &grp) in group_of.iter().enumerate() {
        groups[grp].push(v);
    }
    let mut trees = Vec::new();
    let mut failed = 0usize;
    for (id, members) in groups.iter().enumerate() {
        let mut mask = vec![false; g.n()];
        for &v in members {
            mask[v] = true;
        }
        if members.is_empty() || !is_cds(g, &mask) {
            failed += 1;
            continue;
        }
        // Spanning tree of the group's induced subgraph.
        let (sub, map) = g.induced_subgraph(members);
        let bfs = traversal::bfs(&sub, 0);
        let edges: Vec<(NodeId, NodeId)> = bfs
            .tree_edges()
            .into_iter()
            .map(|(p, c)| (map[p], map[c]))
            .collect();
        let singleton = if edges.is_empty() {
            Some(members[0])
        } else {
            None
        };
        trees.push(WeightedDomTree {
            id,
            weight: 1.0,
            edges,
            singleton,
        });
    }
    IntegralCds {
        packing: DomTreePacking { trees },
        groups: t,
        failed_groups: failed,
    }
}

/// Checks vertex-disjointness of an (integral) dominating-tree packing.
pub fn check_vertex_disjoint(g: &Graph, packing: &DomTreePacking) -> Result<(), String> {
    let mut used = vec![false; g.n()];
    for (i, t) in packing.trees.iter().enumerate() {
        for v in t.vertices(g.n()) {
            if used[v] {
                return Err(format!("vertex {v} reused by tree {i}"));
            }
            used[v] = true;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp_graph::generators;

    #[test]
    fn disjoint_trees_on_dense_graph() {
        // K_64: any nonempty group is a CDS.
        let g = generators::complete(64);
        let r = integral_cds_packing(&g, 8, 3);
        assert_eq!(r.failed_groups, 0);
        assert_eq!(r.packing.num_trees(), 8);
        check_vertex_disjoint(&g, &r.packing).unwrap();
        r.packing.validate(&g, 1e-9).unwrap();
    }

    #[test]
    fn harary_large_k_survives() {
        let g = generators::harary(32, 96);
        let r = integral_cds_packing(&g, 4, 7);
        assert!(
            r.packing.num_trees() >= 2,
            "only {} of 4 groups survived",
            r.packing.num_trees()
        );
        check_vertex_disjoint(&g, &r.packing).unwrap();
        r.packing.validate(&g, 1e-9).unwrap();
    }

    #[test]
    fn too_many_groups_fail_gracefully() {
        // C_10 with 5 groups: almost no group dominates; must not panic.
        let g = generators::cycle(10);
        let r = integral_cds_packing(&g, 5, 1);
        assert_eq!(r.groups, 5);
        assert!(r.failed_groups >= 3);
        check_vertex_disjoint(&g, &r.packing).unwrap();
    }

    #[test]
    fn single_group_is_whole_graph() {
        let g = generators::cycle(8);
        let r = integral_cds_packing(&g, 1, 0);
        assert_eq!(r.packing.num_trees(), 1);
        assert_eq!(r.packing.trees[0].vertices(8).len(), 8);
    }

    #[test]
    fn disjointness_checker_rejects_overlap() {
        let g = generators::complete(6);
        let mut r = integral_cds_packing(&g, 2, 2);
        let clone = r.packing.trees[0].clone();
        r.packing.trees.push(clone);
        assert!(check_vertex_disjoint(&g, &r.packing).is_err());
    }

    #[test]
    fn surviving_count_grows_with_k() {
        let survivors = |k: usize, n: usize| {
            let g = generators::harary(k, n);
            integral_cds_packing(&g, 6, 5).packing.num_trees()
        };
        assert!(survivors(48, 96) >= survivors(6, 96));
    }
}
