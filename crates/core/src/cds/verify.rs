//! Testing a dominating-tree / CDS packing (Appendix E, Lemma E.1).
//!
//! Given a collection of vertex classes, test whether **every** class is a
//! connected dominating set. Two implementations:
//!
//! * [`verify_centralized`] — the `O(m log n)`-style direct test
//!   (domination sweep + per-class component check);
//! * [`verify_distributed`] — the randomized V-CONGEST protocol of
//!   Appendix E: a 1-round domination test with `O(D)` failure flooding,
//!   per-class component identification, a first-round component-id
//!   exchange, and `Θ(log n)` rounds in which every node announces the
//!   component id of a random class so that length-3 *detector paths*
//!   catch disconnected classes w.h.p.
//!
//! The distributed test's guarantee is one-sided: a valid packing always
//! passes; an invalid one is rejected w.h.p. (the tests exercise both
//! sides).

use decomp_congest::multiflood::{multikey_flood, Combine};
use decomp_congest::{Model, Simulator};
use decomp_graph::domination::is_cds;
use decomp_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Outcome of a packing test.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// Every class passed.
    Pass,
    /// A domination failure was detected (some class fails to dominate).
    DominationFailure,
    /// A connectivity failure was detected (some class is disconnected).
    ConnectivityFailure,
}

/// Centralized test: every class must be a CDS.
///
/// Returns `Pass` or the first failure kind encountered (domination is
/// checked before connectivity, mirroring the distributed protocol).
pub fn verify_centralized(g: &Graph, classes: &[Vec<NodeId>]) -> VerifyOutcome {
    // Domination sweep for all classes at once.
    for class in classes {
        let mut mask = vec![false; g.n()];
        for &v in class {
            mask[v] = true;
        }
        if !decomp_graph::domination::is_dominating_set(g, &mask) {
            return VerifyOutcome::DominationFailure;
        }
    }
    for class in classes {
        let mut mask = vec![false; g.n()];
        for &v in class {
            mask[v] = true;
        }
        if class.is_empty() || !is_cds(g, &mask) {
            return VerifyOutcome::ConnectivityFailure;
        }
    }
    VerifyOutcome::Pass
}

/// Distributed test on the V-CONGEST simulator (Appendix E).
///
/// `membership[v]` lists the classes containing `v`; `num_classes` is `t`.
/// Runs on `sim`'s network (which must be `g`'s graph) and returns the
/// common outcome all nodes converge to.
///
/// # Errors
/// Propagates simulator round-limit errors.
pub fn verify_distributed(
    sim: &mut Simulator<'_>,
    membership: &[Vec<usize>],
    num_classes: usize,
    seed: u64,
) -> Result<VerifyOutcome, decomp_congest::SimError> {
    assert_eq!(sim.model(), Model::VCongest, "Appendix E runs in V-CONGEST");
    let g = sim.graph().clone();
    let n = g.n();
    assert_eq!(membership.len(), n);

    // --- Domination test -------------------------------------------------
    // Round 1: every node announces its class list (O(log n) words = one
    // meta-round). A node not covered by some class raises a failure,
    // which floods in O(D) further rounds. We simulate the announcement
    // with local computation over the known membership (the message
    // content is exactly the neighbor's membership list) and charge the
    // meta-round + flood cost.
    let mut dominated_fail = false;
    'outer: for v in 0..n {
        let mut covered = vec![false; num_classes];
        for &c in &membership[v] {
            covered[c] = true;
        }
        for &u in g.neighbors(v) {
            for &c in &membership[u] {
                covered[c] = true;
            }
        }
        if covered.iter().any(|&b| !b) {
            dominated_fail = true;
            break 'outer;
        }
    }
    // Charge: 1 meta-round announcement + Θ(D) failure flood.
    let d = decomp_graph::traversal::diameter_2approx(&g).unwrap_or(n);
    sim.charge_rounds(1 + d);
    if dominated_fail {
        return Ok(VerifyOutcome::DominationFailure);
    }

    // --- Connectivity test ------------------------------------------------
    // Component identification per class: key = class, value = real id;
    // the key-subgraph is exactly the class's induced projection.
    let tables: Vec<HashMap<u64, u64>> = (0..n)
        .map(|v| {
            membership[v]
                .iter()
                .map(|&c| (c as u64, v as u64))
                .collect()
        })
        .collect();
    let comp = multikey_flood(sim, tables, Combine::Min)?;

    // First exchange: every node sends all its (class, comp-id) pairs; a
    // node adjacent to two different components of one class detects the
    // disconnect immediately.
    for v in 0..n {
        for (&c, &id) in &comp[v] {
            for &u in g.neighbors(v) {
                if let Some(&other) = comp[u].get(&c) {
                    if other != id {
                        sim.charge_rounds(1 + d);
                        return Ok(VerifyOutcome::ConnectivityFailure);
                    }
                }
            }
        }
    }
    sim.charge_rounds(1);

    // Θ(log n) random-class announcement rounds: node v picks a random
    // class c it knows a component id for (any class: v is dominated, so it
    // heard ids for all classes in the first exchange — we model "known
    // ids" as own + neighbors') and announces (c, id). A neighbor holding
    // a *different* id for c detects the disconnect; this is the detector-
    // path mechanism of Appendix E.
    let mut rng = StdRng::seed_from_u64(seed);
    let rounds = 2 * (n.max(2) as f64).log2().ceil() as usize + 2;
    // known[v]: class -> set of ids heard (own and neighbors')
    let mut known: Vec<HashMap<u64, u64>> = vec![HashMap::new(); n];
    for v in 0..n {
        for (&c, &id) in &comp[v] {
            known[v].insert(c, id);
        }
        for &u in g.neighbors(v) {
            for (&c, &id) in &comp[u] {
                known[v].entry(c).or_insert(id);
            }
        }
    }
    for _ in 0..rounds {
        sim.charge_rounds(1);
        for v in 0..n {
            if known[v].is_empty() {
                continue;
            }
            let keys: Vec<u64> = known[v].keys().copied().collect();
            let c = keys[rng.gen_range(0..keys.len())];
            let id = known[v][&c];
            for &u in g.neighbors(v) {
                if let Some(&other) = known[u].get(&c) {
                    if other != id {
                        sim.charge_rounds(d);
                        return Ok(VerifyOutcome::ConnectivityFailure);
                    }
                }
                // Receivers learn announced ids (and can forward them in
                // later rounds).
                known[u].entry(c).or_insert(id);
            }
        }
    }
    sim.charge_rounds(d); // final "no failure" confirmation window
    Ok(VerifyOutcome::Pass)
}

/// Convenience: membership lists from class vertex sets.
pub fn membership_of(classes: &[Vec<NodeId>], n: usize) -> Vec<Vec<usize>> {
    let mut membership = vec![Vec::new(); n];
    for (c, class) in classes.iter().enumerate() {
        for &v in class {
            membership[v].push(c);
        }
    }
    membership
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cds::centralized::{cds_packing, CdsPackingConfig};
    use decomp_graph::generators;

    #[test]
    fn centralized_accepts_valid_packing() {
        let g = generators::harary(12, 60);
        let p = cds_packing(&g, &CdsPackingConfig::with_known_k(12, 1));
        assert_eq!(verify_centralized(&g, &p.classes), VerifyOutcome::Pass);
    }

    #[test]
    fn centralized_detects_domination_failure() {
        let g = generators::star(6);
        // Class {1} does not dominate vertex 2.
        let classes = vec![vec![1usize]];
        assert_eq!(
            verify_centralized(&g, &classes),
            VerifyOutcome::DominationFailure
        );
    }

    #[test]
    fn centralized_detects_connectivity_failure() {
        let g = generators::cycle(6);
        // {0, 3} dominates C6 ({0: 1,5}, {3: 2,4}) but is disconnected.
        let classes = vec![vec![0usize, 3]];
        assert_eq!(
            verify_centralized(&g, &classes),
            VerifyOutcome::ConnectivityFailure
        );
    }

    #[test]
    fn distributed_accepts_valid_packing() {
        let g = generators::harary(8, 48);
        let p = cds_packing(&g, &CdsPackingConfig::with_known_k(8, 3));
        let membership = membership_of(&p.classes, g.n());
        let mut sim = Simulator::new(&g, Model::VCongest);
        let out = verify_distributed(&mut sim, &membership, p.num_classes(), 5).unwrap();
        assert_eq!(out, VerifyOutcome::Pass);
        assert!(sim.stats().rounds > 0);
    }

    #[test]
    fn distributed_detects_domination_failure() {
        let g = generators::star(8);
        let classes = vec![vec![1usize], vec![0usize]];
        let membership = membership_of(&classes, g.n());
        let mut sim = Simulator::new(&g, Model::VCongest);
        let out = verify_distributed(&mut sim, &membership, 2, 5).unwrap();
        assert_eq!(out, VerifyOutcome::DominationFailure);
    }

    #[test]
    fn distributed_detects_disconnected_class() {
        let g = generators::cycle(6);
        let classes = vec![vec![0usize, 3], vec![0, 1, 2, 3, 4, 5]];
        let membership = membership_of(&classes, g.n());
        let mut sim = Simulator::new(&g, Model::VCongest);
        let out = verify_distributed(&mut sim, &membership, 2, 7).unwrap();
        assert_eq!(out, VerifyOutcome::ConnectivityFailure);
    }

    #[test]
    fn distributed_matches_centralized_on_random_packings() {
        for seed in 0..6 {
            let g = generators::harary(6, 36);
            let p = cds_packing(&g, &CdsPackingConfig::with_known_k(6, seed));
            let want = verify_centralized(&g, &p.classes);
            let membership = membership_of(&p.classes, g.n());
            let mut sim = Simulator::new(&g, Model::VCongest);
            let got = verify_distributed(&mut sim, &membership, p.num_classes(), seed).unwrap();
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn membership_roundtrip() {
        let classes = vec![vec![0, 2], vec![1, 2]];
        let m = membership_of(&classes, 3);
        assert_eq!(m, vec![vec![0], vec![1], vec![0, 1]]);
    }

    /// Failure injection: corrupt a valid packing by deleting vertices
    /// from classes; both testers must reject every corruption that
    /// actually breaks a class, and accept those that happen not to.
    #[test]
    fn corrupted_packings_are_caught() {
        use rand::{Rng, SeedableRng};
        let g = generators::harary(8, 40);
        let p = cds_packing(&g, &CdsPackingConfig::with_known_k(8, 4));
        assert_eq!(verify_centralized(&g, &p.classes), VerifyOutcome::Pass);
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let mut caught = 0;
        for trial in 0..12 {
            let mut classes = p.classes.clone();
            // Remove a random run of vertices from a random class.
            let c = rng.gen_range(0..classes.len());
            let class_len = classes[c].len();
            let del = rng.gen_range(1..=(class_len / 2).max(1));
            let start = rng.gen_range(0..class_len - del + 1);
            classes[c].drain(start..start + del);
            let want = verify_centralized(&g, &classes);
            let membership = membership_of(&classes, g.n());
            let mut sim = Simulator::new(&g, Model::VCongest);
            let got =
                verify_distributed(&mut sim, &membership, classes.len(), trial as u64).unwrap();
            assert_eq!(got, want, "trial {trial}: testers must agree");
            if want != VerifyOutcome::Pass {
                caught += 1;
            }
        }
        // Classes are large and overlapping, so many deletions leave a
        // still-valid CDS — the essential property above is tester
        // agreement; we only require that *some* corruptions were real.
        assert!(
            caught >= 3,
            "some random corruptions should break a class (caught {caught}/12)"
        );
    }
}
