//! Fractional dominating-tree (CDS) packing — the paper's main technical
//! contribution (Section 3, Appendices B, C, D, E).

pub mod centralized;
pub mod class_state;
pub mod connector;
pub mod distributed;
pub mod guess;
pub mod independent;
pub mod integral;
pub mod tree_extract;
pub mod verify;

pub use centralized::{
    cds_packing, cds_packing_with_state, CdsPacking, CdsPackingConfig, LayerTrace,
};
pub use class_state::ClassState;
