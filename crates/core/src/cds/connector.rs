//! Connector-path analysis (Section 4.1, Lemma 4.3, Figure 2).
//!
//! A *potential connector* for a component `C` of class `i` is a path in
//! the real graph from `Ψ(C)` to `Ψ(V_ℓ^i ∖ C)` with at most two internal
//! vertices, where a 2-internal path `s,u,w,t` additionally requires that
//! `w` has no neighbor in `Ψ(C)` and `u` none in `Ψ(V_ℓ^i ∖ C)`
//! (minimality, condition (C)).
//!
//! Lemma 4.3 (Connector Abundance): while a class dominates and has ≥ 2
//! components, every component has at least `k` internally vertex-disjoint
//! connector paths. [`max_disjoint_connectors`] verifies this bound
//! computationally via a vertex-capacitated flow on the ≤ 4-layer path
//! structure, and [`enumerate_connectors`] lists the paths for the
//! Figure 2 reproduction.

use crate::cds::class_state::ClassState;
use decomp_graph::flow::FlowNetwork;
use decomp_graph::{Graph, NodeId};

/// Classification of the real vertices relative to one class and one of
/// its projected components.
#[derive(Clone, Debug)]
pub struct ProjectionView {
    /// `Ψ(C)`: reals in the chosen component's projection.
    pub in_component: Vec<bool>,
    /// `Ψ(V_ℓ^i ∖ C)`: reals of the class outside the component.
    pub in_rest: Vec<bool>,
}

impl ProjectionView {
    /// Builds the view from the class's projected component labels:
    /// `comp_of[v] = Some(label)` for class members.
    pub fn new(comp_of: &[Option<usize>], component: usize) -> Self {
        let in_component = comp_of.iter().map(|c| *c == Some(component)).collect();
        let in_rest = comp_of
            .iter()
            .map(|c| c.is_some() && *c != Some(component))
            .collect();
        ProjectionView {
            in_component,
            in_rest,
        }
    }

    /// Builds the view for component `component` of `class` straight from
    /// the packing construction's incrementally-maintained [`ClassState`]
    /// — no per-class traversal, just one linear read of the maintained
    /// labels. Component labels are the dense ones of
    /// [`ClassState::comp_of`] (`0..N_i`, in order of first appearance by
    /// real id). When enumerating *all* components of one class, compute
    /// [`ClassState::comp_of`] once and call [`ProjectionView::new`] per
    /// component instead of paying the label scan `N_i` times.
    pub fn from_class_state(state: &mut ClassState, class: usize, component: usize) -> Self {
        ProjectionView::new(&state.comp_of(class), component)
    }
}

/// Maximum number of internally vertex-disjoint potential connector paths
/// for the component described by `view`, under conditions (A), (B), and
/// (C) of Section 4.1.
///
/// Condition (C) makes the structure a 4-layer DAG with *disjoint* vertex
/// roles — `S`-type internals (adjacent to both sides; short connectors),
/// `U`-type (component side only; first internal of a long connector), and
/// `W`-type (rest side only; second internal) — so a vertex-split max-flow
/// counts the disjoint connectors exactly. Lemma 4.3 asserts this value is
/// at least `k` whenever the class dominates and has ≥ 2 components.
pub fn max_disjoint_connectors(g: &Graph, view: &ProjectionView) -> usize {
    let n = g.n();
    // Vertex-split internals: in = 2v, out = 2v+1; source = 2n, sink = 2n+1.
    let source = 2 * n;
    let sink = 2 * n + 1;
    let mut net = FlowNetwork::new(2 * n + 2);
    const INF: i64 = i64::MAX / 8;
    let internal = |v: usize| !view.in_component[v] && !view.in_rest[v];
    let adj_comp: Vec<bool> = (0..n)
        .map(|v| g.neighbors(v).iter().any(|&u| view.in_component[u]))
        .collect();
    let adj_rest: Vec<bool> = (0..n)
        .map(|v| g.neighbors(v).iter().any(|&u| view.in_rest[u]))
        .collect();
    for v in 0..n {
        if !internal(v) {
            continue;
        }
        net.add_arc(2 * v, 2 * v + 1, 1);
        match (adj_comp[v], adj_rest[v]) {
            // S-type: short connector through v.
            (true, true) => {
                net.add_arc(source, 2 * v, INF);
                net.add_arc(2 * v + 1, sink, INF);
            }
            // U-type: can only start a long connector.
            (true, false) => {
                net.add_arc(source, 2 * v, INF);
            }
            // W-type: can only finish a long connector.
            (false, true) => {
                net.add_arc(2 * v + 1, sink, INF);
            }
            (false, false) => {}
        }
    }
    for &(u, v) in g.edges() {
        for (a, b) in [(u, v), (v, u)] {
            // U -> W middle hop of a long connector (condition (C): the
            // first internal must not reach the rest side, the second must
            // not reach the component side).
            if internal(a)
                && internal(b)
                && adj_comp[a]
                && !adj_rest[a]
                && adj_rest[b]
                && !adj_comp[b]
            {
                net.add_arc(2 * a + 1, 2 * b, INF);
            }
        }
    }
    net.max_flow(source, sink) as usize
}

/// One potential connector path (real vertices, endpoints included):
/// `[s, u, t]` (short) or `[s, u, w, t]` (long).
pub type ConnectorPath = Vec<NodeId>;

/// Enumerates all potential connector paths satisfying conditions
/// (A), (B), and (C) of Section 4.1 — the object Figure 2 depicts.
/// Exponential-free: `O(Σ_u deg(u)²)` worst case; intended for small
/// illustrative instances and the Lemma 4.3 experiment.
pub fn enumerate_connectors(g: &Graph, view: &ProjectionView) -> Vec<ConnectorPath> {
    let n = g.n();
    let internal = |v: usize| !view.in_component[v] && !view.in_rest[v];
    let adj_comp: Vec<bool> = (0..n)
        .map(|v| g.neighbors(v).iter().any(|&u| view.in_component[u]))
        .collect();
    let adj_rest: Vec<bool> = (0..n)
        .map(|v| g.neighbors(v).iter().any(|&u| view.in_rest[u]))
        .collect();
    let mut paths = Vec::new();
    for u in 0..n {
        if !internal(u) || !adj_comp[u] {
            continue;
        }
        let s = *g
            .neighbors(u)
            .iter()
            .find(|&&x| view.in_component[x])
            .expect("adj_comp implies a component neighbor");
        if adj_rest[u] {
            // Short connector: s, u, t.
            let t = *g
                .neighbors(u)
                .iter()
                .find(|&&x| view.in_rest[x])
                .expect("adj_rest implies a rest neighbor");
            paths.push(vec![s, u, t]);
            continue; // condition (C): no long path through a u that
                      // already reaches the rest side directly
        }
        for &w in g.neighbors(u) {
            if !internal(w) || !adj_rest[w] {
                continue;
            }
            // Condition (C): w must not also touch Ψ(C) (otherwise a
            // shorter connector through w exists).
            if adj_comp[w] {
                continue;
            }
            let t = *g
                .neighbors(w)
                .iter()
                .find(|&&x| view.in_rest[x])
                .expect("adj_rest implies a rest neighbor");
            paths.push(vec![s, u, w, t]);
        }
    }
    paths
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp_graph::generators;

    /// Two class components {0} and {4} at the ends of a path: the middle
    /// vertices form the connectors.
    #[test]
    fn path_has_single_connector() {
        let g = generators::path(5);
        let comp_of = vec![Some(0), None, None, None, Some(1)];
        let view = ProjectionView::new(&comp_of, 0);
        // 0 -x- 1 - 2 - 3 -x- 4: three internals in a row; only one
        // disjoint path, and it needs >2 internals — so 0 connectors of
        // length <= 2 internals? Internals 1,2,3: path 0,1,2,3,4 has 3
        // internals -> not a potential connector. Max flow = 0.
        assert_eq!(max_disjoint_connectors(&g, &view), 0);
        assert!(enumerate_connectors(&g, &view).is_empty());
    }

    #[test]
    fn short_connector_found() {
        // 0 (comp) - 1 (free) - 2 (rest)
        let g = generators::path(3);
        let comp_of = vec![Some(0), None, Some(1)];
        let view = ProjectionView::new(&comp_of, 0);
        assert_eq!(max_disjoint_connectors(&g, &view), 1);
        let paths = enumerate_connectors(&g, &view);
        assert_eq!(paths, vec![vec![0, 1, 2]]);
    }

    #[test]
    fn long_connector_found() {
        // 0 (comp) - 1 - 2 - 3 (rest)
        let g = generators::path(4);
        let comp_of = vec![Some(0), None, None, Some(1)];
        let view = ProjectionView::new(&comp_of, 0);
        assert_eq!(max_disjoint_connectors(&g, &view), 1);
        let paths = enumerate_connectors(&g, &view);
        assert_eq!(paths, vec![vec![0, 1, 2, 3]]);
    }

    #[test]
    fn condition_c_suppresses_redundant_long_paths() {
        // Triangle-ish: comp 0, rest 3; internals 1, 2 with edges
        // 0-1, 1-3 (short through 1) and 0-1,1-2,2-3.
        let g = decomp_graph::Graph::from_edges(4, [(0, 1), (1, 3), (1, 2), (2, 3)]);
        let comp_of = vec![Some(0), None, None, Some(1)];
        let view = ProjectionView::new(&comp_of, 0);
        let paths = enumerate_connectors(&g, &view);
        // u = 1 has a short connector; condition (C) forbids the long one
        // through (1, 2), and vertex 2 alone cannot start a connector
        // (no component neighbor).
        assert_eq!(paths, vec![vec![0, 1, 3]]);
        assert_eq!(max_disjoint_connectors(&g, &view), 1);
    }

    /// Lemma 4.3 on a clean instance: H_{6,36} (ring power, each vertex
    /// adjacent to ±1,±2,±3) with a class made of two arcs {0..11} and
    /// {18..29}. The gaps (12..17, 30..35) have length 6 = 2⌊k/2⌋, so the
    /// class dominates but the arcs are genuinely disconnected (hop
    /// distance 7 > 3 between them). Each gap supports exactly 3 disjoint
    /// long connectors, for a total of k = 6.
    #[test]
    fn connector_abundance_on_harary() {
        let k = 6;
        let g = generators::harary(k, 36);
        let comp_of: Vec<Option<usize>> = (0..36)
            .map(|v| match v {
                0..=11 => Some(0),
                18..=29 => Some(1),
                _ => None,
            })
            .collect();
        // Lemma 4.3's preconditions: the class dominates, >= 2 components,
        // and the components are not adjacent.
        let mask: Vec<bool> = comp_of.iter().map(|c| c.is_some()).collect();
        assert!(decomp_graph::domination::is_dominating_set(&g, &mask));
        for a in 0..=11usize {
            for b in 18..=29usize {
                assert!(!g.has_edge(a, b), "arcs must not touch: ({a},{b})");
            }
        }
        let view = ProjectionView::new(&comp_of, 0);
        let connectors = max_disjoint_connectors(&g, &view);
        assert!(
            connectors >= k,
            "Lemma 4.3: expected >= {k} disjoint connectors, got {connectors}"
        );
        // Sanity: the enumeration finds long connectors in both gaps.
        let paths = enumerate_connectors(&g, &view);
        assert!(!paths.is_empty());
    }

    #[test]
    fn view_from_class_state_matches_manual_labels() {
        use crate::virtual_graph::{VType, VirtualLayout};
        // 0 - 1 - 2 - 3 - 4 with class members {0, 1} and {4}: two
        // components, labeled 0 and 1 in order of first appearance.
        let g = generators::path(5);
        let layout = VirtualLayout::new(5, 4);
        let mut st = ClassState::new(layout, 1);
        for v in [0usize, 1, 4] {
            st.join(&g, layout.vid(v, 0, VType::T1), 0);
        }
        assert_eq!(st.component_count(0), 2);
        let view = ProjectionView::from_class_state(&mut st, 0, 0);
        let manual = ProjectionView::new(&[Some(0), Some(0), None, None, Some(1)], 0);
        assert_eq!(view.in_component, manual.in_component);
        assert_eq!(view.in_rest, manual.in_rest);
        assert_eq!(max_disjoint_connectors(&g, &view), 1);
    }

    #[test]
    fn enumeration_is_subset_of_flow_bound() {
        let g = generators::harary(4, 20);
        let comp_of: Vec<Option<usize>> = (0..20)
            .map(|v| {
                if v % 2 == 0 {
                    Some(if v < 10 { 0 } else { 1 })
                } else {
                    None
                }
            })
            .collect();
        let view = ProjectionView::new(&comp_of, 0);
        let paths = enumerate_connectors(&g, &view);
        for p in &paths {
            assert!(view.in_component[p[0]]);
            assert!(view.in_rest[*p.last().unwrap()]);
            for w in p.windows(2) {
                assert!(g.has_edge(w[0], w[1]));
            }
        }
    }
}
