//! Centralized CDS-packing (Theorem 1.2, Appendix C) — `O(m log² n)`.
//!
//! The algorithm of Section 3.1:
//!
//! 1. build the virtual graph (`Θ(log n)` virtual nodes per real node,
//!    organized in `L` layers × 3 types);
//! 2. **jump start** — virtual nodes of layers `0..L/2` join uniformly
//!    random classes among `t = Θ(k)` classes (gives domination w.h.p.,
//!    Lemma 4.1);
//! 3. **recursive class assignment** — for each layer, type-1/3 new nodes
//!    join random classes, the *bridging graph* between old components and
//!    type-2 new nodes is formed (deactivating components already merged by
//!    type-1 connectors), and a maximal matching decides the type-2
//!    assignments (Lemma 4.4 drives the component count down by a constant
//!    factor per layer);
//! 4. project classes to real nodes: each class is a CDS w.h.p., and each
//!    real node lies in at most `3L = O(log n)` classes.
//!
//! Components of each class's virtual subgraph are tracked with a
//! disjoint-set forest exactly as Appendix C prescribes. Per-layer
//! instrumentation (`M_ℓ`, matches, deactivations) feeds the Fast-Merger
//! experiment (Lemma 4.4 / E11).

use crate::virtual_graph::{default_layers, VType, VirtualId, VirtualLayout};
use decomp_graph::unionfind::UnionFind;
use decomp_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};

/// Configuration for [`cds_packing`].
#[derive(Clone, Debug)]
pub struct CdsPackingConfig {
    /// Number of classes `t = Θ(k)`. `with_known_k` derives it from the
    /// connectivity estimate.
    pub num_classes: usize,
    /// Layer-count multiplier: `L = layers_factor · ⌈log₂ n⌉` (even, ≥ 4).
    pub layers_factor: f64,
    /// RNG seed (experiments are reproducible per seed).
    pub seed: u64,
}

/// Default ratio `t / k`. The Fast-Merger analysis (Lemma 4.5) needs
/// `t` a sufficiently small constant fraction of `k` so that
/// `E[Z] = k′/(4t) > 1`; one quarter works well across our benchmarks.
pub const DEFAULT_CLASSES_PER_K: f64 = 0.25;

/// Default `layers_factor`.
pub const DEFAULT_LAYERS_FACTOR: f64 = 3.0;

impl CdsPackingConfig {
    /// Configuration from a known (or 2-approximated) vertex connectivity.
    ///
    /// Sets `t = max(1, ⌊k/4⌋)` classes.
    pub fn with_known_k(k: usize, seed: u64) -> Self {
        let t = ((k as f64 * DEFAULT_CLASSES_PER_K).floor() as usize).max(1);
        CdsPackingConfig {
            num_classes: t,
            layers_factor: DEFAULT_LAYERS_FACTOR,
            seed,
        }
    }

    /// Configuration with an explicit class count `t`.
    pub fn with_classes(t: usize, seed: u64) -> Self {
        assert!(t >= 1, "need at least one class");
        CdsPackingConfig {
            num_classes: t,
            layers_factor: DEFAULT_LAYERS_FACTOR,
            seed,
        }
    }
}

/// Per-layer instrumentation of the recursive class assignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LayerTrace {
    /// The layer whose nodes were being assigned.
    pub layer: usize,
    /// `M_ℓ`: total excess components (Σ_i max(0, N_i − 1)) before this
    /// layer's assignments were merged in.
    pub excess_before: usize,
    /// `M_{ℓ+1}` after merging in this layer.
    pub excess_after: usize,
    /// Type-2 new nodes matched through the bridging graph.
    pub matched: usize,
    /// Components deactivated by type-1 connectors.
    pub deactivated: usize,
}

/// The result of the CDS-packing construction.
#[derive(Clone, Debug)]
pub struct CdsPacking {
    /// Virtual-graph layout used.
    pub layout: VirtualLayout,
    /// Number of classes `t`.
    pub num_classes: usize,
    /// Class of each virtual node.
    pub class_of: Vec<Option<u32>>,
    /// Projected real vertex set of each class (sorted).
    pub classes: Vec<Vec<NodeId>>,
    /// Per-layer merge statistics (recursive layers only).
    pub trace: Vec<LayerTrace>,
}

impl CdsPacking {
    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Maximum number of classes any real node belongs to
    /// (the `O(log n)` bound of Theorem 1.2).
    pub fn max_real_multiplicity(&self) -> usize {
        let n = self.layout.n();
        let mut count = vec![0usize; n];
        for (i, class) in self.classes.iter().enumerate() {
            let _ = i;
            for &v in class {
                count[v] += 1;
            }
        }
        count.into_iter().max().unwrap_or(0)
    }

    /// Membership mask for one class.
    pub fn class_mask(&self, class: usize) -> Vec<bool> {
        let mut mask = vec![false; self.layout.n()];
        for &v in &self.classes[class] {
            mask[v] = true;
        }
        mask
    }
}

/// The potential-matches entry per `(type-2 node, class)` (Appendix C):
/// either exactly one suitable component id, or "connector" (≥ 2 distinct).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PotentialMatches {
    One(VirtualId),
    Many,
}

impl PotentialMatches {
    fn merge_id(self, root: VirtualId) -> Self {
        match self {
            PotentialMatches::One(r) if r == root => self,
            PotentialMatches::One(_) => PotentialMatches::Many,
            PotentialMatches::Many => PotentialMatches::Many,
        }
    }

    /// Whether the bridging condition (c) holds against component `root`:
    /// a type-3 connector leads to *some other* component.
    fn allows(self, root: VirtualId) -> bool {
        match self {
            PotentialMatches::Many => true,
            PotentialMatches::One(r) => r != root,
        }
    }
}

struct State<'g> {
    g: &'g Graph,
    layout: VirtualLayout,
    t: usize,
    class_of: Vec<Option<u32>>,
    uf: UnionFind,
    /// `rep[real * t + class]` = representative virtual node of the (real,
    /// class) bundle, or `u32::MAX`. All virtual nodes of one real node in
    /// one class are mutually adjacent, so one representative suffices.
    rep: Vec<u32>,
    /// Classes with at least one old node on each real vertex (sorted).
    classes_at: Vec<Vec<u32>>,
    /// Component count per class.
    comp_count: Vec<usize>,
    rng: StdRng,
}

const NO_REP: u32 = u32::MAX;

impl<'g> State<'g> {
    fn new(g: &'g Graph, layout: VirtualLayout, t: usize, seed: u64) -> Self {
        State {
            g,
            layout,
            t,
            class_of: vec![None; layout.total()],
            uf: UnionFind::new(layout.total()),
            rep: vec![NO_REP; g.n() * t],
            classes_at: vec![Vec::new(); g.n()],
            comp_count: vec![0; t],
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Unions `vid` (already class-labeled) into the class-`c` structure.
    fn finalize(&mut self, vid: VirtualId, c: usize) {
        let g = self.g;
        let r = self.layout.real(vid);
        let slot = r * self.t + c;
        self.comp_count[c] += 1;
        if self.rep[slot] == NO_REP {
            self.rep[slot] = vid as u32;
            if let Err(pos) = self.classes_at[r].binary_search(&(c as u32)) {
                self.classes_at[r].insert(pos, c as u32);
            }
        } else {
            let merged = self.uf.union(vid, self.rep[slot] as usize);
            debug_assert!(merged, "a fresh virtual node must form a new set");
            self.comp_count[c] -= 1;
        }
        // Connect across real edges.
        for &u in g.neighbors(r) {
            let uslot = u * self.t + c;
            if self.rep[uslot] != NO_REP && self.uf.union(vid, self.rep[uslot] as usize) {
                self.comp_count[c] -= 1;
            }
        }
    }

    /// Total excess components `Σ_i max(0, N_i − 1)`.
    fn excess(&self) -> usize {
        self.comp_count.iter().map(|&c| c.saturating_sub(1)).sum()
    }

    /// Component root of the (real, class) bundle, if any old node exists.
    fn comp_root(&mut self, real: NodeId, class: usize) -> Option<VirtualId> {
        let slot = real * self.t + class;
        if self.rep[slot] == NO_REP {
            None
        } else {
            Some(self.uf.find(self.rep[slot] as usize))
        }
    }

    /// Distinct component roots of class `class` adjacent (in the virtual
    /// graph) to a new node on `real`: bundles on `real` itself and on its
    /// real neighbors.
    fn adjacent_roots(&mut self, real: NodeId, class: usize) -> Vec<VirtualId> {
        let mut roots = Vec::new();
        let push = |root: Option<VirtualId>, roots: &mut Vec<VirtualId>| {
            if let Some(r) = root {
                if !roots.contains(&r) {
                    roots.push(r);
                }
            }
        };
        let own = self.comp_root(real, class);
        push(own, &mut roots);
        let g = self.g;
        for &u in g.neighbors(real) {
            let r = self.comp_root(u, class);
            push(r, &mut roots);
        }
        roots
    }
}

/// Runs the CDS-packing construction of Section 3.1 / Appendix C.
///
/// Returns `t = config.num_classes` classes of virtual nodes projected to
/// real vertex sets. W.h.p. (for `t = Θ(k)` with suitable constants) every
/// class is a connected dominating set; [`crate::cds::verify`] checks this
/// and [`crate::cds::tree_extract`] turns the classes into a fractional
/// dominating-tree packing.
///
/// # Panics
/// Panics if the graph is empty.
#[allow(clippy::needless_range_loop)] // lockstep loops index several per-node arrays at once
pub fn cds_packing(g: &Graph, config: &CdsPackingConfig) -> CdsPacking {
    assert!(g.n() > 0, "CDS packing needs a non-empty graph");
    let layers = default_layers(g.n(), config.layers_factor);
    let layout = VirtualLayout::new(g.n(), layers);
    let t = config.num_classes;
    let mut st = State::new(g, layout, t, config.seed);
    let half = layout.jump_start();

    // --- Jump start: layers 0..L/2 join random classes. -----------------
    for layer in 0..half {
        for real in 0..g.n() {
            for vtype in VType::ALL {
                let vid = layout.vid(real, layer, vtype);
                let c = st.rng.gen_range(0..t);
                st.class_of[vid] = Some(c as u32);
                st.finalize(vid, c);
            }
        }
    }

    // --- Recursive class assignment: layers L/2..L. ---------------------
    let mut trace = Vec::with_capacity(layers - half);
    for layer in half..layers {
        let excess_before = st.excess();

        // (1) Type-1 and type-3 new nodes pick random classes
        //     (recorded, but not merged until the layer finalizes).
        let mut c1 = vec![0usize; g.n()];
        let mut c3 = vec![0usize; g.n()];
        for real in 0..g.n() {
            c1[real] = st.rng.gen_range(0..t);
            c3[real] = st.rng.gen_range(0..t);
            st.class_of[layout.vid(real, layer, VType::T1)] = Some(c1[real] as u32);
            st.class_of[layout.vid(real, layer, VType::T3)] = Some(c3[real] as u32);
        }

        // (2a) Deactivation: components already bridged by a type-1 node.
        let mut deactivated: HashSet<(u32, VirtualId)> = HashSet::new();
        for real in 0..g.n() {
            let i = c1[real];
            let roots = st.adjacent_roots(real, i);
            if roots.len() >= 2 {
                for r in roots {
                    deactivated.insert((i as u32, r));
                }
            }
        }

        // (2b) Potential-matches arrays: each type-3 new node w of class i
        //      reports its suitable components to every type-2 virtual
        //      neighbor.
        let mut pm: HashMap<(NodeId, u32), PotentialMatches> = HashMap::new();
        for real in 0..g.n() {
            let i = c3[real];
            let suitable = st.adjacent_roots(real, i);
            if suitable.is_empty() {
                continue;
            }
            let mut targets: Vec<NodeId> = Vec::with_capacity(1 + g.degree(real));
            targets.push(real);
            targets.extend_from_slice(g.neighbors(real));
            for x in targets {
                let key = (x, i as u32);
                for &root in &suitable {
                    pm.entry(key)
                        .and_modify(|e| *e = e.merge_id(root))
                        .or_insert(PotentialMatches::One(root));
                }
            }
        }

        // (3) Maximal matching: scan type-2 new nodes in random order,
        //     greedily matching to the first eligible component.
        let mut order: Vec<NodeId> = (0..g.n()).collect();
        order.shuffle(&mut st.rng);
        let mut matched_comps: HashSet<(u32, VirtualId)> = HashSet::new();
        let mut matched = 0usize;
        let mut c2 = vec![usize::MAX; g.n()];
        for &x in &order {
            let mut assigned = None;
            // Enumerate (old-neighbor bundle, class) pairs around x.
            let mut candidates: Vec<NodeId> = Vec::with_capacity(1 + g.degree(x));
            candidates.push(x);
            candidates.extend_from_slice(g.neighbors(x));
            'search: for &y in &candidates {
                let classes: Vec<u32> = st.classes_at[y].clone();
                for i in classes {
                    let root = match st.comp_root(y, i as usize) {
                        Some(r) => r,
                        None => continue,
                    };
                    if deactivated.contains(&(i, root)) || matched_comps.contains(&(i, root)) {
                        continue;
                    }
                    match pm.get(&(x, i)) {
                        Some(entry) if entry.allows(root) => {
                            assigned = Some((i as usize, root));
                            break 'search;
                        }
                        _ => {}
                    }
                }
            }
            match assigned {
                Some((i, root)) => {
                    matched_comps.insert((i as u32, root));
                    matched += 1;
                    c2[x] = i;
                }
                None => {
                    c2[x] = st.rng.gen_range(0..t);
                }
            }
            st.class_of[layout.vid(x, layer, VType::T2)] = Some(c2[x] as u32);
        }

        // (4) Finalize the layer: merge all new assignments into the
        //     disjoint-set structure.
        for real in 0..g.n() {
            st.finalize(layout.vid(real, layer, VType::T1), c1[real]);
            st.finalize(layout.vid(real, layer, VType::T2), c2[real]);
            st.finalize(layout.vid(real, layer, VType::T3), c3[real]);
        }

        trace.push(LayerTrace {
            layer,
            excess_before,
            excess_after: st.excess(),
            matched,
            deactivated: deactivated.len(),
        });
    }

    // --- Projection to real vertex sets. --------------------------------
    let mut classes: Vec<Vec<NodeId>> = vec![Vec::new(); t];
    for real in 0..g.n() {
        for &c in &st.classes_at[real] {
            classes[c as usize].push(real);
        }
    }
    CdsPacking {
        layout,
        num_classes: t,
        class_of: st.class_of,
        classes,
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp_graph::domination::is_cds;
    use decomp_graph::generators;

    fn valid_class_fraction(g: &Graph, p: &CdsPacking) -> f64 {
        let valid = (0..p.num_classes)
            .filter(|&c| is_cds(g, &p.class_mask(c)))
            .count();
        valid as f64 / p.num_classes as f64
    }

    #[test]
    fn single_class_on_small_graph_is_cds() {
        let g = generators::cycle(12);
        let p = cds_packing(&g, &CdsPackingConfig::with_classes(1, 3));
        assert_eq!(p.num_classes(), 1);
        assert!(is_cds(&g, &p.class_mask(0)));
    }

    #[test]
    fn harary_all_classes_are_cds() {
        let g = generators::harary(16, 64);
        let p = cds_packing(&g, &CdsPackingConfig::with_known_k(16, 7));
        assert!(p.num_classes() >= 2);
        assert_eq!(
            valid_class_fraction(&g, &p),
            1.0,
            "every class must be a CDS on a well-connected graph"
        );
    }

    #[test]
    fn hypercube_classes_are_cds() {
        let g = generators::hypercube(6); // 64 nodes, k = 6
        let p = cds_packing(&g, &CdsPackingConfig::with_known_k(6, 11));
        assert_eq!(valid_class_fraction(&g, &p), 1.0);
    }

    #[test]
    fn multiplicity_is_logarithmic() {
        let g = generators::harary(12, 96);
        let p = cds_packing(&g, &CdsPackingConfig::with_known_k(12, 5));
        let mult = p.max_real_multiplicity();
        // Each real node has only 3L virtual nodes, hence <= 3L classes.
        assert!(mult <= 3 * p.layout.layers());
        assert!(mult >= 1);
    }

    #[test]
    fn excess_decreases_monotonically() {
        let g = generators::harary(16, 80);
        let p = cds_packing(&g, &CdsPackingConfig::with_known_k(16, 2));
        for w in p.trace.windows(1) {
            assert!(
                w[0].excess_after <= w[0].excess_before,
                "Fast-Merger Lemma first part: M never increases"
            );
        }
        let last = p.trace.last().unwrap();
        assert_eq!(last.excess_after, 0, "all classes connected at the end");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::harary(8, 40);
        let cfg = CdsPackingConfig::with_known_k(8, 42);
        let a = cds_packing(&g, &cfg);
        let b = cds_packing(&g, &cfg);
        assert_eq!(a.classes, b.classes);
        let c = cds_packing(&g, &CdsPackingConfig::with_known_k(8, 43));
        assert!(a.classes != c.classes || a.class_of != c.class_of);
    }

    #[test]
    fn classes_partition_virtual_nodes() {
        let g = generators::cycle(10);
        let p = cds_packing(&g, &CdsPackingConfig::with_classes(2, 0));
        assert!(p.class_of.iter().all(|c| c.is_some()));
    }

    #[test]
    fn works_on_low_connectivity_graphs() {
        // k = 1: a single class must still come out a CDS.
        let g = generators::random_connected(30, 10, 9);
        let p = cds_packing(&g, &CdsPackingConfig::with_known_k(1, 1));
        assert_eq!(p.num_classes(), 1);
        assert!(is_cds(&g, &p.class_mask(0)));
    }

    #[test]
    fn two_node_graph() {
        let g = Graph::from_edges(2, [(0, 1)]);
        let p = cds_packing(&g, &CdsPackingConfig::with_classes(1, 0));
        assert!(is_cds(&g, &p.class_mask(0)));
    }

    use decomp_graph::Graph;

    #[test]
    fn trace_layers_cover_second_half() {
        let g = generators::cycle(16);
        let p = cds_packing(&g, &CdsPackingConfig::with_classes(1, 0));
        let l = p.layout.layers();
        assert_eq!(p.trace.len(), l - l / 2);
        assert_eq!(p.trace[0].layer, l / 2);
    }
}
