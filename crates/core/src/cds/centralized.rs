//! Centralized CDS-packing (Theorem 1.2, Appendix C) — `O(m log² n)`.
//!
//! The algorithm of Section 3.1:
//!
//! 1. build the virtual graph (`Θ(log n)` virtual nodes per real node,
//!    organized in `L` layers × 3 types);
//! 2. **jump start** — virtual nodes of layers `0..L/2` join uniformly
//!    random classes among `t = Θ(k)` classes (gives domination w.h.p.,
//!    Lemma 4.1);
//! 3. **recursive class assignment** — for each layer, type-1/3 new nodes
//!    join random classes, the *bridging graph* between old components and
//!    type-2 new nodes is formed (deactivating components already merged by
//!    type-1 connectors), and a maximal matching decides the type-2
//!    assignments (Lemma 4.4 drives the component count down by a constant
//!    factor per layer);
//! 4. project classes to real nodes: each class is a CDS w.h.p., and each
//!    real node lies in at most `3L = O(log n)` classes.
//!
//! Per-class components are never recomputed: [`ClassState`] maintains
//! them *incrementally* (one disjoint-set forest updated at join time,
//! with running `N_i` / `M_ℓ` aggregates, exactly as Appendix C
//! prescribes), and the layer loop's bridging-graph bookkeeping — the
//! potential-matches table, the deactivation flags, and the matched-
//! component flags — lives in flat epoch-stamped arrays reused across
//! layers, so a layer costs `O(m t)` array work with no hashing and no
//! per-layer allocation. Per-layer instrumentation (`M_ℓ`, matches,
//! deactivations) feeds the Fast-Merger experiment (Lemma 4.4 / E11).

use crate::cds::class_state::{ClassState, CompId};
use crate::virtual_graph::{default_layers, VType, VirtualLayout};
use decomp_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Configuration for [`cds_packing`].
#[derive(Clone, Debug)]
pub struct CdsPackingConfig {
    /// Number of classes `t = Θ(k)`. `with_known_k` derives it from the
    /// connectivity estimate.
    pub num_classes: usize,
    /// Layer-count multiplier: `L = layers_factor · ⌈log₂ n⌉` (even, ≥ 4).
    pub layers_factor: f64,
    /// RNG seed (experiments are reproducible per seed).
    pub seed: u64,
}

/// Default ratio `t / k`. The Fast-Merger analysis (Lemma 4.5) needs
/// `t` a sufficiently small constant fraction of `k` so that
/// `E[Z] = k′/(4t) > 1`; one quarter works well across our benchmarks.
pub const DEFAULT_CLASSES_PER_K: f64 = 0.25;

/// Default `layers_factor`.
pub const DEFAULT_LAYERS_FACTOR: f64 = 3.0;

impl CdsPackingConfig {
    /// Configuration from a known (or 2-approximated) vertex connectivity.
    ///
    /// Sets `t = max(1, ⌊k/4⌋)` classes.
    pub fn with_known_k(k: usize, seed: u64) -> Self {
        let t = ((k as f64 * DEFAULT_CLASSES_PER_K).floor() as usize).max(1);
        CdsPackingConfig {
            num_classes: t,
            layers_factor: DEFAULT_LAYERS_FACTOR,
            seed,
        }
    }

    /// Configuration with an explicit class count `t`.
    pub fn with_classes(t: usize, seed: u64) -> Self {
        assert!(t >= 1, "need at least one class");
        CdsPackingConfig {
            num_classes: t,
            layers_factor: DEFAULT_LAYERS_FACTOR,
            seed,
        }
    }
}

/// Per-layer instrumentation of the recursive class assignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LayerTrace {
    /// The layer whose nodes were being assigned.
    pub layer: usize,
    /// `M_ℓ`: total excess components (Σ_i max(0, N_i − 1)) before this
    /// layer's assignments were merged in.
    pub excess_before: usize,
    /// `M_{ℓ+1}` after merging in this layer.
    pub excess_after: usize,
    /// Type-2 new nodes matched through the bridging graph.
    pub matched: usize,
    /// Components deactivated by type-1 connectors.
    pub deactivated: usize,
}

/// The result of the CDS-packing construction.
#[derive(Clone, Debug)]
pub struct CdsPacking {
    /// Virtual-graph layout used.
    pub layout: VirtualLayout,
    /// Number of classes `t`.
    pub num_classes: usize,
    /// Class of each virtual node.
    pub class_of: Vec<Option<u32>>,
    /// Projected real vertex set of each class (sorted).
    pub classes: Vec<Vec<NodeId>>,
    /// Per-layer merge statistics (recursive layers only).
    pub trace: Vec<LayerTrace>,
}

impl CdsPacking {
    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Maximum number of classes any real node belongs to
    /// (the `O(log n)` bound of Theorem 1.2).
    pub fn max_real_multiplicity(&self) -> usize {
        let n = self.layout.n();
        let mut count = vec![0usize; n];
        for class in &self.classes {
            for &v in class {
                count[v] += 1;
            }
        }
        count.into_iter().max().unwrap_or(0)
    }

    /// Membership mask for one class.
    pub fn class_mask(&self, class: usize) -> Vec<bool> {
        let mut mask = vec![false; self.layout.n()];
        for &v in &self.classes[class] {
            mask[v] = true;
        }
        mask
    }
}

/// The potential-matches entry per `(type-2 node, class)` (Appendix C):
/// either exactly one suitable component id, or "connector" (≥ 2 distinct).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PotentialMatches {
    One(CompId),
    Many,
}

impl PotentialMatches {
    fn merge_id(self, root: CompId) -> Self {
        match self {
            PotentialMatches::One(r) if r == root => self,
            PotentialMatches::One(_) => PotentialMatches::Many,
            PotentialMatches::Many => PotentialMatches::Many,
        }
    }

    /// Whether the bridging condition (c) holds against component `root`:
    /// a type-3 connector leads to *some other* component.
    fn allows(self, root: CompId) -> bool {
        match self {
            PotentialMatches::Many => true,
            PotentialMatches::One(r) => r != root,
        }
    }
}

/// Flat per-layer working memory, reused across layers. All entries are
/// epoch-stamped: a slot is live only if its stamp equals the current
/// layer's epoch, so resetting between layers is a single counter bump
/// instead of an `O(n t + 3Ln)` clear (and instead of the hash maps this
/// loop used before the incremental rewrite).
struct LayerScratch {
    epoch: u32,
    /// Potential-matches table, indexed `x * t + class`.
    pm_epoch: Vec<u32>,
    pm: Vec<PotentialMatches>,
    /// Component roots to skip in the matching scan (deactivated by a
    /// type-1 connector, or already matched), indexed by root id. A root
    /// belongs to exactly one class, so the class key is implicit.
    skip_epoch: Vec<u32>,
    /// Per-layer memo of [`ClassState::comp_root`], indexed
    /// `real * t + class`. Component roots are stable for a whole layer
    /// body (no unions happen until the layer finalizes), and every node
    /// queries the same bundles its neighbors do, so one find per bundle
    /// per layer serves the deactivation, bridging, and matching scans.
    root_epoch: Vec<u32>,
    root_memo: Vec<u32>,
    /// Reusable buffer for adjacent-root queries.
    roots: Vec<CompId>,
}

/// Memo encoding of "bundle unoccupied".
const NO_ROOT: u32 = u32::MAX;

impl LayerScratch {
    fn new(n: usize, t: usize) -> Self {
        LayerScratch {
            epoch: 0,
            pm_epoch: vec![0; n * t],
            pm: vec![PotentialMatches::Many; n * t],
            skip_epoch: vec![0; n * t],
            root_epoch: vec![0; n * t],
            root_memo: vec![NO_ROOT; n * t],
            roots: Vec::new(),
        }
    }

    /// Starts a new layer: invalidates every stamped entry at once.
    fn next_layer(&mut self) {
        self.epoch += 1;
    }

    /// [`ClassState::comp_root`] through the per-layer memo.
    fn comp_root(&mut self, st: &mut ClassState, real: NodeId, class: usize) -> Option<CompId> {
        let slot = real * st.num_classes() + class;
        if self.root_epoch[slot] != self.epoch {
            self.root_epoch[slot] = self.epoch;
            self.root_memo[slot] = match st.comp_root(real, class) {
                Some(r) => r as u32,
                None => NO_ROOT,
            };
        }
        match self.root_memo[slot] {
            NO_ROOT => None,
            r => Some(r as usize),
        }
    }

    /// Distinct component roots of `class` adjacent (in the virtual
    /// graph) to a new node on `real` — the bundles on `real` itself and
    /// on its real neighbors — read through the per-layer memo; fills
    /// `self.roots` (reused across calls to keep the loop
    /// allocation-free).
    fn adjacent_roots(&mut self, st: &mut ClassState, g: &Graph, real: NodeId, class: usize) {
        let mut roots = std::mem::take(&mut self.roots);
        roots.clear();
        if let Some(r) = self.comp_root(st, real, class) {
            roots.push(r);
        }
        for &u in g.neighbors(real) {
            if let Some(r) = self.comp_root(st, u, class) {
                if !roots.contains(&r) {
                    roots.push(r);
                }
            }
        }
        self.roots = roots;
    }
}

/// Runs the CDS-packing construction of Section 3.1 / Appendix C.
///
/// Returns `t = config.num_classes` classes of virtual nodes projected to
/// real vertex sets. W.h.p. (for `t = Θ(k)` with suitable constants) every
/// class is a connected dominating set; [`crate::cds::verify`] checks this
/// and [`crate::cds::tree_extract`] turns the classes into a fractional
/// dominating-tree packing.
///
/// # Example
///
/// ```
/// use decomp_core::cds::centralized::{cds_packing, CdsPackingConfig};
/// use decomp_graph::{domination::is_cds, generators};
///
/// let g = generators::harary(8, 48); // 8-connected circulant
/// let packing = cds_packing(&g, &CdsPackingConfig::with_known_k(8, 1));
/// assert_eq!(packing.num_classes(), 2); // t = ⌊k/4⌋
/// for class in 0..packing.num_classes() {
///     assert!(is_cds(&g, &packing.class_mask(class)));
/// }
/// ```
///
/// # Panics
/// Panics if the graph is empty.
pub fn cds_packing(g: &Graph, config: &CdsPackingConfig) -> CdsPacking {
    cds_packing_with_state(g, config).0
}

/// [`cds_packing`] variant that also returns the final [`ClassState`] —
/// the incrementally-maintained per-class component structure — so
/// downstream stages ([`crate::cds::tree_extract`],
/// [`crate::cds::connector`]) can consume the components instead of
/// recomputing them.
///
/// # Panics
/// Panics if the graph is empty.
#[allow(clippy::needless_range_loop)] // lockstep loops index several per-node arrays at once
pub fn cds_packing_with_state(g: &Graph, config: &CdsPackingConfig) -> (CdsPacking, ClassState) {
    assert!(g.n() > 0, "CDS packing needs a non-empty graph");
    let layers = default_layers(g.n(), config.layers_factor);
    let layout = VirtualLayout::new(g.n(), layers);
    let t = config.num_classes;
    let mut st = ClassState::new(layout, t);
    let mut class_of: Vec<Option<u32>> = vec![None; layout.total()];
    let mut rng = StdRng::seed_from_u64(config.seed);
    let half = layout.jump_start();

    // --- Jump start: layers 0..L/2 join random classes. -----------------
    // One RNG fill per layer: all 3n class picks are drawn into a flat
    // buffer in a tight loop (draw order — real × vtype — unchanged, so
    // the stream and the packing stay bit-identical; `cds_digest` is the
    // oracle), then the cache-heavy join sweep runs without touching the
    // RNG. The buffer is reused across layers.
    let mut picks: Vec<u32> = vec![0; 3 * g.n()];
    for layer in 0..half {
        for p in picks.iter_mut() {
            *p = rng.gen_range(0..t) as u32;
        }
        let mut at = 0usize;
        for real in 0..g.n() {
            for vtype in VType::ALL {
                let vid = layout.vid(real, layer, vtype);
                let c = picks[at] as usize;
                at += 1;
                class_of[vid] = Some(c as u32);
                st.join(g, vid, c);
            }
        }
    }

    // --- Recursive class assignment: layers L/2..L. ---------------------
    let mut scratch = LayerScratch::new(g.n(), t);
    let mut trace = Vec::with_capacity(layers - half);
    for layer in half..layers {
        scratch.next_layer();
        let epoch = scratch.epoch;
        let excess_before = st.excess();

        // (1) Type-1 and type-3 new nodes pick random classes
        //     (recorded, but not merged until the layer finalizes).
        let mut c1 = vec![0usize; g.n()];
        let mut c3 = vec![0usize; g.n()];
        for real in 0..g.n() {
            c1[real] = rng.gen_range(0..t);
            c3[real] = rng.gen_range(0..t);
            class_of[layout.vid(real, layer, VType::T1)] = Some(c1[real] as u32);
            class_of[layout.vid(real, layer, VType::T3)] = Some(c3[real] as u32);
        }

        // A connected class (N_i ≤ 1) is inert for a whole layer body:
        // it cannot seat two distinct roots around any node (no
        // deactivation, no `Many` entry), and the bridging condition (c)
        // can never hold against its only root — so steps 2a–3 skip such
        // classes outright. Component counts are frozen until step 4, so
        // the filter is exact, and once every class is connected
        // (`M_ℓ = 0`, the steady state Lemma 4.4 drives the loop into) a
        // layer costs one linear pass of coin flips.
        let fragmented = |st: &ClassState, i: usize| st.component_count(i) >= 2;

        // (2a) Deactivation: components already bridged by a type-1 node.
        //      (No unions happen until step 4, so component roots are
        //      stable for the whole layer body and safe to stamp by id.)
        let mut deactivated = 0usize;
        for real in 0..g.n() {
            if !fragmented(&st, c1[real]) {
                continue;
            }
            scratch.adjacent_roots(&mut st, g, real, c1[real]);
            if scratch.roots.len() >= 2 {
                for &root in &scratch.roots {
                    if scratch.skip_epoch[root] != epoch {
                        scratch.skip_epoch[root] = epoch;
                        deactivated += 1;
                    }
                }
            }
        }

        // (2b) Potential-matches arrays: each type-3 new node w of class i
        //      reports its suitable components to every type-2 virtual
        //      neighbor.
        for real in 0..g.n() {
            let i = c3[real];
            if !fragmented(&st, i) {
                continue;
            }
            scratch.adjacent_roots(&mut st, g, real, i);
            if scratch.roots.is_empty() {
                continue;
            }
            for target in 0..=g.degree(real) {
                let x = if target == 0 {
                    real
                } else {
                    g.neighbors(real)[target - 1]
                };
                let slot = x * t + i;
                for &root in &scratch.roots {
                    if scratch.pm_epoch[slot] != epoch {
                        scratch.pm_epoch[slot] = epoch;
                        scratch.pm[slot] = PotentialMatches::One(root);
                    } else {
                        scratch.pm[slot] = scratch.pm[slot].merge_id(root);
                    }
                }
            }
        }

        // (3) Maximal matching: scan type-2 new nodes in random order,
        //     greedily matching to the first eligible component. Matched
        //     components join the deactivated ones in the skip table.
        let mut order: Vec<NodeId> = (0..g.n()).collect();
        order.shuffle(&mut rng);
        let mut matched = 0usize;
        let mut c2 = vec![usize::MAX; g.n()];
        for &x in &order {
            let mut assigned = None;
            // Enumerate (old-neighbor bundle, class) pairs around x. With
            // every class connected (`excess_before == 0`) no component is
            // matchable and the scan is skipped wholesale — the RNG
            // consumption below is unaffected (every node stays unmatched
            // and draws its one random class either way).
            'search: for cand in 0..=g.degree(x) {
                if excess_before == 0 {
                    break 'search;
                }
                let y = if cand == 0 {
                    x
                } else {
                    g.neighbors(x)[cand - 1]
                };
                for ci in 0..st.classes_at(y).len() {
                    let i = st.classes_at(y)[ci] as usize;
                    if !fragmented(&st, i) {
                        continue;
                    }
                    let root = match scratch.comp_root(&mut st, y, i) {
                        Some(r) => r,
                        None => continue,
                    };
                    if scratch.skip_epoch[root] == epoch {
                        continue;
                    }
                    let slot = x * t + i;
                    if scratch.pm_epoch[slot] == epoch && scratch.pm[slot].allows(root) {
                        assigned = Some((i, root));
                        break 'search;
                    }
                }
            }
            match assigned {
                Some((i, root)) => {
                    scratch.skip_epoch[root] = epoch;
                    matched += 1;
                    c2[x] = i;
                }
                None => {
                    c2[x] = rng.gen_range(0..t);
                }
            }
            class_of[layout.vid(x, layer, VType::T2)] = Some(c2[x] as u32);
        }

        // (4) Finalize the layer: merge all new assignments into the
        //     incremental component structure.
        for real in 0..g.n() {
            st.join(g, layout.vid(real, layer, VType::T1), c1[real]);
            st.join(g, layout.vid(real, layer, VType::T2), c2[real]);
            st.join(g, layout.vid(real, layer, VType::T3), c3[real]);
        }

        trace.push(LayerTrace {
            layer,
            excess_before,
            excess_after: st.excess(),
            matched,
            deactivated,
        });
    }

    // --- Projection to real vertex sets. --------------------------------
    let mut classes: Vec<Vec<NodeId>> = vec![Vec::new(); t];
    for real in 0..g.n() {
        for &c in st.classes_at(real) {
            classes[c as usize].push(real);
        }
    }
    let packing = CdsPacking {
        layout,
        num_classes: t,
        class_of,
        classes,
        trace,
    };
    (packing, st)
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp_graph::domination::is_cds;
    use decomp_graph::generators;

    fn valid_class_fraction(g: &Graph, p: &CdsPacking) -> f64 {
        let valid = (0..p.num_classes)
            .filter(|&c| is_cds(g, &p.class_mask(c)))
            .count();
        valid as f64 / p.num_classes as f64
    }

    #[test]
    fn single_class_on_small_graph_is_cds() {
        let g = generators::cycle(12);
        let p = cds_packing(&g, &CdsPackingConfig::with_classes(1, 3));
        assert_eq!(p.num_classes(), 1);
        assert!(is_cds(&g, &p.class_mask(0)));
    }

    #[test]
    fn harary_all_classes_are_cds() {
        let g = generators::harary(16, 64);
        let p = cds_packing(&g, &CdsPackingConfig::with_known_k(16, 7));
        assert!(p.num_classes() >= 2);
        assert_eq!(
            valid_class_fraction(&g, &p),
            1.0,
            "every class must be a CDS on a well-connected graph"
        );
    }

    #[test]
    fn hypercube_classes_are_cds() {
        let g = generators::hypercube(6); // 64 nodes, k = 6
        let p = cds_packing(&g, &CdsPackingConfig::with_known_k(6, 11));
        assert_eq!(valid_class_fraction(&g, &p), 1.0);
    }

    #[test]
    fn multiplicity_is_logarithmic() {
        let g = generators::harary(12, 96);
        let p = cds_packing(&g, &CdsPackingConfig::with_known_k(12, 5));
        let mult = p.max_real_multiplicity();
        // Each real node has only 3L virtual nodes, hence <= 3L classes.
        assert!(mult <= 3 * p.layout.layers());
        assert!(mult >= 1);
    }

    #[test]
    fn excess_decreases_monotonically() {
        let g = generators::harary(16, 80);
        let p = cds_packing(&g, &CdsPackingConfig::with_known_k(16, 2));
        for w in p.trace.windows(1) {
            assert!(
                w[0].excess_after <= w[0].excess_before,
                "Fast-Merger Lemma first part: M never increases"
            );
        }
        let last = p.trace.last().unwrap();
        assert_eq!(last.excess_after, 0, "all classes connected at the end");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::harary(8, 40);
        let cfg = CdsPackingConfig::with_known_k(8, 42);
        let a = cds_packing(&g, &cfg);
        let b = cds_packing(&g, &cfg);
        assert_eq!(a.classes, b.classes);
        let c = cds_packing(&g, &CdsPackingConfig::with_known_k(8, 43));
        assert!(a.classes != c.classes || a.class_of != c.class_of);
    }

    #[test]
    fn classes_partition_virtual_nodes() {
        let g = generators::cycle(10);
        let p = cds_packing(&g, &CdsPackingConfig::with_classes(2, 0));
        assert!(p.class_of.iter().all(|c| c.is_some()));
    }

    #[test]
    fn works_on_low_connectivity_graphs() {
        // k = 1: a single class must still come out a CDS.
        let g = generators::random_connected(30, 10, 9);
        let p = cds_packing(&g, &CdsPackingConfig::with_known_k(1, 1));
        assert_eq!(p.num_classes(), 1);
        assert!(is_cds(&g, &p.class_mask(0)));
    }

    #[test]
    fn two_node_graph() {
        let g = Graph::from_edges(2, [(0, 1)]);
        let p = cds_packing(&g, &CdsPackingConfig::with_classes(1, 0));
        assert!(is_cds(&g, &p.class_mask(0)));
    }

    use decomp_graph::Graph;

    #[test]
    fn trace_layers_cover_second_half() {
        let g = generators::cycle(16);
        let p = cds_packing(&g, &CdsPackingConfig::with_classes(1, 0));
        let l = p.layout.layers();
        assert_eq!(p.trace.len(), l - l / 2);
        assert_eq!(p.trace[0].layer, l / 2);
    }

    #[test]
    fn returned_state_matches_packing() {
        let g = generators::harary(6, 36);
        let (p, mut st) = cds_packing_with_state(&g, &CdsPackingConfig::with_classes(8, 4));
        assert_eq!(st.num_classes(), p.num_classes());
        assert_eq!(st.excess(), p.trace.last().unwrap().excess_after);
        for class in 0..p.num_classes() {
            // The state's projection agrees with the packing's classes.
            let members: Vec<usize> = st
                .comp_of(class)
                .iter()
                .enumerate()
                .filter_map(|(v, c)| c.map(|_| v))
                .collect();
            assert_eq!(members, p.classes[class]);
        }
        // Incremental counters agree with a from-scratch recomputation.
        let (counts, excess) = st.recompute_from_scratch(&g);
        for (class, &want) in counts.iter().enumerate() {
            assert_eq!(st.component_count(class), want);
        }
        assert_eq!(st.excess(), excess);
    }
}
