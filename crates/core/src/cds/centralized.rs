//! Centralized CDS-packing (Theorem 1.2, Appendix C) — `O(m log² n)`.
//!
//! The algorithm of Section 3.1:
//!
//! 1. build the virtual graph (`Θ(log n)` virtual nodes per real node,
//!    organized in `L` layers × 3 types);
//! 2. **jump start** — virtual nodes of layers `0..L/2` join uniformly
//!    random classes among `t = Θ(k)` classes (gives domination w.h.p.,
//!    Lemma 4.1);
//! 3. **recursive class assignment** — for each layer, type-1/3 new nodes
//!    join random classes, the *bridging graph* between old components and
//!    type-2 new nodes is formed (deactivating components already merged by
//!    type-1 connectors), and a maximal matching decides the type-2
//!    assignments (Lemma 4.4 drives the component count down by a constant
//!    factor per layer);
//! 4. project classes to real nodes: each class is a CDS w.h.p., and each
//!    real node lies in at most `3L = O(log n)` classes.
//!
//! Per-class components are never recomputed: [`ClassState`] maintains
//! them *incrementally* (one disjoint-set forest updated at join time,
//! with running `N_i` / `M_ℓ` aggregates, exactly as Appendix C
//! prescribes), and the layer loop's bridging-graph bookkeeping — the
//! potential-matches table, the deactivation flags, and the matched-
//! component flags — lives in flat epoch-stamped arrays reused across
//! layers, so a layer costs `O(m t)` array work with no hashing and no
//! per-layer allocation. Per-layer instrumentation (`M_ℓ`, matches,
//! deactivations) feeds the Fast-Merger experiment (Lemma 4.4 / E11).
//!
//! The per-class half of each layer body (steps 2a–2b) is independent
//! across classes: the component forest is frozen until the layer
//! finalizes, and with class-major scratch tables each class's working
//! set is one contiguous stride. [`CdsPackingConfig::workers`] farms
//! those strides onto scoped worker threads; the RNG-consuming steps
//! (random class picks, the shuffled matching scan) stay sequential, so
//! the packing is bit-identical for every worker count.

use crate::cds::class_state::{ClassState, CompId};
use crate::virtual_graph::{default_layers, VType, VirtualLayout};
use decomp_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Configuration for [`cds_packing`].
#[derive(Clone, Debug)]
pub struct CdsPackingConfig {
    /// Number of classes `t = Θ(k)`. `with_known_k` derives it from the
    /// connectivity estimate.
    pub num_classes: usize,
    /// Layer-count multiplier: `L = layers_factor · ⌈log₂ n⌉` (even, ≥ 4).
    pub layers_factor: f64,
    /// RNG seed (experiments are reproducible per seed).
    pub seed: u64,
    /// Worker threads for the per-class half of the layer loop (steps
    /// 2a–2b: deactivation and the potential-matches tables, farmed one
    /// non-inert class per task). `1` (the default) runs inline with no
    /// thread spawns. Outputs are **bit-identical for every worker
    /// count** — the parallel steps read a frozen component forest and
    /// write class-disjoint scratch strides, and the RNG-consuming steps
    /// (1 and 3) stay sequential — so this is a pure wall-clock knob;
    /// `examples/cds_digest.rs` is the oracle.
    pub workers: usize,
}

/// Default ratio `t / k`. The Fast-Merger analysis (Lemma 4.5) needs
/// `t` a sufficiently small constant fraction of `k` so that
/// `E[Z] = k′/(4t) > 1`; one quarter works well across our benchmarks.
pub const DEFAULT_CLASSES_PER_K: f64 = 0.25;

/// Default `layers_factor`.
pub const DEFAULT_LAYERS_FACTOR: f64 = 3.0;

impl CdsPackingConfig {
    /// Configuration from a known (or 2-approximated) vertex connectivity.
    ///
    /// Sets `t = max(1, ⌊k/4⌋)` classes.
    pub fn with_known_k(k: usize, seed: u64) -> Self {
        let t = ((k as f64 * DEFAULT_CLASSES_PER_K).floor() as usize).max(1);
        CdsPackingConfig {
            num_classes: t,
            layers_factor: DEFAULT_LAYERS_FACTOR,
            seed,
            workers: 1,
        }
    }

    /// Configuration with an explicit class count `t`.
    pub fn with_classes(t: usize, seed: u64) -> Self {
        assert!(t >= 1, "need at least one class");
        CdsPackingConfig {
            num_classes: t,
            layers_factor: DEFAULT_LAYERS_FACTOR,
            seed,
            workers: 1,
        }
    }

    /// Returns the configuration with `workers` threads for the
    /// per-class layer-loop steps (clamped to at least one). A pure
    /// wall-clock knob: the packing is bit-identical for every value.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }
}

/// Per-layer instrumentation of the recursive class assignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LayerTrace {
    /// The layer whose nodes were being assigned.
    pub layer: usize,
    /// `M_ℓ`: total excess components (Σ_i max(0, N_i − 1)) before this
    /// layer's assignments were merged in.
    pub excess_before: usize,
    /// `M_{ℓ+1}` after merging in this layer.
    pub excess_after: usize,
    /// Type-2 new nodes matched through the bridging graph.
    pub matched: usize,
    /// Components deactivated by type-1 connectors.
    pub deactivated: usize,
}

/// The result of the CDS-packing construction.
#[derive(Clone, Debug)]
pub struct CdsPacking {
    /// Virtual-graph layout used.
    pub layout: VirtualLayout,
    /// Number of classes `t`.
    pub num_classes: usize,
    /// Class of each virtual node.
    pub class_of: Vec<Option<u32>>,
    /// Projected real vertex set of each class (sorted).
    pub classes: Vec<Vec<NodeId>>,
    /// Per-layer merge statistics (recursive layers only).
    pub trace: Vec<LayerTrace>,
}

impl CdsPacking {
    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Maximum number of classes any real node belongs to
    /// (the `O(log n)` bound of Theorem 1.2).
    pub fn max_real_multiplicity(&self) -> usize {
        let n = self.layout.n();
        let mut count = vec![0usize; n];
        for class in &self.classes {
            for &v in class {
                count[v] += 1;
            }
        }
        count.into_iter().max().unwrap_or(0)
    }

    /// Membership mask for one class.
    pub fn class_mask(&self, class: usize) -> Vec<bool> {
        let mut mask = vec![false; self.layout.n()];
        for &v in &self.classes[class] {
            mask[v] = true;
        }
        mask
    }
}

/// The potential-matches entry per `(type-2 node, class)` (Appendix C):
/// either exactly one suitable component id, or "connector" (≥ 2 distinct).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PotentialMatches {
    One(CompId),
    Many,
}

impl PotentialMatches {
    fn merge_id(self, root: CompId) -> Self {
        match self {
            PotentialMatches::One(r) if r == root => self,
            PotentialMatches::One(_) => PotentialMatches::Many,
            PotentialMatches::Many => PotentialMatches::Many,
        }
    }

    /// Whether the bridging condition (c) holds against component `root`:
    /// a type-3 connector leads to *some other* component.
    fn allows(self, root: CompId) -> bool {
        match self {
            PotentialMatches::Many => true,
            PotentialMatches::One(r) => r != root,
        }
    }
}

/// Flat per-layer working memory, reused across layers. All entries are
/// epoch-stamped: a slot is live only if its stamp equals the current
/// layer's epoch, so resetting between layers is a single counter bump
/// instead of an `O(n t + 3Ln)` clear (and instead of the hash maps this
/// loop used before the incremental rewrite).
///
/// Every table is **class-major** (`slot = class * n + real`, matching
/// the [`ClassState`] forest layout), so one class's entries form one
/// contiguous stride — [`class_tasks`](Self::class_tasks) hands each
/// stride out as a disjoint `&mut` slice, which is what lets the layer
/// loop farm per-class work onto worker threads with no locks and no
/// cloning.
struct LayerScratch {
    epoch: u32,
    n: usize,
    /// Potential-matches table, indexed `class * n + x`.
    pm_epoch: Vec<u32>,
    pm: Vec<PotentialMatches>,
    /// Component roots to skip in the matching scan (deactivated by a
    /// type-1 connector, or already matched), indexed by root id. A root
    /// belongs to exactly one class, so the class key is implicit — and
    /// with class-major slots a class-`i` root always lies in stride `i`.
    skip_epoch: Vec<u32>,
    /// Per-layer memo of the component root per bundle, indexed
    /// `class * n + real`. Component roots are stable for a whole layer
    /// body (no unions happen until the layer finalizes), and every node
    /// queries the same bundles its neighbors do, so one find per bundle
    /// per layer serves the deactivation, bridging, and matching scans.
    root_epoch: Vec<u32>,
    root_memo: Vec<u32>,
}

/// Memo encoding of "bundle unoccupied".
const NO_ROOT: u32 = u32::MAX;

impl LayerScratch {
    fn new(n: usize, t: usize) -> Self {
        LayerScratch {
            epoch: 0,
            n,
            pm_epoch: vec![0; n * t],
            pm: vec![PotentialMatches::Many; n * t],
            skip_epoch: vec![0; n * t],
            root_epoch: vec![0; n * t],
            root_memo: vec![NO_ROOT; n * t],
        }
    }

    /// Starts a new layer: invalidates every stamped entry at once.
    fn next_layer(&mut self) {
        self.epoch += 1;
    }

    /// Splits every table into its per-class strides: one
    /// [`ClassTask`] per class, all mutably borrowed at once and
    /// mutually disjoint — safe to send to different worker threads.
    fn class_tasks(&mut self) -> Vec<ClassTask<'_>> {
        let n = self.n;
        self.pm_epoch
            .chunks_mut(n)
            .zip(self.pm.chunks_mut(n))
            .zip(self.skip_epoch.chunks_mut(n))
            .zip(self.root_epoch.chunks_mut(n))
            .zip(self.root_memo.chunks_mut(n))
            .enumerate()
            .map(
                |(class, ((((pm_epoch, pm), skip_epoch), root_epoch), root_memo))| ClassTask {
                    class,
                    pm_epoch,
                    pm,
                    skip_epoch,
                    root_epoch,
                    root_memo,
                },
            )
            .collect()
    }

    /// Component root of the `(real, class)` bundle through the
    /// per-layer memo — the step-3 (matching scan) read path, which may
    /// hit bundles no parallel task touched. Reads the *frozen* forest
    /// ([`ClassState::comp_root_frozen`]), same roots as the mutable
    /// find.
    fn comp_root(&mut self, st: &ClassState, real: NodeId, class: usize) -> Option<CompId> {
        let slot = class * self.n + real;
        if self.root_epoch[slot] != self.epoch {
            self.root_epoch[slot] = self.epoch;
            self.root_memo[slot] = match st.comp_root_frozen(real, class) {
                Some(r) => r as u32,
                None => NO_ROOT,
            };
        }
        match self.root_memo[slot] {
            NO_ROOT => None,
            r => Some(r as usize),
        }
    }
}

/// One class's contiguous stride of every scratch table — the unit of
/// work the layer loop farms onto a worker thread. Strides of distinct
/// classes are disjoint, so workers share nothing mutable; the
/// component forest is read concurrently through
/// [`ClassState::comp_root_frozen`] (frozen for the whole layer body).
struct ClassTask<'a> {
    class: usize,
    pm_epoch: &'a mut [u32],
    pm: &'a mut [PotentialMatches],
    skip_epoch: &'a mut [u32],
    root_epoch: &'a mut [u32],
    root_memo: &'a mut [u32],
}

impl ClassTask<'_> {
    /// [`LayerScratch::comp_root`] restricted to this class's stride
    /// (local index = real id).
    fn comp_root(&mut self, st: &ClassState, real: NodeId, epoch: u32) -> Option<CompId> {
        if self.root_epoch[real] != epoch {
            self.root_epoch[real] = epoch;
            self.root_memo[real] = match st.comp_root_frozen(real, self.class) {
                Some(r) => r as u32,
                None => NO_ROOT,
            };
        }
        match self.root_memo[real] {
            NO_ROOT => None,
            r => Some(r as usize),
        }
    }

    /// Distinct component roots of this class adjacent (in the virtual
    /// graph) to a new node on `real` — the bundles on `real` itself and
    /// on its real neighbors — read through the per-layer memo; fills
    /// `roots` (caller-owned so each worker reuses one buffer).
    fn adjacent_roots(
        &mut self,
        st: &ClassState,
        g: &Graph,
        real: NodeId,
        epoch: u32,
        roots: &mut Vec<CompId>,
    ) {
        roots.clear();
        if let Some(r) = self.comp_root(st, real, epoch) {
            roots.push(r);
        }
        for &u in g.neighbors(real) {
            if let Some(r) = self.comp_root(st, u, epoch) {
                if !roots.contains(&r) {
                    roots.push(r);
                }
            }
        }
    }

    /// Steps 2a–2b of the layer body for this class: (2a) stamp the
    /// components deactivated by type-1 connectors, (2b) build the
    /// potential-matches table from type-3 reporters. `c1s` / `c3s` are
    /// the reals whose type-1 / type-3 pick landed on this class,
    /// ascending — exactly the iterations the sequential `0..n` sweeps
    /// would have spent on it, in the same relative order. Returns the
    /// number of components deactivated.
    ///
    /// Order-independence across classes is structural (disjoint
    /// strides); within a class the results are order-independent too —
    /// a skip stamp is a set insert, and a `pm` entry folds to
    /// [`PotentialMatches::One`] iff every reported root agrees,
    /// whatever the report order — which is why any parallel schedule
    /// yields bit-identical tables.
    fn run_steps_2a_2b(
        &mut self,
        st: &ClassState,
        g: &Graph,
        epoch: u32,
        c1s: &[NodeId],
        c3s: &[NodeId],
        roots: &mut Vec<CompId>,
    ) -> usize {
        let base = self.class * g.n();
        let mut deactivated = 0usize;
        for &real in c1s {
            self.adjacent_roots(st, g, real, epoch, roots);
            if roots.len() >= 2 {
                for &root in roots.iter() {
                    let local = root - base;
                    if self.skip_epoch[local] != epoch {
                        self.skip_epoch[local] = epoch;
                        deactivated += 1;
                    }
                }
            }
        }
        for &real in c3s {
            self.adjacent_roots(st, g, real, epoch, roots);
            if roots.is_empty() {
                continue;
            }
            for target in 0..=g.degree(real) {
                let x = if target == 0 {
                    real
                } else {
                    g.neighbors(real)[target - 1]
                };
                for &root in roots.iter() {
                    if self.pm_epoch[x] != epoch {
                        self.pm_epoch[x] = epoch;
                        self.pm[x] = PotentialMatches::One(root);
                    } else {
                        self.pm[x] = self.pm[x].merge_id(root);
                    }
                }
            }
        }
        deactivated
    }
}

/// Reals bucketed by their class pick (ascending real id within each
/// class) — the per-class worklists steps 2a–2b are farmed out over.
/// CSR layout: class `i`'s reals are `items[starts[i]..starts[i+1]]`.
struct ClassBuckets {
    starts: Vec<usize>,
    items: Vec<NodeId>,
}

impl ClassBuckets {
    fn build(picks: &[usize], t: usize) -> Self {
        let mut starts = vec![0usize; t + 1];
        for &c in picks {
            starts[c + 1] += 1;
        }
        for i in 0..t {
            starts[i + 1] += starts[i];
        }
        let mut cursor = starts.clone();
        let mut items = vec![0usize; picks.len()];
        for (real, &c) in picks.iter().enumerate() {
            items[cursor[c]] = real;
            cursor[c] += 1;
        }
        ClassBuckets { starts, items }
    }

    fn class(&self, i: usize) -> &[NodeId] {
        &self.items[self.starts[i]..self.starts[i + 1]]
    }
}

/// Runs the CDS-packing construction of Section 3.1 / Appendix C.
///
/// Returns `t = config.num_classes` classes of virtual nodes projected to
/// real vertex sets. W.h.p. (for `t = Θ(k)` with suitable constants) every
/// class is a connected dominating set; [`crate::cds::verify`] checks this
/// and [`crate::cds::tree_extract`] turns the classes into a fractional
/// dominating-tree packing.
///
/// # Example
///
/// ```
/// use decomp_core::cds::centralized::{cds_packing, CdsPackingConfig};
/// use decomp_graph::{domination::is_cds, generators};
///
/// let g = generators::harary(8, 48); // 8-connected circulant
/// let packing = cds_packing(&g, &CdsPackingConfig::with_known_k(8, 1));
/// assert_eq!(packing.num_classes(), 2); // t = ⌊k/4⌋
/// for class in 0..packing.num_classes() {
///     assert!(is_cds(&g, &packing.class_mask(class)));
/// }
/// ```
///
/// # Panics
/// Panics if the graph is empty.
pub fn cds_packing(g: &Graph, config: &CdsPackingConfig) -> CdsPacking {
    cds_packing_with_state(g, config).0
}

/// [`cds_packing`] variant that also returns the final [`ClassState`] —
/// the incrementally-maintained per-class component structure — so
/// downstream stages ([`crate::cds::tree_extract`],
/// [`crate::cds::connector`]) can consume the components instead of
/// recomputing them.
///
/// # Panics
/// Panics if the graph is empty.
#[allow(clippy::needless_range_loop)] // lockstep loops index several per-node arrays at once
pub fn cds_packing_with_state(g: &Graph, config: &CdsPackingConfig) -> (CdsPacking, ClassState) {
    assert!(g.n() > 0, "CDS packing needs a non-empty graph");
    let layers = default_layers(g.n(), config.layers_factor);
    let layout = VirtualLayout::new(g.n(), layers);
    let t = config.num_classes;
    let mut st = ClassState::new(layout, t);
    let mut class_of: Vec<Option<u32>> = vec![None; layout.total()];
    let mut rng = StdRng::seed_from_u64(config.seed);
    let half = layout.jump_start();

    // --- Jump start: layers 0..L/2 join random classes. -----------------
    // One RNG fill per layer: all 3n class picks are drawn into a flat
    // buffer in a tight loop (draw order — real × vtype — unchanged, so
    // the stream and the packing stay bit-identical; `cds_digest` is the
    // oracle), then the cache-heavy join sweep runs without touching the
    // RNG. The buffer is reused across layers.
    let mut picks: Vec<u32> = vec![0; 3 * g.n()];
    for layer in 0..half {
        for p in picks.iter_mut() {
            *p = rng.gen_range(0..t) as u32;
        }
        let mut at = 0usize;
        for real in 0..g.n() {
            for vtype in VType::ALL {
                let vid = layout.vid(real, layer, vtype);
                let c = picks[at] as usize;
                at += 1;
                class_of[vid] = Some(c as u32);
                st.join(g, vid, c);
            }
        }
    }

    // --- Recursive class assignment: layers L/2..L. ---------------------
    let mut scratch = LayerScratch::new(g.n(), t);
    let mut trace = Vec::with_capacity(layers - half);
    for layer in half..layers {
        scratch.next_layer();
        let epoch = scratch.epoch;
        let excess_before = st.excess();

        // (1) Type-1 and type-3 new nodes pick random classes
        //     (recorded, but not merged until the layer finalizes).
        let mut c1 = vec![0usize; g.n()];
        let mut c3 = vec![0usize; g.n()];
        for real in 0..g.n() {
            c1[real] = rng.gen_range(0..t);
            c3[real] = rng.gen_range(0..t);
            class_of[layout.vid(real, layer, VType::T1)] = Some(c1[real] as u32);
            class_of[layout.vid(real, layer, VType::T3)] = Some(c3[real] as u32);
        }

        // A connected class (N_i ≤ 1) is inert for a whole layer body:
        // it cannot seat two distinct roots around any node (no
        // deactivation, no `Many` entry), and the bridging condition (c)
        // can never hold against its only root — so steps 2a–3 skip such
        // classes outright. Component counts are frozen until step 4, so
        // the filter is exact, and once every class is connected
        // (`M_ℓ = 0`, the steady state Lemma 4.4 drives the loop into) a
        // layer costs one linear pass of coin flips.
        let fragmented = |st: &ClassState, i: usize| st.component_count(i) >= 2;

        // (2a + 2b) Deactivation (components already bridged by a type-1
        //      node) and the potential-matches tables (each type-3 new
        //      node of class i reports its suitable components to every
        //      type-2 virtual neighbor) — farmed one non-inert class per
        //      task. No unions happen until step 4, so the component
        //      forest is frozen for the whole layer body: tasks read it
        //      concurrently through non-compressing finds and write only
        //      their own class-major scratch stride, which makes any
        //      schedule — inline or across `config.workers` scoped
        //      threads — produce bit-identical tables and the same
        //      deactivation count (summed over tasks in class order).
        let by_c1 = ClassBuckets::build(&c1, t);
        let by_c3 = ClassBuckets::build(&c3, t);
        let deactivated: usize = {
            let mut tasks: Vec<ClassTask<'_>> = scratch
                .class_tasks()
                .into_iter()
                .filter(|task| fragmented(&st, task.class))
                .collect();
            let st = &st;
            let run = |task: &mut ClassTask<'_>, roots: &mut Vec<CompId>| {
                task.run_steps_2a_2b(
                    st,
                    g,
                    epoch,
                    by_c1.class(task.class),
                    by_c3.class(task.class),
                    roots,
                )
            };
            let workers = config.workers.max(1).min(tasks.len().max(1));
            if workers <= 1 {
                let mut roots = Vec::new();
                tasks.iter_mut().map(|task| run(task, &mut roots)).sum()
            } else {
                let per_worker = tasks.len().div_ceil(workers);
                let run = &run;
                std::thread::scope(|s| {
                    let handles: Vec<_> = tasks
                        .chunks_mut(per_worker)
                        .map(|chunk| {
                            s.spawn(move || {
                                let mut roots = Vec::new();
                                chunk
                                    .iter_mut()
                                    .map(|task| run(task, &mut roots))
                                    .sum::<usize>()
                            })
                        })
                        .collect();
                    handles.into_iter().map(|h| h.join().unwrap()).sum()
                })
            }
        };

        // (3) Maximal matching: scan type-2 new nodes in random order,
        //     greedily matching to the first eligible component. Matched
        //     components join the deactivated ones in the skip table.
        let mut order: Vec<NodeId> = (0..g.n()).collect();
        order.shuffle(&mut rng);
        let mut matched = 0usize;
        let mut c2 = vec![usize::MAX; g.n()];
        for &x in &order {
            let mut assigned = None;
            // Enumerate (old-neighbor bundle, class) pairs around x. With
            // every class connected (`excess_before == 0`) no component is
            // matchable and the scan is skipped wholesale — the RNG
            // consumption below is unaffected (every node stays unmatched
            // and draws its one random class either way).
            'search: for cand in 0..=g.degree(x) {
                if excess_before == 0 {
                    break 'search;
                }
                let y = if cand == 0 {
                    x
                } else {
                    g.neighbors(x)[cand - 1]
                };
                for ci in 0..st.classes_at(y).len() {
                    let i = st.classes_at(y)[ci] as usize;
                    if !fragmented(&st, i) {
                        continue;
                    }
                    let root = match scratch.comp_root(&st, y, i) {
                        Some(r) => r,
                        None => continue,
                    };
                    if scratch.skip_epoch[root] == epoch {
                        continue;
                    }
                    let slot = i * g.n() + x;
                    if scratch.pm_epoch[slot] == epoch && scratch.pm[slot].allows(root) {
                        assigned = Some((i, root));
                        break 'search;
                    }
                }
            }
            match assigned {
                Some((i, root)) => {
                    scratch.skip_epoch[root] = epoch;
                    matched += 1;
                    c2[x] = i;
                }
                None => {
                    c2[x] = rng.gen_range(0..t);
                }
            }
            class_of[layout.vid(x, layer, VType::T2)] = Some(c2[x] as u32);
        }

        // (4) Finalize the layer: merge all new assignments into the
        //     incremental component structure.
        for real in 0..g.n() {
            st.join(g, layout.vid(real, layer, VType::T1), c1[real]);
            st.join(g, layout.vid(real, layer, VType::T2), c2[real]);
            st.join(g, layout.vid(real, layer, VType::T3), c3[real]);
        }

        trace.push(LayerTrace {
            layer,
            excess_before,
            excess_after: st.excess(),
            matched,
            deactivated,
        });
    }

    // --- Projection to real vertex sets. --------------------------------
    let mut classes: Vec<Vec<NodeId>> = vec![Vec::new(); t];
    for real in 0..g.n() {
        for &c in st.classes_at(real) {
            classes[c as usize].push(real);
        }
    }
    let packing = CdsPacking {
        layout,
        num_classes: t,
        class_of,
        classes,
        trace,
    };
    (packing, st)
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp_graph::domination::is_cds;
    use decomp_graph::generators;

    fn valid_class_fraction(g: &Graph, p: &CdsPacking) -> f64 {
        let valid = (0..p.num_classes)
            .filter(|&c| is_cds(g, &p.class_mask(c)))
            .count();
        valid as f64 / p.num_classes as f64
    }

    #[test]
    fn single_class_on_small_graph_is_cds() {
        let g = generators::cycle(12);
        let p = cds_packing(&g, &CdsPackingConfig::with_classes(1, 3));
        assert_eq!(p.num_classes(), 1);
        assert!(is_cds(&g, &p.class_mask(0)));
    }

    #[test]
    fn harary_all_classes_are_cds() {
        let g = generators::harary(16, 64);
        let p = cds_packing(&g, &CdsPackingConfig::with_known_k(16, 7));
        assert!(p.num_classes() >= 2);
        assert_eq!(
            valid_class_fraction(&g, &p),
            1.0,
            "every class must be a CDS on a well-connected graph"
        );
    }

    #[test]
    fn hypercube_classes_are_cds() {
        let g = generators::hypercube(6); // 64 nodes, k = 6
        let p = cds_packing(&g, &CdsPackingConfig::with_known_k(6, 11));
        assert_eq!(valid_class_fraction(&g, &p), 1.0);
    }

    #[test]
    fn multiplicity_is_logarithmic() {
        let g = generators::harary(12, 96);
        let p = cds_packing(&g, &CdsPackingConfig::with_known_k(12, 5));
        let mult = p.max_real_multiplicity();
        // Each real node has only 3L virtual nodes, hence <= 3L classes.
        assert!(mult <= 3 * p.layout.layers());
        assert!(mult >= 1);
    }

    #[test]
    fn excess_decreases_monotonically() {
        let g = generators::harary(16, 80);
        let p = cds_packing(&g, &CdsPackingConfig::with_known_k(16, 2));
        for w in p.trace.windows(1) {
            assert!(
                w[0].excess_after <= w[0].excess_before,
                "Fast-Merger Lemma first part: M never increases"
            );
        }
        let last = p.trace.last().unwrap();
        assert_eq!(last.excess_after, 0, "all classes connected at the end");
    }

    #[test]
    fn workers_do_not_change_the_packing() {
        // The parallel per-class steps must be a pure wall-clock knob:
        // many classes relative to the connectivity keeps classes
        // fragmented after the jump start, so the farmed deactivation /
        // bridging / matching machinery genuinely runs here.
        let g = generators::harary(6, 400);
        for seed in [1u64, 9, 42] {
            let base = CdsPackingConfig::with_classes(24, seed);
            let one = cds_packing(&g, &base);
            assert!(
                one.trace.iter().any(|l| l.excess_before > 0),
                "instance must exercise the fragmented regime"
            );
            for workers in [2usize, 3, 8, 64] {
                let w = cds_packing(&g, &base.clone().with_workers(workers));
                assert_eq!(one.class_of, w.class_of, "workers={workers} seed={seed}");
                assert_eq!(one.classes, w.classes, "workers={workers} seed={seed}");
                assert_eq!(one.trace, w.trace, "workers={workers} seed={seed}");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = generators::harary(8, 40);
        let cfg = CdsPackingConfig::with_known_k(8, 42);
        let a = cds_packing(&g, &cfg);
        let b = cds_packing(&g, &cfg);
        assert_eq!(a.classes, b.classes);
        let c = cds_packing(&g, &CdsPackingConfig::with_known_k(8, 43));
        assert!(a.classes != c.classes || a.class_of != c.class_of);
    }

    #[test]
    fn classes_partition_virtual_nodes() {
        let g = generators::cycle(10);
        let p = cds_packing(&g, &CdsPackingConfig::with_classes(2, 0));
        assert!(p.class_of.iter().all(|c| c.is_some()));
    }

    #[test]
    fn works_on_low_connectivity_graphs() {
        // k = 1: a single class must still come out a CDS.
        let g = generators::random_connected(30, 10, 9);
        let p = cds_packing(&g, &CdsPackingConfig::with_known_k(1, 1));
        assert_eq!(p.num_classes(), 1);
        assert!(is_cds(&g, &p.class_mask(0)));
    }

    #[test]
    fn two_node_graph() {
        let g = Graph::from_edges(2, [(0, 1)]);
        let p = cds_packing(&g, &CdsPackingConfig::with_classes(1, 0));
        assert!(is_cds(&g, &p.class_mask(0)));
    }

    use decomp_graph::Graph;

    #[test]
    fn trace_layers_cover_second_half() {
        let g = generators::cycle(16);
        let p = cds_packing(&g, &CdsPackingConfig::with_classes(1, 0));
        let l = p.layout.layers();
        assert_eq!(p.trace.len(), l - l / 2);
        assert_eq!(p.trace[0].layer, l / 2);
    }

    #[test]
    fn returned_state_matches_packing() {
        let g = generators::harary(6, 36);
        let (p, mut st) = cds_packing_with_state(&g, &CdsPackingConfig::with_classes(8, 4));
        assert_eq!(st.num_classes(), p.num_classes());
        assert_eq!(st.excess(), p.trace.last().unwrap().excess_after);
        for class in 0..p.num_classes() {
            // The state's projection agrees with the packing's classes.
            let members: Vec<usize> = st
                .comp_of(class)
                .iter()
                .enumerate()
                .filter_map(|(v, c)| c.map(|_| v))
                .collect();
            assert_eq!(members, p.classes[class]);
        }
        // Incremental counters agree with a from-scratch recomputation.
        let (counts, excess) = st.recompute_from_scratch(&g);
        for (class, &want) in counts.iter().enumerate() {
            assert_eq!(st.component_count(class), want);
        }
        assert_eq!(st.excess(), excess);
    }
}
