//! Vertex independent trees from vertex-disjoint dominating trees
//! (Section 1.4.1, the Zehavi–Itai connection).
//!
//! Given `k′` vertex-disjoint dominating trees and any root `r`, extending
//! each tree to a spanning tree by attaching every remaining vertex as a
//! leaf yields `k′` *vertex independent trees*: for every `v`, the `r → v`
//! paths in different trees are internally vertex-disjoint (each path's
//! internal vertices lie in its own dominating tree — plus possibly `r`
//! and `v` themselves, which are endpoints). The paper notes this makes
//! \[12, Thm 1.2\] a poly-log approximation of the Zehavi–Itai conjecture,
//! algorithmic here with near-optimal complexity.

use crate::packing::DomTreePacking;
use decomp_graph::mst::RootedTree;
use decomp_graph::{Graph, NodeId};

/// Builds one spanning tree per dominating tree, all rooted at `root`,
/// by attaching non-members as leaves to a dominating-tree neighbor
/// (preferring a neighbor inside the tree; `root` itself attaches to a
/// tree member too if it is not already one).
///
/// # Panics
/// Panics if the packing's trees are not vertex-disjoint or some vertex
/// has no neighbor in some tree (i.e. a tree fails to dominate).
pub fn independent_trees(g: &Graph, packing: &DomTreePacking, root: NodeId) -> Vec<RootedTree> {
    crate::cds::integral::check_vertex_disjoint(g, packing)
        .expect("independent trees need vertex-disjoint dominating trees");
    let n = g.n();
    let mut out = Vec::with_capacity(packing.num_trees());
    for t in &packing.trees {
        let mut member = vec![false; n];
        for v in t.vertices(n) {
            member[v] = true;
        }
        let mut edges = t.edges.clone();
        for v in 0..n {
            if member[v] {
                continue;
            }
            let anchor = g
                .neighbors(v)
                .iter()
                .copied()
                .find(|&u| member[u])
                .unwrap_or_else(|| panic!("vertex {v} is not dominated by tree {}", t.id));
            edges.push((anchor, v));
        }
        let tree = RootedTree::from_edges(n, root, &edges)
            .expect("dominating tree plus leaves must form a spanning tree");
        assert_eq!(tree.size(), n, "tree must span after leaf attachment");
        out.push(tree);
    }
    out
}

/// Verifies the vertex-independence property: for each vertex `v`, the
/// `root → v` paths in the given spanning trees are internally
/// vertex-disjoint.
pub fn check_independent(trees: &[RootedTree], root: NodeId) -> Result<(), String> {
    let n = trees.first().map(|t| t.parent.len()).unwrap_or(0);
    for v in 0..n {
        if v == root {
            continue;
        }
        let mut used = vec![false; n];
        for (i, t) in trees.iter().enumerate() {
            if t.root != root {
                return Err(format!("tree {i} rooted at {} != {root}", t.root));
            }
            let mut cur = t.parent[v];
            while cur != root {
                if cur == usize::MAX {
                    return Err(format!("tree {i} does not span vertex {v}"));
                }
                if used[cur] {
                    return Err(format!(
                        "internal vertex {cur} shared between root-{v} paths"
                    ));
                }
                used[cur] = true;
                cur = t.parent[cur];
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cds::integral::integral_cds_packing;
    use decomp_graph::generators;

    #[test]
    fn complete_graph_independent_trees() {
        let g = generators::complete(24);
        let packing = integral_cds_packing(&g, 4, 3).packing;
        assert_eq!(packing.num_trees(), 4);
        let trees = independent_trees(&g, &packing, 0);
        assert_eq!(trees.len(), 4);
        check_independent(&trees, 0).unwrap();
    }

    #[test]
    fn harary_independent_trees() {
        let g = generators::harary(32, 96);
        let packing = integral_cds_packing(&g, 4, 7).packing;
        assert!(packing.num_trees() >= 2);
        let trees = independent_trees(&g, &packing, 5);
        check_independent(&trees, 5).unwrap();
        for t in &trees {
            assert_eq!(t.size(), g.n());
        }
    }

    #[test]
    fn bipartite_pair_trees_independent() {
        // K_{4,20} with 4 disjoint pair trees (left_i, right_i).
        let t = 4;
        let g = generators::complete_bipartite(t, 20);
        let packing = DomTreePacking {
            trees: (0..t)
                .map(|i| crate::packing::WeightedDomTree {
                    id: i,
                    weight: 1.0,
                    edges: vec![(i, t + i)],
                    singleton: None,
                })
                .collect(),
        };
        let trees = independent_trees(&g, &packing, t); // root = right vertex 0
        check_independent(&trees, t).unwrap();
    }

    #[test]
    fn checker_rejects_shared_internals() {
        // Two identical path trees share all internals.
        let t1 = RootedTree::from_edges(4, 0, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let t2 = t1.clone();
        assert!(check_independent(&[t1, t2], 0).is_err());
    }

    #[test]
    #[should_panic(expected = "vertex-disjoint")]
    fn rejects_overlapping_packing() {
        let g = generators::complete(6);
        let tree = crate::packing::WeightedDomTree {
            id: 0,
            weight: 1.0,
            edges: vec![(0, 1)],
            singleton: None,
        };
        let packing = DomTreePacking {
            trees: vec![tree.clone(), tree],
        };
        independent_trees(&g, &packing, 0);
    }
}
