//! Incremental per-class connectivity — the bookkeeping core of the
//! CDS-packing layer loop (Appendix C).
//!
//! As virtual nodes [`join`](ClassState::join) their classes, the state
//! maintains, *incrementally* and without any per-layer rescans:
//!
//! * a disjoint-set forest over the `(real node, class)` *bundles* — all
//!   virtual nodes of one real node in one class are mutually adjacent,
//!   so one slot per bundle carries the full component structure of every
//!   class's virtual subgraph while keeping the forest `Θ(log n)`× smaller
//!   than one over the virtual nodes;
//! * the sorted list of classes present on each real node (the projection
//!   `Ψ` read off directly);
//! * the running component count `N_i` per class and the running total
//!   excess `M = Σ_i max(0, N_i − 1)` that the Fast-Merger analysis
//!   (Lemma 4.4) tracks per layer.
//!
//! Because every class-`i` virtual node on a real node is merged with its
//! same-real and adjacent-real class-`i` peers at join time, the sets of
//! the forest correspond **exactly** to the connected components of the
//! projected real subgraph `G[Ψ(i)]`: `N_i` is that component count, and
//! `N_i == 1` certifies the projection connected with no traversal.
//!
//! The state is also *deletion-aware*: when a vertex fails (the fault &
//! churn suite), [`delete_vertex`](ClassState::delete_vertex) repairs
//! exactly the classes the dead node belonged to — each touched class's
//! union-find stride is dissolved and re-unioned over an order-1 sparse
//! certificate ([`decomp_graph::sparsecert`]) of the surviving members'
//! induced subgraph — instead of rerunning the full layer loop.
//!
//! The centralized layer loop ([`crate::cds::centralized`]) drives the
//! state and reads components through [`comp_root`](ClassState::comp_root)
//! (behind a per-layer memo of its own, since roots are stable between
//! joins); the tree
//! extraction ([`crate::cds::tree_extract`]) uses `N_i` as its
//! connectivity certificate; the connector analysis
//! ([`crate::cds::connector`]) builds its
//! [`ProjectionView`](crate::cds::connector::ProjectionView)s from
//! [`comp_of`](ClassState::comp_of); and the distributed port's
//! flood-computed component tables are cross-checked against a replayed
//! `ClassState` in the integration suites.

use crate::virtual_graph::{VirtualId, VirtualLayout};
use decomp_graph::sparsecert::sparse_certificate;
use decomp_graph::unionfind::UnionFind;
use decomp_graph::{Graph, NodeId};
use std::collections::HashMap;

/// Opaque identifier of one current component of one class.
///
/// Stable between two [`ClassState::join`] calls; only meaningful under
/// equality (two queries return the same `CompId` iff they reached the
/// same component).
pub type CompId = usize;

/// Incrementally-maintained component structure of every class's virtual
/// subgraph (and, equivalently, of every class's projected real subgraph).
///
/// # Example
///
/// ```
/// use decomp_core::cds::class_state::ClassState;
/// use decomp_core::virtual_graph::{VirtualLayout, VType};
/// use decomp_graph::generators;
///
/// let g = generators::path(3); // 0 - 1 - 2
/// let layout = VirtualLayout::new(3, 4);
/// let mut st = ClassState::new(layout, 2);
///
/// // Nodes 0 and 2 join class 0: two components, excess 1.
/// st.join(&g, layout.vid(0, 0, VType::T1), 0);
/// st.join(&g, layout.vid(2, 0, VType::T1), 0);
/// assert_eq!(st.component_count(0), 2);
/// assert_eq!(st.excess(), 1);
///
/// // Node 1 joins class 0 and bridges them.
/// st.join(&g, layout.vid(1, 0, VType::T2), 0);
/// assert_eq!(st.component_count(0), 1);
/// assert_eq!(st.excess(), 0);
/// ```
#[derive(Clone, Debug)]
pub struct ClassState {
    layout: VirtualLayout,
    t: usize,
    /// Disjoint-set forest over the `n · t` *bundle slots*
    /// (`slot = class * n + real`, **class-major**), not over the `3Ln`
    /// virtual nodes: all virtual nodes of one bundle are mutually
    /// adjacent and always merged, so the slot partition carries exactly
    /// the same component structure while the working set stays
    /// `Θ(log n)`× smaller (it is what keeps the layer loop
    /// cache-resident at `n = 10⁵`). Class-major order makes every
    /// class's stride one contiguous range — unions never leave it, so
    /// the parallel layer loop can hand each worker a disjoint per-class
    /// slice of its scratch tables, and `comp_of` / `rebuild_class`
    /// become linear scans.
    uf: UnionFind,
    /// Whether the `(real, class)` bundle has any member yet.
    occupied: Vec<bool>,
    /// Sorted classes with at least one member on each real node.
    classes_at: Vec<Vec<u32>>,
    /// `N_i`: running component count per class.
    comp_count: Vec<usize>,
    /// Running `Σ_i max(0, N_i − 1)`.
    excess: usize,
}

impl ClassState {
    /// Empty state for `t` classes over `layout`'s virtual nodes.
    ///
    /// # Panics
    /// Panics if `t == 0`.
    pub fn new(layout: VirtualLayout, t: usize) -> Self {
        assert!(t >= 1, "need at least one class");
        ClassState {
            layout,
            t,
            uf: UnionFind::new(layout.n() * t),
            occupied: vec![false; layout.n() * t],
            classes_at: vec![Vec::new(); layout.n()],
            comp_count: vec![0; t],
            excess: 0,
        }
    }

    /// The layout this state indexes into.
    pub fn layout(&self) -> VirtualLayout {
        self.layout
    }

    /// Number of classes `t`.
    pub fn num_classes(&self) -> usize {
        self.t
    }

    /// Forest slot of the `(real, class)` bundle — class-major, so one
    /// class's slots are the contiguous range `class·n .. (class+1)·n`.
    #[inline]
    fn slot(&self, real: NodeId, class: usize) -> usize {
        class * self.layout.n() + real
    }

    fn bump(&mut self, class: usize) {
        self.comp_count[class] += 1;
        if self.comp_count[class] >= 2 {
            self.excess += 1;
        }
    }

    fn drop_one(&mut self, class: usize) {
        if self.comp_count[class] >= 2 {
            self.excess -= 1;
        }
        self.comp_count[class] -= 1;
    }

    /// Adds virtual node `vid` to `class`, merging it with every
    /// already-joined class member on the same real node and on adjacent
    /// real nodes. `N_i` and the excess update incrementally.
    ///
    /// Invariant: two adjacent occupied bundles of one class are always in
    /// the same set (each bundle unions with all occupied neighbors the
    /// moment it appears), so a join into an existing bundle is O(1) —
    /// the new virtual node melts into a component that already spans
    /// every reachable neighbor.
    pub fn join(&mut self, g: &Graph, vid: VirtualId, class: usize) {
        let r = self.layout.real(vid);
        self.join_real(g, r, class);
    }

    /// [`join`](Self::join) addressed by real node id — the arrival path
    /// ([`insert_vertex`](Self::insert_vertex)) re-admits a vertex's
    /// bundles without synthesizing virtual ids.
    fn join_real(&mut self, g: &Graph, r: NodeId, class: usize) -> bool {
        let slot = self.slot(r, class);
        if self.occupied[slot] {
            return false;
        }
        self.occupied[slot] = true;
        self.bump(class);
        if let Err(pos) = self.classes_at[r].binary_search(&(class as u32)) {
            self.classes_at[r].insert(pos, class as u32);
        }
        for &u in g.neighbors(r) {
            // `g` may be a *final* topology larger than the current
            // layout (mid-growth arrivals); neighbors beyond it have no
            // bundles yet and merge when they are inserted themselves.
            if u >= self.layout.n() {
                continue;
            }
            let uslot = self.slot(u, class);
            if self.occupied[uslot] && self.uf.union(slot, uslot) {
                self.drop_one(class);
            }
        }
        true
    }

    /// The running total excess `M = Σ_i max(0, N_i − 1)` — O(1).
    pub fn excess(&self) -> usize {
        self.excess
    }

    /// `N_i`: current number of components of class `class` — O(1).
    pub fn component_count(&self, class: usize) -> usize {
        self.comp_count[class]
    }

    /// Sorted classes with at least one member projected onto `real`.
    pub fn classes_at(&self, real: NodeId) -> &[u32] {
        &self.classes_at[real]
    }

    /// Component of the `(real, class)` bundle, if the class has a member
    /// on `real`.
    pub fn comp_root(&mut self, real: NodeId, class: usize) -> Option<CompId> {
        let slot = self.slot(real, class);
        if self.occupied[slot] {
            Some(self.uf.find(slot))
        } else {
            None
        }
    }

    /// [`comp_root`](Self::comp_root) through a shared reference: the
    /// identical root, found without path compression
    /// ([`UnionFind::find_root`]). This is what lets the parallel layer
    /// loop's per-class workers query components of one shared frozen
    /// state concurrently — between two [`join`](Self::join) calls the
    /// forest is immutable and roots are stable, so readers need no
    /// synchronization at all.
    pub fn comp_root_frozen(&self, real: NodeId, class: usize) -> Option<CompId> {
        let slot = self.slot(real, class);
        if self.occupied[slot] {
            Some(self.uf.find_root(slot))
        } else {
            None
        }
    }

    /// Projected component labels of `class`: `comp_of[v] = Some(label)`
    /// for class members, with labels densified to `0..component_count`
    /// in order of first appearance (ascending real id). The format
    /// [`crate::cds::connector::ProjectionView::new`] consumes.
    #[allow(clippy::needless_range_loop)] // v indexes both the slot table and `out`
    pub fn comp_of(&mut self, class: usize) -> Vec<Option<usize>> {
        let n = self.layout.n();
        let mut label_of: HashMap<CompId, usize> = HashMap::new();
        let mut out = vec![None; n];
        for v in 0..n {
            let slot = class * n + v;
            if !self.occupied[slot] {
                continue;
            }
            let root = self.uf.find(slot);
            let next = label_of.len();
            out[v] = Some(*label_of.entry(root).or_insert(next));
        }
        debug_assert_eq!(label_of.len(), self.comp_count[class]);
        out
    }

    /// Deletion-aware repacking: removes real node `dead` from every class
    /// it belongs to and repairs the component structure of exactly those
    /// classes, leaving every untouched class's forest intact. Returns the
    /// sorted touched classes (so a caller can re-verify or re-extract
    /// only those). `g` is the current surviving graph — pass the graph
    /// *after* any accompanying edge deletions.
    ///
    /// Union-find cannot split, so each touched class's stride is
    /// dissolved ([`UnionFind::reset_block`]) and re-unioned over an
    /// order-1 sparse certificate of the surviving member-induced
    /// subgraph: at most `|members| − 1` union operations per class, with
    /// the scan bounded by the members' degrees — no full layer-loop
    /// rerun. Bit-identical to a from-scratch rebuild (the property suite
    /// cross-checks counts, excess, and `comp_of` labels).
    pub fn delete_vertex(&mut self, g: &Graph, dead: NodeId) -> Vec<u32> {
        let touched = std::mem::take(&mut self.classes_at[dead]);
        for &class in &touched {
            let class = class as usize;
            let slot = self.slot(dead, class);
            self.occupied[slot] = false;
            self.rebuild_class(g, class);
        }
        touched
    }

    /// Edge-deletion counterpart of [`delete_vertex`](Self::delete_vertex):
    /// repairs every class with a member on *both* endpoints (the only
    /// classes whose projection can lose the edge). `g` is the graph
    /// **without** the deleted edge. Returns the sorted touched classes.
    pub fn delete_edge(&mut self, g: &Graph, u: NodeId, v: NodeId) -> Vec<u32> {
        let touched: Vec<u32> = self.classes_at[u]
            .iter()
            .copied()
            .filter(|c| self.classes_at[v].binary_search(c).is_ok())
            .collect();
        for &class in &touched {
            self.rebuild_class(g, class as usize);
        }
        touched
    }

    /// Arrival-aware repacking — the inverse of
    /// [`delete_vertex`](Self::delete_vertex): admits real node `v` into
    /// `classes`, merging each of its bundles with the already-present
    /// members on adjacent nodes. Insertion only ever *merges*
    /// components, so no stride is dissolved and no certificate is
    /// recomputed — each class is O(deg(v) · α). If `v` lies beyond the
    /// current layout, the state [`grow`](Self::grow)s first. `g` is the
    /// live graph *with* `v`'s edges active. Returns the sorted classes
    /// actually entered (already-occupied bundles are skipped), and is
    /// bit-identical to a from-scratch repack over the same final
    /// membership (the property suite cross-checks `comp_of` labels).
    pub fn insert_vertex(&mut self, g: &Graph, v: NodeId, classes: &[u32]) -> Vec<u32> {
        if v >= self.layout.n() {
            self.grow(v + 1);
        }
        let mut touched: Vec<u32> = classes
            .iter()
            .copied()
            .filter(|&c| self.join_real(g, v, c as usize))
            .collect();
        touched.sort_unstable();
        touched.dedup();
        touched
    }

    /// Incremental class *admission* — assigns a class-free newcomer `v`
    /// to a class using only the maintained aggregates, then
    /// [`insert_vertex`](Self::insert_vertex)s it there. Returns the
    /// classes entered (empty when no class can absorb the newcomer —
    /// the caller's flood-fallback signal).
    ///
    /// The rule: for each class `c`, let `d_c` be the number of
    /// *distinct components* of `c` among `v`'s live neighbors (distinct
    /// union-find roots of occupied neighbor bundles). Any class with
    /// `d_c ≥ 1` can admit `v` without increasing the excess `M` — the
    /// newcomer melts into an existing component. Joining merges those
    /// `d_c` components into one, reducing `N_c` by `d_c − 1`, so the
    /// greedy pick is the argmax of `d_c`, ties broken to the lowest
    /// class id (deterministic across engines by construction: the rule
    /// reads only the class partition, never engine state).
    ///
    /// Because admission delegates to `insert_vertex`, the post-admit
    /// state is bit-identical to a from-scratch repack over the same
    /// final membership (the property suite cross-checks `comp_of`
    /// labels against a fresh replay).
    pub fn admit_vertex(&mut self, g: &Graph, v: NodeId) -> Vec<u32> {
        let n = self.layout.n();
        // (d_c, class); iterate classes ascending and replace only on a
        // strictly larger d_c, so ties resolve to the lowest id.
        let mut best: Option<(usize, usize)> = None;
        for class in 0..self.t {
            let mut roots: Vec<usize> = Vec::new();
            for &u in g.neighbors(v) {
                if u >= n {
                    continue;
                }
                let uslot = self.slot(u, class);
                if !self.occupied[uslot] {
                    continue;
                }
                let root = self.uf.find(uslot);
                if !roots.contains(&root) {
                    roots.push(root);
                }
            }
            if roots.is_empty() {
                continue;
            }
            if best.is_none_or(|(d, _)| roots.len() > d) {
                best = Some((roots.len(), class));
            }
        }
        match best {
            None => Vec::new(),
            Some((_, class)) => self.insert_vertex(g, v, &[class as u32]),
        }
    }

    /// Edge-arrival counterpart of [`delete_edge`](Self::delete_edge):
    /// a new live edge `{u, v}` can only merge components, so every
    /// class with a member bundle on *both* endpoints unions the two —
    /// O(1) per shared class, no rebuild. Returns the sorted touched
    /// classes (those present on both endpoints).
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> Vec<u32> {
        let touched: Vec<u32> = self.classes_at[u]
            .iter()
            .copied()
            .filter(|c| self.classes_at[v].binary_search(c).is_ok())
            .collect();
        for &class in &touched {
            let class = class as usize;
            let (su, sv) = (self.slot(u, class), self.slot(v, class));
            if self.uf.union(su, sv) {
                self.drop_one(class);
            }
        }
        touched
    }

    /// Grows the layout to `new_n` real nodes (same layer count),
    /// carrying every class's component structure over to the re-strided
    /// forest. Slots are class-major (`class · n + real`), so a larger
    /// `n` re-addresses *every* bundle: a fresh forest is built and each
    /// class's partition is re-unioned from the old one (member →
    /// first member of its old component, ascending real id). Component
    /// counts, excess, per-node class lists, and the densified
    /// [`comp_of`](Self::comp_of) labels are all preserved exactly;
    /// raw [`CompId`]s are not (a grow is a mutation, and roots are only
    /// stable between mutations).
    pub fn grow(&mut self, new_n: usize) {
        let old_n = self.layout.n();
        assert!(new_n >= old_n, "grow cannot shrink the layout");
        if new_n == old_n {
            return;
        }
        let new_layout = VirtualLayout::new(new_n, self.layout.layers());
        let mut uf = UnionFind::new(new_n * self.t);
        let mut occupied = vec![false; new_n * self.t];
        for class in 0..self.t {
            // Old root → representative (first member seen, ascending v).
            let mut rep_of: HashMap<usize, NodeId> = HashMap::new();
            for v in 0..old_n {
                if !self.occupied[class * old_n + v] {
                    continue;
                }
                occupied[class * new_n + v] = true;
                let root = self.uf.find(class * old_n + v);
                match rep_of.entry(root) {
                    std::collections::hash_map::Entry::Occupied(rep) => {
                        uf.union(class * new_n + rep.get(), class * new_n + v);
                    }
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        slot.insert(v);
                    }
                }
            }
        }
        self.layout = new_layout;
        self.uf = uf;
        self.occupied = occupied;
        self.classes_at.resize(new_n, Vec::new());
        // comp_count / excess are partition properties — unchanged.
    }

    /// Dissolves one class's union-find stride and re-unions its surviving
    /// members over a spanning forest of their induced subgraph, fixing
    /// `comp_count` and the running excess.
    fn rebuild_class(&mut self, g: &Graph, class: usize) {
        let n = self.layout.n();
        let stride: Vec<usize> = (class * n..(class + 1) * n).collect();
        self.uf.reset_block(&stride);
        self.excess -= self.comp_count[class].saturating_sub(1);

        // Surviving members, densely renumbered for the certificate.
        let members: Vec<NodeId> = (0..n).filter(|&v| self.occupied[class * n + v]).collect();
        let index_of: HashMap<NodeId, usize> =
            members.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        let mut edges = Vec::new();
        for (i, &v) in members.iter().enumerate() {
            for &u in g.neighbors(v) {
                if let Some(&j) = index_of.get(&u) {
                    if j < i {
                        edges.push((j, i));
                    }
                }
            }
        }
        let mut count = members.len();
        if !members.is_empty() {
            let induced = Graph::from_edges(members.len(), edges);
            for &(a, b) in sparse_certificate(&induced, 1).edges() {
                let (sa, sb) = (class * n + members[a], class * n + members[b]);
                if self.uf.union(sa, sb) {
                    count -= 1;
                }
            }
        }
        self.comp_count[class] = count;
        self.excess += count.saturating_sub(1);
    }

    /// From-scratch recomputation of `(component counts, excess)` by a
    /// full union-find rebuild over the current members — the oracle the
    /// property suite compares the incremental counters against.
    #[allow(clippy::needless_range_loop)] // class indexes the slot table and `counts`
    pub fn recompute_from_scratch(&self, g: &Graph) -> (Vec<usize>, usize) {
        let n = self.layout.n();
        let mut counts = vec![0usize; self.t];
        for class in 0..self.t {
            let mut uf = UnionFind::new(n);
            let mut members = 0usize;
            let member = |st: &ClassState, v: usize| v < n && st.occupied[st.slot(v, class)];
            for v in 0..n {
                if !member(self, v) {
                    continue;
                }
                members += 1;
                for &u in g.neighbors(v) {
                    if member(self, u) {
                        uf.union(v, u);
                    }
                }
            }
            counts[class] = if members == 0 {
                0
            } else {
                (0..n)
                    .filter(|&v| member(self, v) && uf.find(v) == v)
                    .count()
            };
        }
        let excess = counts.iter().map(|&c| c.saturating_sub(1)).sum();
        (counts, excess)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::virtual_graph::VType;
    use decomp_graph::generators;

    #[test]
    fn join_merges_same_real_bundle() {
        let g = generators::path(2);
        let layout = VirtualLayout::new(2, 4);
        let mut st = ClassState::new(layout, 1);
        st.join(&g, layout.vid(0, 0, VType::T1), 0);
        st.join(&g, layout.vid(0, 0, VType::T2), 0);
        assert_eq!(st.component_count(0), 1);
        assert_eq!(st.excess(), 0);
        let a = st.comp_root(0, 0).unwrap();
        assert_eq!(st.comp_root(0, 0), Some(a));
        assert_eq!(st.comp_root(1, 0), None);
    }

    #[test]
    fn disjoint_classes_do_not_interact() {
        let g = generators::path(2);
        let layout = VirtualLayout::new(2, 4);
        let mut st = ClassState::new(layout, 2);
        st.join(&g, layout.vid(0, 0, VType::T1), 0);
        st.join(&g, layout.vid(1, 0, VType::T1), 1);
        assert_eq!(st.component_count(0), 1);
        assert_eq!(st.component_count(1), 1);
        assert_eq!(st.excess(), 0);
        assert_eq!(st.classes_at(0), &[0]);
        assert_eq!(st.classes_at(1), &[1]);
    }

    #[test]
    fn excess_tracks_fragmentation_and_bridging() {
        let g = generators::path(5);
        let layout = VirtualLayout::new(5, 4);
        let mut st = ClassState::new(layout, 1);
        for v in [0usize, 2, 4] {
            st.join(&g, layout.vid(v, 0, VType::T1), 0);
        }
        assert_eq!(st.component_count(0), 3);
        assert_eq!(st.excess(), 2);
        st.join(&g, layout.vid(1, 0, VType::T1), 0); // bridges 0 and 2
        assert_eq!(st.component_count(0), 2);
        assert_eq!(st.excess(), 1);
        st.join(&g, layout.vid(3, 0, VType::T1), 0); // bridges 2 and 4
        assert_eq!(st.component_count(0), 1);
        assert_eq!(st.excess(), 0);
    }

    #[test]
    fn comp_of_labels_match_component_count() {
        let g = generators::path(5);
        let layout = VirtualLayout::new(5, 4);
        let mut st = ClassState::new(layout, 1);
        for v in [0usize, 1, 3] {
            st.join(&g, layout.vid(v, 0, VType::T1), 0);
        }
        let comp = st.comp_of(0);
        assert_eq!(comp[0], Some(0));
        assert_eq!(comp[1], Some(0));
        assert_eq!(comp[2], None);
        assert_eq!(comp[3], Some(1));
        assert_eq!(comp[4], None);
    }

    #[test]
    fn incremental_equals_scratch_on_a_grid() {
        let g = generators::grid(4, 5);
        let layout = VirtualLayout::new(20, 4);
        let mut st = ClassState::new(layout, 3);
        // Joins in an arbitrary interleaved order.
        for (i, v) in [7usize, 0, 13, 19, 2, 11, 5, 16, 9, 4].iter().enumerate() {
            st.join(&g, layout.vid(*v, 0, VType::ALL[i % 3]), i % 3);
            let (counts, excess) = st.recompute_from_scratch(&g);
            for (c, &want) in counts.iter().enumerate() {
                assert_eq!(st.component_count(c), want, "class {c} after join {i}");
            }
            assert_eq!(st.excess(), excess, "excess after join {i}");
        }
    }

    #[test]
    fn delete_vertex_splits_a_bridged_component() {
        let g = generators::path(3); // 0 - 1 - 2, all in class 0
        let layout = VirtualLayout::new(3, 4);
        let mut st = ClassState::new(layout, 1);
        for v in 0..3 {
            st.join(&g, layout.vid(v, 0, VType::T1), 0);
        }
        assert_eq!(st.component_count(0), 1);
        let touched = st.delete_vertex(&g, 1);
        assert_eq!(touched, vec![0]);
        assert_eq!(st.component_count(0), 2, "losing the bridge splits 0 and 2");
        assert_eq!(st.excess(), 1);
        assert_eq!(st.classes_at(1), &[] as &[u32]);
        assert_eq!(st.comp_root(1, 0), None);
        assert_ne!(st.comp_root(0, 0), st.comp_root(2, 0));
    }

    #[test]
    fn delete_vertex_touches_only_its_classes() {
        let g = generators::complete(4);
        let layout = VirtualLayout::new(4, 4);
        let mut st = ClassState::new(layout, 3);
        for v in 0..4 {
            st.join(&g, layout.vid(v, 0, VType::T1), v % 2);
        }
        st.join(&g, layout.vid(3, 0, VType::T2), 2);
        // Node 3 sits in classes 1 and 2; class 0 must keep its forest.
        let root0 = st.comp_root(0, 0);
        let touched = st.delete_vertex(&g, 3);
        assert_eq!(touched, vec![1, 2]);
        assert_eq!(st.comp_root(0, 0), root0, "untouched class keeps its roots");
        assert_eq!(st.component_count(2), 0, "class 2 lost its only member");
        let (counts, excess) = st.recompute_from_scratch(&g);
        assert_eq!(
            (0..3).map(|c| st.component_count(c)).collect::<Vec<_>>(),
            counts
        );
        assert_eq!(st.excess(), excess);
    }

    #[test]
    fn delete_edge_repairs_shared_classes_only() {
        // Square 0 - 1 - 2 - 3 - 0, everyone in class 0; node 0 also in 1.
        let square = |edges: &[(usize, usize)]| Graph::from_edges(4, edges.to_vec());
        let g = square(&[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let layout = VirtualLayout::new(4, 4);
        let mut st = ClassState::new(layout, 2);
        for v in 0..4 {
            st.join(&g, layout.vid(v, 0, VType::T1), 0);
        }
        st.join(&g, layout.vid(0, 0, VType::T2), 1);
        // Cutting one cycle edge keeps the class connected...
        let g1 = square(&[(1, 2), (2, 3), (3, 0)]);
        assert_eq!(st.delete_edge(&g1, 0, 1), vec![0]);
        assert_eq!(st.component_count(0), 1);
        // ...cutting a second splits it; class 1 (no member on 2 or 3)
        // is never touched.
        let g2 = square(&[(1, 2), (3, 0)]);
        assert_eq!(st.delete_edge(&g2, 2, 3), vec![0]);
        assert_eq!(st.component_count(0), 2);
        assert_eq!(st.excess(), 1);
        let (counts, excess) = st.recompute_from_scratch(&g2);
        assert_eq!(counts[0], 2);
        assert_eq!(st.excess(), excess);
        assert_eq!(st.component_count(1), counts[1]);
    }

    #[test]
    fn churn_matches_scratch_and_fresh_replay() {
        // Random-ish joins on a grid, then a deletion sequence; after every
        // deletion the incremental state must match (a) the from-scratch
        // oracle on counts and excess and (b) a freshly replayed state on
        // the exact `comp_of` labels — bit-for-bit repack equivalence.
        let g = generators::grid(4, 5);
        let layout = VirtualLayout::new(20, 4);
        let joins: Vec<(usize, usize)> = (0..20).map(|i| (i * 7 % 20, i % 3)).collect();
        let mut st = ClassState::new(layout, 3);
        for &(v, c) in &joins {
            st.join(&g, layout.vid(v, 0, VType::ALL[c]), c);
        }
        let mut deleted: Vec<usize> = Vec::new();
        for dead in [13usize, 0, 7, 19, 4] {
            st.delete_vertex(&g, dead);
            deleted.push(dead);
            let (counts, excess) = st.recompute_from_scratch(&g);
            for (c, &want) in counts.iter().enumerate() {
                assert_eq!(st.component_count(c), want, "class {c} after {deleted:?}");
            }
            assert_eq!(st.excess(), excess, "excess after {deleted:?}");
            let mut fresh = ClassState::new(layout, 3);
            for &(v, c) in joins.iter().filter(|(v, _)| !deleted.contains(v)) {
                fresh.join(&g, layout.vid(v, 0, VType::ALL[c]), c);
            }
            for c in 0..3 {
                assert_eq!(st.comp_of(c), fresh.comp_of(c), "labels after {deleted:?}");
            }
            for v in 0..20 {
                assert_eq!(st.classes_at(v), fresh.classes_at(v));
            }
        }
    }

    #[test]
    fn insert_vertex_is_the_inverse_of_delete_vertex() {
        let g = generators::path(3); // 0 - 1 - 2, all in class 0
        let layout = VirtualLayout::new(3, 4);
        let mut st = ClassState::new(layout, 1);
        for v in 0..3 {
            st.join(&g, layout.vid(v, 0, VType::T1), 0);
        }
        st.delete_vertex(&g, 1);
        assert_eq!(st.component_count(0), 2);
        // Re-admitting the bridge merges the halves back — and the
        // result is label-identical to a never-deleted fresh state.
        let touched = st.insert_vertex(&g, 1, &[0]);
        assert_eq!(touched, vec![0]);
        assert_eq!(st.component_count(0), 1);
        assert_eq!(st.excess(), 0);
        assert_eq!(st.classes_at(1), &[0]);
        let mut fresh = ClassState::new(layout, 1);
        for v in 0..3 {
            fresh.join(&g, layout.vid(v, 0, VType::T1), 0);
        }
        assert_eq!(st.comp_of(0), fresh.comp_of(0));
    }

    #[test]
    fn insert_vertex_skips_already_occupied_bundles() {
        let g = generators::complete(3);
        let layout = VirtualLayout::new(3, 4);
        let mut st = ClassState::new(layout, 2);
        st.join(&g, layout.vid(0, 0, VType::T1), 0);
        let touched = st.insert_vertex(&g, 0, &[0, 1]);
        assert_eq!(touched, vec![1], "class 0 was already occupied");
        assert_eq!(st.classes_at(0), &[0, 1]);
    }

    #[test]
    fn insert_edge_merges_shared_classes_only() {
        // Two components of class 0 on a path with the middle edge
        // initially absent from the *projection* logic: just union.
        let g = generators::path(4);
        let layout = VirtualLayout::new(4, 4);
        let mut st = ClassState::new(layout, 2);
        // Class 0 on 0 and 3 (far apart: two components); class 1 on 0.
        st.join(&g, layout.vid(0, 0, VType::T1), 0);
        st.join(&g, layout.vid(3, 0, VType::T1), 0);
        st.join(&g, layout.vid(0, 0, VType::T2), 1);
        assert_eq!(st.component_count(0), 2);
        // A new link {0, 3} merges class 0; class 1 (absent on 3)
        // is untouched.
        assert_eq!(st.insert_edge(0, 3), vec![0]);
        assert_eq!(st.component_count(0), 1);
        assert_eq!(st.excess(), 0);
        assert_eq!(st.component_count(1), 1);
        // Re-inserting the same edge is a no-op (already merged).
        assert_eq!(st.insert_edge(0, 3), vec![0]);
        assert_eq!(st.component_count(0), 1);
    }

    #[test]
    fn grow_preserves_labels_and_supports_new_ids() {
        let g5 = generators::path(5);
        let layout = VirtualLayout::new(3, 4);
        let mut st = ClassState::new(layout, 2);
        // Members 0, 2 in class 0 (two components), 1 in class 1.
        st.join(&g5, layout.vid(0, 0, VType::T1), 0);
        st.join(&g5, layout.vid(2, 0, VType::T1), 0);
        st.join(&g5, layout.vid(1, 0, VType::T1), 1);
        let before: Vec<_> = (0..2).map(|c| st.comp_of(c)).collect();
        st.grow(5);
        assert_eq!(st.layout().n(), 5);
        assert_eq!(st.component_count(0), 2);
        assert_eq!(st.excess(), 1);
        for (c, old) in before.iter().enumerate() {
            let after = st.comp_of(c);
            assert_eq!(&after[..3], &old[..], "labels preserved");
            assert_eq!(&after[3..], &[None, None]);
        }
        // Inserting a vertex beyond the old layout grows implicitly and
        // bridges: 0 - 1 - 2 all in class 0 once 1 and the new 3, 4 join.
        let mut st2 = ClassState::new(VirtualLayout::new(3, 4), 1);
        st2.join(&g5, st2.layout().vid(0, 0, VType::T1), 0);
        st2.join(&g5, st2.layout().vid(2, 0, VType::T1), 0);
        assert_eq!(st2.component_count(0), 2);
        st2.insert_vertex(&g5, 3, &[0]); // grows to n = 4, merges with 2
        assert_eq!(st2.layout().n(), 4);
        assert_eq!(st2.component_count(0), 2, "3 melts into 2's component");
        st2.insert_vertex(&g5, 1, &[0]); // bridges 0 and {2, 3}
        assert_eq!(st2.component_count(0), 1);
        let (counts, excess) = st2.recompute_from_scratch(&g5);
        assert_eq!(st2.component_count(0), counts[0]);
        assert_eq!(st2.excess(), excess);
    }

    #[test]
    fn arrival_churn_matches_scratch_and_fresh_replay() {
        // Mixed kill/arrive sequence on a grid: after every event the
        // incremental state must match the from-scratch oracle on counts
        // and excess, and a freshly replayed state on the exact labels —
        // the bit-identical arrival-repack contract of ISSUE 9.
        let g = generators::grid(4, 5);
        let layout = VirtualLayout::new(20, 4);
        let joins: Vec<(usize, usize)> = (0..20).map(|i| (i * 7 % 20, i % 3)).collect();
        let mut st = ClassState::new(layout, 3);
        for &(v, c) in &joins {
            st.join(&g, layout.vid(v, 0, VType::ALL[c]), c);
        }
        // Membership ledger: which (v, class) pairs are currently in.
        let mut member: Vec<(usize, usize)> = joins.clone();
        member.sort_unstable();
        member.dedup();
        enum Ev {
            Kill(usize),
            Arrive(usize, Vec<u32>),
        }
        let events = [
            Ev::Kill(13),
            Ev::Kill(0),
            Ev::Arrive(13, vec![1, 2]),
            Ev::Kill(7),
            Ev::Arrive(0, vec![0]),
            Ev::Arrive(7, vec![0, 1]),
            Ev::Kill(13),
        ];
        for (i, ev) in events.iter().enumerate() {
            match ev {
                Ev::Kill(v) => {
                    st.delete_vertex(&g, *v);
                    member.retain(|&(m, _)| m != *v);
                }
                Ev::Arrive(v, classes) => {
                    st.insert_vertex(&g, *v, classes);
                    for &c in classes {
                        member.push((*v, c as usize));
                    }
                    member.sort_unstable();
                    member.dedup();
                }
            }
            let (counts, excess) = st.recompute_from_scratch(&g);
            for (c, &want) in counts.iter().enumerate() {
                assert_eq!(st.component_count(c), want, "class {c} after event {i}");
            }
            assert_eq!(st.excess(), excess, "excess after event {i}");
            let mut fresh = ClassState::new(layout, 3);
            for &(v, c) in &member {
                fresh.join(&g, layout.vid(v, 0, VType::ALL[c]), c);
            }
            for c in 0..3 {
                assert_eq!(st.comp_of(c), fresh.comp_of(c), "labels after event {i}");
            }
            for v in 0..20 {
                assert_eq!(st.classes_at(v), fresh.classes_at(v), "after event {i}");
            }
        }
    }

    #[test]
    fn admit_vertex_picks_the_class_that_merges_most() {
        let g = generators::path(3); // 0 - 1 - 2
        let layout = VirtualLayout::new(3, 4);
        let mut st = ClassState::new(layout, 2);
        // Class 0 fragmented across both of 1's neighbors (d_0 = 2);
        // class 1 present on one neighbor only (d_1 = 1).
        st.join(&g, layout.vid(0, 0, VType::T1), 0);
        st.join(&g, layout.vid(2, 0, VType::T1), 0);
        st.join(&g, layout.vid(0, 0, VType::T2), 1);
        assert_eq!(st.component_count(0), 2);
        assert_eq!(st.admit_vertex(&g, 1), vec![0], "argmax d_c wins");
        assert_eq!(st.component_count(0), 1, "admission merged the halves");
        assert_eq!(st.excess(), 0);
        assert_eq!(st.classes_at(1), &[0]);
    }

    #[test]
    fn admit_vertex_ties_break_to_the_lowest_class() {
        let g = generators::complete(3);
        let layout = VirtualLayout::new(3, 4);
        let mut st = ClassState::new(layout, 3);
        // Classes 1 and 2 each have one component on a neighbor of 0;
        // class 0 is empty. The d_c = 1 tie goes to the lowest present
        // class, never the empty one.
        st.join(&g, layout.vid(1, 0, VType::T1), 1);
        st.join(&g, layout.vid(2, 0, VType::T1), 2);
        assert_eq!(st.admit_vertex(&g, 0), vec![1]);
        assert_eq!(st.classes_at(0), &[1]);
    }

    #[test]
    fn admit_vertex_returns_empty_when_no_class_can_absorb() {
        let g = generators::path(4); // 0 - 1 - 2 - 3
        let layout = VirtualLayout::new(4, 4);
        let mut st = ClassState::new(layout, 2);
        // The only member sits on 3 — not adjacent to 0.
        st.join(&g, layout.vid(3, 0, VType::T1), 0);
        let before = st.comp_of(0);
        assert_eq!(st.admit_vertex(&g, 0), Vec::<u32>::new());
        assert_eq!(st.classes_at(0), &[] as &[u32], "state untouched");
        assert_eq!(st.comp_of(0), before);
    }

    #[test]
    fn admit_vertex_matches_fresh_replay() {
        // After an admission, the incremental state must be
        // label-identical to a fresh state built over the same final
        // membership — the bit-identity contract growth re-extraction
        // relies on.
        let g = generators::grid(4, 5);
        let layout = VirtualLayout::new(20, 4);
        let joins: Vec<(usize, usize)> = (0..18).map(|i| (i * 7 % 20, i % 3)).collect();
        let mut st = ClassState::new(layout, 3);
        for &(v, c) in &joins {
            st.join(&g, layout.vid(v, 0, VType::ALL[c]), c);
        }
        let unjoined: Vec<usize> = (0..20)
            .filter(|&v| joins.iter().all(|&(j, _)| j != v))
            .collect();
        let mut member: Vec<(usize, usize)> = joins.clone();
        for &v in &unjoined {
            let entered = st.admit_vertex(&g, v);
            assert_eq!(
                entered.len(),
                1,
                "grid newcomers always have members nearby"
            );
            member.push((v, entered[0] as usize));
            let (counts, excess) = st.recompute_from_scratch(&g);
            for (c, &want) in counts.iter().enumerate() {
                assert_eq!(st.component_count(c), want, "class {c} after admitting {v}");
            }
            assert_eq!(st.excess(), excess);
            let mut fresh = ClassState::new(layout, 3);
            for &(m, c) in &member {
                fresh.join(&g, layout.vid(m, 0, VType::ALL[c]), c);
            }
            for c in 0..3 {
                assert_eq!(
                    st.comp_of(c),
                    fresh.comp_of(c),
                    "labels after admitting {v}"
                );
            }
        }
    }

    #[test]
    fn frozen_root_matches_mutable_root() {
        // The non-compressing read path (what parallel layer-loop
        // workers use) must report exactly the roots the mutable find
        // does, for every bundle, at every point of a join sequence.
        let g = generators::grid(4, 5);
        let layout = VirtualLayout::new(20, 4);
        let mut st = ClassState::new(layout, 3);
        for (i, v) in [7usize, 0, 13, 19, 2, 11, 5, 16, 9, 4].iter().enumerate() {
            st.join(&g, layout.vid(*v, 0, VType::ALL[i % 3]), i % 3);
            for real in 0..20 {
                for class in 0..3 {
                    let frozen = st.comp_root_frozen(real, class);
                    assert_eq!(frozen, st.comp_root(real, class), "({real}, {class})");
                }
            }
        }
    }

    #[test]
    fn comp_root_agrees_across_a_merged_component() {
        let g = generators::complete(4);
        let layout = VirtualLayout::new(4, 4);
        let mut st = ClassState::new(layout, 1);
        for v in 0..3 {
            st.join(&g, layout.vid(v, 0, VType::T1), 0);
        }
        // All three members are one component: every bundle reports the
        // same root, and the unjoined node reports none.
        let root = st.comp_root(0, 0).unwrap();
        assert_eq!(st.comp_root(1, 0), Some(root));
        assert_eq!(st.comp_root(2, 0), Some(root));
        assert_eq!(st.comp_root(3, 0), None);
    }
}
