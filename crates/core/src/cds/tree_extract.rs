//! CDS → dominating-tree extraction (end of Section 3.1).
//!
//! The paper removes cycles from each CDS by one minimum-spanning-tree
//! computation on the virtual graph with weight 0 for intra-class edges and
//! weight 1 otherwise; the weight-0 MST edges then form one tree per class.
//! On the projection this is equivalent to taking a spanning tree of each
//! class's induced real subgraph, which is what we compute (a BFS tree —
//! the `O(n/k · log n)` diameter bound comes from the class's own diameter).
//!
//! Fractional weights: each real node lies in at most `3L = O(log n)`
//! classes, so giving every tree weight `1 / max-multiplicity` yields a
//! feasible fractional packing of size `#trees / O(log n) = Ω(k / log n)`.

use crate::cds::centralized::CdsPacking;
use crate::cds::class_state::ClassState;
use crate::packing::{DomTreePacking, WeightedDomTree};
use decomp_graph::domination::{is_cds, is_dominating_set};
use decomp_graph::{traversal, Graph, NodeId};

/// Outcome of the tree extraction.
#[derive(Clone, Debug)]
pub struct ExtractedTrees {
    /// The fractional dominating-tree packing over the *valid* classes.
    pub packing: DomTreePacking,
    /// Classes that failed the CDS check (counted, not packed); empty
    /// w.h.p. for `t = Θ(k)`.
    pub invalid_classes: Vec<usize>,
    /// The weight assigned to every tree (`1 / max multiplicity`).
    pub tree_weight: f64,
}

/// Extracts one dominating tree per valid class of `packing` and weights
/// them into a feasible fractional packing.
///
/// Re-derives each class's connectivity by a fresh traversal; when the
/// construction's [`ClassState`] is at hand
/// ([`crate::cds::centralized::cds_packing_with_state`]), prefer
/// [`to_dom_tree_packing_with_state`], which reads the maintained
/// component counts instead.
pub fn to_dom_tree_packing(g: &Graph, packing: &CdsPacking) -> ExtractedTrees {
    extract(g, packing, |_, mask| is_cds(g, mask))
}

/// [`to_dom_tree_packing`] consuming the incrementally-maintained
/// [`ClassState`]: a class is a CDS iff it dominates and its running
/// component count `N_i` is exactly 1 — the connectivity side needs no
/// traversal, because the state's disjoint sets *are* the components of
/// the projected class subgraphs.
pub fn to_dom_tree_packing_with_state(
    g: &Graph,
    packing: &CdsPacking,
    state: &ClassState,
) -> ExtractedTrees {
    debug_assert_eq!(state.num_classes(), packing.num_classes());
    extract(g, packing, |class, mask| {
        state.component_count(class) == 1 && is_dominating_set(g, mask)
    })
}

fn extract(
    g: &Graph,
    packing: &CdsPacking,
    mut class_is_cds: impl FnMut(usize, &[bool]) -> bool,
) -> ExtractedTrees {
    let n = g.n();
    let mut trees = Vec::new();
    let mut invalid = Vec::new();
    for (class, members) in packing.classes.iter().enumerate() {
        if members.is_empty() {
            invalid.push(class);
            continue;
        }
        let mask = packing.class_mask(class);
        if !class_is_cds(class, &mask) {
            invalid.push(class);
            continue;
        }
        let edges = class_spanning_tree(g, members);
        let singleton = if edges.is_empty() {
            Some(members[0])
        } else {
            None
        };
        trees.push(WeightedDomTree {
            id: class,
            weight: 1.0, // rescaled below
            edges,
            singleton,
        });
    }
    // Feasibility: scale by the maximum number of *valid* trees through a
    // single vertex.
    let mut count = vec![0usize; n];
    for t in &trees {
        for v in t.vertices(n) {
            count[v] += 1;
        }
    }
    let cmax = count.into_iter().max().unwrap_or(1).max(1);
    let w = 1.0 / cmax as f64;
    for t in &mut trees {
        t.weight = w;
    }
    ExtractedTrees {
        packing: DomTreePacking { trees },
        invalid_classes: invalid,
        tree_weight: w,
    }
}

/// Re-extracts one dominating tree for a single repaired class over the
/// survivors of a churn wave: a BFS spanning tree of `members` (the
/// class's live, present vertices) through edges that pass `edge_ok`.
/// BFS order follows the graph's fixed adjacency lists, so the result
/// is deterministic for a given survivor set — the churn loop's
/// re-extraction is replayable. Returns `None` when the members do not
/// span a connected subgraph under `edge_ok` (the class is still
/// broken; its messages keep the flood fallback for another wave).
///
/// Certification (connectivity via [`ClassState::component_count`],
/// domination over the survivors) is the caller's job: this helper only
/// rebuilds the tree shape.
pub fn reextract_class_tree(
    g: &Graph,
    class: usize,
    members: &[NodeId],
    mut edge_ok: impl FnMut(NodeId, NodeId) -> bool,
) -> Option<WeightedDomTree> {
    if members.is_empty() {
        return None;
    }
    let mut in_class = vec![false; g.n()];
    for &v in members {
        in_class[v] = true;
    }
    let root = members[0];
    let mut seen = vec![false; g.n()];
    seen[root] = true;
    let mut queue = std::collections::VecDeque::from([root]);
    let mut edges = Vec::new();
    let mut reached = 1usize;
    while let Some(v) = queue.pop_front() {
        for &u in g.neighbors(v) {
            if in_class[u] && !seen[u] && edge_ok(v, u) {
                seen[u] = true;
                reached += 1;
                edges.push((v, u));
                queue.push_back(u);
            }
        }
    }
    if reached != members.len() {
        return None;
    }
    let singleton = if edges.is_empty() { Some(root) } else { None };
    Some(WeightedDomTree {
        id: class,
        weight: 1.0,
        edges,
        singleton,
    })
}

/// A spanning tree (edge list over original ids) of `G[members]`, which
/// must be connected.
fn class_spanning_tree(g: &Graph, members: &[NodeId]) -> Vec<(NodeId, NodeId)> {
    let (sub, map) = g.induced_subgraph(members);
    let bfs = traversal::bfs(&sub, 0);
    bfs.tree_edges()
        .into_iter()
        .map(|(p, c)| (map[p], map[c]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cds::centralized::{cds_packing, CdsPackingConfig};
    use decomp_graph::generators;

    #[test]
    fn extraction_yields_valid_packing() {
        let g = generators::harary(12, 72);
        let p = cds_packing(&g, &CdsPackingConfig::with_known_k(12, 3));
        let ex = to_dom_tree_packing(&g, &p);
        assert!(ex.invalid_classes.is_empty(), "all classes should be CDSs");
        ex.packing.validate(&g, 1e-9).unwrap();
        assert_eq!(ex.packing.num_trees(), p.num_classes());
        assert!(ex.packing.size() > 0.0);
    }

    #[test]
    fn weights_are_uniform_inverse_multiplicity() {
        let g = generators::hypercube(6);
        let p = cds_packing(&g, &CdsPackingConfig::with_known_k(6, 5));
        let ex = to_dom_tree_packing(&g, &p);
        let mult = ex.packing.max_vertex_multiplicity(g.n()).max(1);
        assert!((ex.tree_weight - 1.0 / mult as f64).abs() < 1e-12);
        for t in &ex.packing.trees {
            assert_eq!(t.weight, ex.tree_weight);
        }
    }

    #[test]
    fn tree_count_scales_with_k() {
        // The number of dominating trees is Θ(k); the fractional *size*
        // (#trees / multiplicity) only exceeds 1 once k ≫ log n, which the
        // bench harness exercises at scale — here we check the tree count
        // and the multiplicity cap.
        let stats_for = |k: usize| {
            let g = generators::harary(k, 96);
            let p = cds_packing(&g, &CdsPackingConfig::with_known_k(k, 7));
            let ex = to_dom_tree_packing(&g, &p);
            assert!(ex.invalid_classes.is_empty());
            (
                ex.packing.num_trees(),
                ex.packing.max_vertex_multiplicity(g.n()),
                p.layout.layers(),
            )
        };
        let (t8, m8, l8) = stats_for(8);
        let (t24, m24, _) = stats_for(24);
        assert_eq!(t8, 2);
        assert_eq!(t24, 6);
        assert!(m8 <= 3 * l8);
        assert!(m24 >= m8, "more classes cannot reduce multiplicity");
    }

    #[test]
    fn single_class_tree_spans_cds() {
        let g = generators::cycle(9);
        let p = cds_packing(&g, &CdsPackingConfig::with_classes(1, 0));
        let ex = to_dom_tree_packing(&g, &p);
        assert_eq!(ex.packing.num_trees(), 1);
        ex.packing.validate(&g, 1e-9).unwrap();
    }

    #[test]
    fn state_backed_extraction_matches_recomputed() {
        use crate::cds::centralized::cds_packing_with_state;
        // barbell + many classes forces invalid (disconnected) classes, so
        // both the accept and reject paths of the certificate are hit.
        for (g, t, seed) in [
            (generators::barbell(6, 4), 6, 2u64),
            (generators::harary(12, 72), 3, 3),
            (generators::random_connected(40, 12, 1), 8, 5),
        ] {
            let (p, st) = cds_packing_with_state(&g, &CdsPackingConfig::with_classes(t, seed));
            let slow = to_dom_tree_packing(&g, &p);
            let fast = to_dom_tree_packing_with_state(&g, &p, &st);
            assert_eq!(slow.invalid_classes, fast.invalid_classes);
            assert_eq!(slow.tree_weight, fast.tree_weight);
            assert_eq!(slow.packing.num_trees(), fast.packing.num_trees());
            for (a, b) in slow.packing.trees.iter().zip(&fast.packing.trees) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.edges, b.edges);
                assert_eq!(a.singleton, b.singleton);
            }
        }
    }

    #[test]
    fn reextraction_spans_survivors_and_rejects_broken_classes() {
        let g = generators::cycle(8);
        let members: Vec<usize> = (0..8).collect();
        // Full class, all edges live: a spanning tree of the cycle.
        let t = reextract_class_tree(&g, 3, &members, |_, _| true).expect("cycle is connected");
        assert_eq!(t.id, 3);
        assert_eq!(t.edges.len(), 7);
        assert!(t.singleton.is_none());
        // Vertex 4 churned out: the remainder is still connected
        // through the cycle's other arc.
        let survivors: Vec<usize> = (0..8).filter(|&v| v != 4).collect();
        let t = reextract_class_tree(&g, 0, &survivors, |_, _| true).expect("arc is connected");
        assert_eq!(t.edges.len(), 6);
        assert!(t.edges.iter().all(|&(u, v)| u != 4 && v != 4));
        // Cutting {1, 2} on top disconnects the arc: no tree.
        let cut = |u: usize, v: usize| (u.min(v), u.max(v)) != (1, 2);
        assert!(reextract_class_tree(&g, 0, &survivors, cut).is_none());
        // A lone survivor is a singleton tree.
        let t = reextract_class_tree(&g, 5, &[6], |_, _| true).expect("singleton");
        assert!(t.edges.is_empty());
        assert_eq!(t.singleton, Some(6));
        assert!(reextract_class_tree(&g, 0, &[], |_, _| true).is_none());
    }

    #[test]
    fn invalid_classes_are_skipped_not_packed() {
        // Force failure: a barbell with k=1 but many classes cannot give
        // every class a CDS; extraction must drop invalid ones and still
        // produce a feasible packing.
        let g = generators::barbell(6, 4);
        let p = cds_packing(&g, &CdsPackingConfig::with_classes(6, 2));
        let ex = to_dom_tree_packing(&g, &p);
        ex.packing.validate(&g, 1e-9).unwrap();
        assert_eq!(
            ex.packing.num_trees() + ex.invalid_classes.len(),
            p.num_classes()
        );
    }
}
