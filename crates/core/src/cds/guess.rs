//! Removing the known-`k` assumption (Remark 3.1).
//!
//! "We simply try exponentially decreasing guesses about `k`, in the form
//! `n/2^j`, and we test the outcome of the dominating tree packing obtained
//! for each guess (particularly its domination and connectivity) using a
//! randomized testing algorithm." The first (largest) guess whose packing
//! passes the Appendix E test is kept. Cost: an `O(log n)` factor.
//!
//! Two drivers: [`cds_packing_unknown_k`] runs the centralized pipeline
//! with the exact Appendix E test, and
//! [`cds_packing_unknown_k_distributed`] runs the whole doubling search
//! on the simulator facade — each guess builds the Appendix B packing
//! *and* tests it with the randomized distributed verifier, so no node
//! ever needs a connectivity estimate and the round cost of every attempt
//! accumulates in the simulator's statistics.

use crate::cds::centralized::{cds_packing, CdsPacking, CdsPackingConfig};
use crate::cds::distributed::cds_packing_distributed;
use crate::cds::verify::{membership_of, verify_centralized, verify_distributed, VerifyOutcome};
use decomp_congest::{SimError, Simulator};
use decomp_graph::Graph;

/// Result of the guessing procedure.
#[derive(Clone, Debug)]
pub struct GuessedPacking {
    /// The accepted packing.
    pub packing: CdsPacking,
    /// The accepted guess `k̃` (a power-of-two fraction of `n`).
    pub guess: usize,
    /// Guesses tried (from large to small), with pass/fail.
    pub attempts: Vec<(usize, bool)>,
}

/// Why the doubling search cannot run (or could not finish).
///
/// The disconnected case matters in the failure regime: after `f ≥ κ`
/// deletions the surviving graph may be disconnected, and every guess —
/// including `k̃ = 1` — then fails domination forever. Detecting that up
/// front turns an infinite halving loop (or, distributed, a spin to the
/// simulator's `max_rounds`) into an immediate typed error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GuessError {
    /// The input graph is empty or disconnected; no guess can verify.
    Disconnected,
    /// A distributed attempt hit a simulator error (round cap).
    Sim(SimError),
}

impl std::fmt::Display for GuessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GuessError::Disconnected => {
                write!(f, "unknown-k search requires a connected non-empty graph")
            }
            GuessError::Sim(e) => write!(f, "unknown-k search attempt failed: {e}"),
        }
    }
}

impl std::error::Error for GuessError {}

impl From<SimError> for GuessError {
    fn from(e: SimError) -> Self {
        GuessError::Sim(e)
    }
}

/// The initial (largest) guess: `n/2` rounded up to a power of two,
/// explicitly capped at `n` — connectivity never exceeds `n − 1`, so any
/// guess above `n` is a wasted attempt the search must never emit.
fn initial_guess(n: usize) -> usize {
    (n.next_power_of_two() / 2).clamp(1, n.max(1))
}

/// Runs the try-and-error loop of Remark 3.1: guesses `n/2^j` for
/// `j = 1, 2, ...`, builds the packing for each guess, keeps the first one
/// whose classes all verify as CDSs.
///
/// Always succeeds on connected graphs: the guess `k̃ = 1` yields a single
/// class containing every virtual node, which is trivially a CDS.
///
/// # Panics
/// Panics if `g` is empty or disconnected — use
/// [`try_cds_packing_unknown_k`] when the input may have been
/// disconnected by failures.
pub fn cds_packing_unknown_k(g: &Graph, seed: u64) -> GuessedPacking {
    try_cds_packing_unknown_k(g, seed).expect("guessing requires a connected non-empty graph")
}

/// Fallible variant of [`cds_packing_unknown_k`] for the failure regime:
/// returns [`GuessError::Disconnected`] instead of panicking when the
/// (post-deletion) graph is empty or disconnected — the situation where
/// every guess, including `k̃ = 1`, would fail verification forever.
///
/// # Errors
/// [`GuessError::Disconnected`] on empty or disconnected inputs.
pub fn try_cds_packing_unknown_k(g: &Graph, seed: u64) -> Result<GuessedPacking, GuessError> {
    if g.n() == 0 || !decomp_graph::traversal::is_connected(g) {
        return Err(GuessError::Disconnected);
    }
    let mut attempts = Vec::new();
    let mut guess = initial_guess(g.n());
    loop {
        let cfg = CdsPackingConfig::with_known_k(guess, seed ^ (guess as u64));
        let packing = cds_packing(g, &cfg);
        let ok = verify_centralized(g, &packing.classes) == VerifyOutcome::Pass;
        attempts.push((guess, ok));
        if ok {
            return Ok(GuessedPacking {
                packing,
                guess,
                attempts,
            });
        }
        assert!(
            guess > 1,
            "guess k=1 must always verify on connected graphs"
        );
        guess /= 2;
    }
}

/// Runs Remark 3.1's doubling search fully in V-CONGEST on `sim`:
/// guesses `k̃ = n/2^j` for `j = 1, 2, ...`, builds the Appendix B
/// distributed packing for each guess, and keeps the first one the
/// Appendix E distributed verifier accepts.
///
/// The verifier's guarantee is one-sided (valid packings always pass;
/// invalid ones are rejected w.h.p.), matching the remark's randomized
/// testing algorithm. Rounds for every attempt — including the rejected
/// ones — accumulate in `sim.stats()`, which is the `O(log n)` overhead
/// the remark pays.
///
/// Always terminates on connected graphs: the guess `k̃ = 1` yields a
/// single class containing every virtual node, which is trivially a CDS.
///
/// # Errors
/// [`GuessError::Disconnected`] when the graph is empty or disconnected
/// (e.g. after `f ≥ κ` deletions) — returned up front rather than letting
/// every attempt spin to the simulator's round cap;
/// [`GuessError::Sim`] wraps round-limit errors from the construction or
/// the verifier.
///
/// # Example
///
/// ```
/// use decomp_congest::{Model, Simulator};
/// use decomp_core::cds::guess::cds_packing_unknown_k_distributed;
/// use decomp_graph::generators;
///
/// let g = generators::harary(8, 32); // k = 8, unknown to the protocol
/// let mut sim = Simulator::new(&g, Model::VCongest);
/// let r = cds_packing_unknown_k_distributed(&mut sim, 7).unwrap();
/// // The doubling search starts at n/2 and halves until a guess passes;
/// // every attempt (pass or fail) is recorded and paid for in rounds.
/// assert!(r.guess >= 1 && r.guess <= g.n() / 2);
/// assert!(r.attempts.iter().filter(|(_, ok)| *ok).count() == 1);
/// assert_eq!(r.packing.num_classes(), (r.guess / 4).max(1));
/// assert!(sim.stats().rounds > 0);
/// ```
///
/// # Panics
/// Panics if `sim` is not a V-CONGEST simulator.
pub fn cds_packing_unknown_k_distributed(
    sim: &mut Simulator<'_>,
    seed: u64,
) -> Result<GuessedPacking, GuessError> {
    let n = sim.graph().n();
    if n == 0 || !decomp_graph::traversal::is_connected(sim.graph()) {
        return Err(GuessError::Disconnected);
    }
    let mut attempts = Vec::new();
    let mut guess = initial_guess(n);
    loop {
        let attempt_seed = seed ^ (guess as u64);
        let cfg = CdsPackingConfig::with_known_k(guess, attempt_seed);
        let packing = cds_packing_distributed(sim, &cfg)?;
        let membership = membership_of(&packing.classes, n);
        let ok = verify_distributed(sim, &membership, packing.num_classes(), attempt_seed)?
            == VerifyOutcome::Pass;
        attempts.push((guess, ok));
        if ok {
            return Ok(GuessedPacking {
                packing,
                guess,
                attempts,
            });
        }
        assert!(
            guess > 1,
            "guess k=1 must always verify on connected graphs"
        );
        guess /= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp_congest::{EngineKind, Model};
    use decomp_graph::connectivity::vertex_connectivity;
    use decomp_graph::generators;

    #[test]
    fn finds_passing_guess_on_harary() {
        let g = generators::harary(16, 64);
        let r = cds_packing_unknown_k(&g, 3);
        assert!(r.attempts.last().unwrap().1);
        assert!(r.packing.num_classes() >= 1);
        // The accepted guess cannot wildly exceed k (those packings fail).
        assert!(r.guess <= 64);
    }

    #[test]
    fn low_connectivity_certificate_stays_below_k() {
        // Classes overlap on real vertices, so even large guesses can
        // verify on a k = 1 graph — but the *fractional packing size*
        // (the actual certificate, Corollary 1.7) must stay ≤ k = 1.
        let g = generators::barbell(8, 2);
        let r = cds_packing_unknown_k(&g, 1);
        let trees = crate::cds::tree_extract::to_dom_tree_packing(&g, &r.packing);
        trees.packing.validate(&g, 1e-9).unwrap();
        assert!(
            trees.packing.size() <= 1.0 + 1e-9,
            "κ = {} must lower-bound k = 1",
            trees.packing.size()
        );
    }

    #[test]
    fn guess_within_log_factor_of_k() {
        // The estimate is an O(log n)-approximation: guess <= k always
        // fails only below k/Θ(log n) — check guess isn't absurdly small.
        let g = generators::harary(24, 96);
        let k = vertex_connectivity(&g);
        assert_eq!(k, 24);
        let r = cds_packing_unknown_k(&g, 9);
        assert!(r.guess * 32 >= k, "guess {} too far below k={}", r.guess, k);
    }

    #[test]
    fn attempts_decrease() {
        let g = generators::cycle(16);
        let r = cds_packing_unknown_k(&g, 0);
        for w in r.attempts.windows(2) {
            assert!(w[1].0 < w[0].0);
        }
    }

    #[test]
    fn guesses_never_exceed_n() {
        // The explicit cap: every guess the search emits — in particular
        // the first, largest one — stays within `n` on every size,
        // power-of-two or not.
        for n in [2usize, 3, 5, 9, 16, 17] {
            let g = generators::path(n);
            let r = cds_packing_unknown_k(&g, 7);
            for &(guess, _) in &r.attempts {
                assert!(guess <= n, "n={n}: guess {guess} exceeds n");
                assert!(guess >= 1);
            }
        }
    }

    #[test]
    fn disconnected_input_is_a_typed_error_not_a_spin() {
        let g = Graph::from_edges(4, vec![(0, 1), (2, 3)]);
        assert_eq!(
            try_cds_packing_unknown_k(&g, 5).unwrap_err(),
            GuessError::Disconnected
        );
        let mut sim = Simulator::new(&g, Model::VCongest);
        assert_eq!(
            cds_packing_unknown_k_distributed(&mut sim, 5).unwrap_err(),
            GuessError::Disconnected
        );
        assert_eq!(
            sim.stats().rounds,
            0,
            "detected up front, zero rounds spent"
        );
    }

    #[test]
    fn deletion_can_strand_an_accepted_guess() {
        // A hub-and-spokes graph: the pre-failure search happily accepts a
        // guess (k̃ = 1 always verifies), but every class leans on the hub.
        // Once the hub fails the survivors are disconnected — re-running
        // the search must return the typed error immediately instead of
        // halving forever / spinning to the round cap.
        let hub = Graph::from_edges(5, vec![(0, 1), (0, 2), (0, 3), (0, 4)]);
        let pre = try_cds_packing_unknown_k(&hub, 4).unwrap();
        assert!(pre.attempts.last().unwrap().1, "pre-failure guess verifies");
        let survivors = Graph::from_edges(4, vec![]); // hub deleted, spokes stranded
        assert_eq!(
            try_cds_packing_unknown_k(&survivors, 4).unwrap_err(),
            GuessError::Disconnected
        );
        // With f < κ the re-search instead succeeds on the survivors: drop
        // vertex 0 from a 4-connected harary graph and renumber.
        let g = generators::harary(4, 12);
        let survivors: Vec<(usize, usize)> = g
            .edges()
            .iter()
            .filter(|&&(u, v)| u != 0 && v != 0)
            .map(|&(u, v)| (u - 1, v - 1))
            .collect();
        let g1 = Graph::from_edges(11, survivors);
        let post = try_cds_packing_unknown_k(&g1, 4).unwrap();
        assert!(
            post.attempts.last().unwrap().1,
            "post-failure re-search verifies"
        );
        assert!(post.guess <= 11);
    }

    #[test]
    fn distributed_guess_finds_valid_packing_and_spends_rounds() {
        let g = generators::harary(8, 32);
        let mut sim = Simulator::new(&g, Model::VCongest);
        let r = cds_packing_unknown_k_distributed(&mut sim, 3).unwrap();
        assert!(r.attempts.last().unwrap().1, "accepted attempt must pass");
        // The accepted packing is a real CDS packing (exact check).
        assert_eq!(
            verify_centralized(&g, &r.packing.classes),
            VerifyOutcome::Pass
        );
        assert!(r.guess <= 32, "guess cannot exceed n");
        // Every attempt — accepted and rejected — costs simulator rounds.
        assert!(sim.stats().rounds > 0);
        assert!(sim.stats().messages > 0);
        for w in r.attempts.windows(2) {
            assert!(w[1].0 < w[0].0, "guesses must decrease");
        }
    }

    #[test]
    fn distributed_guess_certificate_respects_connectivity() {
        // On a barbell (k = 1) the fractional packing extracted from the
        // accepted guess must stay ≤ k, exactly as in the centralized path.
        let g = generators::barbell(6, 2);
        let mut sim = Simulator::new(&g, Model::VCongest);
        let r = cds_packing_unknown_k_distributed(&mut sim, 1).unwrap();
        let trees = crate::cds::tree_extract::to_dom_tree_packing(&g, &r.packing);
        trees.packing.validate(&g, 1e-9).unwrap();
        assert!(
            trees.packing.size() <= 1.0 + 1e-9,
            "κ = {} must lower-bound k = 1",
            trees.packing.size()
        );
    }

    #[test]
    fn distributed_guess_is_deterministic_and_engine_independent() {
        let g = generators::harary(6, 24);
        let run = |engine| {
            let mut sim = Simulator::new(&g, Model::VCongest).with_engine(engine);
            let r = cds_packing_unknown_k_distributed(&mut sim, 9).unwrap();
            (
                r.guess,
                r.attempts.clone(),
                r.packing.classes.clone(),
                sim.stats().locality_blind(),
            )
        };
        let seq = run(EngineKind::Sequential);
        assert_eq!(seq, run(EngineKind::Sequential));
        assert_eq!(seq, run(EngineKind::sharded(2)));
        assert_eq!(seq, run(EngineKind::sharded(4)));
        assert_eq!(seq, run(EngineKind::sharded_topo(4)));
    }
}
