//! # decomp-core
//!
//! The primary contribution of Censor-Hillel, Ghaffari & Kuhn,
//! *Distributed Connectivity Decomposition* (PODC 2014): algorithms that
//! decompose a graph's vertex connectivity into a **fractional dominating
//! tree packing** and its edge connectivity into a **fractional spanning
//! tree packing**, plus the packing verifier and the vertex-connectivity
//! approximation they imply.
//!
//! | Paper | Module |
//! |---|---|
//! | §3 + Appendix C — centralized CDS packing, `O(m log² n)` | [`cds::centralized`] |
//! | Appendix B — distributed CDS packing, V-CONGEST | [`cds::distributed`] |
//! | §3.1 — CDS → dominating-tree extraction | [`cds::tree_extract`] |
//! | Appendix E — packing tester | [`cds::verify`] |
//! | Remark 3.1 — unknown-`k` guessing | [`cds::guess`] |
//! | §4.1 — connector-path analysis (Lemma 4.3) | [`cds::connector`] |
//! | §5.1 + Appendix F — MWU spanning-tree packing | [`stp::mwu`] |
//! | §5.2 — Karger-sampled generalization | [`stp::sampled`] |
//! | §1.2 — integral spanning-tree packing | [`stp::integral`] |
//! | §5.1 — distributed MWU driver, E-CONGEST | [`stp::distributed`] |
//! | Corollary 1.7 — vertex-connectivity approximation | [`connectivity_approx`] |
//!
//! # Example
//!
//! ```
//! use decomp_graph::generators;
//! use decomp_core::cds::centralized::{cds_packing, CdsPackingConfig};
//! use decomp_core::cds::tree_extract::to_dom_tree_packing;
//!
//! let g = generators::harary(8, 64);
//! let packing = cds_packing(&g, &CdsPackingConfig::with_known_k(8, 1));
//! let trees = to_dom_tree_packing(&g, &packing);
//! trees.packing.validate(&g, 1e-9).unwrap();
//! assert!(trees.packing.num_trees() >= 1);
//! ```

pub mod cds;
pub mod connectivity_approx;
pub mod packing;
pub mod stp;
pub mod virtual_graph;

pub use packing::{DomTreePacking, SpanTreePacking};
