//! Vertex-connectivity approximation (Corollary 1.7).
//!
//! The CDS-packing construction works without prior knowledge of `k`
//! (Remark 3.1's guessing), and the size of the achieved fractional
//! dominating-tree packing lies in `[Ω(k / log n), k]`: the upper bound
//! holds because every vertex cut intersects every connected dominating
//! set, so no fractional CDS packing can exceed `k`. Reporting the packing
//! size therefore gives an `O(log n)`-approximation of `k` — centralized in
//! `O~(m)` and distributed in `O~(D + √n)` rounds.

use crate::cds::guess::cds_packing_unknown_k;
use crate::cds::tree_extract::to_dom_tree_packing;
use decomp_congest::{Model, SimError, Simulator};
use decomp_graph::Graph;

/// Result of the approximation.
#[derive(Clone, Debug)]
pub struct VcApproximation {
    /// Certified lower bound on `k`: the fractional packing size `κ`
    /// (`κ ≤ k` always, by the cut argument; `κ ≥ Ω(k / log n)` w.h.p.).
    pub packing_size: f64,
    /// The accepted construction parameter `k̃` from Remark 3.1 (the
    /// class-count driver, *not* the estimate — overlapping classes let
    /// large guesses verify on low-connectivity graphs).
    pub guess: usize,
    /// Number of dominating trees in the certificate.
    pub num_trees: usize,
}

impl VcApproximation {
    /// The reported `O(log n)`-approximation of `k`: the certified packing
    /// size, rounded up. Satisfies `estimate ≤ k ≤ O(log n) · estimate`
    /// w.h.p. (Corollary 1.7).
    pub fn estimate(&self) -> usize {
        self.packing_size.ceil().max(1.0) as usize
    }
}

/// Centralized `O~(m)`-style approximation (Corollary 1.7).
///
/// # Panics
/// Panics if `g` is empty or disconnected.
pub fn approx_vertex_connectivity(g: &Graph, seed: u64) -> VcApproximation {
    let guessed = cds_packing_unknown_k(g, seed);
    let trees = to_dom_tree_packing(g, &guessed.packing);
    VcApproximation {
        packing_size: trees.packing.size(),
        guess: guessed.guess,
        num_trees: trees.packing.num_trees(),
    }
}

/// Distributed `O~(D + √n)`-round approximation in V-CONGEST: the guessing
/// loop of Remark 3.1 with the Appendix B construction and the Appendix E
/// tester, all on the simulator.
///
/// # Errors
/// Propagates simulator round-limit errors.
pub fn approx_vertex_connectivity_distributed(
    sim: &mut Simulator<'_>,
    seed: u64,
) -> Result<VcApproximation, SimError> {
    assert_eq!(sim.model(), Model::VCongest);
    let g = sim.graph().clone();
    assert!(
        decomp_graph::traversal::is_connected(&g) && g.n() > 0,
        "approximation requires a connected non-empty graph"
    );
    let mut guess = g.n().next_power_of_two() / 2;
    loop {
        guess = guess.max(1);
        let cfg =
            crate::cds::centralized::CdsPackingConfig::with_known_k(guess, seed ^ (guess as u64));
        let packing = crate::cds::distributed::cds_packing_distributed(sim, &cfg)?;
        let membership = crate::cds::verify::membership_of(&packing.classes, g.n());
        let outcome = crate::cds::verify::verify_distributed(
            sim,
            &membership,
            packing.num_classes(),
            seed ^ 0x7777 ^ (guess as u64),
        )?;
        if outcome == crate::cds::verify::VerifyOutcome::Pass {
            let trees = to_dom_tree_packing(&g, &packing);
            return Ok(VcApproximation {
                packing_size: trees.packing.size(),
                guess,
                num_trees: trees.packing.num_trees(),
            });
        }
        assert!(guess > 1, "guess k=1 must pass on connected graphs");
        guess /= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp_graph::connectivity::vertex_connectivity;
    use decomp_graph::generators;

    #[test]
    fn packing_size_lower_bounds_k() {
        for (k, n) in [(6usize, 36usize), (12, 48), (20, 60)] {
            let g = generators::harary(k, n);
            let approx = approx_vertex_connectivity(&g, 7);
            let true_k = vertex_connectivity(&g);
            assert_eq!(true_k, k);
            assert!(
                approx.packing_size <= true_k as f64 + 1e-9,
                "packing size {} must lower-bound k={}",
                approx.packing_size,
                true_k
            );
            // O(log n) approximation: size * O(log n) >= k.
            let logn = (n as f64).log2();
            assert!(
                approx.packing_size * 16.0 * logn >= true_k as f64,
                "size {} too small for k={} (n={})",
                approx.packing_size,
                true_k,
                n
            );
        }
    }

    #[test]
    fn estimate_reasonable_on_low_connectivity() {
        let g = generators::barbell(8, 2); // k = 1
        let approx = approx_vertex_connectivity(&g, 3);
        // κ ≤ k = 1, so the rounded estimate is exactly 1.
        assert!(approx.packing_size <= 1.0 + 1e-9);
        assert_eq!(approx.estimate(), 1);
    }

    #[test]
    fn distributed_variant_agrees() {
        let g = generators::harary(8, 32);
        let mut sim = Simulator::new(&g, Model::VCongest);
        let approx = approx_vertex_connectivity_distributed(&mut sim, 11).unwrap();
        assert!(approx.packing_size <= 8.0 + 1e-9);
        assert!(approx.packing_size > 0.0);
        assert!(sim.stats().rounds > 0);
    }
}
