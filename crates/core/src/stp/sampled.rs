//! Generalized fractional spanning-tree packing (Section 5.2).
//!
//! For large `λ`, randomly split the edges into `η` subgraphs with
//! `λ/η = Θ(log n / ε²)` (Karger), run the `O(log n)`-connectivity MWU
//! packing of Section 5.1 in each subgraph, and take the union. The sum of
//! the subgraph connectivities is `≥ λ(1 − ε)` w.h.p., so the combined
//! packing keeps near-`⌈(λ−1)/2⌉` size while every per-edge load stays ≤ 1
//! (the subgraphs are edge-disjoint).
//!
//! The paper picks `η` from a distributed 3-approximation of `λ`
//! (Ghaffari–Kuhn); we substitute the exact `λ` oracle and charge the
//! documented distributed cost (DESIGN.md §3, substitution 2).

use crate::packing::{SpanTreePacking, WeightedSpanTree};
use crate::stp::mwu::{fractional_stp_mwu, MwuConfig};
use decomp_graph::connectivity::edge_connectivity;
use decomp_graph::sample::{choose_eta, random_edge_partition};
use decomp_graph::{traversal, Graph};

/// Report of the generalized packing.
#[derive(Clone, Debug)]
pub struct SampledStpReport {
    /// The combined feasible packing over the original graph.
    pub packing: SpanTreePacking,
    /// Number of sampled subgraphs `η`.
    pub eta: usize,
    /// Per-subgraph `(λ_i, packing size)` pairs.
    pub subgraphs: Vec<(usize, f64)>,
    /// Sum of subgraph connectivities (Karger: `≥ λ(1 − ε)` w.h.p.).
    pub lambda_sum: usize,
}

/// Runs the Section 5.2 pipeline with `η` chosen by Karger's formula.
///
/// # Panics
/// Panics if `g` is disconnected or `epsilon ∉ (0, 1/6)`.
pub fn sampled_stp(g: &Graph, epsilon: f64, seed: u64) -> SampledStpReport {
    let lambda = edge_connectivity(g);
    let eta = choose_eta(lambda, g.n(), epsilon.max(0.05));
    sampled_stp_with_eta(g, epsilon, eta, seed)
}

/// The same pipeline with an explicit subgraph count `η` — used to
/// exercise the splitting path at test scales (the formula only splits
/// once `λ ≥ 20 ln n / ε²`).
///
/// # Panics
/// Panics if `g` is disconnected, `epsilon ∉ (0, 1/6)`, or `eta == 0`.
pub fn sampled_stp_with_eta(g: &Graph, epsilon: f64, eta: usize, seed: u64) -> SampledStpReport {
    assert!(
        traversal::is_connected(g),
        "sampled packing requires a connected graph"
    );
    assert!(eta >= 1, "need at least one subgraph");
    let parts = random_edge_partition(g, eta, seed);
    let mut packing = SpanTreePacking::default();
    let mut subgraphs = Vec::new();
    let mut lambda_sum = 0usize;
    for part in &parts {
        if !traversal::is_connected(part) {
            subgraphs.push((0, 0.0));
            continue;
        }
        let lambda_i = edge_connectivity(part);
        lambda_sum += lambda_i;
        let report = fractional_stp_mwu(
            part,
            lambda_i,
            &MwuConfig {
                epsilon,
                max_iterations: None,
            },
        );
        subgraphs.push((lambda_i, report.packing.size()));
        // Translate edge indices from the part back to g.
        for tree in report.packing.trees {
            let edge_indices: Vec<usize> = tree
                .edge_indices
                .iter()
                .map(|&e| {
                    let (u, v) = part.edges()[e];
                    g.edge_index(u, v).expect("partition edge exists in g")
                })
                .collect();
            packing.trees.push(WeightedSpanTree {
                weight: tree.weight,
                edge_indices,
            });
        }
    }
    SampledStpReport {
        packing,
        eta,
        subgraphs,
        lambda_sum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp_graph::generators;

    #[test]
    fn small_lambda_degenerates_to_single_mwu() {
        let g = generators::harary(6, 30);
        let r = sampled_stp(&g, 0.1, 3);
        assert_eq!(r.eta, 1);
        r.packing.validate(&g, 1e-9).unwrap();
        assert!(r.packing.size() >= 3.0 * (1.0 - 0.6) - 1e-9);
    }

    #[test]
    fn large_lambda_splits_and_stays_feasible() {
        let g = generators::complete(60); // lambda = 59
        let r = sampled_stp(&g, 0.15, 9);
        r.packing.validate(&g, 1e-9).unwrap();
        // Karger's guarantee at this scale.
        assert!(
            r.lambda_sum as f64 >= 0.5 * 59.0,
            "lambda_sum {} too small",
            r.lambda_sum
        );
        // Combined size close to sum of sub-targets.
        let expected: f64 = r
            .subgraphs
            .iter()
            .map(|&(l, _)| {
                if l >= 1 {
                    ((l as f64 - 1.0) / 2.0).ceil().max(1.0)
                } else {
                    0.0
                }
            })
            .sum();
        assert!(
            r.packing.size() >= expected * 0.5,
            "size {} vs expected {}",
            r.packing.size(),
            expected
        );
    }

    #[test]
    fn subgraph_trees_are_disjoint_across_parts() {
        let g = generators::complete(40);
        let r = sampled_stp(&g, 0.15, 4);
        // Per-edge load never exceeds 1 even though subgraph packings are
        // computed independently — parts are edge-disjoint.
        let loads = r.packing.edge_loads(&g);
        assert!(loads.iter().all(|&l| l <= 1.0 + 1e-9));
    }

    #[test]
    fn explicit_eta_exercises_real_splitting() {
        // K_40 (λ = 39) split into 5 subgraphs of λ_i ≈ 7: the combined
        // packing must stay feasible and reach a good fraction of the sum
        // of the sub-targets.
        let g = generators::complete(40);
        let r = sampled_stp_with_eta(&g, 0.1, 5, 7);
        assert_eq!(r.eta, 5);
        r.packing.validate(&g, 1e-9).unwrap();
        // η = 5 deliberately violates Karger's λ/η ≥ 20 ln n/ε² premise,
        // so each part's connectivity is governed by its minimum degree
        // (≈ Binomial(39, 1/5) minima ≈ 3–4); the sum still lands well
        // above half of the λ(1−ε) ideal's per-part floor.
        assert!(r.lambda_sum >= 12, "lambda_sum {}", r.lambda_sum);
        let sub_target: f64 = r
            .subgraphs
            .iter()
            .map(|&(l, _)| {
                if l >= 1 {
                    ((l as f64 - 1.0) / 2.0).ceil().max(1.0)
                } else {
                    0.0
                }
            })
            .sum();
        assert!(
            r.packing.size() >= 0.4 * sub_target,
            "size {} vs sub-target sum {}",
            r.packing.size(),
            sub_target
        );
    }

    #[test]
    fn eta_one_equals_plain_mwu_quality() {
        let g = generators::harary(4, 20);
        let r = sampled_stp_with_eta(&g, 0.1, 1, 3);
        assert_eq!(r.eta, 1);
        r.packing.validate(&g, 1e-9).unwrap();
        assert!(r.packing.size() >= 2.0 * 0.4);
    }
}
