//! Distributed MWU spanning-tree packing in E-CONGEST (Section 5.1's
//! distributed implementation, Theorem 1.3's engine).
//!
//! Per iteration: every node knows the loads `z_e` of its incident edges;
//! the MST under costs `c_e = exp(α z_e)` is computed by the distributed
//! MST primitive (MST order under `c_e` equals MST order under `z_e`, so
//! nodes exchange quantized `z_e` — exactly the paper's footnote-6 trick of
//! sending `z_e` instead of the super-polynomial `c_e`); the termination
//! test aggregates `Cost(MST)` and `Σ c_e x_e` over a BFS tree and the
//! common decision is known to every node.

use crate::stp::mwu::{MwuConfig, MwuDriver, MwuReport};
use decomp_congest::aggregate::{tree_aggregate, AggOp};
use decomp_congest::bfs::distributed_bfs;
use decomp_congest::mst::distributed_mst;
use decomp_congest::{Model, SimError, Simulator};

/// Quantization resolution for exchanged `z_e` values (footnote 6: rounding
/// to `O(log n)`-bit precision has negligible effect).
const Z_QUANTUM: f64 = 1.0 / (1u64 << 40) as f64;

/// Runs the distributed MWU packing on `sim` (E-CONGEST) with known
/// `lambda`.
///
/// Round costs (BFS preamble, per-iteration MST + aggregation) accumulate
/// in `sim.stats()`. Intended for `λ = O(log n)` — Section 5.2's sampling
/// handles larger connectivity by splitting first.
///
/// # Errors
/// Propagates simulator round-limit errors.
///
/// # Panics
/// Panics if `sim` is not E-CONGEST, the graph is disconnected, or the
/// config is invalid (see [`crate::stp::mwu::fractional_stp_mwu`]).
pub fn distributed_stp_mwu(
    sim: &mut Simulator<'_>,
    lambda: usize,
    config: &MwuConfig,
) -> Result<MwuReport, SimError> {
    assert_eq!(
        sim.model(),
        Model::ECongest,
        "Theorem 1.3 is an E-CONGEST result"
    );
    let g = sim.graph().clone();
    assert!(
        decomp_graph::traversal::is_connected(&g),
        "MWU packing requires a connected graph"
    );
    let driver = MwuDriver::new(g.n(), g.m(), lambda, config.epsilon, config.max_iterations);

    // Preamble: BFS tree for the aggregations (O(D) rounds).
    let tree = distributed_bfs(sim, 0)?;
    let first = distributed_mst(sim, &vec![0u64; g.m()])?;

    let outcome = driver.run(first.edge_indices, |z, cost, x| {
        // Quantized z as distributed MST weights (monotone in c_e).
        let weights: Vec<u64> = z
            .iter()
            .map(|&ze| (ze / Z_QUANTUM).round() as u64)
            .collect();
        let mst = distributed_mst(sim, &weights)?;
        // Each edge is owned by its smaller endpoint; nodes contribute
        // partial sums that travel up the BFS tree, and everyone learns
        // both totals (so the continue/terminate decision is global).
        let mut in_mst = vec![false; g.m()];
        for &e in &mst.edge_indices {
            in_mst[e] = true;
        }
        let mut local_mst_cost = vec![0.0f64; g.n()];
        let mut local_frac_cost = vec![0.0f64; g.n()];
        for (e, &(u, _v)) in g.edges().iter().enumerate() {
            if in_mst[e] {
                local_mst_cost[u] += cost[e];
            }
            local_frac_cost[u] += cost[e] * x[e];
        }
        let mst_cost = f64::from_bits(tree_aggregate(
            sim,
            &tree,
            AggOp::SumF64,
            &local_mst_cost
                .iter()
                .map(|c| c.to_bits())
                .collect::<Vec<_>>(),
        )?);
        let frac_cost = f64::from_bits(tree_aggregate(
            sim,
            &tree,
            AggOp::SumF64,
            &local_frac_cost
                .iter()
                .map(|c| c.to_bits())
                .collect::<Vec<_>>(),
        )?);
        Ok((mst.edge_indices, mst_cost, frac_cost))
    })?;
    Ok(outcome.into_report())
}

/// Report of the distributed Section 5.2 pipeline.
#[derive(Clone, Debug)]
pub struct DistSampledReport {
    /// Combined feasible packing on the original graph.
    pub packing: crate::packing::SpanTreePacking,
    /// Subgraph count `η`.
    pub eta: usize,
    /// Measured simulator rounds summed over the sequentially-run
    /// subgraph packings.
    pub rounds_sequential: usize,
    /// The Lemma 5.1 charge for the pipelined execution:
    /// `O((D + √(nλ)/log n · log* n) · log³ n)` rounds.
    pub rounds_pipelined_charge: usize,
}

/// Distributed generalized packing (Section 5.2 + Lemma 5.1): split the
/// edges into `η` subgraphs, run the distributed MWU in each.
///
/// Our simulator runs the subgraphs **sequentially** (summing their
/// measured rounds); Lemma 5.1 shows the real algorithm pipelines all the
/// per-iteration MST upcasts over one BFS tree, and the corresponding
/// charge is reported alongside (DESIGN.md §3).
///
/// # Errors
/// Propagates simulator round-limit errors.
///
/// # Panics
/// Panics if `g` is disconnected, `eta == 0`, or the config is invalid.
pub fn distributed_sampled_stp(
    g: &decomp_graph::Graph,
    epsilon: f64,
    eta: usize,
    seed: u64,
) -> Result<DistSampledReport, SimError> {
    assert!(eta >= 1, "need at least one subgraph");
    assert!(
        decomp_graph::traversal::is_connected(g),
        "sampled packing requires a connected graph"
    );
    let parts = decomp_graph::sample::random_edge_partition(g, eta, seed);
    let mut packing = crate::packing::SpanTreePacking::default();
    let mut rounds = 0usize;
    let mut lambda_total = 0usize;
    for part in &parts {
        if !decomp_graph::traversal::is_connected(part) {
            continue;
        }
        let lambda_i = decomp_graph::connectivity::edge_connectivity(part);
        lambda_total += lambda_i;
        let mut sim = Simulator::new(part, Model::ECongest);
        let report = distributed_stp_mwu(
            &mut sim,
            lambda_i,
            &MwuConfig {
                epsilon,
                max_iterations: None,
            },
        )?;
        rounds += sim.stats().rounds;
        for tree in report.packing.trees {
            let edge_indices: Vec<usize> = tree
                .edge_indices
                .iter()
                .map(|&e| {
                    let (u, v) = part.edges()[e];
                    g.edge_index(u, v).expect("partition edge exists in g")
                })
                .collect();
            packing.trees.push(crate::packing::WeightedSpanTree {
                weight: tree.weight,
                edge_indices,
            });
        }
    }
    // Lemma 5.1 charge: (D + sqrt(n·λ)/log n · log* n) · log³ n.
    let n = g.n().max(2) as f64;
    let d = decomp_graph::traversal::diameter_2approx(g).unwrap_or(g.n()) as f64;
    let logn = n.log2();
    let log_star = 4.0; // effectively constant at any practical n
    let charge =
        ((d + (n * lambda_total.max(1) as f64).sqrt() / logn * log_star) * logn * logn * logn)
            as usize;
    Ok(DistSampledReport {
        packing,
        eta,
        rounds_sequential: rounds,
        rounds_pipelined_charge: charge,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp_graph::connectivity::edge_connectivity;
    use decomp_graph::generators;

    #[test]
    fn distributed_sampled_pipeline_feasible() {
        let g = generators::complete(18); // lambda = 17
        let r = distributed_sampled_stp(&g, 0.1, 3, 5).unwrap();
        r.packing.validate(&g, 1e-9).unwrap();
        assert_eq!(r.eta, 3);
        assert!(r.packing.size() >= 2.0, "size {}", r.packing.size());
        assert!(r.rounds_sequential > 0);
        assert!(r.rounds_pipelined_charge > 0);
    }

    #[test]
    fn distributed_matches_quality_of_centralized() {
        let g = generators::harary(4, 12); // lambda = 4, target = 2
        let lambda = edge_connectivity(&g);
        assert_eq!(lambda, 4);
        let mut sim = Simulator::new(&g, Model::ECongest);
        let r = distributed_stp_mwu(&mut sim, lambda, &MwuConfig::default()).unwrap();
        r.packing.validate(&g, 1e-9).unwrap();
        assert!(
            r.packing.size() >= 2.0 * (1.0 - 0.6) - 1e-9,
            "size {}",
            r.packing.size()
        );
        assert!(sim.stats().rounds > 0);
    }

    #[test]
    fn path_graph_one_tree() {
        let g = generators::path(6);
        let mut sim = Simulator::new(&g, Model::ECongest);
        let r = distributed_stp_mwu(&mut sim, 1, &MwuConfig::default()).unwrap();
        r.packing.validate(&g, 1e-9).unwrap();
        assert!((r.packing.size() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lemma_f1_bound_holds() {
        let g = generators::complete(7); // lambda = 6, target = 3
        let mut sim = Simulator::new(&g, Model::ECongest);
        let r = distributed_stp_mwu(&mut sim, 6, &MwuConfig::default()).unwrap();
        assert!(
            r.final_max_z <= 1.0 + 6.0 * 0.1 + 1e-6,
            "final_max_z = {}",
            r.final_max_z
        );
    }

    #[test]
    #[should_panic(expected = "E-CONGEST")]
    fn rejects_vcongest() {
        let g = generators::cycle(4);
        let mut sim = Simulator::new(&g, Model::VCongest);
        let _ = distributed_stp_mwu(&mut sim, 2, &MwuConfig::default());
    }
}
