//! The Lagrangian/MWU fractional spanning-tree packing (Section 5.1).
//!
//! Maintain a weighted tree collection of total weight 1. Per iteration:
//! compute the normalized loads `z_e = x_e · ⌈(λ−1)/2⌉`, price edges at
//! `c_e = exp(α · z_e)`, find the MST under these costs, and either
//! terminate — when `Cost(MST) > (1−ε) Σ_e c_e x_e`, which by Lemma F.1
//! certifies `max_e z_e ≤ 1 + 6ε` — or blend the MST in. Lemma F.2 bounds
//! the iterations for `λ = O(log n)` (the only regime Section 5.1 is used
//! in; Section 5.2's sampling reduces general `λ` to this case).
//!
//! Two engineering notes, both behavior-preserving:
//!
//! * **log-space costs** — `exp(α z)` can be astronomically large, so all
//!   costs are evaluated as `exp(α(z_e − z_max))`; every comparison scales
//!   by the same factor and the MST order is unchanged (the paper's
//!   footnote 6 makes the same observation for message encoding);
//! * **warm start** — the paper's fixed blend weight `β = Θ(1/(α log n))`
//!   takes `Θ(ln(λ)/β)` iterations just to dilute the weight-1 initial
//!   tree. We first run Frank–Wolfe steps with the classical diminishing
//!   step `γ_r = 2/(r+3)` until `max_e z_e ≤ 1 + 4ε`, then switch to the
//!   paper's fixed-`β` loop with the Lemma F.1 termination test. The
//!   invariant (a total-weight-1 convex combination of spanning trees)
//!   holds throughout, so all guarantees are unaffected.
//!
//! The final collection is rescaled by `1 / max_e x_e`, giving per-edge
//! load exactly ≤ 1 and packing size `≥ ⌈(λ−1)/2⌉ / (1 + 6ε)`.

use crate::packing::{SpanTreePacking, WeightedSpanTree};
use decomp_graph::mst::minimum_spanning_forest;
use decomp_graph::Graph;
use std::collections::HashMap;

/// Configuration for [`fractional_stp_mwu`].
#[derive(Clone, Debug)]
pub struct MwuConfig {
    /// Approximation slack `ε` (the packing loses a `(1 − O(ε))` factor).
    pub epsilon: f64,
    /// Hard iteration cap per phase; `None` uses a generous default.
    pub max_iterations: Option<usize>,
}

impl Default for MwuConfig {
    fn default() -> Self {
        MwuConfig {
            epsilon: 0.1,
            max_iterations: None,
        }
    }
}

/// Per-iteration trace entry.
#[derive(Clone, Copy, Debug)]
pub struct MwuIteration {
    /// `max_e z_e` at the start of the iteration.
    pub max_z: f64,
    /// `Cost(MST) / Σ_e c_e x_e` (termination fires above `1 − ε`).
    pub mst_cost_ratio: f64,
}

/// Outcome of the MWU packing.
#[derive(Clone, Debug)]
pub struct MwuReport {
    /// The resulting feasible packing (per-edge load ≤ 1).
    pub packing: SpanTreePacking,
    /// Iteration trace (Lemma F.1/F.2 experiment data).
    pub iterations: Vec<MwuIteration>,
    /// Whether the Lemma F.1 termination condition fired (vs. the cap).
    pub terminated_by_condition: bool,
    /// Final maximum normalized load before rescaling.
    pub final_max_z: f64,
}

/// The shared MWU driver. The MST oracle receives the current loads `z`
/// and returns the minimum spanning tree under costs monotone in `z`
/// (ties by edge index). Used by both the centralized packing here and the
/// distributed one in [`crate::stp::distributed`].
pub(crate) struct MwuDriver {
    pub m: usize,
    pub target: f64,
    pub epsilon: f64,
    pub alpha: f64,
    pub beta: f64,
    pub warm_cap: usize,
    pub polish_cap: usize,
}

impl MwuDriver {
    pub fn new(n: usize, m: usize, lambda: usize, epsilon: f64, cap: Option<usize>) -> Self {
        assert!(lambda >= 1, "edge connectivity must be positive");
        assert!(
            epsilon > 0.0 && epsilon < 1.0 / 6.0,
            "epsilon must lie in (0, 1/6)"
        );
        let _ = n;
        let m_f = m.max(1) as f64;
        let target = ((lambda as f64 - 1.0) / 2.0).ceil().max(1.0);
        let alpha = 1.2 * (2.0 * m_f / epsilon).ln().max(1.0) / epsilon;
        let beta = epsilon / (2.0 * alpha * target);
        let default_cap = 20_000;
        MwuDriver {
            m,
            target,
            epsilon,
            alpha,
            beta,
            warm_cap: cap.unwrap_or(default_cap),
            polish_cap: cap.unwrap_or(default_cap),
        }
    }

    /// Runs both phases. `mst_oracle(z, cost) -> (tree edge indices,
    /// Cost(MST), Σ_e c_e x_e)`; `x` is threaded so the oracle can compute
    /// the fractional cost (the distributed variant aggregates it instead
    /// of trusting a local view — values agree).
    pub fn run<E>(
        &self,
        initial_tree: Vec<usize>,
        mut mst_oracle: impl FnMut(&[f64], &[f64], &[f64]) -> Result<(Vec<usize>, f64, f64), E>,
    ) -> Result<MwuOutcome, E> {
        let mut collection: HashMap<Vec<usize>, f64> = HashMap::new();
        let mut x = vec![0.0f64; self.m];
        for &e in &initial_tree {
            x[e] = 1.0;
        }
        collection.insert(initial_tree, 1.0);
        let mut iterations = Vec::new();
        let mut terminated = false;

        let blend = |collection: &mut HashMap<Vec<usize>, f64>,
                     x: &mut Vec<f64>,
                     tree: Vec<usize>,
                     gamma: f64| {
            for xe in x.iter_mut() {
                *xe *= 1.0 - gamma;
            }
            for w in collection.values_mut() {
                *w *= 1.0 - gamma;
            }
            for &e in &tree {
                x[e] += gamma;
            }
            *collection.entry(tree).or_insert(0.0) += gamma;
        };

        // Phase 1: Frank–Wolfe warm start.
        let warm_threshold = 1.0 + 4.0 * self.epsilon;
        for r in 0..self.warm_cap {
            let (z, z_max, cost) = self.price(&x);
            if z_max <= warm_threshold {
                break;
            }
            let (tree, mst_cost, frac_cost) = mst_oracle(&z, &cost, &x)?;
            iterations.push(MwuIteration {
                max_z: z_max,
                mst_cost_ratio: safe_ratio(mst_cost, frac_cost),
            });
            let gamma = 2.0 / (r as f64 + 3.0);
            blend(&mut collection, &mut x, tree, gamma);
        }

        // Phase 2: the paper's fixed-β loop with the Lemma F.1 test.
        for _ in 0..self.polish_cap {
            let (z, z_max, cost) = self.price(&x);
            let (tree, mst_cost, frac_cost) = mst_oracle(&z, &cost, &x)?;
            iterations.push(MwuIteration {
                max_z: z_max,
                mst_cost_ratio: safe_ratio(mst_cost, frac_cost),
            });
            if mst_cost > (1.0 - self.epsilon) * frac_cost {
                terminated = true;
                break;
            }
            blend(&mut collection, &mut x, tree, self.beta);
        }

        let final_max_x = x.iter().cloned().fold(0.0, f64::max).max(f64::MIN_POSITIVE);
        Ok(MwuOutcome {
            collection,
            final_max_x,
            final_max_z: final_max_x * self.target,
            iterations,
            terminated_by_condition: terminated,
        })
    }

    /// Loads and shifted costs for the current fractional solution.
    fn price(&self, x: &[f64]) -> (Vec<f64>, f64, Vec<f64>) {
        let z: Vec<f64> = x.iter().map(|&xe| xe * self.target).collect();
        let z_max = z.iter().cloned().fold(0.0, f64::max);
        let cost: Vec<f64> = z
            .iter()
            .map(|&ze| (self.alpha * (ze - z_max)).exp())
            .collect();
        (z, z_max, cost)
    }
}

fn safe_ratio(a: f64, b: f64) -> f64 {
    if b > 0.0 {
        a / b
    } else {
        f64::INFINITY
    }
}

/// Raw driver outcome, converted by the public entry points.
pub(crate) struct MwuOutcome {
    pub collection: HashMap<Vec<usize>, f64>,
    pub final_max_x: f64,
    pub final_max_z: f64,
    pub iterations: Vec<MwuIteration>,
    pub terminated_by_condition: bool,
}

impl MwuOutcome {
    pub fn into_report(self) -> MwuReport {
        let scale = 1.0 / self.final_max_x;
        let trees: Vec<WeightedSpanTree> = self
            .collection
            .into_iter()
            .map(|(edge_indices, w)| WeightedSpanTree {
                weight: (w * scale).min(1.0),
                edge_indices,
            })
            .collect();
        MwuReport {
            packing: SpanTreePacking { trees },
            iterations: self.iterations,
            terminated_by_condition: self.terminated_by_condition,
            final_max_z: self.final_max_z,
        }
    }
}

/// Runs the MWU packing on connected `g` with edge connectivity `lambda`.
///
/// Returns a feasible fractional spanning-tree packing of size at least
/// `⌈(λ−1)/2⌉ (1 − 6ε)` (Theorem 1.3's size for this subroutine). Intended
/// for `λ = O(log n)`; for larger `λ` use [`crate::stp::sampled`], exactly
/// as Section 5.2 prescribes.
///
/// # Panics
/// Panics if `g` is disconnected/empty, `lambda == 0`, or `epsilon` is not
/// in `(0, 1/6)`.
pub fn fractional_stp_mwu(g: &Graph, lambda: usize, config: &MwuConfig) -> MwuReport {
    assert!(
        decomp_graph::traversal::is_connected(g) && g.n() >= 1,
        "MWU packing requires a connected graph"
    );
    let driver = MwuDriver::new(g.n(), g.m(), lambda, config.epsilon, config.max_iterations);
    let first = minimum_spanning_forest(g, |_| 1.0);
    assert!(
        first.is_spanning_tree(g),
        "connected graph must have an MST"
    );
    let outcome: Result<MwuOutcome, std::convert::Infallible> =
        driver.run(first.edge_indices, |_z, cost, x| {
            let mst = minimum_spanning_forest(g, |e| cost[e]);
            let mst_cost: f64 = mst.edge_indices.iter().map(|&e| cost[e]).sum();
            let frac_cost: f64 = (0..g.m()).map(|e| cost[e] * x[e]).sum();
            Ok((mst.edge_indices, mst_cost, frac_cost))
        });
    match outcome {
        Ok(o) => o.into_report(),
        Err(e) => match e {},
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp_graph::connectivity::edge_connectivity;
    use decomp_graph::generators;

    fn run(g: &Graph, eps: f64) -> (usize, MwuReport) {
        let lambda = edge_connectivity(g);
        let report = fractional_stp_mwu(
            g,
            lambda,
            &MwuConfig {
                epsilon: eps,
                max_iterations: None,
            },
        );
        (lambda, report)
    }

    #[test]
    fn packing_feasible_and_near_target_on_complete_graph() {
        let g = generators::complete(12); // lambda = 11, target = 5
        let (lambda, r) = run(&g, 0.1);
        r.packing.validate(&g, 1e-9).unwrap();
        let target = ((lambda as f64 - 1.0) / 2.0).ceil();
        assert!(
            r.packing.size() >= target * (1.0 - 6.0 * 0.1) - 1e-9,
            "size {} vs target {}",
            r.packing.size(),
            target
        );
    }

    #[test]
    fn harary_packing_size() {
        let g = generators::harary(8, 24); // lambda = 8, target = 4
        let (lambda, r) = run(&g, 0.1);
        assert_eq!(lambda, 8);
        r.packing.validate(&g, 1e-9).unwrap();
        assert!(r.packing.size() >= 4.0 * 0.4, "size {}", r.packing.size());
    }

    #[test]
    fn tree_graph_single_tree() {
        let g = generators::path(8); // lambda = 1, target = 1
        let (_, r) = run(&g, 0.1);
        r.packing.validate(&g, 1e-9).unwrap();
        assert!((r.packing.size() - 1.0).abs() < 1e-9);
        assert_eq!(r.packing.num_trees(), 1);
    }

    #[test]
    fn cycle_half_half() {
        // C_6: lambda = 2, target = 1; a single spanning tree of weight ~1.
        let g = generators::cycle(6);
        let (_, r) = run(&g, 0.1);
        r.packing.validate(&g, 1e-9).unwrap();
        assert!(r.packing.size() >= 0.9);
    }

    #[test]
    fn max_z_bounded_by_lemma_f1() {
        let g = generators::complete(10);
        let (_, r) = run(&g, 0.1);
        assert!(
            r.final_max_z <= 1.0 + 6.0 * 0.1 + 1e-6,
            "Lemma F.1 bound violated: {}",
            r.final_max_z
        );
    }

    #[test]
    fn trace_max_z_trends_down() {
        let g = generators::complete(10);
        let (_, r) = run(&g, 0.1);
        let first = r.iterations.first().unwrap().max_z;
        let last = r.iterations.last().unwrap().max_z;
        assert!(last <= first, "load must not grow: {first} -> {last}");
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn rejects_bad_epsilon() {
        let g = generators::cycle(4);
        fractional_stp_mwu(
            &g,
            2,
            &MwuConfig {
                epsilon: 0.5,
                max_iterations: None,
            },
        );
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn rejects_disconnected() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        fractional_stp_mwu(&g, 1, &MwuConfig::default());
    }

    use decomp_graph::Graph;

    #[test]
    fn edge_multiplicity_polylog() {
        let g = generators::complete(14);
        let (_, r) = run(&g, 0.1);
        let logn = (14f64).log2();
        assert!(
            (r.packing.max_edge_multiplicity(&g) as f64) <= 64.0 * logn * logn * logn,
            "multiplicity {} too large",
            r.packing.max_edge_multiplicity(&g)
        );
    }

    #[test]
    fn collection_total_weight_one_before_rescale() {
        // final_max_z = final_max_x * target; packing size = 1/final_max_x
        // (total weight 1 rescaled). Cross-check the identity.
        let g = generators::complete(9);
        let (lambda, r) = run(&g, 0.1);
        let target = ((lambda as f64 - 1.0) / 2.0).ceil();
        let implied = target / r.final_max_z;
        assert!(
            (r.packing.size() - implied).abs() < 1e-6,
            "size {} vs implied {}",
            r.packing.size(),
            implied
        );
    }
}
