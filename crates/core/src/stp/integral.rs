//! Integral spanning-tree packing of size `Ω(λ / log n)` (Section 1.2,
//! "Integral Tree Packings").
//!
//! The "considerably simpler variant": randomly partition the edges into
//! `η = Θ(λ / log n)` groups; by Karger's sampling theorem each group is a
//! spanning connected subgraph w.h.p., so one spanning tree per group
//! yields `η` *edge-disjoint* spanning trees.

use decomp_graph::mst::minimum_spanning_forest;
use decomp_graph::sample::random_edge_partition;
use decomp_graph::{traversal, Graph};

/// Result of the integral packing.
#[derive(Clone, Debug)]
pub struct IntegralStp {
    /// Edge-disjoint spanning trees, as edge-index lists into `g.edges()`.
    pub trees: Vec<Vec<usize>>,
    /// Number of groups tried (`η`).
    pub groups: usize,
    /// Groups that came out disconnected (skipped; empty w.h.p.).
    pub failed_groups: usize,
}

/// Builds an integral (edge-disjoint) spanning-tree packing.
///
/// `sampling_constant` is the `c` in `η = max(1, λ / (c · ln n))`; the
/// paper's analysis wants `c ≈ 10/ε²`, but `c = 2` already succeeds w.h.p.
/// at benchmark scales and shows the `Ω(λ/log n)` shape.
///
/// # Panics
/// Panics if `g` is disconnected or `lambda == 0`.
pub fn integral_stp(g: &Graph, lambda: usize, sampling_constant: f64, seed: u64) -> IntegralStp {
    assert!(
        traversal::is_connected(g) && g.n() >= 1,
        "integral packing requires a connected graph"
    );
    assert!(lambda >= 1, "edge connectivity must be positive");
    let ln_n = (g.n().max(2) as f64).ln();
    let eta = ((lambda as f64 / (sampling_constant * ln_n)).floor() as usize).max(1);
    let parts = random_edge_partition(g, eta, seed);
    let mut trees = Vec::new();
    let mut failed = 0usize;
    for part in &parts {
        if !traversal::is_connected(part) {
            failed += 1;
            continue;
        }
        let forest = minimum_spanning_forest(part, |_| 1.0);
        // Map the part's edge indices back to g's edge indices.
        let tree: Vec<usize> = forest
            .edge_indices
            .iter()
            .map(|&e| {
                let (u, v) = part.edges()[e];
                g.edge_index(u, v).expect("partition edge exists in g")
            })
            .collect();
        trees.push(tree);
    }
    IntegralStp {
        trees,
        groups: eta,
        failed_groups: failed,
    }
}

/// Checks that `trees` are pairwise edge-disjoint spanning trees of `g`.
pub fn check_integral_stp(g: &Graph, trees: &[Vec<usize>]) -> Result<(), String> {
    let mut used = vec![false; g.m()];
    for (i, tree) in trees.iter().enumerate() {
        let edges: Vec<_> = tree.iter().map(|&e| g.edges()[e]).collect();
        if !decomp_graph::domination::is_spanning_tree(g, &edges) {
            return Err(format!("tree {i} is not a spanning tree"));
        }
        for &e in tree {
            if used[e] {
                return Err(format!("edge {e} reused by tree {i}"));
            }
            used[e] = true;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp_graph::connectivity::edge_connectivity;
    use decomp_graph::generators;

    #[test]
    fn complete_graph_many_disjoint_trees() {
        let g = generators::complete(40); // lambda = 39
        let r = integral_stp(&g, 39, 2.0, 7);
        assert!(r.groups >= 4, "eta = {}", r.groups);
        assert_eq!(r.failed_groups, 0);
        assert_eq!(r.trees.len(), r.groups);
        check_integral_stp(&g, &r.trees).unwrap();
    }

    #[test]
    fn trees_scale_with_lambda() {
        let count = |k: usize| {
            let g = generators::complete(k + 1);
            integral_stp(&g, k, 2.0, 3).trees.len()
        };
        assert!(count(60) > count(20), "more connectivity, more trees");
    }

    #[test]
    fn low_lambda_single_tree() {
        let g = generators::cycle(10); // lambda = 2
        let r = integral_stp(&g, 2, 2.0, 1);
        assert_eq!(r.groups, 1);
        assert_eq!(r.trees.len(), 1);
        check_integral_stp(&g, &r.trees).unwrap();
    }

    #[test]
    fn checker_rejects_overlap() {
        let g = generators::cycle(4);
        let t = integral_stp(&g, 2, 2.0, 0).trees;
        let doubled = vec![t[0].clone(), t[0].clone()];
        assert!(check_integral_stp(&g, &doubled).is_err());
    }

    #[test]
    fn respects_exact_lambda() {
        let g = generators::harary(12, 36);
        let lambda = edge_connectivity(&g);
        let r = integral_stp(&g, lambda, 2.0, 5);
        check_integral_stp(&g, &r.trees).unwrap();
    }
}
