//! Greedy edge-disjoint spanning-tree packing (baseline).
//!
//! The natural baseline against the MWU packing: repeatedly take a
//! spanning tree of the remaining edges and delete it. Guarantees at least
//! `⌊λ/2⌋ / ...` in general only weakly — Tutte/Nash-Williams promise
//! `⌈(λ−1)/2⌉` trees *exist*, but greedy peeling can fall short of that,
//! which is exactly the gap the experiments display next to the MWU
//! numbers.

use decomp_graph::mst::minimum_spanning_forest;
use decomp_graph::{traversal, Graph};

/// Greedily peels edge-disjoint spanning trees; returns them as edge-index
/// lists into `g.edges()`.
///
/// Each iteration picks a *random* spanning tree (random edge weights):
/// deterministic unit weights would peel a star first and isolate a
/// vertex immediately, while random trees have low maximum degree and let
/// many more rounds survive.
///
/// # Panics
/// Panics if `g` is disconnected or empty.
pub fn greedy_stp(g: &Graph, seed: u64) -> Vec<Vec<usize>> {
    use rand::{Rng, SeedableRng};
    assert!(
        traversal::is_connected(g) && g.n() >= 1,
        "greedy packing requires a connected graph"
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut removed = vec![false; g.m()];
    let mut trees = Vec::new();
    loop {
        let remaining = g.edge_subgraph(|u, v| {
            let e = g.edge_index(u, v).expect("edge exists");
            !removed[e]
        });
        if !traversal::is_connected(&remaining) {
            break;
        }
        let weights: Vec<f64> = (0..remaining.m()).map(|_| rng.gen::<f64>()).collect();
        let forest = minimum_spanning_forest(&remaining, |e| weights[e]);
        let tree: Vec<usize> = forest
            .edge_indices
            .iter()
            .map(|&e| {
                let (u, v) = remaining.edges()[e];
                g.edge_index(u, v).expect("edge exists in g")
            })
            .collect();
        for &e in &tree {
            removed[e] = true;
        }
        trees.push(tree);
        if trees.len() > g.m() {
            unreachable!("cannot peel more trees than edges");
        }
    }
    trees
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stp::integral::check_integral_stp;
    use decomp_graph::connectivity::edge_connectivity;
    use decomp_graph::generators;

    #[test]
    fn peels_disjoint_spanning_trees() {
        let g = generators::complete(10);
        let trees = greedy_stp(&g, 3);
        check_integral_stp(&g, &trees).unwrap();
        // K_10 admits 5 disjoint spanning trees; random greedy peeling
        // reliably finds at least 3.
        assert!(trees.len() >= 3, "only {} trees", trees.len());
        assert!(trees.len() <= 5);
    }

    #[test]
    fn tree_input_single_tree() {
        let g = generators::path(7);
        let trees = greedy_stp(&g, 0);
        assert_eq!(trees.len(), 1);
    }

    #[test]
    fn count_between_one_and_lambda() {
        for (k, n) in [(4usize, 16usize), (6, 18), (8, 24)] {
            let g = generators::harary(k, n);
            let lambda = edge_connectivity(&g);
            let trees = greedy_stp(&g, 9);
            check_integral_stp(&g, &trees).unwrap();
            assert!(!trees.is_empty());
            assert!(trees.len() <= lambda);
        }
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn rejects_disconnected() {
        let g = decomp_graph::Graph::from_edges(4, [(0, 1), (2, 3)]);
        greedy_stp(&g, 0);
    }
}
