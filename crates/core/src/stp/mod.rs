//! Fractional and integral spanning-tree packings (Section 5, Appendix F).

pub mod distributed;
pub mod greedy;
pub mod integral;
pub mod mwu;
pub mod sampled;

pub use mwu::{fractional_stp_mwu, MwuConfig, MwuReport};
