//! The lower-bound graph family (Appendix G.1, Figure 3).
//!
//! `H(X,Y)` for `X, Y ⊆ [h]` (elements `1..=h`):
//!
//! * `h + 1` paths of `2ℓ` *heavy* nodes `(p, q)`, `p ∈ {0..h}`,
//!   `q ∈ 1..=2ℓ`, each of weight `w`;
//! * light nodes `a`, `b` (joined by an edge), `u_x` for `x ∈ X`,
//!   `v_y` for `y ∈ Y`;
//! * left encoding: `x ∈ X` → `(0,1) − u_x − (x,1)`; `x ∉ X` →
//!   `(0,1) − (x,1)` directly; right encoding symmetric via `v_y` at
//!   column `2ℓ`;
//! * `a` is adjacent to every `u_x` and every `(p, q)` with `q ≤ ℓ`;
//!   `b` to every `v_y` and every `(p, q)` with `q > ℓ` — giving
//!   diameter 3.
//!
//! `G(X,Y)` replaces each weight-`w` node by a `w`-clique and each edge by
//! a complete bipartite bundle (Lemma G.4 transfers the cut structure).

use decomp_graph::{Graph, GraphBuilder, NodeId};
use std::collections::BTreeSet;

/// Parameters of the family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LbParams {
    /// Universe size `h` (paths `1..=h` plus path 0).
    pub h: usize,
    /// Half path length `ℓ` (paths have `2ℓ` heavy nodes).
    pub ell: usize,
    /// Weight `w` of heavy nodes (clique size in `G(X,Y)`).
    pub w: usize,
}

impl LbParams {
    /// Number of vertices of `G(X, Y)` (depends on `|X| + |Y|`).
    pub fn g_size(&self, x_size: usize, y_size: usize) -> usize {
        (self.h + 1) * 2 * self.ell * self.w + 2 + x_size + y_size
    }
}

/// Semantic vertex of `H(X, Y)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LbNode {
    /// Heavy path node `(p, q)`, `p ∈ 0..=h`, `q ∈ 1..=2ℓ`.
    Path {
        /// Path index.
        p: usize,
        /// Column, `1..=2ℓ`.
        q: usize,
    },
    /// The left hub.
    A,
    /// The right hub.
    B,
    /// Left encoder `u_x`, `x ∈ X`.
    U(usize),
    /// Right encoder `v_y`, `y ∈ Y`.
    V(usize),
}

/// The weighted graph `H(X,Y)` with its node weights and semantic map.
#[derive(Clone, Debug)]
pub struct WeightedInstance {
    /// The graph over indices `0..n_H`.
    pub graph: Graph,
    /// Weight per vertex (`w` for heavy nodes, 1 otherwise).
    pub weights: Vec<usize>,
    /// Semantic identity per vertex.
    pub labels: Vec<LbNode>,
}

/// The unweighted blow-up `G(X,Y)` with bookkeeping.
#[derive(Clone, Debug)]
pub struct Instance {
    /// The graph.
    pub graph: Graph,
    /// Parameters used.
    pub params: LbParams,
    /// For each `G` vertex, the `H` node it came from.
    pub origin: Vec<LbNode>,
    /// The input sets.
    pub x: BTreeSet<usize>,
    /// The input sets.
    pub y: BTreeSet<usize>,
}

impl Instance {
    /// All `G`-vertices expanded from one `H`-node.
    pub fn vertices_of(&self, node: LbNode) -> Vec<NodeId> {
        (0..self.graph.n())
            .filter(|&v| self.origin[v] == node)
            .collect()
    }

    /// The 4 light vertices `{a, b, u_z, v_z}` for `z = X ∩ Y`, if the
    /// inputs intersect (Lemma G.4's unique minimum cut).
    pub fn canonical_cut(&self) -> Option<Vec<NodeId>> {
        let z = self.x.intersection(&self.y).next().copied()?;
        let mut cut = self.vertices_of(LbNode::A);
        cut.extend(self.vertices_of(LbNode::B));
        cut.extend(self.vertices_of(LbNode::U(z)));
        cut.extend(self.vertices_of(LbNode::V(z)));
        Some(cut)
    }
}

fn h_nodes(params: &LbParams, x: &BTreeSet<usize>, y: &BTreeSet<usize>) -> Vec<LbNode> {
    let mut labels = Vec::new();
    for p in 0..=params.h {
        for q in 1..=2 * params.ell {
            labels.push(LbNode::Path { p, q });
        }
    }
    labels.push(LbNode::A);
    labels.push(LbNode::B);
    for &xv in x {
        labels.push(LbNode::U(xv));
    }
    for &yv in y {
        labels.push(LbNode::V(yv));
    }
    labels
}

fn h_edges(params: &LbParams, x: &BTreeSet<usize>, y: &BTreeSet<usize>) -> Vec<(LbNode, LbNode)> {
    let (h, ell) = (params.h, params.ell);
    let mut edges: Vec<(LbNode, LbNode)> = Vec::new();
    let path = |p: usize, q: usize| LbNode::Path { p, q };
    // Paths.
    for p in 0..=h {
        for q in 1..2 * ell {
            edges.push((path(p, q), path(p, q + 1)));
        }
    }
    // Left encoding.
    for xv in 1..=h {
        if x.contains(&xv) {
            edges.push((LbNode::U(xv), path(0, 1)));
            edges.push((LbNode::U(xv), path(xv, 1)));
        } else {
            edges.push((path(0, 1), path(xv, 1)));
        }
    }
    // Right encoding.
    for yv in 1..=h {
        if y.contains(&yv) {
            edges.push((LbNode::V(yv), path(0, 2 * ell)));
            edges.push((LbNode::V(yv), path(yv, 2 * ell)));
        } else {
            edges.push((path(0, 2 * ell), path(yv, 2 * ell)));
        }
    }
    // Hubs.
    edges.push((LbNode::A, LbNode::B));
    for &xv in x {
        edges.push((LbNode::A, LbNode::U(xv)));
    }
    for &yv in y {
        edges.push((LbNode::B, LbNode::V(yv)));
    }
    for p in 0..=h {
        for q in 1..=2 * ell {
            if q <= ell {
                edges.push((LbNode::A, path(p, q)));
            } else {
                edges.push((LbNode::B, path(p, q)));
            }
        }
    }
    edges
}

/// Builds the weighted instance `H(X,Y)`.
///
/// # Panics
/// Panics if parameters are degenerate or inputs exceed `[h]`.
pub fn build_h(params: &LbParams, x: &BTreeSet<usize>, y: &BTreeSet<usize>) -> WeightedInstance {
    validate(params, x, y);
    let labels = h_nodes(params, x, y);
    let index: std::collections::HashMap<LbNode, usize> =
        labels.iter().enumerate().map(|(i, &l)| (l, i)).collect();
    let mut b = GraphBuilder::new(labels.len());
    for (s, t) in h_edges(params, x, y) {
        b.try_add_edge(index[&s], index[&t]);
    }
    let weights = labels
        .iter()
        .map(|l| match l {
            LbNode::Path { .. } => params.w,
            _ => 1,
        })
        .collect();
    WeightedInstance {
        graph: b.build(),
        weights,
        labels,
    }
}

/// Builds the unweighted blow-up `G(X,Y)`.
///
/// # Panics
/// Panics if parameters are degenerate or inputs exceed `[h]`.
pub fn build_g(params: &LbParams, x: &BTreeSet<usize>, y: &BTreeSet<usize>) -> Instance {
    validate(params, x, y);
    let labels = h_nodes(params, x, y);
    // Expand: heavy nodes -> w copies; light -> 1 copy.
    let mut origin = Vec::new();
    let mut first_copy: std::collections::HashMap<LbNode, usize> = Default::default();
    let mut copies: std::collections::HashMap<LbNode, usize> = Default::default();
    for &l in &labels {
        let c = match l {
            LbNode::Path { .. } => params.w,
            _ => 1,
        };
        first_copy.insert(l, origin.len());
        copies.insert(l, c);
        for _ in 0..c {
            origin.push(l);
        }
    }
    let mut b = GraphBuilder::new(origin.len());
    // Cliques for heavy nodes.
    for &l in &labels {
        let (start, c) = (first_copy[&l], copies[&l]);
        for i in 0..c {
            for j in (i + 1)..c {
                b.add_edge(start + i, start + j);
            }
        }
    }
    // Complete bipartite bundles for edges.
    for (s, t) in h_edges(params, x, y) {
        let (ss, sc) = (first_copy[&s], copies[&s]);
        let (ts, tc) = (first_copy[&t], copies[&t]);
        for i in 0..sc {
            for j in 0..tc {
                b.try_add_edge(ss + i, ts + j);
            }
        }
    }
    Instance {
        graph: b.build(),
        params: *params,
        origin,
        x: x.clone(),
        y: y.clone(),
    }
}

fn validate(params: &LbParams, x: &BTreeSet<usize>, y: &BTreeSet<usize>) {
    assert!(
        params.h >= 1 && params.ell >= 1 && params.w >= 1,
        "degenerate parameters"
    );
    for &e in x.iter().chain(y.iter()) {
        assert!((1..=params.h).contains(&e), "input element {e} outside [h]");
    }
}

/// The round lower bound of Theorem G.2:
/// `Ω(√(n / (α k log n)))`, with the constant set to 1.
pub fn round_lower_bound(n: usize, alpha: f64, k: usize) -> f64 {
    let n = n.max(2) as f64;
    (n / (alpha * k as f64 * n.log2())).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp_graph::connectivity::vertex_connectivity;
    use decomp_graph::traversal::{diameter, is_connected};

    fn setof(v: &[usize]) -> BTreeSet<usize> {
        v.iter().copied().collect()
    }

    const P: LbParams = LbParams { h: 4, ell: 2, w: 6 };

    #[test]
    fn h_is_connected_diameter_3() {
        let inst = build_h(&P, &setof(&[1, 3]), &setof(&[2, 3]));
        assert!(is_connected(&inst.graph));
        assert!(diameter(&inst.graph).unwrap() <= 3);
    }

    #[test]
    fn g_size_formula() {
        let x = setof(&[1, 3]);
        let y = setof(&[2]);
        let inst = build_g(&P, &x, &y);
        assert_eq!(inst.graph.n(), P.g_size(2, 1));
        assert!(is_connected(&inst.graph));
        assert!(diameter(&inst.graph).unwrap() <= 3);
    }

    #[test]
    fn lemma_g4_disjoint_inputs_high_connectivity() {
        // X ∩ Y = ∅: every vertex cut has size >= w.
        let inst = build_g(&P, &setof(&[1, 2]), &setof(&[3, 4]));
        let k = vertex_connectivity(&inst.graph);
        assert!(k >= P.w, "connectivity {k} must be >= w = {}", P.w);
    }

    #[test]
    fn lemma_g4_intersecting_inputs_cut_of_four() {
        // X ∩ Y = {3}: the cut {a, b, u_3, v_3} has size 4.
        let inst = build_g(&P, &setof(&[1, 3]), &setof(&[3, 4]));
        let k = vertex_connectivity(&inst.graph);
        assert_eq!(k, 4, "Lemma G.4: minimum cut must be exactly 4");
        // And the canonical cut indeed disconnects.
        let cut = inst.canonical_cut().unwrap();
        assert_eq!(cut.len(), 4);
        let keep: Vec<usize> = (0..inst.graph.n()).filter(|v| !cut.contains(v)).collect();
        let (sub, _) = inst.graph.induced_subgraph(&keep);
        assert!(
            !is_connected(&sub),
            "removing {{a,b,u_z,v_z}} must disconnect"
        );
    }

    #[test]
    fn empty_inputs_high_connectivity() {
        let inst = build_g(&P, &BTreeSet::new(), &BTreeSet::new());
        assert!(vertex_connectivity(&inst.graph) >= P.w);
    }

    #[test]
    fn intersection_isolates_path_z() {
        // After removing the canonical cut, path z's cliques form their own
        // component (Lemma G.3's proof).
        let inst = build_g(&P, &setof(&[2]), &setof(&[2]));
        let cut = inst.canonical_cut().unwrap();
        let keep: Vec<usize> = (0..inst.graph.n()).filter(|v| !cut.contains(v)).collect();
        let (sub, map) = inst.graph.induced_subgraph(&keep);
        let (labels, count) = decomp_graph::traversal::connected_components(&sub);
        assert_eq!(count, 2);
        // All path-2 vertices share a component, all others the other one.
        let comp_of = |orig: usize| {
            let new = map.iter().position(|&o| o == orig).unwrap();
            labels[new]
        };
        let path2: Vec<usize> = (0..inst.graph.n())
            .filter(|&v| matches!(inst.origin[v], LbNode::Path { p: 2, .. }))
            .collect();
        let c0 = comp_of(path2[0]);
        for &v in &path2 {
            assert_eq!(comp_of(v), c0);
        }
        let other: Vec<usize> = keep
            .iter()
            .copied()
            .filter(|&v| !path2.contains(&v))
            .collect();
        let c1 = comp_of(other[0]);
        assert_ne!(c0, c1);
        for &v in &other {
            assert_eq!(comp_of(v), c1);
        }
    }

    #[test]
    fn vertices_of_counts() {
        let inst = build_g(&P, &setof(&[1]), &setof(&[1]));
        assert_eq!(inst.vertices_of(LbNode::A).len(), 1);
        assert_eq!(inst.vertices_of(LbNode::Path { p: 0, q: 1 }).len(), P.w);
        assert_eq!(inst.vertices_of(LbNode::U(1)).len(), 1);
        assert!(inst.vertices_of(LbNode::U(2)).is_empty());
    }

    #[test]
    fn round_lower_bound_monotone_in_n() {
        assert!(round_lower_bound(10_000, 2.0, 4) > round_lower_bound(100, 2.0, 4));
        assert!(round_lower_bound(10_000, 2.0, 4) > round_lower_bound(10_000, 2.0, 64));
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn rejects_out_of_range_inputs() {
        build_g(&P, &setof(&[9]), &BTreeSet::new());
    }
}
