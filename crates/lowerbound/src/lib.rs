//! # decomp-lowerbound
//!
//! Appendix G of the paper: the lower-bound graph family and the
//! communication-complexity reduction behind Theorem G.2 ("distinguishing
//! networks with vertex connectivity ≤ k from ≥ αk requires
//! `Ω(√(n/(αk log n)))` rounds in V-CONGEST, even at diameter 3").
//!
//! * [`construction`] — the weighted family `H(X,Y)` and its unweighted
//!   blow-up `G(X,Y)` (Figure 3), with the Lemma G.3/G.4 cut structure:
//!   vertex connectivity ≥ `w` when `X ∩ Y = ∅` and exactly 4 (the cut
//!   `{a, b, u_z, v_z}`) when `X ∩ Y = {z}`;
//! * [`simulation`] — the Alice/Bob two-party simulation of Lemmas
//!   G.5/G.6 (a `T`-round protocol yields a `2BT`-bit two-party protocol)
//!   and two concrete distinguishing protocols whose costs bracket the
//!   `Ω(√(n/(αk log n)))` bound.

pub mod construction;
pub mod simulation;
