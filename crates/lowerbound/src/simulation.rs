//! The two-party simulation and concrete distinguishing protocols
//! (Appendix G.2, Lemmas G.5/G.6, Theorem G.2).
//!
//! Lemma G.6: for `T ≤ ℓ`, Alice (who knows the left part `V'_A(0)`) and
//! Bob (who knows `V'_B(0)`) can simulate any `T`-round protocol on
//! `G(X,Y)` by exchanging only the messages of the hub nodes `a` and `b` —
//! `2BT` bits total. Since set disjointness needs `Ω(h)` bits, any
//! protocol that distinguishes the connectivity-4 instances from the
//! connectivity-`w` ones needs `T = Ω(h / B)` rounds.
//!
//! [`simulate_two_party`] performs this simulation mechanically for the
//! natural *hub-relay* disjointness protocol and reports the exchanged
//! bits; [`path_relay_rounds`] measures the alternative that avoids the
//! hubs by sending each element's bit down its own path (`Θ(ℓ)` rounds).
//! Balancing `h / B` against `ℓ` at `h = Θ(ℓ log n)` yields Theorem G.2's
//! `Ω(√(n / (αk log n)))`, which [`distinguishing_cost`] evaluates.

use crate::construction::{Instance, LbParams};
use std::collections::BTreeSet;

/// Transcript of the Alice/Bob simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TwoPartyTranscript {
    /// Rounds simulated.
    pub rounds: usize,
    /// Total bits Alice received (node `b`'s messages).
    pub bits_from_bob: usize,
    /// Total bits Bob received (node `a`'s messages).
    pub bits_from_alice: usize,
}

impl TwoPartyTranscript {
    /// Total cross bits (the `2BT` of Lemma G.6).
    pub fn total_bits(&self) -> usize {
        self.bits_from_bob + self.bits_from_alice
    }
}

/// Bits per message (`B = Θ(log n)` in the model).
pub fn bandwidth_bits(n: usize) -> usize {
    (n.max(2) as f64).log2().ceil() as usize * 4
}

/// The hub-relay disjointness protocol, simulated as a two-party protocol
/// per Lemma G.5/G.6: node `a` learns `X` locally (it is adjacent to every
/// `u_x`), then streams the indicator vector of `X` to `b` over the `a–b`
/// edge at `B` bits per round; `b` compares against `Y` and streams the
/// verdict back. Alice simulates the left half, Bob the right half; the
/// only communicated bits are `a`'s and `b`'s messages.
///
/// Returns the transcript and the found intersection element (if any).
pub fn simulate_two_party(
    params: &LbParams,
    x: &BTreeSet<usize>,
    y: &BTreeSet<usize>,
    n_for_bandwidth: usize,
) -> (TwoPartyTranscript, Option<usize>) {
    let b_bits = bandwidth_bits(n_for_bandwidth);
    // a streams h indicator bits to b: ceil(h / B) rounds, B bits each.
    let rounds_stream = params.h.div_ceil(b_bits);
    let mut bits_from_alice = 0;
    let mut found = None;
    for r in 0..rounds_stream {
        let lo = r * b_bits + 1;
        let hi = ((r + 1) * b_bits).min(params.h);
        bits_from_alice += hi - lo + 1;
        for e in lo..=hi {
            if x.contains(&e) && y.contains(&e) {
                found = Some(e);
            }
        }
    }
    // b answers with the element id (one message of B bits).
    let transcript = TwoPartyTranscript {
        rounds: rounds_stream + 1,
        bits_from_bob: b_bits,
        bits_from_alice,
    };
    (transcript, found)
}

/// Rounds of the *path-relay* protocol that avoids the hub bottleneck:
/// each path `x` carries the bit `x ∈ X` from its left end to its right
/// end (`2ℓ − 1` hops, all paths in parallel), the right end combines with
/// `x ∈ Y`, and the verdict floods back through the diameter-3 hub
/// structure. This is the protocol the `T ≤ ℓ` restriction of Lemma G.5
/// rules out for fast algorithms.
pub fn path_relay_rounds(params: &LbParams) -> usize {
    2 * params.ell - 1 + 3
}

/// The best achievable distinguishing cost on `G(X,Y)`:
/// `min(path-relay, hub-relay)` rounds, which at the theorem's parameter
/// balance matches `Ω(√(n / (αk log n)))` up to constants.
pub fn distinguishing_cost(params: &LbParams, n: usize) -> usize {
    let hub = params.h.div_ceil(bandwidth_bits(n)) + 1;
    hub.min(path_relay_rounds(params))
}

/// Instantiates Theorem G.2's parameter balance for a target `n` and
/// connectivity bound `αk`: `ℓ = h / log₂ n`, `w = αk + 1`, with `h`
/// chosen so the vertex count lands near `n`. Returns the parameters and
/// the realized `n`.
pub fn theorem_g2_params(n_target: usize, alpha_k: usize) -> (LbParams, usize) {
    let logn = (n_target.max(4) as f64).log2();
    let w = alpha_k + 1;
    // n ≈ (h+1) · 2ℓ · w with ℓ = h / log n  =>  h ≈ sqrt(n · log n / (2w)).
    let h = ((n_target as f64 * logn / (2.0 * w as f64)).sqrt().ceil() as usize).max(2);
    let ell = (h as f64 / logn).ceil() as usize;
    let params = LbParams {
        h,
        ell: ell.max(1),
        w,
    };
    let realized = params.g_size(0, 0) + 2; // typical |X|+|Y| is O(h) light nodes
    (params, realized)
}

/// End-to-end check used by the experiment binary: the distinguishing
/// protocols really do tell the two instance families apart.
pub fn instances_distinguishable(
    params: &LbParams,
    x: &BTreeSet<usize>,
    y: &BTreeSet<usize>,
) -> bool {
    let (_, found) = simulate_two_party(params, x, y, 1 << 12);
    let truly_intersect = x.intersection(y).next().is_some();
    found.is_some() == truly_intersect
}

/// Convenience: the canonical pair of instances for a given parameter set
/// (one intersecting, one disjoint), used by tests and the figure example.
pub fn canonical_instances(params: &LbParams) -> (Instance, Instance) {
    let half: BTreeSet<usize> = (1..=params.h / 2).collect();
    let other: BTreeSet<usize> = (params.h / 2 + 1..=params.h).collect();
    let disjoint = crate::construction::build_g(params, &half, &other);
    let mut with_z = other.clone();
    with_z.insert(1);
    let mut x2 = half.clone();
    x2.insert(1);
    let intersecting = crate::construction::build_g(params, &x2, &with_z);
    (disjoint, intersecting)
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp_graph::connectivity::vertex_connectivity;

    fn setof(v: &[usize]) -> BTreeSet<usize> {
        v.iter().copied().collect()
    }

    #[test]
    fn two_party_finds_intersection() {
        let p = LbParams {
            h: 64,
            ell: 4,
            w: 3,
        };
        let (t, found) = simulate_two_party(&p, &setof(&[5, 9]), &setof(&[9, 30]), 1024);
        assert_eq!(found, Some(9));
        assert!(t.total_bits() >= 64, "must stream the whole universe");
    }

    #[test]
    fn two_party_reports_disjoint() {
        let p = LbParams {
            h: 32,
            ell: 4,
            w: 3,
        };
        let (_, found) = simulate_two_party(&p, &setof(&[1, 2]), &setof(&[3, 4]), 1024);
        assert_eq!(found, None);
    }

    #[test]
    fn cross_bits_lower_bounded_by_h() {
        // Lemma G.6 + Razborov: the transcript carries Ω(h) bits.
        for h in [32, 128, 512] {
            let p = LbParams { h, ell: 2, w: 2 };
            let (t, _) = simulate_two_party(&p, &setof(&[1]), &setof(&[1]), 4096);
            assert!(t.total_bits() >= h, "h={h}: bits {}", t.total_bits());
        }
    }

    #[test]
    fn rounds_scale_with_h_over_bandwidth() {
        let n = 4096;
        let b = bandwidth_bits(n);
        let p = LbParams {
            h: 10 * b,
            ell: 2,
            w: 2,
        };
        let (t, _) = simulate_two_party(&p, &setof(&[1]), &setof(&[2]), n);
        assert!((10..=12).contains(&t.rounds), "rounds {}", t.rounds);
    }

    #[test]
    fn theorem_params_produce_correct_cut_gap() {
        let (p, _) = theorem_g2_params(600, 4);
        let (disjoint, intersecting) = canonical_instances(&p);
        assert!(vertex_connectivity(&disjoint.graph) >= p.w);
        assert_eq!(vertex_connectivity(&intersecting.graph), 4);
    }

    #[test]
    fn distinguishing_cost_grows_with_n() {
        let (p1, n1) = theorem_g2_params(400, 4);
        let (p2, n2) = theorem_g2_params(6400, 4);
        let c1 = distinguishing_cost(&p1, n1);
        let c2 = distinguishing_cost(&p2, n2);
        assert!(c2 > c1, "cost must grow: {c1} -> {c2}");
    }

    #[test]
    fn distinguishability_holds_across_inputs() {
        let p = LbParams {
            h: 16,
            ell: 2,
            w: 3,
        };
        assert!(instances_distinguishable(&p, &setof(&[1, 5]), &setof(&[5])));
        assert!(instances_distinguishable(&p, &setof(&[1, 2]), &setof(&[3])));
    }

    #[test]
    fn path_relay_linear_in_ell() {
        let a = path_relay_rounds(&LbParams {
            h: 4,
            ell: 10,
            w: 2,
        });
        let b = path_relay_rounds(&LbParams {
            h: 4,
            ell: 40,
            w: 2,
        });
        assert_eq!(b - a, 60);
    }
}
