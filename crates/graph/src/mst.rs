//! Minimum spanning trees / forests on weighted views of a [`Graph`].
//!
//! Two places in the paper require an MST:
//!
//! * CDS packing → dominating trees (Section 3.1): 0/1 weights, where
//!   weight-0 edges join virtual nodes of the same class;
//! * the MWU spanning-tree packing (Section 5.1): exponential costs
//!   `c_e = exp(α·z_e)`.
//!
//! Weights are `f64` supplied per edge index; ties are broken by edge index
//! so results are deterministic.

use crate::graph::{Graph, NodeId};
use crate::unionfind::UnionFind;

/// A spanning forest as a set of edge indices into [`Graph::edges`].
#[derive(Clone, Debug, PartialEq)]
pub struct SpanningForest {
    /// Indices into `g.edges()` of the chosen edges.
    pub edge_indices: Vec<usize>,
    /// Total weight of the chosen edges.
    pub total_weight: f64,
    /// Number of trees in the forest (1 for connected graphs).
    pub num_trees: usize,
}

impl SpanningForest {
    /// The chosen edges as endpoint pairs.
    pub fn edges(&self, g: &Graph) -> Vec<(NodeId, NodeId)> {
        self.edge_indices.iter().map(|&i| g.edges()[i]).collect()
    }

    /// Whether this forest is a single spanning tree of `g`.
    pub fn is_spanning_tree(&self, g: &Graph) -> bool {
        self.num_trees == 1 && self.edge_indices.len() + 1 == g.n()
    }
}

/// Kruskal's algorithm: minimum spanning forest under `weight(edge_index)`.
///
/// # Panics
/// Panics if any weight is NaN.
pub fn minimum_spanning_forest(g: &Graph, weight: impl Fn(usize) -> f64) -> SpanningForest {
    let mut order: Vec<usize> = (0..g.m()).collect();
    let weights: Vec<f64> = order.iter().map(|&i| weight(i)).collect();
    assert!(
        weights.iter().all(|w| !w.is_nan()),
        "NaN edge weight in MST"
    );
    order.sort_by(|&a, &b| {
        weights[a]
            .partial_cmp(&weights[b])
            .expect("NaN filtered above")
            .then(a.cmp(&b))
    });
    let mut uf = UnionFind::new(g.n());
    let mut chosen = Vec::new();
    let mut total = 0.0;
    for i in order {
        let (u, v) = g.edges()[i];
        if uf.union(u, v) {
            chosen.push(i);
            total += weights[i];
        }
    }
    chosen.sort_unstable();
    SpanningForest {
        edge_indices: chosen,
        total_weight: total,
        num_trees: uf.num_sets(),
    }
}

/// Convenience: an arbitrary spanning forest (all weights equal).
pub fn spanning_forest(g: &Graph) -> SpanningForest {
    minimum_spanning_forest(g, |_| 1.0)
}

/// A rooted tree on a subset of `g`'s vertices, as used for dominating and
/// spanning trees throughout the workspace.
///
/// Stored as parent pointers over the *original* vertex ids; vertices not in
/// the tree have parent `usize::MAX` and `in_tree == false`.
#[derive(Clone, Debug)]
pub struct RootedTree {
    /// Root vertex.
    pub root: NodeId,
    /// Parent of each vertex (`usize::MAX` for root / non-members).
    pub parent: Vec<NodeId>,
    /// Membership flags.
    pub in_tree: Vec<bool>,
}

impl RootedTree {
    /// Builds a rooted tree from an undirected edge set by BFS from `root`.
    ///
    /// Returns `None` if the edge set is not connected when restricted to
    /// the vertices it touches, or contains a cycle.
    pub fn from_edges(n: usize, root: NodeId, edges: &[(NodeId, NodeId)]) -> Option<RootedTree> {
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        let mut members = vec![false; n];
        members[root] = true;
        for &(u, v) in edges {
            adj[u].push(v);
            adj[v].push(u);
            members[u] = true;
            members[v] = true;
        }
        let member_count = members.iter().filter(|&&b| b).count();
        if edges.len() + 1 != member_count {
            return None; // cycle or disconnected
        }
        let mut parent = vec![usize::MAX; n];
        let mut seen = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        seen[root] = true;
        queue.push_back(root);
        let mut reached = 1;
        while let Some(u) = queue.pop_front() {
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    parent[v] = u;
                    reached += 1;
                    queue.push_back(v);
                }
            }
        }
        if reached != member_count {
            return None;
        }
        Some(RootedTree {
            root,
            parent,
            in_tree: members,
        })
    }

    /// Number of vertices in the tree.
    pub fn size(&self) -> usize {
        self.in_tree.iter().filter(|&&b| b).count()
    }

    /// The tree's vertices.
    pub fn vertices(&self) -> Vec<NodeId> {
        (0..self.in_tree.len())
            .filter(|&v| self.in_tree[v])
            .collect()
    }

    /// The tree's edges as `(parent, child)` pairs.
    pub fn edges(&self) -> Vec<(NodeId, NodeId)> {
        (0..self.parent.len())
            .filter(|&v| self.in_tree[v] && v != self.root)
            .map(|v| (self.parent[v], v))
            .collect()
    }

    /// Depth of vertex `v` (hops to the root); `None` if not in the tree.
    pub fn depth(&self, v: NodeId) -> Option<usize> {
        if !self.in_tree[v] {
            return None;
        }
        let mut d = 0;
        let mut cur = v;
        while cur != self.root {
            cur = self.parent[cur];
            d += 1;
        }
        Some(d)
    }

    /// Diameter of the tree (longest path, in edges).
    ///
    /// Two-sweep BFS: the standard exact method on trees.
    pub fn diameter(&self) -> usize {
        let verts = self.vertices();
        if verts.len() <= 1 {
            return 0;
        }
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); self.parent.len()];
        for (p, c) in self.edges() {
            adj[p].push(c);
            adj[c].push(p);
        }
        let far = |s: NodeId| -> (NodeId, usize) {
            let mut dist = vec![usize::MAX; adj.len()];
            let mut q = std::collections::VecDeque::new();
            dist[s] = 0;
            q.push_back(s);
            let mut best = (s, 0);
            while let Some(u) = q.pop_front() {
                if dist[u] > best.1 {
                    best = (u, dist[u]);
                }
                for &v in &adj[u] {
                    if dist[v] == usize::MAX {
                        dist[v] = dist[u] + 1;
                        q.push_back(v);
                    }
                }
            }
            best
        };
        let (a, _) = far(self.root);
        far(a).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use proptest::prelude::*;

    #[test]
    fn mst_on_connected_graph_is_tree() {
        let g = generators::gnp(20, 0.3, 3);
        if crate::traversal::is_connected(&g) {
            let f = spanning_forest(&g);
            assert!(f.is_spanning_tree(&g));
        }
    }

    #[test]
    fn mst_counts_components() {
        let g = Graph::from_edges(5, [(0, 1), (2, 3)]);
        let f = spanning_forest(&g);
        assert_eq!(f.num_trees, 3);
        assert_eq!(f.edge_indices.len(), 2);
    }

    #[test]
    fn mst_prefers_light_edges() {
        // Triangle with one heavy edge: MST avoids it.
        let g = Graph::from_edges(3, [(0, 1), (0, 2), (1, 2)]);
        let w = [10.0, 1.0, 1.0];
        let f = minimum_spanning_forest(&g, |i| w[i]);
        assert_eq!(f.total_weight, 2.0);
        assert!(!f.edge_indices.contains(&0));
    }

    #[test]
    fn mst_deterministic_tie_break() {
        let g = generators::complete(6);
        let a = minimum_spanning_forest(&g, |_| 1.0);
        let b = minimum_spanning_forest(&g, |_| 1.0);
        assert_eq!(a.edge_indices, b.edge_indices);
    }

    #[test]
    fn rooted_tree_from_path() {
        let t = RootedTree::from_edges(4, 0, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(t.size(), 4);
        assert_eq!(t.depth(3), Some(3));
        assert_eq!(t.diameter(), 3);
        assert_eq!(t.parent[3], 2);
    }

    #[test]
    fn rooted_tree_rejects_cycle() {
        assert!(RootedTree::from_edges(3, 0, &[(0, 1), (1, 2), (2, 0)]).is_none());
    }

    #[test]
    fn rooted_tree_rejects_disconnected() {
        assert!(RootedTree::from_edges(5, 0, &[(0, 1), (3, 4)]).is_none());
    }

    #[test]
    fn rooted_tree_singleton() {
        let t = RootedTree::from_edges(3, 1, &[]).unwrap();
        assert_eq!(t.size(), 1);
        assert_eq!(t.diameter(), 0);
        assert_eq!(t.depth(0), None);
    }

    #[test]
    fn star_tree_diameter() {
        let t = RootedTree::from_edges(5, 0, &[(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        assert_eq!(t.diameter(), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The MST weight is minimal: no single-edge swap improves it
        /// (cut/cycle property check on random weights).
        #[test]
        fn mst_cut_property(seed in 0u64..500) {
            use rand::{Rng, SeedableRng};
            let g = generators::random_connected(12, 8, seed);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xabc);
            let w: Vec<f64> = (0..g.m()).map(|_| rng.gen_range(0.0..10.0)).collect();
            let f = minimum_spanning_forest(&g, |i| w[i]);
            prop_assert!(f.is_spanning_tree(&g));
            // Exchange argument: adding any non-tree edge e creates a cycle;
            // every tree edge on that cycle must weigh <= w[e].
            let in_tree: std::collections::HashSet<usize> = f.edge_indices.iter().copied().collect();
            let tree_edges: Vec<(usize, usize)> = f.edges(&g);
            for e in 0..g.m() {
                if in_tree.contains(&e) { continue; }
                let (u, v) = g.edges()[e];
                // path u->v in tree
                let t = RootedTree::from_edges(g.n(), 0, &tree_edges).unwrap();
                // collect path via parents to root then splice
                let mut pu = vec![u];
                let mut cur = u;
                while cur != t.root { cur = t.parent[cur]; pu.push(cur); }
                let mut pv = vec![v];
                cur = v;
                while cur != t.root { cur = t.parent[cur]; pv.push(cur); }
                let setu: std::collections::HashSet<usize> = pu.iter().copied().collect();
                let lca = *pv.iter().find(|x| setu.contains(x)).unwrap();
                let mut cycle_edges = Vec::new();
                for path in [&pu, &pv] {
                    for win in path.windows(2) {
                        if win[0] == lca { break; }
                        cycle_edges.push(g.edge_index(win[0], win[1]).unwrap());
                        if win[1] == lca { break; }
                    }
                }
                for te in cycle_edges {
                    prop_assert!(w[te] <= w[e] + 1e-9,
                        "tree edge {} heavier than cycle-closing edge {}", te, e);
                }
            }
        }
    }
}
