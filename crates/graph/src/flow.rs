//! Dinic's max-flow on integer-capacity directed networks.
//!
//! Used as the ground-truth engine for exact edge/vertex connectivity and
//! for Menger disjoint-path extraction (Lemma 4.3's proof is "a simple
//! application of Menger's theorem" — we verify it computationally).

use crate::graph::{Graph, NodeId};

/// A directed flow network with integer capacities.
///
/// Arcs are stored with their reverse arcs interleaved (standard residual
/// representation).
///
/// # Example
///
/// ```
/// use decomp_graph::flow::FlowNetwork;
///
/// let mut net = FlowNetwork::new(4);
/// net.add_arc(0, 1, 1);
/// net.add_arc(0, 2, 1);
/// net.add_arc(1, 3, 1);
/// net.add_arc(2, 3, 1);
/// assert_eq!(net.max_flow(0, 3), 2);
/// ```
#[derive(Clone, Debug)]
pub struct FlowNetwork {
    /// `head[a]` is the head vertex of arc `a`; arc `a^1` is its reverse.
    head: Vec<usize>,
    /// Residual capacity per arc.
    cap: Vec<i64>,
    /// `adj[v]` lists arc ids leaving `v`.
    adj: Vec<Vec<usize>>,
}

impl FlowNetwork {
    /// An empty network on `n` vertices.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            head: Vec::new(),
            cap: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.adj.len()
    }

    /// Adds a directed arc `u -> v` with capacity `c` (and its residual
    /// reverse arc of capacity 0). Returns the arc id.
    ///
    /// # Panics
    /// Panics if endpoints are out of range or `c < 0`.
    pub fn add_arc(&mut self, u: usize, v: usize, c: i64) -> usize {
        assert!(u < self.n() && v < self.n(), "arc endpoint out of range");
        assert!(c >= 0, "negative capacity");
        let id = self.head.len();
        self.head.push(v);
        self.cap.push(c);
        self.adj[u].push(id);
        self.head.push(u);
        self.cap.push(0);
        self.adj[v].push(id + 1);
        id
    }

    /// Flow currently pushed through arc `id` (capacity of its reverse).
    pub fn flow_on(&self, id: usize) -> i64 {
        self.cap[id ^ 1]
    }

    /// Residual capacity of arc `id`.
    pub fn residual(&self, id: usize) -> i64 {
        self.cap[id]
    }

    /// Computes the maximum `s`→`t` flow via Dinic's algorithm, mutating
    /// the residual network in place.
    ///
    /// # Panics
    /// Panics if `s == t` or endpoints are out of range.
    pub fn max_flow(&mut self, s: usize, t: usize) -> i64 {
        assert!(s < self.n() && t < self.n(), "terminal out of range");
        assert_ne!(s, t, "source equals sink");
        let mut total = 0i64;
        loop {
            let level = self.bfs_levels(s, t);
            if level[t] == usize::MAX {
                break;
            }
            let mut iter = vec![0usize; self.n()];
            loop {
                let pushed = self.dfs_push(s, t, i64::MAX, &level, &mut iter);
                if pushed == 0 {
                    break;
                }
                total += pushed;
            }
        }
        total
    }

    /// Max flow with an early-exit `limit`: stops once the flow reaches
    /// `limit`. Useful when only "is connectivity >= x" is needed.
    pub fn max_flow_bounded(&mut self, s: usize, t: usize, limit: i64) -> i64 {
        assert_ne!(s, t, "source equals sink");
        let mut total = 0i64;
        while total < limit {
            let level = self.bfs_levels(s, t);
            if level[t] == usize::MAX {
                break;
            }
            let mut iter = vec![0usize; self.n()];
            loop {
                let pushed = self.dfs_push(s, t, limit - total, &level, &mut iter);
                if pushed == 0 {
                    break;
                }
                total += pushed;
                if total >= limit {
                    break;
                }
            }
        }
        total
    }

    fn bfs_levels(&self, s: usize, t: usize) -> Vec<usize> {
        let mut level = vec![usize::MAX; self.n()];
        let mut q = std::collections::VecDeque::new();
        level[s] = 0;
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            if u == t {
                break;
            }
            for &a in &self.adj[u] {
                let v = self.head[a];
                if self.cap[a] > 0 && level[v] == usize::MAX {
                    level[v] = level[u] + 1;
                    q.push_back(v);
                }
            }
        }
        level
    }

    fn dfs_push(
        &mut self,
        u: usize,
        t: usize,
        limit: i64,
        level: &[usize],
        iter: &mut [usize],
    ) -> i64 {
        if u == t {
            return limit;
        }
        while iter[u] < self.adj[u].len() {
            let a = self.adj[u][iter[u]];
            let v = self.head[a];
            if self.cap[a] > 0 && level[v] == level[u] + 1 {
                let pushed = self.dfs_push(v, t, limit.min(self.cap[a]), level, iter);
                if pushed > 0 {
                    self.cap[a] -= pushed;
                    self.cap[a ^ 1] += pushed;
                    return pushed;
                }
            }
            iter[u] += 1;
        }
        0
    }

    /// Vertices reachable from `s` in the residual network (the source side
    /// of a minimum cut once `max_flow` has run).
    pub fn min_cut_side(&self, s: usize) -> Vec<bool> {
        let mut seen = vec![false; self.n()];
        let mut stack = vec![s];
        seen[s] = true;
        while let Some(u) = stack.pop() {
            for &a in &self.adj[u] {
                let v = self.head[a];
                if self.cap[a] > 0 && !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        seen
    }
}

/// Builds the unit-capacity digraph of an undirected graph: each edge
/// becomes two opposite arcs of capacity 1. Returns the network and, for
/// each undirected edge index, the pair of arc ids.
pub fn unit_digraph(g: &Graph) -> (FlowNetwork, Vec<(usize, usize)>) {
    let mut net = FlowNetwork::new(g.n());
    let mut arc_of_edge = Vec::with_capacity(g.m());
    for &(u, v) in g.edges() {
        let a = net.add_arc(u, v, 1);
        let b = net.add_arc(v, u, 1);
        arc_of_edge.push((a, b));
    }
    (net, arc_of_edge)
}

/// Builds the vertex-split network for internally-vertex-disjoint paths:
/// vertex `v` becomes `v_in = 2v` and `v_out = 2v+1` joined by a capacity-1
/// arc (capacity `INF` for the terminals `s` and `t`); each undirected edge
/// `{u,v}` becomes arcs `u_out -> v_in` and `v_out -> u_in` of capacity 1
/// (effectively unbounded multiplicity is unnecessary on simple graphs).
pub fn vertex_split_digraph(g: &Graph, s: NodeId, t: NodeId) -> FlowNetwork {
    const INF: i64 = i64::MAX / 4;
    let mut net = FlowNetwork::new(2 * g.n());
    for v in g.vertices() {
        let c = if v == s || v == t { INF } else { 1 };
        net.add_arc(2 * v, 2 * v + 1, c);
    }
    for &(u, v) in g.edges() {
        net.add_arc(2 * u + 1, 2 * v, INF);
        net.add_arc(2 * v + 1, 2 * u, INF);
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn unit_flow_on_path() {
        let g = generators::path(4);
        let (mut net, _) = unit_digraph(&g);
        assert_eq!(net.max_flow(0, 3), 1);
    }

    #[test]
    fn unit_flow_on_complete() {
        let g = generators::complete(5);
        let (mut net, _) = unit_digraph(&g);
        // 4 edge-disjoint paths between any pair in K5
        assert_eq!(net.max_flow(0, 4), 4);
    }

    #[test]
    fn flow_on_disconnected() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        let (mut net, _) = unit_digraph(&g);
        assert_eq!(net.max_flow(0, 3), 0);
    }

    #[test]
    fn bounded_flow_stops_early() {
        let g = generators::complete(6);
        let (mut net, _) = unit_digraph(&g);
        assert_eq!(net.max_flow_bounded(0, 5, 2), 2);
    }

    #[test]
    fn classic_diamond() {
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 3);
        net.add_arc(0, 2, 2);
        net.add_arc(1, 2, 5);
        net.add_arc(1, 3, 2);
        net.add_arc(2, 3, 3);
        assert_eq!(net.max_flow(0, 3), 5);
    }

    #[test]
    fn min_cut_side_after_flow() {
        let mut net = FlowNetwork::new(4);
        net.add_arc(0, 1, 1);
        net.add_arc(1, 2, 1);
        net.add_arc(2, 3, 1);
        net.max_flow(0, 3);
        let side = net.min_cut_side(0);
        assert!(side[0]);
        assert!(!side[3]);
    }

    #[test]
    fn vertex_split_counts_internal_disjoint_paths() {
        // Two internally disjoint paths 0-1-3 and 0-2-3.
        let g = Graph::from_edges(4, [(0, 1), (1, 3), (0, 2), (2, 3)]);
        let mut net = vertex_split_digraph(&g, 0, 3);
        // Source is v_out(0) = 1, sink is v_in(3) = 6 in the split digraph.
        assert_eq!(net.max_flow(1, 6), 2);
    }

    #[test]
    fn vertex_split_bottleneck() {
        // Paths 0-1-3 and 0-2-3 but 1 and 2 merged via a cut vertex 4:
        // 0-4-3 only, plus 0-1-4, etc. Simplest: star through one center.
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let mut net = vertex_split_digraph(&g, 0, 2);
        assert_eq!(net.max_flow(1, 4), 1); // only through vertex 1
    }

    #[test]
    #[should_panic(expected = "source equals sink")]
    fn flow_rejects_equal_terminals() {
        let mut net = FlowNetwork::new(2);
        net.add_arc(0, 1, 1);
        net.max_flow(1, 1);
    }
}
