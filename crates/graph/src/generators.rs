//! Graph generators for all families used in the experiments.
//!
//! The experiment harness sweeps over graphs with known edge/vertex
//! connectivity. Key families:
//!
//! * [`harary`] — the Harary graph `H_{k,n}`, the canonical *exactly*
//!   `k`-connected graph with the minimum number of edges;
//! * [`random_regular`] — random `d`-regular graphs (w.h.p. `d`-connected);
//! * [`gnp`] / [`gnm`] — Erdős–Rényi;
//! * [`clique_plus_triples`] — footnote 3's separation between dominating
//!   tree packings and vertex independent trees;
//! * [`thick_path`] — a diameter-controlled `k`-connected family (path of
//!   cliques), used to exercise the `D` term of round complexities.
//!
//! All randomized generators take an explicit `seed` so experiments are
//! reproducible.

use crate::graph::{Graph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Path graph `P_n`: vertices `0..n`, edges `{i, i+1}`.
pub fn path(n: usize) -> Graph {
    Graph::from_edges(n, (1..n).map(|i| (i - 1, i)))
}

/// Cycle graph `C_n`.
///
/// # Panics
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    Graph::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)))
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Complete bipartite graph `K_{a,b}`; the left side is `0..a`.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut g = GraphBuilder::new(a + b);
    for u in 0..a {
        for v in 0..b {
            g.add_edge(u, a + v);
        }
    }
    g.build()
}

/// Star `K_{1,n-1}` with center `0`.
pub fn star(n: usize) -> Graph {
    assert!(n >= 1, "star needs at least 1 vertex");
    Graph::from_edges(n, (1..n).map(|v| (0, v)))
}

/// `rows x cols` grid graph.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let idx = |r: usize, c: usize| r * cols + c;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if r + 1 < rows {
                b.add_edge(idx(r, c), idx(r + 1, c));
            }
            if c + 1 < cols {
                b.add_edge(idx(r, c), idx(r, c + 1));
            }
        }
    }
    b.build()
}

/// `d`-dimensional hypercube `Q_d` on `2^d` vertices (vertex = bitstring,
/// edges flip one bit). `Q_d` is exactly `d`-connected.
pub fn hypercube(d: u32) -> Graph {
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            if u > v {
                b.add_edge(v, u);
            }
        }
    }
    b.build()
}

/// Harary graph `H_{k,n}`: the minimum-edge graph on `n` vertices with
/// vertex and edge connectivity exactly `k`.
///
/// Construction (Harary 1962): place vertices on a circle; connect each
/// vertex to its `floor(k/2)` nearest neighbors on each side; if `k` is odd,
/// additionally connect diametrically opposite vertices (for even `n`), or
/// the standard near-opposite pattern for odd `n`.
///
/// # Panics
/// Panics if `k >= n` or `k < 2`.
pub fn harary(k: usize, n: usize) -> Graph {
    assert!(k >= 2 && k < n, "harary requires 2 <= k < n");
    let mut b = GraphBuilder::new(n);
    let half = k / 2;
    for v in 0..n {
        for off in 1..=half {
            b.try_add_edge(v, (v + off) % n);
        }
    }
    if k % 2 == 1 {
        if n.is_multiple_of(2) {
            for v in 0..n / 2 {
                b.try_add_edge(v, v + n / 2);
            }
        } else {
            // Odd n (Harary 1962): add edge {i, i + (n-1)/2} for
            // 0 <= i <= (n-1)/2. Exactly one vertex ends with degree k+1.
            let h = (n - 1) / 2;
            for v in 0..=h {
                b.try_add_edge(v, (v + h) % n);
            }
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, p)`: every pair independently an edge with
/// probability `p`.
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen_bool(p.clamp(0.0, 1.0)) {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct edges chosen uniformly.
///
/// # Panics
/// Panics if `m > n*(n-1)/2`.
pub fn gnm(n: usize, m: usize, seed: u64) -> Graph {
    let max = n * n.saturating_sub(1) / 2;
    assert!(m <= max, "too many edges requested");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // Dense request: sample by shuffling all pairs; sparse: rejection-sample.
    if m * 3 > max {
        let mut pairs: Vec<(NodeId, NodeId)> = (0..n)
            .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
            .collect();
        pairs.shuffle(&mut rng);
        for &(u, v) in pairs.iter().take(m) {
            b.add_edge(u, v);
        }
    } else {
        while b.m() < m {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            b.try_add_edge(u, v);
        }
    }
    b.build()
}

/// Random `d`-regular graph via degree-preserving edge switching.
///
/// Starts from the circulant `d`-regular graph (the Harary construction)
/// and applies `Θ(n·d)` random double-edge swaps, each keeping the graph
/// simple. This mixes well in practice and — unlike the naive
/// configuration model with whole-graph restarts — terminates for all `d`
/// (a uniform pairing is simple with probability only `≈ e^{−d²/4}`).
/// W.h.p. `d`-connected for `d >= 3`.
///
/// # Panics
/// Panics if `n * d` is odd or `d >= n` or `d < 2`.
pub fn random_regular(n: usize, d: usize, seed: u64) -> Graph {
    assert!((n * d).is_multiple_of(2), "n*d must be even");
    assert!((2..n).contains(&d), "degree must satisfy 2 <= d < n");
    let mut rng = StdRng::seed_from_u64(seed);
    let start = harary(d, n);
    let mut edges: Vec<(NodeId, NodeId)> = start.edges().to_vec();
    let mut present: std::collections::HashSet<(NodeId, NodeId)> = edges.iter().copied().collect();
    let key = |u: NodeId, v: NodeId| (u.min(v), u.max(v));
    let swaps = 16 * n * d;
    let mut performed = 0usize;
    let mut attempts = 0usize;
    while performed < swaps && attempts < 64 * swaps {
        attempts += 1;
        let i = rng.gen_range(0..edges.len());
        let j = rng.gen_range(0..edges.len());
        if i == j {
            continue;
        }
        let (mut a, mut b2) = edges[i];
        let (c, dd) = edges[j];
        // Randomize orientation of the first edge for both swap variants.
        if rng.gen_bool(0.5) {
            std::mem::swap(&mut a, &mut b2);
        }
        // Proposed replacement: (a,c) and (b2,dd).
        if a == c || a == dd || b2 == c || b2 == dd {
            continue;
        }
        let e1 = key(a, c);
        let e2 = key(b2, dd);
        if present.contains(&e1) || present.contains(&e2) || e1 == e2 {
            continue;
        }
        present.remove(&key(edges[i].0, edges[i].1));
        present.remove(&key(edges[j].0, edges[j].1));
        present.insert(e1);
        present.insert(e2);
        edges[i] = e1;
        edges[j] = e2;
        performed += 1;
    }
    Graph::from_edges(n, edges)
}

/// Footnote 3's separation example: a clique of size `c`, plus one extra
/// vertex for each 3-subset of the clique, adjacent to exactly those three
/// clique vertices.
///
/// This graph has vertex connectivity 3 but admits no 2 vertex-disjoint
/// dominating trees (every dominating set must contain ≥ c−2 clique
/// vertices).
pub fn clique_plus_triples(c: usize) -> Graph {
    assert!(c >= 3, "need a clique of size >= 3");
    let triples: Vec<(usize, usize, usize)> = (0..c)
        .flat_map(|a| ((a + 1)..c).flat_map(move |b2| ((b2 + 1)..c).map(move |d| (a, b2, d))))
        .collect();
    let n = c + triples.len();
    let mut b = GraphBuilder::new(n);
    for u in 0..c {
        for v in (u + 1)..c {
            b.add_edge(u, v);
        }
    }
    for (i, &(x, y, z)) in triples.iter().enumerate() {
        let t = c + i;
        b.add_edge(t, x);
        b.add_edge(t, y);
        b.add_edge(t, z);
    }
    b.build()
}

/// A "thick path": `len` cliques of size `k`, consecutive cliques joined by
/// a complete bipartite bundle. Vertex and edge connectivity are exactly
/// `k`, and the diameter is `Θ(len)` — the family that exercises the `D`
/// term of round-complexity bounds.
pub fn thick_path(k: usize, len: usize) -> Graph {
    assert!(k >= 1 && len >= 1);
    let n = k * len;
    let idx = |block: usize, i: usize| block * k + i;
    let mut b = GraphBuilder::new(n);
    for block in 0..len {
        for i in 0..k {
            for j in (i + 1)..k {
                b.add_edge(idx(block, i), idx(block, j));
            }
        }
        if block + 1 < len {
            for i in 0..k {
                for j in 0..k {
                    b.add_edge(idx(block, i), idx(block + 1, j));
                }
            }
        }
    }
    b.build()
}

/// Barbell: two `K_c` cliques joined by a path of `bridge` extra vertices
/// (`bridge == 0` joins them by a single edge). Vertex connectivity 1 —
/// useful as an adversarial low-connectivity instance.
pub fn barbell(c: usize, bridge: usize) -> Graph {
    assert!(c >= 2);
    let n = 2 * c + bridge;
    let mut b = GraphBuilder::new(n);
    for u in 0..c {
        for v in (u + 1)..c {
            b.add_edge(u, v);
            b.add_edge(c + bridge + u, c + bridge + v);
        }
    }
    // chain: clique-0 vertex (c-1) -> bridge vertices -> clique-1 vertex 0
    let mut prev = c - 1;
    for i in 0..bridge {
        b.add_edge(prev, c + i);
        prev = c + i;
    }
    b.add_edge(prev, c + bridge);
    b.build()
}

/// Random geometric graph: `n` points uniform in the unit square, edges
/// between pairs at Euclidean distance at most `radius`. The standard
/// sensor-network / wireless model; connectivity and vertex cuts are
/// governed by local point density.
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> Graph {
    assert!(radius >= 0.0, "radius must be non-negative");
    let mut rng = StdRng::seed_from_u64(seed);
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
        .collect();
    let r2 = radius * radius;
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let dx = pts[u].0 - pts[v].0;
            let dy = pts[u].1 - pts[v].1;
            if dx * dx + dy * dy <= r2 {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

/// Random connected graph: a uniform random spanning tree (random Prüfer
/// sequence) plus `extra` random additional edges.
pub fn random_connected(n: usize, extra: usize, seed: u64) -> Graph {
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    if n >= 2 {
        // Random Prüfer sequence -> uniform random labeled tree.
        if n == 2 {
            b.add_edge(0, 1);
        } else {
            let prufer: Vec<usize> = (0..n - 2).map(|_| rng.gen_range(0..n)).collect();
            let mut degree = vec![1usize; n];
            for &x in &prufer {
                degree[x] += 1;
            }
            let mut leaves: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = (0..n)
                .filter(|&v| degree[v] == 1)
                .map(std::cmp::Reverse)
                .collect();
            for &x in &prufer {
                let std::cmp::Reverse(leaf) = leaves.pop().expect("prufer invariant");
                b.add_edge(leaf, x);
                degree[x] -= 1;
                if degree[x] == 1 {
                    leaves.push(std::cmp::Reverse(x));
                }
            }
            let std::cmp::Reverse(u) = leaves.pop().unwrap();
            let std::cmp::Reverse(v) = leaves.pop().unwrap();
            b.add_edge(u, v);
        }
    }
    let mut added = 0;
    let mut attempts = 0;
    while added < extra && attempts < 100 * extra + 100 {
        attempts += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if b.try_add_edge(u, v) {
            added += 1;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{diameter, is_connected};

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.m(), 4);
        assert_eq!(diameter(&g), Some(4));
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6);
        assert_eq!(g.m(), 6);
        assert!(g.vertices().all(|v| g.degree(v) == 2));
    }

    #[test]
    fn complete_shape() {
        let g = complete(5);
        assert_eq!(g.m(), 10);
    }

    #[test]
    fn bipartite_shape() {
        let g = complete_bipartite(2, 3);
        assert_eq!(g.m(), 6);
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
    }

    #[test]
    fn star_shape() {
        let g = star(5);
        assert_eq!(g.degree(0), 4);
        assert_eq!(g.m(), 4);
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 3 * 3 + 2 * 4); // vertical + horizontal
        assert_eq!(diameter(&g), Some(5));
    }

    #[test]
    fn hypercube_shape() {
        let g = hypercube(3);
        assert_eq!(g.n(), 8);
        assert_eq!(g.m(), 12);
        assert!(g.vertices().all(|v| g.degree(v) == 3));
        assert_eq!(diameter(&g), Some(3));
    }

    #[test]
    fn harary_even_k() {
        let g = harary(4, 10);
        assert!(g.vertices().all(|v| g.degree(v) == 4));
        assert_eq!(g.m(), 20);
        assert!(is_connected(&g));
    }

    #[test]
    fn harary_odd_k_even_n() {
        let g = harary(3, 8);
        assert!(g.vertices().all(|v| g.degree(v) == 3));
        assert!(is_connected(&g));
    }

    #[test]
    fn harary_odd_k_odd_n() {
        let g = harary(3, 9);
        // Odd-odd Harary: one vertex of degree k+1, rest degree k.
        let degs: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
        assert!(degs.iter().all(|&d| d == 3 || d == 4));
        assert_eq!(degs.iter().filter(|&&d| d == 4).count(), 1);
        assert!(is_connected(&g));
    }

    #[test]
    fn harary_min_degree_is_k() {
        for k in 2..6 {
            for n in (k + 1).max(3)..14 {
                let g = harary(k, n);
                assert!(g.min_degree().unwrap() >= k, "H_{{{k},{n}}}");
                assert!(is_connected(&g));
            }
        }
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, 1).m(), 0);
        assert_eq!(gnp(10, 1.0, 1).m(), 45);
    }

    #[test]
    fn gnm_exact_edges() {
        for &m in &[0, 5, 20, 45] {
            assert_eq!(gnm(10, m, 7).m(), m);
        }
    }

    #[test]
    #[should_panic(expected = "too many edges")]
    fn gnm_rejects_overfull() {
        gnm(4, 7, 0);
    }

    #[test]
    fn random_regular_is_regular() {
        for &(n, d) in &[(10, 3), (12, 4), (8, 5)] {
            let g = random_regular(n, d, 42);
            assert!(g.vertices().all(|v| g.degree(v) == d), "({n},{d})");
        }
    }

    #[test]
    fn random_regular_deterministic_per_seed() {
        let a = random_regular(16, 4, 9);
        let b = random_regular(16, 4, 9);
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn clique_plus_triples_shape() {
        let g = clique_plus_triples(4);
        // 4 clique vertices + C(4,3)=4 triple vertices
        assert_eq!(g.n(), 8);
        assert_eq!(g.m(), 6 + 12);
        for t in 4..8 {
            assert_eq!(g.degree(t), 3);
        }
    }

    #[test]
    fn thick_path_shape() {
        let g = thick_path(3, 4);
        assert_eq!(g.n(), 12);
        assert!(is_connected(&g));
        assert_eq!(diameter(&g), Some(3)); // one hop per block boundary
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(4, 2);
        assert_eq!(g.n(), 10);
        assert!(is_connected(&g));
    }

    #[test]
    fn random_connected_is_connected() {
        for seed in 0..10 {
            let g = random_connected(30, 10, seed);
            assert!(is_connected(&g), "seed {seed}");
            assert_eq!(g.m(), 29 + 10);
        }
    }

    #[test]
    fn random_geometric_extremes() {
        assert_eq!(random_geometric(10, 0.0, 1).m(), 0);
        assert_eq!(random_geometric(10, 2.0, 1).m(), 45); // diameter sqrt(2) < 2
    }

    #[test]
    fn random_geometric_deterministic() {
        let a = random_geometric(30, 0.3, 7);
        let b = random_geometric(30, 0.3, 7);
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn random_geometric_monotone_in_radius() {
        let small = random_geometric(40, 0.2, 3);
        let large = random_geometric(40, 0.4, 3);
        assert!(large.m() >= small.m());
        for &(u, v) in small.edges() {
            assert!(large.has_edge(u, v), "edge set must be monotone");
        }
    }

    #[test]
    fn random_connected_tiny() {
        assert!(is_connected(&random_connected(1, 0, 0)));
        assert!(is_connected(&random_connected(2, 0, 0)));
        assert!(is_connected(&random_connected(3, 0, 0)));
    }
}
