//! Articulation points and bridges (Tarjan's low-link algorithm).
//!
//! The `k = 1` boundary cases of the decomposition (barbells, bridges) are
//! detected here; also serves as an independent oracle for
//! `vertex_connectivity(g) == 1` in the test suite.

use crate::graph::{Graph, NodeId};

/// Output of the low-link computation.
#[derive(Clone, Debug)]
pub struct CutStructure {
    /// Vertices whose removal disconnects their component.
    pub articulation_points: Vec<NodeId>,
    /// Edges (as `(u, v)` with `u < v`) whose removal disconnects.
    pub bridges: Vec<(NodeId, NodeId)>,
}

/// Computes articulation points and bridges of `g` (iterative DFS, all
/// components).
pub fn cut_structure(g: &Graph) -> CutStructure {
    let n = g.n();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut parent = vec![usize::MAX; n];
    let mut is_ap = vec![false; n];
    let mut bridges = Vec::new();
    let mut timer = 0usize;

    for start in 0..n {
        if disc[start] != usize::MAX {
            continue;
        }
        // Iterative DFS with an explicit stack of (vertex, neighbor index).
        let mut stack: Vec<(NodeId, usize)> = vec![(start, 0)];
        disc[start] = timer;
        low[start] = timer;
        timer += 1;
        let mut root_children = 0usize;
        while let Some(&mut (v, ref mut idx)) = stack.last_mut() {
            if *idx < g.degree(v) {
                let u = g.neighbors(v)[*idx];
                *idx += 1;
                if disc[u] == usize::MAX {
                    parent[u] = v;
                    if v == start {
                        root_children += 1;
                    }
                    disc[u] = timer;
                    low[u] = timer;
                    timer += 1;
                    stack.push((u, 0));
                } else if u != parent[v] {
                    low[v] = low[v].min(disc[u]);
                }
            } else {
                stack.pop();
                if let Some(&(p, _)) = stack.last() {
                    low[p] = low[p].min(low[v]);
                    if low[v] >= disc[p] && p != start {
                        is_ap[p] = true;
                    }
                    if low[v] > disc[p] {
                        bridges.push((p.min(v), p.max(v)));
                    }
                }
            }
        }
        if root_children >= 2 {
            is_ap[start] = true;
        }
    }
    bridges.sort_unstable();
    CutStructure {
        articulation_points: (0..n).filter(|&v| is_ap[v]).collect(),
        bridges,
    }
}

/// Whether `g` is 2-vertex-connected (connected, `n >= 3`, and no
/// articulation point).
pub fn is_biconnected(g: &Graph) -> bool {
    g.n() >= 3
        && crate::traversal::is_connected(g)
        && cut_structure(g).articulation_points.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use proptest::prelude::*;

    #[test]
    fn path_interior_are_articulation() {
        let g = generators::path(5);
        let cs = cut_structure(&g);
        assert_eq!(cs.articulation_points, vec![1, 2, 3]);
        assert_eq!(cs.bridges.len(), 4);
    }

    #[test]
    fn cycle_has_none() {
        let g = generators::cycle(6);
        let cs = cut_structure(&g);
        assert!(cs.articulation_points.is_empty());
        assert!(cs.bridges.is_empty());
        assert!(is_biconnected(&g));
    }

    #[test]
    fn barbell_bridge_detected() {
        let g = generators::barbell(4, 0);
        let cs = cut_structure(&g);
        assert_eq!(cs.bridges, vec![(3, 4)]);
        assert_eq!(cs.articulation_points, vec![3, 4]);
        assert!(!is_biconnected(&g));
    }

    #[test]
    fn star_center_is_articulation() {
        let g = generators::star(5);
        let cs = cut_structure(&g);
        assert_eq!(cs.articulation_points, vec![0]);
        assert_eq!(cs.bridges.len(), 4);
    }

    #[test]
    fn disconnected_components_handled() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)]);
        let cs = cut_structure(&g);
        assert_eq!(cs.articulation_points, vec![1, 4]);
    }

    use crate::Graph;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// Cross-oracle: a connected graph with n >= 3 has an articulation
        /// point iff vertex connectivity is exactly 1.
        #[test]
        fn agrees_with_vertex_connectivity(seed in 0u64..300) {
            let g = generators::random_connected(12, 6, seed);
            let k = crate::connectivity::vertex_connectivity(&g);
            let has_ap = !cut_structure(&g).articulation_points.is_empty();
            prop_assert_eq!(has_ap, k == 1, "k = {}", k);
        }

        /// Removing a bridge disconnects; removing a non-bridge does not.
        #[test]
        fn bridges_are_exactly_disconnecting_edges(seed in 0u64..200) {
            let g = generators::random_connected(10, 4, seed);
            let cs = cut_structure(&g);
            for &(u, v) in g.edges() {
                let h = g.edge_subgraph(|a, b| (a, b) != (u.min(v), u.max(v)));
                let disconnects = !crate::traversal::is_connected(&h);
                prop_assert_eq!(
                    disconnects,
                    cs.bridges.contains(&(u.min(v), u.max(v))),
                    "edge ({}, {})", u, v
                );
            }
        }
    }
}
