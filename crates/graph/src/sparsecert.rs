//! Sparse connectivity certificates (Nagamochi–Ibaraki scan-first search).
//!
//! The paper cites Thurimella's distributed sparse certificates (reference \[49\] there); the
//! centralized engine behind them is the Nagamochi–Ibaraki forest
//! decomposition: partition the edges into forests `F_1, F_2, ...` where
//! `F_i` is a spanning forest of `G − (F_1 ∪ ... ∪ F_{i−1})`; then
//! `F_1 ∪ ... ∪ F_k` has at most `k(n−1)` edges and preserves both edge
//! and vertex connectivity up to `k`. Used as a preprocessing step to
//! shrink dense instances before running the decompositions.

use crate::graph::{Graph, NodeId};

/// The forest decomposition: `forest_of[e]` is the 1-based forest index of
/// edge `e` (in `g.edges()` order).
#[derive(Clone, Debug)]
pub struct ForestDecomposition {
    /// 1-based forest index per edge.
    pub forest_of: Vec<usize>,
    /// Number of forests used (equals the graph's degeneracy-ish bound).
    pub num_forests: usize,
}

/// Computes the Nagamochi–Ibaraki forest decomposition in `O(m α(n))`
/// (repeated spanning-forest peeling — equivalent output to the
/// scan-first-search labeling for certificate purposes).
pub fn forest_decomposition(g: &Graph) -> ForestDecomposition {
    let m = g.m();
    let mut forest_of = vec![0usize; m];
    let mut remaining: Vec<usize> = (0..m).collect();
    let mut index = 0usize;
    while !remaining.is_empty() {
        index += 1;
        let mut uf = crate::unionfind::UnionFind::new(g.n());
        let mut next = Vec::new();
        for &e in &remaining {
            let (u, v) = g.edges()[e];
            if uf.union(u, v) {
                forest_of[e] = index;
            } else {
                next.push(e);
            }
        }
        remaining = next;
    }
    ForestDecomposition {
        forest_of,
        num_forests: index,
    }
}

/// The sparse `k`-connectivity certificate: the union of the first `k`
/// forests. Preserves `min(k, vertex connectivity)` and
/// `min(k, edge connectivity)`, with at most `k(n−1)` edges.
pub fn sparse_certificate(g: &Graph, k: usize) -> Graph {
    assert!(k >= 1, "certificate order must be positive");
    let fd = forest_decomposition(g);
    let edges: Vec<(NodeId, NodeId)> = g
        .edges()
        .iter()
        .enumerate()
        .filter(|(e, _)| fd.forest_of[*e] <= k)
        .map(|(_, &uv)| uv)
        .collect();
    Graph::from_edges(g.n(), edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::{edge_connectivity, vertex_connectivity};
    use crate::generators;
    use proptest::prelude::*;

    #[test]
    fn forest_indices_are_forests() {
        let g = generators::complete(8);
        let fd = forest_decomposition(&g);
        for i in 1..=fd.num_forests {
            let f = g.edge_subgraph(|u, v| fd.forest_of[g.edge_index(u, v).unwrap()] == i);
            // A forest has no cycle: every component has |E| = |V| - 1.
            let mut uf = crate::unionfind::UnionFind::new(f.n());
            for &(u, v) in f.edges() {
                assert!(uf.union(u, v), "forest {i} contains a cycle");
            }
        }
    }

    #[test]
    fn certificate_size_bound() {
        let g = generators::complete(20);
        for k in 1..6 {
            let cert = sparse_certificate(&g, k);
            assert!(cert.m() <= k * (g.n() - 1), "k={k}: {} edges", cert.m());
        }
    }

    #[test]
    fn certificate_preserves_connectivity_up_to_k() {
        let g = generators::harary(6, 20);
        for k in 1..=7 {
            let cert = sparse_certificate(&g, k);
            assert_eq!(
                edge_connectivity(&cert).min(k),
                edge_connectivity(&g).min(k),
                "edge connectivity at k={k}"
            );
            assert_eq!(
                vertex_connectivity(&cert).min(k),
                vertex_connectivity(&g).min(k),
                "vertex connectivity at k={k}"
            );
        }
    }

    #[test]
    fn certificate_of_sparse_graph_is_itself() {
        let g = generators::path(6);
        let cert = sparse_certificate(&g, 3);
        assert_eq!(cert.edges(), g.edges());
    }

    #[test]
    fn first_forest_spans() {
        let g = generators::harary(4, 12);
        let f1 = sparse_certificate(&g, 1);
        assert!(crate::traversal::is_connected(&f1));
        assert_eq!(f1.m(), g.n() - 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Certificates never increase and never lose low connectivity.
        #[test]
        fn certificate_invariants(seed in 0u64..200, k in 1usize..5) {
            let g = generators::gnp(14, 0.5, seed);
            let cert = sparse_certificate(&g, k);
            prop_assert!(cert.m() <= g.m());
            prop_assert!(cert.m() <= k * (g.n().saturating_sub(1)));
            prop_assert_eq!(
                edge_connectivity(&cert).min(k),
                edge_connectivity(&g).min(k)
            );
        }
    }
}
