//! Maximal matching on bipartite "bridging" structures.
//!
//! Step (3) of the recursive class assignment finds a *maximal* matching in
//! the bridging graph (any maximal matching is a 2-approximation of the
//! maximum one — the property Lemma 4.4 relies on). The centralized packing
//! uses [`greedy_maximal_matching`] directly; the distributed packing
//! simulates Luby-style randomized matching, and the tests here cross-check
//! both against [`maximum_bipartite_matching`] (Hopcroft–Karp-light
//! augmenting paths).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A bipartite graph between `left` vertices `0..nl` and `right` vertices
/// `0..nr`, given as adjacency lists of the left side.
#[derive(Clone, Debug)]
pub struct Bipartite {
    /// `adj[l]` = right-neighbors of left vertex `l`.
    pub adj: Vec<Vec<usize>>,
    /// Number of right vertices.
    pub nr: usize,
}

impl Bipartite {
    /// A bipartite graph with `nl` left and `nr` right vertices, no edges.
    pub fn new(nl: usize, nr: usize) -> Self {
        Bipartite {
            adj: vec![Vec::new(); nl],
            nr,
        }
    }

    /// Adds edge `(l, r)`.
    ///
    /// # Panics
    /// Panics if `l` or `r` out of range.
    pub fn add_edge(&mut self, l: usize, r: usize) {
        assert!(l < self.adj.len() && r < self.nr, "edge out of range");
        self.adj[l].push(r);
    }

    /// Number of left vertices.
    pub fn nl(&self) -> usize {
        self.adj.len()
    }
}

/// Greedy maximal matching scanning left vertices in a seeded random order.
/// Returns `mate_of_left[l] = Some(r)` assignments.
pub fn greedy_maximal_matching(b: &Bipartite, seed: u64) -> Vec<Option<usize>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..b.nl()).collect();
    order.shuffle(&mut rng);
    let mut right_taken = vec![false; b.nr];
    let mut mate = vec![None; b.nl()];
    for l in order {
        for &r in &b.adj[l] {
            if !right_taken[r] {
                right_taken[r] = true;
                mate[l] = Some(r);
                break;
            }
        }
    }
    mate
}

/// Maximum bipartite matching via repeated augmenting paths (Kuhn's
/// algorithm). `O(V·E)` — used as a test oracle and in the Lemma 4.5
/// experiment.
pub fn maximum_bipartite_matching(b: &Bipartite) -> Vec<Option<usize>> {
    let mut mate_r: Vec<Option<usize>> = vec![None; b.nr];
    let mut mate_l: Vec<Option<usize>> = vec![None; b.nl()];

    fn try_augment(
        b: &Bipartite,
        l: usize,
        visited: &mut [bool],
        mate_r: &mut [Option<usize>],
        mate_l: &mut [Option<usize>],
    ) -> bool {
        for &r in &b.adj[l] {
            if visited[r] {
                continue;
            }
            visited[r] = true;
            let free = match mate_r[r] {
                None => true,
                Some(l2) => try_augment(b, l2, visited, mate_r, mate_l),
            };
            if free {
                mate_r[r] = Some(l);
                mate_l[l] = Some(r);
                return true;
            }
        }
        false
    }

    for l in 0..b.nl() {
        let mut visited = vec![false; b.nr];
        try_augment(b, l, &mut visited, &mut mate_r, &mut mate_l);
    }
    mate_l
}

/// Size of a matching given as left assignments.
pub fn matching_size(mate: &[Option<usize>]) -> usize {
    mate.iter().filter(|m| m.is_some()).count()
}

/// Checks that `mate` is a valid matching of `b` (edges exist, right side
/// not reused) and that it is maximal (no free edge remains).
pub fn check_maximal_matching(b: &Bipartite, mate: &[Option<usize>]) -> Result<(), String> {
    if mate.len() != b.nl() {
        return Err("assignment length mismatch".into());
    }
    let mut right_used = vec![false; b.nr];
    for (l, m) in mate.iter().enumerate() {
        if let Some(r) = m {
            if !b.adj[l].contains(r) {
                return Err(format!("matched pair ({l}, {r}) is not an edge"));
            }
            if right_used[*r] {
                return Err(format!("right vertex {r} matched twice"));
            }
            right_used[*r] = true;
        }
    }
    for (l, m) in mate.iter().enumerate() {
        if m.is_none() {
            for &r in &b.adj[l] {
                if !right_used[r] {
                    return Err(format!("matching not maximal: free edge ({l}, {r})"));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn diamond() -> Bipartite {
        let mut b = Bipartite::new(3, 3);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(2, 2);
        b
    }

    #[test]
    fn greedy_is_valid_and_maximal() {
        let b = diamond();
        for seed in 0..8 {
            let m = greedy_maximal_matching(&b, seed);
            check_maximal_matching(&b, &m).unwrap();
        }
    }

    #[test]
    fn maximum_on_diamond_is_three() {
        let b = diamond();
        let m = maximum_bipartite_matching(&b);
        assert_eq!(matching_size(&m), 3);
        check_maximal_matching(&b, &m).unwrap();
    }

    #[test]
    fn empty_bipartite() {
        let b = Bipartite::new(0, 0);
        assert_eq!(matching_size(&greedy_maximal_matching(&b, 0)), 0);
        assert_eq!(matching_size(&maximum_bipartite_matching(&b)), 0);
    }

    #[test]
    fn no_edges() {
        let b = Bipartite::new(3, 3);
        let m = greedy_maximal_matching(&b, 1);
        assert_eq!(matching_size(&m), 0);
        check_maximal_matching(&b, &m).unwrap();
    }

    #[test]
    fn check_rejects_bogus() {
        let b = diamond();
        assert!(check_maximal_matching(&b, &[Some(2), None, None]).is_err()); // non-edge
        assert!(check_maximal_matching(&b, &[Some(0), Some(0), None]).is_err()); // reuse
        assert!(check_maximal_matching(&b, &[None, None, None]).is_err()); // not maximal
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any maximal matching is at least half the maximum (the 1/2
        /// bound Lemma 4.4's proof uses).
        #[test]
        fn maximal_at_least_half_maximum(
            edges in proptest::collection::vec((0usize..8, 0usize..8), 0..30),
            seed in 0u64..16,
        ) {
            let mut b = Bipartite::new(8, 8);
            let mut seen = std::collections::HashSet::new();
            for (l, r) in edges {
                if seen.insert((l, r)) {
                    b.add_edge(l, r);
                }
            }
            let greedy = greedy_maximal_matching(&b, seed);
            prop_assert!(check_maximal_matching(&b, &greedy).is_ok());
            let maximum = maximum_bipartite_matching(&b);
            prop_assert!(2 * matching_size(&greedy) >= matching_size(&maximum));
        }
    }
}
