//! Growable topology: epoch-stamped edge activation over a CSR base.
//!
//! The engines and schedulers in this workspace historically assumed a
//! *settled* topology — one immutable [`Graph`] whose full adjacency is
//! known before round 0, with mid-run arrivals emulated by purging
//! pre-existing edges until their arrival round. [`GrowableGraph`] ends
//! that assumption: it stores a compacted CSR base plus a per-vertex
//! *overlay* of edges added later, every half-edge stamped with the
//! epoch (engine round) at which it activates. Iteration at epoch `e`
//! yields exactly the edges with activation epoch `≤ e`, in ascending
//! neighbor order, in `O(deg)` — a consumer that asks for the round-`e`
//! view can never observe future adjacency.
//!
//! [`GrowableGraph::compact`] folds the overlay back into the CSR base
//! while keeping the epoch stamps, so long-lived growing topologies pay
//! amortized CSR iteration costs. Compaction is *neutral*: the sequence
//! produced by [`GrowableGraph::neighbors_at`] is identical before and
//! after, at every epoch (see the property tests below).
//!
//! [`TopologyView`] is the cheap-to-copy handle the engines thread
//! through delivery: either a settled [`Graph`] (the existing zero-cost
//! CSR slice path, byte-for-byte unchanged) or a [`GrowableGraph`]
//! queried at the current round.

use crate::graph::{Graph, GraphBuilder, NodeId};

/// A growable undirected simple graph: CSR base + epoch-stamped
/// overlay adjacency.
///
/// The vertex id space is fixed at construction (`0..n`): a vertex that
/// "arrives" later simply has no active incident edges before its
/// arrival epoch (vertex dormancy itself is tracked by the fault
/// machinery, not the topology). Edges activate at their epoch and
/// never deactivate — deactivation (cuts, deaths) stays with the fault
/// trackers, keeping this structure monotone.
///
/// # Example
///
/// ```
/// use decomp_graph::{Graph, GrowableGraph};
///
/// let base = Graph::from_edges(3, [(0, 1)]);
/// let mut gg = GrowableGraph::from_base(base);
/// gg.add_edge(1, 2, 4);
/// assert_eq!(gg.neighbors_at(1, 0).collect::<Vec<_>>(), vec![0]);
/// assert_eq!(gg.neighbors_at(1, 4).collect::<Vec<_>>(), vec![0, 2]);
/// gg.compact();
/// assert_eq!(gg.neighbors_at(1, 3).collect::<Vec<_>>(), vec![0]);
/// ```
#[derive(Clone, Debug)]
pub struct GrowableGraph {
    /// Compacted CSR of every edge known so far (including edges whose
    /// activation epoch lies in the future — iteration filters them).
    base: Graph,
    /// `half_off[v]..half_off[v+1]` indexes `half_epoch` in parallel
    /// with `base.neighbors(v)`.
    half_off: Vec<usize>,
    /// Activation epoch per base half-edge.
    half_epoch: Vec<u32>,
    /// Per-vertex overlay adjacency added since the last compaction,
    /// sorted by neighbor id.
    overlay: Vec<Vec<(NodeId, u32)>>,
    /// Overlay edge count (each edge once).
    overlay_edges: usize,
    /// Largest activation epoch of any edge.
    max_epoch: u32,
}

impl GrowableGraph {
    /// Wraps a settled base graph; every base edge activates at epoch 0.
    pub fn from_base(base: Graph) -> Self {
        let n = base.n();
        let mut half_off = Vec::with_capacity(n + 1);
        half_off.push(0);
        for v in 0..n {
            half_off.push(half_off[v] + base.degree(v));
        }
        let half_epoch = vec![0u32; half_off[n]];
        GrowableGraph {
            base,
            half_off,
            half_epoch,
            overlay: vec![Vec::new(); n],
            overlay_edges: 0,
            max_epoch: 0,
        }
    }

    /// Number of vertices (fixed for the lifetime of the structure).
    #[inline]
    pub fn n(&self) -> usize {
        self.base.n()
    }

    /// The compacted CSR base. After [`GrowableGraph::compact`] this
    /// includes future edges too — it is the *bookkeeping* topology
    /// (partitioning, buffer sizing), never the delivery view.
    #[inline]
    pub fn base(&self) -> &Graph {
        &self.base
    }

    /// Total number of distinct edges, active or future.
    #[inline]
    pub fn m_total(&self) -> usize {
        self.base.m() + self.overlay_edges
    }

    /// Edges still living in the overlay (0 right after a compaction).
    #[inline]
    pub fn overlay_len(&self) -> usize {
        self.overlay_edges
    }

    /// Largest activation epoch of any edge.
    #[inline]
    pub fn max_epoch(&self) -> u32 {
        self.max_epoch
    }

    /// Adds the undirected edge `{u, v}` activating at `epoch`.
    ///
    /// # Panics
    /// Panics on self-loops, out-of-range endpoints, or duplicates
    /// (base or overlay) — the same contract as [`GraphBuilder`].
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, epoch: u32) {
        assert!(u < self.n() && v < self.n(), "edge endpoint out of range");
        assert_ne!(u, v, "self-loops are not allowed");
        assert!(
            self.edge_epoch(u, v).is_none(),
            "duplicate edge {{{u}, {v}}}"
        );
        for (a, b) in [(u, v), (v, u)] {
            let row = &mut self.overlay[a];
            let at = row.partition_point(|&(w, _)| w < b);
            row.insert(at, (b, epoch));
        }
        self.overlay_edges += 1;
        self.max_epoch = self.max_epoch.max(epoch);
    }

    /// Activation epoch of `{u, v}`, or `None` if the edge is unknown.
    pub fn edge_epoch(&self, u: NodeId, v: NodeId) -> Option<u32> {
        if u >= self.n() || v >= self.n() || u == v {
            return None;
        }
        if let Ok(i) = self.base.neighbors(u).binary_search(&v) {
            return Some(self.half_epoch[self.half_off[u] + i]);
        }
        self.overlay[u]
            .binary_search_by_key(&v, |&(w, _)| w)
            .ok()
            .map(|i| self.overlay[u][i].1)
    }

    /// Whether `{u, v}` is active at `epoch`.
    pub fn has_edge_at(&self, u: NodeId, v: NodeId, epoch: u32) -> bool {
        self.edge_epoch(u, v).is_some_and(|e| e <= epoch)
    }

    /// Number of active neighbors of `v` at `epoch`.
    pub fn degree_at(&self, v: NodeId, epoch: u32) -> usize {
        self.neighbors_at(v, epoch).count()
    }

    /// Upper bound on `degree_at(v, _)` for buffer sizing: the degree
    /// counting future edges.
    #[inline]
    pub fn degree_bound(&self, v: NodeId) -> usize {
        self.base.degree(v) + self.overlay[v].len()
    }

    /// The active neighbors of `v` at `epoch`, ascending — an `O(deg)`
    /// sorted merge of the epoch-filtered base slice and overlay row.
    pub fn neighbors_at(&self, v: NodeId, epoch: u32) -> NeighborsAt<'_> {
        NeighborsAt {
            base_nbrs: self.base.neighbors(v),
            base_epoch: &self.half_epoch[self.half_off[v]..self.half_off[v + 1]],
            overlay: &self.overlay[v],
            epoch,
            i: 0,
            j: 0,
        }
    }

    /// Fills `out` with the active neighbors of `v` at `epoch`
    /// (ascending), reusing its allocation.
    pub fn neighbors_at_into(&self, v: NodeId, epoch: u32, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend(self.neighbors_at(v, epoch));
    }

    /// Every known edge once, as `(u, v, epoch)` with `u < v`.
    fn all_edges(&self) -> Vec<(NodeId, NodeId, u32)> {
        let mut out = Vec::with_capacity(self.m_total());
        for v in 0..self.n() {
            let nbrs = self.base.neighbors(v);
            let eps = &self.half_epoch[self.half_off[v]..self.half_off[v + 1]];
            for (&u, &e) in nbrs.iter().zip(eps) {
                if v < u {
                    out.push((v, u, e));
                }
            }
            for &(u, e) in &self.overlay[v] {
                if v < u {
                    out.push((v, u, e));
                }
            }
        }
        out
    }

    /// A from-scratch CSR snapshot of exactly the edges active at
    /// `epoch` — the oracle the property tests compare iteration
    /// against, and the per-wave materialization the centralized churn
    /// loop uses so it genuinely never holds future adjacency.
    pub fn snapshot_at(&self, epoch: u32) -> Graph {
        Graph::from_edges(
            self.n(),
            self.all_edges()
                .into_iter()
                .filter(|&(_, _, e)| e <= epoch)
                .map(|(u, v, _)| (u, v)),
        )
    }

    /// The fully grown topology (every edge active).
    pub fn final_graph(&self) -> Graph {
        self.snapshot_at(u32::MAX)
    }

    /// Folds the overlay into the CSR base, keeping every epoch stamp.
    /// Neutral for iteration: [`GrowableGraph::neighbors_at`] yields
    /// the same sequence at every epoch before and after.
    pub fn compact(&mut self) {
        if self.overlay_edges == 0 {
            return;
        }
        let n = self.n();
        let all = self.all_edges();
        let mut b = GraphBuilder::new(n);
        for &(u, v, _) in &all {
            b.add_edge(u, v);
        }
        let base = b.build();
        let epoch_of: std::collections::BTreeMap<(NodeId, NodeId), u32> =
            all.into_iter().map(|(u, v, e)| ((u, v), e)).collect();
        let mut half_off = Vec::with_capacity(n + 1);
        half_off.push(0);
        for v in 0..n {
            half_off.push(half_off[v] + base.degree(v));
        }
        let mut half_epoch = Vec::with_capacity(half_off[n]);
        for v in 0..n {
            for &u in base.neighbors(v) {
                half_epoch.push(epoch_of[&(v.min(u), v.max(u))]);
            }
        }
        self.base = base;
        self.half_off = half_off;
        self.half_epoch = half_epoch;
        self.overlay = vec![Vec::new(); n];
        self.overlay_edges = 0;
    }
}

/// Sorted-merge iterator over the active neighbors of one vertex at a
/// fixed epoch (see [`GrowableGraph::neighbors_at`]).
pub struct NeighborsAt<'a> {
    base_nbrs: &'a [NodeId],
    base_epoch: &'a [u32],
    overlay: &'a [(NodeId, u32)],
    epoch: u32,
    i: usize,
    j: usize,
}

impl Iterator for NeighborsAt<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        while self.i < self.base_nbrs.len() && self.base_epoch[self.i] > self.epoch {
            self.i += 1;
        }
        while self.j < self.overlay.len() && self.overlay[self.j].1 > self.epoch {
            self.j += 1;
        }
        let b = self.base_nbrs.get(self.i).copied();
        let o = self.overlay.get(self.j).map(|&(u, _)| u);
        match (b, o) {
            (None, None) => None,
            (Some(x), None) => {
                self.i += 1;
                Some(x)
            }
            (None, Some(y)) => {
                self.j += 1;
                Some(y)
            }
            // Base and overlay are disjoint, so strict comparison.
            (Some(x), Some(y)) => {
                if x < y {
                    self.i += 1;
                    Some(x)
                } else {
                    self.j += 1;
                    Some(y)
                }
            }
        }
    }
}

/// The topology handle the CONGEST engines deliver over: a settled
/// immutable CSR, or a growable graph queried at the current round.
///
/// `Static` is the pre-existing fast path — `active_neighbors` returns
/// the CSR slice untouched, so settled runs are byte-identical to the
/// pre-growth engines. `Growable` materializes the round-`epoch` view
/// into a caller-owned scratch buffer.
#[derive(Clone, Copy, Debug)]
pub enum TopologyView<'a> {
    /// The full adjacency is known and active from round 0.
    Static(&'a Graph),
    /// Edges activate at their epoch; iteration never sees the future.
    Growable(&'a GrowableGraph),
}

impl<'a> TopologyView<'a> {
    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        match self {
            TopologyView::Static(g) => g.n(),
            TopologyView::Growable(gg) => gg.n(),
        }
    }

    /// The bookkeeping CSR (partitioning, buffer sizing). For a
    /// growable view this may include not-yet-active edges; it is never
    /// used for delivery.
    #[inline]
    pub fn base(&self) -> &'a Graph {
        match self {
            TopologyView::Static(g) => g,
            TopologyView::Growable(gg) => gg.base(),
        }
    }

    /// Whether this is the settled fast path.
    #[inline]
    pub fn is_static(&self) -> bool {
        matches!(self, TopologyView::Static(_))
    }

    /// The neighbors `v` may communicate with during round `epoch`,
    /// ascending. `Static` ignores `epoch` and `scratch` and returns
    /// the CSR slice; `Growable` fills `scratch` with the epoch view.
    #[inline]
    pub fn active_neighbors<'s>(
        &self,
        v: NodeId,
        epoch: u32,
        scratch: &'s mut Vec<NodeId>,
    ) -> &'s [NodeId]
    where
        'a: 's,
    {
        match self {
            TopologyView::Static(g) => g.neighbors(v),
            TopologyView::Growable(gg) => {
                gg.neighbors_at_into(v, epoch, scratch);
                scratch.as_slice()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(gg: &GrowableGraph, v: NodeId, epoch: u32) -> Vec<NodeId> {
        gg.neighbors_at(v, epoch).collect()
    }

    #[test]
    fn base_edges_active_from_epoch_zero() {
        let gg = GrowableGraph::from_base(Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]));
        assert_eq!(collect(&gg, 1, 0), vec![0, 2]);
        assert_eq!(gg.degree_at(1, 0), 2);
        assert!(gg.has_edge_at(0, 1, 0));
        assert_eq!(gg.m_total(), 3);
    }

    #[test]
    fn overlay_edges_appear_at_their_epoch_sorted() {
        let mut gg = GrowableGraph::from_base(Graph::from_edges(5, [(1, 3)]));
        gg.add_edge(1, 0, 2);
        gg.add_edge(1, 4, 5);
        gg.add_edge(1, 2, 2);
        assert_eq!(collect(&gg, 1, 0), vec![3]);
        assert_eq!(collect(&gg, 1, 1), vec![3]);
        assert_eq!(collect(&gg, 1, 2), vec![0, 2, 3]);
        assert_eq!(collect(&gg, 1, 5), vec![0, 2, 3, 4]);
        assert_eq!(gg.edge_epoch(4, 1), Some(5));
        assert_eq!(gg.edge_epoch(1, 3), Some(0));
        assert!(!gg.has_edge_at(1, 4, 4));
        assert_eq!(gg.max_epoch(), 5);
    }

    #[test]
    fn snapshot_matches_iteration() {
        let mut gg = GrowableGraph::from_base(Graph::from_edges(4, [(0, 1), (2, 3)]));
        gg.add_edge(1, 2, 3);
        let s = gg.snapshot_at(3);
        assert!(s.has_edge(1, 2));
        let s0 = gg.snapshot_at(0);
        assert!(!s0.has_edge(1, 2));
        assert_eq!(gg.final_graph().m(), 3);
    }

    #[test]
    fn compaction_is_iteration_neutral() {
        let mut gg = GrowableGraph::from_base(Graph::from_edges(6, [(0, 1), (1, 2), (4, 5)]));
        gg.add_edge(2, 3, 1);
        gg.add_edge(3, 4, 7);
        gg.add_edge(0, 5, 7);
        let before: Vec<Vec<Vec<NodeId>>> = (0..=8)
            .map(|e| (0..6).map(|v| collect(&gg, v, e)).collect())
            .collect();
        gg.compact();
        assert_eq!(gg.overlay_len(), 0);
        let after: Vec<Vec<Vec<NodeId>>> = (0..=8)
            .map(|e| (0..6).map(|v| collect(&gg, v, e)).collect())
            .collect();
        assert_eq!(before, after, "compaction must not change any view");
        // The base now holds future edges; iteration still filters.
        assert!(gg.base().has_edge(3, 4));
        assert!(!gg.has_edge_at(3, 4, 6));
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn rejects_duplicate_of_base_edge() {
        let mut gg = GrowableGraph::from_base(Graph::from_edges(3, [(0, 1)]));
        gg.add_edge(1, 0, 4);
    }

    #[test]
    fn view_static_is_the_slice_path() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]);
        let view = TopologyView::Static(&g);
        let mut scratch = vec![99];
        assert_eq!(view.active_neighbors(1, 0, &mut scratch), &[0, 2]);
        assert_eq!(scratch, vec![99], "static path must not touch scratch");
        assert!(view.is_static());
        assert_eq!(view.n(), 3);
    }

    #[test]
    fn view_growable_materializes_the_epoch() {
        let mut gg = GrowableGraph::from_base(Graph::from_edges(3, [(0, 1)]));
        gg.add_edge(1, 2, 2);
        let view = TopologyView::Growable(&gg);
        let mut scratch = Vec::new();
        assert_eq!(view.active_neighbors(1, 1, &mut scratch), &[0]);
        assert_eq!(view.active_neighbors(1, 2, &mut scratch), &[0, 2]);
        assert!(!view.is_static());
    }
}

#[cfg(test)]
mod properties {
    use super::*;
    use proptest::prelude::*;

    /// A random growth history: base edges at epoch 0 plus overlay
    /// edges with epochs in `1..=max_epoch`, all on `n` vertices.
    #[allow(clippy::type_complexity)]
    fn history(
        n: usize,
        seed: u64,
        base_frac: u64,
        max_epoch: u32,
    ) -> (Vec<(NodeId, NodeId)>, Vec<(NodeId, NodeId, u32)>) {
        // SplitMix-style deterministic expansion keeps the strategy
        // shrinkable through plain integer inputs.
        let mut s = seed | 1;
        let mut next = move || {
            s = s.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(0xb5);
            s >> 11
        };
        let mut base = Vec::new();
        let mut grown = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                match next() % 10 {
                    x if x < base_frac => base.push((u, v)),
                    x if x < base_frac + 3 => {
                        grown.push((u, v, 1 + (next() % max_epoch as u64) as u32))
                    }
                    _ => {}
                }
            }
        }
        (base, grown)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Tentpole oracle: neighbor iteration at every epoch equals a
        /// from-scratch CSR rebuild of the edges active at that epoch —
        /// including after a compaction at an arbitrary point in the
        /// history.
        #[test]
        fn iteration_matches_scratch_csr_at_every_epoch(
            n in 2usize..20,
            seed in 0u64..u64::MAX,
            base_frac in 1u64..6,
            max_epoch in 1u32..8,
            compact_after in 0usize..64,
        ) {
            let (base, grown) = history(n, seed, base_frac, max_epoch);
            let mut gg = GrowableGraph::from_base(Graph::from_edges(n, base.clone()));
            for (k, &(u, v, e)) in grown.iter().enumerate() {
                gg.add_edge(u, v, e);
                if k + 1 == compact_after {
                    gg.compact();
                }
            }
            if compact_after == 0 {
                gg.compact(); // exercise the fully compacted shape too
            }
            for epoch in 0..=max_epoch {
                let oracle = Graph::from_edges(
                    n,
                    base.iter().copied().chain(
                        grown
                            .iter()
                            .filter(|&&(_, _, e)| e <= epoch)
                            .map(|&(u, v, _)| (u, v)),
                    ),
                );
                for v in 0..n {
                    prop_assert_eq!(
                        gg.neighbors_at(v, epoch).collect::<Vec<_>>(),
                        oracle.neighbors(v).to_vec(),
                        "vertex {} at epoch {}", v, epoch
                    );
                }
                prop_assert_eq!(gg.snapshot_at(epoch), oracle);
            }
        }
    }
}
