//! Karger random edge-sampling (Section 5.2's substrate).
//!
//! Karger's sampling theorem (`[31, Theorem 2.1]` in the paper): randomly
//! assigning each edge to one of `η` subgraphs, with `λ/η ≥ Θ(log n / ε²)`,
//! leaves each subgraph with edge connectivity in `[(1−ε)λ/η, (1+ε)λ/η]`
//! w.h.p. The generalized spanning-tree packing runs the MWU packing inside
//! each sampled subgraph and unions the results.

use crate::graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Partitions the edges of `g` uniformly at random into `eta` spanning
/// subgraphs (all on the same vertex set). Every edge lands in exactly one
/// subgraph.
///
/// # Panics
/// Panics if `eta == 0`.
pub fn random_edge_partition(g: &Graph, eta: usize, seed: u64) -> Vec<Graph> {
    assert!(eta > 0, "need at least one part");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut parts: Vec<Vec<(usize, usize)>> = vec![Vec::new(); eta];
    for &e in g.edges() {
        parts[rng.gen_range(0..eta)].push(e);
    }
    parts
        .into_iter()
        .map(|edges| Graph::from_edges(g.n(), edges))
        .collect()
}

/// Chooses the number of parts `η` so that `λ/η ∈ [lo, hi]` where
/// `lo = 20·ln n / ε²` as in Section 5.2 (clamped to ≥ 1). Returns 1 when
/// `λ` is too small to split.
pub fn choose_eta(lambda: usize, n: usize, epsilon: f64) -> usize {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0,1)");
    let lo = 20.0 * (n.max(2) as f64).ln() / (epsilon * epsilon);
    let eta = (lambda as f64 / lo).floor() as usize;
    eta.max(1)
}

/// Keeps each edge independently with probability `p` (Karger-style
/// skeleton, used by the integral packing variant and sampling tests).
pub fn random_edge_subsample(g: &Graph, p: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    Graph::from_edges(
        g.n(),
        g.edges()
            .iter()
            .copied()
            .filter(|_| rng.gen_bool(p.clamp(0.0, 1.0))),
    )
}

/// The paper's `κ`: the vertex connectivity remaining after sampling each
/// vertex independently with probability 1/2 (\[12\] proves
/// `κ = Ω(k / log³ n)` w.h.p.; integral dominating-tree packings have size
/// `Ω(κ / log² n)`). Returns the *minimum* over `trials` samples, the
/// conservative estimate the integral-packing experiments report.
pub fn sampled_vertex_connectivity(g: &Graph, trials: usize, seed: u64) -> usize {
    assert!(trials >= 1, "need at least one trial");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut best = usize::MAX;
    for _ in 0..trials {
        let keep: Vec<usize> = g.vertices().filter(|_| rng.gen_bool(0.5)).collect();
        if keep.len() < 2 {
            return 0;
        }
        let (sub, _) = g.induced_subgraph(&keep);
        best = best.min(crate::connectivity::vertex_connectivity(&sub));
        if best == 0 {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::edge_connectivity;
    use crate::generators;
    use crate::traversal::is_connected;

    #[test]
    fn partition_covers_all_edges() {
        let g = generators::complete(10);
        let parts = random_edge_partition(&g, 3, 7);
        assert_eq!(parts.len(), 3);
        let total: usize = parts.iter().map(|h| h.m()).sum();
        assert_eq!(total, g.m());
        // disjointness
        for i in 0..parts.len() {
            for j in (i + 1)..parts.len() {
                for &(u, v) in parts[i].edges() {
                    assert!(!parts[j].has_edge(u, v));
                }
            }
        }
    }

    #[test]
    fn partition_eta_one_is_identity() {
        let g = generators::cycle(6);
        let parts = random_edge_partition(&g, 1, 0);
        assert_eq!(parts[0].edges(), g.edges());
    }

    #[test]
    fn choose_eta_small_lambda() {
        assert_eq!(choose_eta(3, 100, 0.5), 1);
    }

    #[test]
    fn choose_eta_grows_with_lambda() {
        let n = 1000;
        let e1 = choose_eta(2000, n, 0.5);
        let e2 = choose_eta(8000, n, 0.5);
        assert!(e2 >= 2 * e1, "eta should scale with lambda: {e1} vs {e2}");
        assert!(e1 >= 1);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn choose_eta_rejects_bad_epsilon() {
        choose_eta(10, 10, 0.0);
    }

    #[test]
    fn sampled_parts_of_dense_graph_stay_connected() {
        // K_40 has λ = 39; splitting into 3 parts keeps λ_i ≈ 13 >> 1,
        // so each part must remain connected (sanity proxy for Karger).
        let g = generators::complete(40);
        for seed in 0..5 {
            let parts = random_edge_partition(&g, 3, seed);
            for part in &parts {
                assert!(is_connected(part), "seed {seed}");
                assert!(edge_connectivity(part) >= 5, "seed {seed}");
            }
        }
    }

    #[test]
    fn partition_connectivity_sums_close_to_lambda() {
        // Karger: the parts of a random split retain most of lambda in
        // aggregate. Structurally, sum lambda_i <= lambda always (G's
        // minimum cut bounds every part's cut), and for K_30 split in two
        // the sum should stay well above lambda/2. The exact value is
        // RNG-stream dependent, so assert the bracket over several seeds.
        let g = generators::complete(30); // lambda = 29
        for seed in 0..8 {
            let parts = random_edge_partition(&g, 2, seed);
            let sum: usize = parts.iter().map(edge_connectivity).sum();
            assert!(
                sum >= 12,
                "seed {seed}: sum of part connectivity too low: {sum}"
            );
            assert!(sum <= 29, "seed {seed}: sum exceeds lambda: {sum}");
        }
    }

    #[test]
    fn sampled_connectivity_bounded_by_k() {
        let g = generators::harary(12, 48);
        let kappa = sampled_vertex_connectivity(&g, 3, 7);
        assert!(kappa <= 12, "kappa {kappa} cannot exceed k");
    }

    #[test]
    fn sampled_connectivity_positive_on_dense_graphs() {
        // K_32: any half-sample stays complete, kappa ≈ n/2 - 1.
        let g = generators::complete(32);
        let kappa = sampled_vertex_connectivity(&g, 3, 5);
        assert!(kappa >= 8, "kappa {kappa} too small on a clique");
    }

    #[test]
    fn sampled_connectivity_zero_on_fragile_graphs() {
        // A path dies under vertex sampling almost surely.
        let g = generators::path(20);
        assert_eq!(sampled_vertex_connectivity(&g, 4, 1), 0);
    }

    #[test]
    fn subsample_extremes() {
        let g = generators::complete(8);
        assert_eq!(random_edge_subsample(&g, 0.0, 1).m(), 0);
        assert_eq!(random_edge_subsample(&g, 1.0, 1).m(), g.m());
    }

    #[test]
    fn subsample_deterministic_per_seed() {
        let g = generators::gnp(20, 0.5, 3);
        let a = random_edge_subsample(&g, 0.5, 9);
        let b = random_edge_subsample(&g, 0.5, 9);
        assert_eq!(a.edges(), b.edges());
    }
}
