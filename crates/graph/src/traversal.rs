//! Breadth-first / depth-first traversal, connected components, diameter.
//!
//! These are the primitives the paper's preamble assumes: nodes learn `n`
//! and a 2-approximation of the diameter `D` via "a simple and standard BFS
//! tree approach" (Section 2).

use crate::graph::{Graph, NodeId};

/// Result of a BFS from a single source: hop distances and BFS-tree parents.
#[derive(Clone, Debug)]
pub struct BfsTree {
    /// `dist[v]` is the hop distance from the source, or `usize::MAX` if
    /// unreachable.
    pub dist: Vec<usize>,
    /// `parent[v]` is the BFS-tree parent, `usize::MAX` for the source and
    /// unreachable vertices.
    pub parent: Vec<NodeId>,
    /// The source vertex.
    pub source: NodeId,
}

impl BfsTree {
    /// Whether `v` was reached.
    pub fn reached(&self, v: NodeId) -> bool {
        self.dist[v] != usize::MAX
    }

    /// Maximum finite distance (the source's eccentricity within its
    /// component).
    pub fn eccentricity(&self) -> usize {
        self.dist
            .iter()
            .copied()
            .filter(|&d| d != usize::MAX)
            .max()
            .unwrap_or(0)
    }

    /// Path from the source to `v` (inclusive), or `None` if unreachable.
    pub fn path_to(&self, v: NodeId) -> Option<Vec<NodeId>> {
        if !self.reached(v) {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while cur != self.source {
            cur = self.parent[cur];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// Tree edges `(parent, child)` of the BFS tree.
    pub fn tree_edges(&self) -> Vec<(NodeId, NodeId)> {
        (0..self.dist.len())
            .filter(|&v| v != self.source && self.reached(v))
            .map(|v| (self.parent[v], v))
            .collect()
    }
}

/// BFS from `source`.
///
/// # Panics
/// Panics if `source >= g.n()`.
pub fn bfs(g: &Graph, source: NodeId) -> BfsTree {
    assert!(source < g.n(), "BFS source out of range");
    let mut dist = vec![usize::MAX; g.n()];
    let mut parent = vec![usize::MAX; g.n()];
    let mut queue = std::collections::VecDeque::new();
    dist[source] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for &v in g.neighbors(u) {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                parent[v] = u;
                queue.push_back(v);
            }
        }
    }
    BfsTree {
        dist,
        parent,
        source,
    }
}

/// Connected-component labels: `labels[v]` is the smallest vertex id in
/// `v`'s component. Also returns the number of components.
pub fn connected_components(g: &Graph) -> (Vec<usize>, usize) {
    let n = g.n();
    let mut labels = vec![usize::MAX; n];
    let mut count = 0;
    for s in 0..n {
        if labels[s] != usize::MAX {
            continue;
        }
        count += 1;
        let mut stack = vec![s];
        labels[s] = s;
        while let Some(u) = stack.pop() {
            for &v in g.neighbors(u) {
                if labels[v] == usize::MAX {
                    labels[v] = s;
                    stack.push(v);
                }
            }
        }
    }
    (labels, count)
}

/// Whether the graph is connected. The empty graph counts as connected.
pub fn is_connected(g: &Graph) -> bool {
    g.n() == 0 || connected_components(g).1 == 1
}

/// Exact diameter via BFS from every vertex. `O(n·m)`; `None` if the graph
/// is disconnected or empty.
pub fn diameter(g: &Graph) -> Option<usize> {
    if g.n() == 0 || !is_connected(g) {
        return None;
    }
    Some(
        (0..g.n())
            .map(|s| bfs(g, s).eccentricity())
            .max()
            .unwrap_or(0),
    )
}

/// A 2-approximation of the diameter via a single BFS: the eccentricity `e`
/// of any vertex satisfies `e <= D <= 2e`. `None` if disconnected/empty.
///
/// This mirrors what the distributed preamble computes in `O(D)` rounds.
pub fn diameter_2approx(g: &Graph) -> Option<usize> {
    if g.n() == 0 || !is_connected(g) {
        return None;
    }
    Some(2 * bfs(g, 0).eccentricity())
}

/// Iterative DFS preorder from `source` (component of `source` only).
pub fn dfs_preorder(g: &Graph, source: NodeId) -> Vec<NodeId> {
    assert!(source < g.n(), "DFS source out of range");
    let mut seen = vec![false; g.n()];
    let mut order = Vec::new();
    let mut stack = vec![source];
    while let Some(u) = stack.pop() {
        if seen[u] {
            continue;
        }
        seen[u] = true;
        order.push(u);
        // Push in reverse so that smaller neighbors are visited first.
        for &v in g.neighbors(u).iter().rev() {
            if !seen[v] {
                stack.push(v);
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use proptest::prelude::*;

    #[test]
    fn bfs_path_distances() {
        let g = generators::path(5);
        let t = bfs(&g, 0);
        assert_eq!(t.dist, vec![0, 1, 2, 3, 4]);
        assert_eq!(t.path_to(4), Some(vec![0, 1, 2, 3, 4]));
        assert_eq!(t.eccentricity(), 4);
    }

    #[test]
    fn bfs_unreachable() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        let t = bfs(&g, 0);
        assert!(!t.reached(2));
        assert_eq!(t.path_to(3), None);
        assert_eq!(t.tree_edges(), vec![(0, 1)]);
    }

    #[test]
    fn components_counts() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (4, 5)]);
        let (labels, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], 3);
        assert_eq!(labels[4], labels[5]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn diameter_of_cycle() {
        let g = generators::cycle(8);
        assert_eq!(diameter(&g), Some(4));
        let approx = diameter_2approx(&g).unwrap();
        assert!((4..=8).contains(&approx));
    }

    #[test]
    fn diameter_of_complete() {
        let g = generators::complete(6);
        assert_eq!(diameter(&g), Some(1));
    }

    #[test]
    fn diameter_disconnected_is_none() {
        let g = Graph::from_edges(3, [(0, 1)]);
        assert_eq!(diameter(&g), None);
        assert_eq!(diameter_2approx(&g), None);
    }

    #[test]
    fn dfs_visits_component() {
        let g = generators::path(4);
        assert_eq!(dfs_preorder(&g, 0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn single_vertex() {
        let g = Graph::empty(1);
        assert_eq!(diameter(&g), Some(0));
        assert!(is_connected(&g));
    }

    proptest! {
        /// BFS distance is symmetric on undirected graphs:
        /// dist(u -> v) == dist(v -> u).
        #[test]
        fn bfs_distance_symmetric(seed in 0u64..50) {
            let g = generators::gnp(24, 0.15, seed);
            let from0 = bfs(&g, 0);
            for v in g.vertices() {
                let from_v = bfs(&g, v);
                prop_assert_eq!(from0.dist[v], from_v.dist[0]);
            }
        }

        /// Triangle inequality on BFS distances.
        #[test]
        fn bfs_triangle_inequality(seed in 0u64..30) {
            let g = generators::gnp(20, 0.2, seed);
            let d0 = bfs(&g, 0).dist;
            let d1 = bfs(&g, 1).dist;
            for v in g.vertices() {
                if d0[v] != usize::MAX && d0[1] != usize::MAX && d1[v] != usize::MAX {
                    prop_assert!(d0[v] <= d0[1].saturating_add(d1[v]));
                }
            }
        }
    }
}
