//! # decomp-graph
//!
//! Graph substrate for the connectivity-decomposition reproduction of
//! Censor-Hillel, Ghaffari & Kuhn, *Distributed Connectivity Decomposition*
//! (PODC 2014).
//!
//! This crate provides everything the paper's algorithms assume of the
//! underlying graph machinery:
//!
//! * a compact undirected [`Graph`] representation with a builder,
//! * a [`growable`] topology view ([`GrowableGraph`] /
//!   [`TopologyView`]): epoch-stamped edge activation over a CSR base,
//!   for engines running on graphs that grow mid-run,
//! * graph [`generators`] covering all families used in the experiments
//!   (Harary graphs, random regular graphs, `G(n,p)`, hypercubes, the
//!   clique-plus-triples counterexample, diameter-controlled families, ...),
//! * classical algorithms: [`traversal`] (BFS/DFS/components/diameter),
//!   [`mst`] (Kruskal/Prim), [`flow`] (Dinic), exact edge/vertex
//!   [`connectivity`] with Menger path extraction, [`domination`] checks,
//!   greedy maximal [`matching`], and Karger edge [`sample`] splitting,
//! * a [`unionfind`] disjoint-set forest.
//!
//! # Example
//!
//! ```
//! use decomp_graph::generators;
//! use decomp_graph::connectivity;
//!
//! // A Harary graph H_{4,16} is exactly 4-connected.
//! let g = generators::harary(4, 16);
//! assert_eq!(connectivity::vertex_connectivity(&g), 4);
//! assert_eq!(connectivity::edge_connectivity(&g), 4);
//! ```

pub mod articulation;
pub mod connectivity;
pub mod domination;
pub mod flow;
pub mod generators;
pub mod graph;
pub mod growable;
pub mod matching;
pub mod mst;
pub mod sample;
pub mod sparsecert;
pub mod traversal;
pub mod unionfind;

pub use graph::{Graph, GraphBuilder, NodeId};
pub use growable::{GrowableGraph, TopologyView};
