//! Compact undirected graph representation.
//!
//! [`Graph`] stores an undirected simple graph in CSR (compressed sparse
//! row) form: all algorithms in this workspace iterate neighbors far more
//! often than they mutate the structure, so construction goes through
//! [`GraphBuilder`] and the finished graph is immutable.

use std::collections::BTreeSet;
use std::fmt;

/// Index of a vertex in a [`Graph`]. Vertices are `0..n`.
pub type NodeId = usize;

/// An immutable, undirected simple graph in CSR form.
///
/// Self-loops and parallel edges are rejected at build time. Edges are
/// stored once in [`Graph::edges`] (with `u < v`) and twice in the
/// adjacency arrays.
///
/// # Example
///
/// ```
/// use decomp_graph::{Graph, GraphBuilder};
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// let g: Graph = b.build();
/// assert_eq!(g.n(), 3);
/// assert_eq!(g.m(), 2);
/// assert_eq!(g.degree(1), 2);
/// assert!(g.has_edge(0, 1));
/// assert!(!g.has_edge(0, 2));
/// ```
// serde derives dropped: the build environment has no crates registry, so
// serialization is hand-rolled where needed (see decomp-bench's table module).
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `neighbors` for vertex `v`.
    offsets: Vec<usize>,
    /// Concatenated sorted adjacency lists.
    neighbors: Vec<NodeId>,
    /// Unique edges as `(u, v)` with `u < v`, sorted lexicographically.
    edges: Vec<(NodeId, NodeId)>,
}

impl Graph {
    /// Builds a graph with `n` vertices and no edges.
    pub fn empty(n: usize) -> Self {
        GraphBuilder::new(n).build()
    }

    /// Builds a graph directly from an edge list.
    ///
    /// Duplicate edges and self-loops are silently dropped, making this
    /// convenient for randomized generators.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (NodeId, NodeId)>) -> Self {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.try_add_edge(u, v);
        }
        b.build()
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Degree of vertex `v`.
    ///
    /// # Panics
    /// Panics if `v >= self.n()`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Sorted neighbors of `v`.
    ///
    /// # Panics
    /// Panics if `v >= self.n()`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// All vertices, `0..n`.
    #[inline]
    pub fn vertices(&self) -> std::ops::Range<NodeId> {
        0..self.n()
    }

    /// Unique edges `(u, v)` with `u < v`, lexicographically sorted.
    #[inline]
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Whether the edge `{u, v}` exists. `O(log deg)`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u >= self.n() || v >= self.n() || u == v {
            return false;
        }
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Index of edge `{u,v}` in [`Graph::edges`], if present. `O(log m)`.
    pub fn edge_index(&self, u: NodeId, v: NodeId) -> Option<usize> {
        let key = (u.min(v), u.max(v));
        self.edges.binary_search(&key).ok()
    }

    /// Minimum degree over all vertices; `None` for the empty graph.
    pub fn min_degree(&self) -> Option<usize> {
        (0..self.n()).map(|v| self.degree(v)).min()
    }

    /// Maximum degree over all vertices; `None` for the empty graph.
    pub fn max_degree(&self) -> Option<usize> {
        (0..self.n()).map(|v| self.degree(v)).max()
    }

    /// The subgraph induced by `keep`, together with the mapping from new
    /// vertex ids to original ids.
    ///
    /// Vertices are renumbered `0..keep.len()` in ascending original order.
    pub fn induced_subgraph(&self, keep: &[NodeId]) -> (Graph, Vec<NodeId>) {
        let set: BTreeSet<NodeId> = keep.iter().copied().collect();
        let order: Vec<NodeId> = set.iter().copied().collect();
        let mut back = vec![usize::MAX; self.n()];
        for (new, &old) in order.iter().enumerate() {
            back[old] = new;
        }
        let mut b = GraphBuilder::new(order.len());
        for &(u, v) in &self.edges {
            if back[u] != usize::MAX && back[v] != usize::MAX {
                b.add_edge(back[u], back[v]);
            }
        }
        (b.build(), order)
    }

    /// The spanning subgraph containing exactly the edges for which
    /// `pred(u, v)` holds (same vertex set).
    pub fn edge_subgraph(&self, mut pred: impl FnMut(NodeId, NodeId) -> bool) -> Graph {
        Graph::from_edges(
            self.n(),
            self.edges.iter().copied().filter(|&(u, v)| pred(u, v)),
        )
    }

    /// A DOT rendering of the graph, for the figure-reproduction examples.
    pub fn to_dot(&self, name: &str) -> String {
        let mut s = format!("graph {name} {{\n");
        for v in self.vertices() {
            s.push_str(&format!("  {v};\n"));
        }
        for &(u, v) in &self.edges {
            s.push_str(&format!("  {u} -- {v};\n"));
        }
        s.push_str("}\n");
        s
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("n", &self.n())
            .field("m", &self.m())
            .finish()
    }
}

/// Incremental builder for [`Graph`].
///
/// # Example
///
/// ```
/// use decomp_graph::GraphBuilder;
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(0, 1);
/// assert!(!b.try_add_edge(0, 1)); // duplicate rejected
/// assert!(!b.try_add_edge(2, 2)); // self-loop rejected
/// let g = b.build();
/// assert_eq!(g.m(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: BTreeSet<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// A builder for a graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: BTreeSet::new(),
        }
    }

    /// Number of vertices the built graph will have.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of distinct edges added so far.
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Panics
    /// Panics on self-loops, duplicate edges, or out-of-range endpoints.
    /// Use [`GraphBuilder::try_add_edge`] for a non-panicking variant.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) {
        assert!(u < self.n && v < self.n, "edge endpoint out of range");
        assert_ne!(u, v, "self-loops are not allowed");
        let inserted = self.edges.insert((u.min(v), u.max(v)));
        assert!(inserted, "duplicate edge {{{u}, {v}}}");
    }

    /// Adds `{u, v}` if it is a valid new edge; returns whether it was added.
    pub fn try_add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        if u >= self.n || v >= self.n || u == v {
            return false;
        }
        self.edges.insert((u.min(v), u.max(v)))
    }

    /// Whether `{u, v}` has already been added.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edges.contains(&(u.min(v), u.max(v)))
    }

    /// Finalizes the CSR representation.
    pub fn build(self) -> Graph {
        let mut deg = vec![0usize; self.n];
        for &(u, v) in &self.edges {
            deg[u] += 1;
            deg[v] += 1;
        }
        let mut offsets = Vec::with_capacity(self.n + 1);
        offsets.push(0);
        for v in 0..self.n {
            offsets.push(offsets[v] + deg[v]);
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0; offsets[self.n]];
        for &(u, v) in &self.edges {
            neighbors[cursor[u]] = v;
            cursor[u] += 1;
            neighbors[cursor[v]] = u;
            cursor[v] += 1;
        }
        // BTreeSet iteration gives (u,v) sorted by u then v, so each list
        // receives its smaller-endpoint entries in order; entries coming from
        // the larger endpoint side still need a sort.
        for v in 0..self.n {
            neighbors[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        Graph {
            offsets,
            neighbors,
            edges: self.edges.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 0);
        assert_eq!(g.min_degree(), Some(0));
    }

    #[test]
    fn zero_vertex_graph() {
        let g = Graph::empty(0);
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert_eq!(g.min_degree(), None);
        assert_eq!(g.max_degree(), None);
    }

    #[test]
    fn triangle() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)]);
        assert_eq!(g.m(), 3);
        for v in 0..3 {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.has_edge(2, 0));
        assert!(g.has_edge(0, 2));
        assert_eq!(g.edges(), &[(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn from_edges_dedups_and_drops_loops() {
        let g = Graph::from_edges(3, [(0, 1), (1, 0), (2, 2), (1, 2)]);
        assert_eq!(g.m(), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn builder_panics_on_duplicate() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn builder_panics_on_loop() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn builder_panics_on_range() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 3);
    }

    #[test]
    fn neighbors_sorted() {
        let g = Graph::from_edges(5, [(3, 1), (3, 0), (3, 4), (3, 2)]);
        assert_eq!(g.neighbors(3), &[0, 1, 2, 4]);
        assert_eq!(g.degree(3), 4);
    }

    #[test]
    fn edge_index_lookup() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        assert_eq!(g.edge_index(2, 1), Some(1));
        assert_eq!(g.edge_index(0, 3), None);
    }

    #[test]
    fn induced_subgraph_renumbers() {
        let g = Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (1, 3)]);
        let (h, map) = g.induced_subgraph(&[1, 3, 4]);
        assert_eq!(h.n(), 3);
        assert_eq!(map, vec![1, 3, 4]);
        // edges among {1,3,4}: (1,3) and (3,4) -> (0,1) and (1,2)
        assert_eq!(h.edges(), &[(0, 1), (1, 2)]);
    }

    #[test]
    fn edge_subgraph_filters() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let h = g.edge_subgraph(|u, v| u + v >= 3);
        assert_eq!(h.n(), 4);
        assert_eq!(h.edges(), &[(1, 2), (2, 3)]);
    }

    #[test]
    fn dot_output_contains_edges() {
        let g = Graph::from_edges(2, [(0, 1)]);
        let dot = g.to_dot("g");
        assert!(dot.contains("0 -- 1"));
    }
}
