//! Exact edge and vertex connectivity, and Menger disjoint-path extraction.
//!
//! These provide the ground truth (`λ`, `k`) against which the paper's
//! decomposition sizes and the approximation ratios of Corollary 1.7 are
//! measured.

use crate::flow::{unit_digraph, vertex_split_digraph, FlowNetwork};
use crate::graph::{Graph, NodeId};
use crate::traversal::is_connected;

/// Exact edge connectivity `λ(G)`.
///
/// Uses the classical reduction: fix `s = 0`; `λ = min over t != s` of
/// maxflow(s, t) in the unit-capacity digraph (every global min cut
/// separates `s` from some `t`). Returns 0 for disconnected or trivial
/// (`n <= 1`) graphs.
pub fn edge_connectivity(g: &Graph) -> usize {
    if g.n() <= 1 || !is_connected(g) {
        return 0;
    }
    // λ ≤ min degree, so the min degree is a safe flow bound.
    let mut best = g.min_degree().unwrap_or(0);
    for t in 1..g.n() {
        if best == 0 {
            break;
        }
        let (mut net, _) = unit_digraph(g);
        let f = net.max_flow_bounded(0, t, best as i64);
        best = best.min(f as usize);
        if best == 0 {
            break;
        }
    }
    best
}

/// Maximum number of edge-disjoint `s`–`t` paths (local edge connectivity).
pub fn local_edge_connectivity(g: &Graph, s: NodeId, t: NodeId) -> usize {
    assert_ne!(s, t, "terminals must differ");
    let (mut net, _) = unit_digraph(g);
    net.max_flow(s, t) as usize
}

/// Maximum number of internally vertex-disjoint `s`–`t` paths for
/// non-adjacent `s`, `t` (local vertex connectivity).
///
/// # Panics
/// Panics if `s == t`.
pub fn local_vertex_connectivity(g: &Graph, s: NodeId, t: NodeId) -> usize {
    assert_ne!(s, t, "terminals must differ");
    assert!(
        !g.has_edge(s, t),
        "local vertex connectivity is undefined for adjacent terminals"
    );
    let mut net = vertex_split_digraph(g, s, t);
    net.max_flow(2 * s + 1, 2 * t) as usize
}

/// Exact vertex connectivity `k(G)`.
///
/// Even's algorithm: `k = min( min_{t not adjacent to s_i} κ(s_i, t) )`
/// where `s_0, ..., s_k` are `k+1` fixed vertices — since a minimum vertex
/// cut has size `k`, at least one `s_i` avoids it. We iterate: maintain an
/// upper bound `ub` (initially `min degree`), take the first `ub + 1`
/// vertices as sources, and for each compute local connectivity to every
/// non-neighbor; additionally pair each source's neighbors (standard
/// Even–Tarjan refinement is unnecessary at our scales — covering `ub+1`
/// sources suffices for correctness).
///
/// For complete graphs returns `n - 1` by convention.
pub fn vertex_connectivity(g: &Graph) -> usize {
    let n = g.n();
    if n <= 1 {
        return 0;
    }
    if !is_connected(g) {
        return 0;
    }
    let mindeg = g.min_degree().unwrap_or(0);
    // Complete graph: no non-adjacent pair exists.
    if g.m() == n * (n - 1) / 2 {
        return n - 1;
    }
    let mut ub = mindeg;
    // We need ub+1 sources; recompute lazily since ub only decreases.
    let mut s_idx = 0;
    while s_idx <= ub && s_idx < n {
        let s = s_idx;
        for t in g.vertices() {
            if t == s || g.has_edge(s, t) {
                continue;
            }
            let mut net = vertex_split_digraph(g, s, t);
            let f = net.max_flow_bounded(2 * s + 1, 2 * t, ub as i64 + 1) as usize;
            ub = ub.min(f);
        }
        s_idx += 1;
    }
    ub
}

/// Returns a minimum vertex cut of `g` — a set of `k(G)` vertices whose
/// removal disconnects the graph — or `None` when no vertex cut exists
/// (complete graphs and graphs with `n <= 1`), or `Some(vec![])` when the
/// graph is already disconnected.
pub fn minimum_vertex_cut(g: &Graph) -> Option<Vec<NodeId>> {
    let n = g.n();
    if n <= 1 || g.m() == n * (n - 1) / 2 {
        return None;
    }
    if !is_connected(g) {
        return Some(Vec::new());
    }
    let k = vertex_connectivity(g);
    // Find a witnessing non-adjacent pair and extract the cut from the
    // residual reachability of the saturated split network.
    let sources = (k + 1).min(n);
    for s in 0..sources {
        for t in g.vertices() {
            if t == s || g.has_edge(s, t) {
                continue;
            }
            let mut net = vertex_split_digraph(g, s, t);
            let f = net.max_flow(2 * s + 1, 2 * t) as usize;
            if f != k {
                continue;
            }
            let side = net.min_cut_side(2 * s + 1);
            let cut: Vec<NodeId> = g
                .vertices()
                .filter(|&v| side[2 * v] && !side[2 * v + 1])
                .collect();
            debug_assert_eq!(cut.len(), k, "cut size must equal connectivity");
            return Some(cut);
        }
    }
    unreachable!("some witnessing pair must achieve the connectivity");
}

/// Returns a minimum edge cut of `g` as edge indices into
/// [`Graph::edges`]; empty for disconnected graphs, `None` for `n <= 1`.
pub fn minimum_edge_cut(g: &Graph) -> Option<Vec<usize>> {
    let n = g.n();
    if n <= 1 {
        return None;
    }
    if !is_connected(g) {
        return Some(Vec::new());
    }
    let lambda = edge_connectivity(g);
    for t in 1..n {
        let (mut net, _) = unit_digraph(g);
        let f = net.max_flow(0, t) as usize;
        if f != lambda {
            continue;
        }
        let side = net.min_cut_side(0);
        let cut: Vec<usize> = g
            .edges()
            .iter()
            .enumerate()
            .filter(|(_, &(u, v))| side[u] != side[v])
            .map(|(e, _)| e)
            .collect();
        debug_assert_eq!(cut.len(), lambda, "cut size must equal connectivity");
        return Some(cut);
    }
    unreachable!("some sink must achieve the edge connectivity");
}

/// Extracts `f` edge-disjoint `s`–`t` paths from a saturated unit-capacity
/// flow, where `f` is the flow value. Each path is a vertex sequence
/// starting at `s` and ending at `t`.
pub fn edge_disjoint_paths(g: &Graph, s: NodeId, t: NodeId) -> Vec<Vec<NodeId>> {
    assert_ne!(s, t, "terminals must differ");
    let (mut net, arc_of_edge) = unit_digraph(g);
    let f = net.max_flow(s, t);
    decompose_unit_paths(g, &net, &arc_of_edge, s, t, f as usize)
}

fn decompose_unit_paths(
    g: &Graph,
    net: &FlowNetwork,
    arc_of_edge: &[(usize, usize)],
    s: NodeId,
    t: NodeId,
    f: usize,
) -> Vec<Vec<NodeId>> {
    // Net flow per undirected edge: +1 means u->v carries flow (u<v), -1
    // the reverse, 0 none (includes cancelling 2-cycles).
    let mut out_arcs: Vec<Vec<(NodeId, usize)>> = vec![Vec::new(); g.n()];
    for (idx, &(u, v)) in g.edges().iter().enumerate() {
        let (a_uv, a_vu) = arc_of_edge[idx];
        let net_flow = net.flow_on(a_uv) - net.flow_on(a_vu);
        match net_flow.signum() {
            1 => out_arcs[u].push((v, idx)),
            -1 => out_arcs[v].push((u, idx)),
            _ => {}
        }
    }
    let mut paths = Vec::with_capacity(f);
    for _ in 0..f {
        let mut path = vec![s];
        let mut cur = s;
        while cur != t {
            let (next, _idx) = out_arcs[cur].pop().expect("flow conservation violated");
            path.push(next);
            cur = next;
        }
        paths.push(path);
    }
    paths
}

/// Extracts the maximum set of internally vertex-disjoint `s`–`t` paths.
pub fn vertex_disjoint_paths(g: &Graph, s: NodeId, t: NodeId) -> Vec<Vec<NodeId>> {
    assert_ne!(s, t, "terminals must differ");
    assert!(
        !g.has_edge(s, t),
        "vertex-disjoint path extraction requires non-adjacent terminals"
    );
    let mut net = vertex_split_digraph(g, s, t);
    let f = net.max_flow(2 * s + 1, 2 * t) as usize;
    // Reconstruct by walking positive-flow arcs in the split digraph.
    // Arc layout: first n arcs are the split arcs (id 2v for vertex v),
    // then per edge two arcs. We rebuild an out-adjacency of flow.
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); 2 * g.n()];
    // split arcs: arc ids 0..2n step 2 (v_in -> v_out)
    for v in g.vertices() {
        let id = 2 * v; // v-th add_arc call produced arc ids 2v (fwd), 2v+1 (rev)
        let flow = net.flow_on(id);
        for _ in 0..flow.min(g.n() as i64) {
            out[2 * v].push(2 * v + 1);
        }
    }
    // edge arcs follow: for edge index e, arcs 2n + 4e (u_out->v_in fwd) and
    // 2n + 4e + 2 (v_out->u_in fwd).
    let base = 2 * g.n();
    for (e, &(u, v)) in g.edges().iter().enumerate() {
        let a = base + 4 * e;
        let b = base + 4 * e + 2;
        let fa = net.flow_on(a);
        let fb = net.flow_on(b);
        // Cancel opposite flows on the same undirected edge.
        let net_uv = fa - fb;
        if net_uv > 0 {
            for _ in 0..net_uv {
                out[2 * u + 1].push(2 * v);
            }
        } else {
            for _ in 0..-net_uv {
                out[2 * v + 1].push(2 * u);
            }
        }
    }
    let mut paths = Vec::with_capacity(f);
    for _ in 0..f {
        let mut path = vec![s];
        let mut cur = 2 * s + 1; // s_out
        loop {
            let next = out[cur].pop().expect("flow conservation violated");
            if next.is_multiple_of(2) {
                let v = next / 2;
                if v == t {
                    path.push(t);
                    break;
                }
                path.push(v);
            }
            // advance: from v_in go through split arc to v_out
            cur = if next.is_multiple_of(2) {
                out[next].pop().expect("split arc missing")
            } else {
                next
            };
        }
        paths.push(path);
    }
    paths
}

/// Verifies that `paths` are pairwise internally vertex-disjoint `s`–`t`
/// paths in `g`. Returns `Err` with a description on the first violation.
pub fn check_vertex_disjoint_paths(
    g: &Graph,
    s: NodeId,
    t: NodeId,
    paths: &[Vec<NodeId>],
) -> Result<(), String> {
    let mut used = vec![false; g.n()];
    for (i, p) in paths.iter().enumerate() {
        if p.first() != Some(&s) || p.last() != Some(&t) {
            return Err(format!("path {i} does not run s->t"));
        }
        for w in p.windows(2) {
            if !g.has_edge(w[0], w[1]) {
                return Err(format!("path {i} uses non-edge ({}, {})", w[0], w[1]));
            }
        }
        for &v in &p[1..p.len() - 1] {
            if v == s || v == t {
                return Err(format!("path {i} revisits a terminal"));
            }
            if used[v] {
                return Err(format!("internal vertex {v} reused (path {i})"));
            }
            used[v] = true;
        }
    }
    Ok(())
}

/// Verifies that `paths` are pairwise edge-disjoint `s`–`t` paths in `g`.
pub fn check_edge_disjoint_paths(
    g: &Graph,
    s: NodeId,
    t: NodeId,
    paths: &[Vec<NodeId>],
) -> Result<(), String> {
    let mut used = vec![false; g.m()];
    for (i, p) in paths.iter().enumerate() {
        if p.first() != Some(&s) || p.last() != Some(&t) {
            return Err(format!("path {i} does not run s->t"));
        }
        for w in p.windows(2) {
            match g.edge_index(w[0], w[1]) {
                None => return Err(format!("path {i} uses non-edge ({}, {})", w[0], w[1])),
                Some(e) => {
                    if used[e] {
                        return Err(format!("edge ({}, {}) reused (path {i})", w[0], w[1]));
                    }
                    used[e] = true;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use proptest::prelude::*;

    #[test]
    fn connectivity_of_path() {
        let g = generators::path(6);
        assert_eq!(edge_connectivity(&g), 1);
        assert_eq!(vertex_connectivity(&g), 1);
    }

    #[test]
    fn connectivity_of_cycle() {
        let g = generators::cycle(7);
        assert_eq!(edge_connectivity(&g), 2);
        assert_eq!(vertex_connectivity(&g), 2);
    }

    #[test]
    fn connectivity_of_complete() {
        let g = generators::complete(6);
        assert_eq!(edge_connectivity(&g), 5);
        assert_eq!(vertex_connectivity(&g), 5);
    }

    #[test]
    fn connectivity_of_hypercube() {
        for d in 2..=4 {
            let g = generators::hypercube(d);
            assert_eq!(edge_connectivity(&g), d as usize);
            assert_eq!(vertex_connectivity(&g), d as usize);
        }
    }

    #[test]
    fn connectivity_of_harary() {
        for k in 2..=5 {
            for n in [k + 2, 2 * k + 1, 13] {
                let g = generators::harary(k, n);
                assert_eq!(vertex_connectivity(&g), k, "H_{{{k},{n}}} vertex");
                assert_eq!(edge_connectivity(&g), k, "H_{{{k},{n}}} edge");
            }
        }
    }

    #[test]
    fn connectivity_of_bipartite() {
        let g = generators::complete_bipartite(3, 5);
        assert_eq!(vertex_connectivity(&g), 3);
        assert_eq!(edge_connectivity(&g), 3);
    }

    #[test]
    fn disconnected_is_zero() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        assert_eq!(edge_connectivity(&g), 0);
        assert_eq!(vertex_connectivity(&g), 0);
    }

    #[test]
    fn barbell_is_one_connected() {
        let g = generators::barbell(5, 3);
        assert_eq!(vertex_connectivity(&g), 1);
        assert_eq!(edge_connectivity(&g), 1);
    }

    #[test]
    fn clique_plus_triples_is_three_connected() {
        let g = generators::clique_plus_triples(5);
        assert_eq!(vertex_connectivity(&g), 3);
    }

    #[test]
    fn thick_path_connectivity() {
        let g = generators::thick_path(3, 4);
        // Removing one interior block (3 vertices) disconnects the path of
        // cliques, so k = 3; the cheapest edge cut isolates an end-block
        // vertex of degree 2 + 3 = 5.
        assert_eq!(vertex_connectivity(&g), 3);
        assert_eq!(edge_connectivity(&g), 5);
    }

    #[test]
    fn star_vertex_connectivity() {
        let g = generators::star(6);
        assert_eq!(vertex_connectivity(&g), 1);
    }

    #[test]
    fn edge_disjoint_paths_valid() {
        let g = generators::harary(4, 10);
        let paths = edge_disjoint_paths(&g, 0, 5);
        assert_eq!(paths.len(), 4);
        check_edge_disjoint_paths(&g, 0, 5, &paths).unwrap();
    }

    #[test]
    fn vertex_disjoint_paths_valid() {
        let g = generators::harary(4, 12);
        // pick non-adjacent pair: 0 and 6
        assert!(!g.has_edge(0, 6));
        let paths = vertex_disjoint_paths(&g, 0, 6);
        assert_eq!(paths.len(), 4);
        check_vertex_disjoint_paths(&g, 0, 6, &paths).unwrap();
    }

    #[test]
    fn local_connectivity_matches_menger() {
        let g = generators::hypercube(3);
        // antipodal vertices of Q3
        assert_eq!(local_vertex_connectivity(&g, 0, 7), 3);
        assert_eq!(local_edge_connectivity(&g, 0, 7), 3);
    }

    #[test]
    fn minimum_vertex_cut_disconnects() {
        for (g, expect_k) in [
            (generators::harary(4, 14), 4usize),
            (generators::barbell(5, 2), 1),
            (generators::hypercube(3), 3),
            (generators::clique_plus_triples(5), 3),
        ] {
            let cut = minimum_vertex_cut(&g).expect("non-complete graph");
            assert_eq!(cut.len(), expect_k);
            let keep: Vec<usize> = g.vertices().filter(|v| !cut.contains(v)).collect();
            let (sub, _) = g.induced_subgraph(&keep);
            assert!(
                !crate::traversal::is_connected(&sub),
                "removing the cut must disconnect"
            );
        }
    }

    #[test]
    fn minimum_vertex_cut_none_for_complete() {
        assert_eq!(minimum_vertex_cut(&generators::complete(5)), None);
        assert_eq!(minimum_vertex_cut(&Graph::empty(1)), None);
    }

    #[test]
    fn minimum_edge_cut_disconnects() {
        for (g, expect) in [
            (generators::cycle(8), 2usize),
            (generators::barbell(4, 1), 1),
            (generators::harary(4, 12), 4),
        ] {
            let cut = minimum_edge_cut(&g).expect("n > 1");
            assert_eq!(cut.len(), expect);
            let cut_set: std::collections::HashSet<usize> = cut.into_iter().collect();
            let h = g.edge_subgraph(|u, v| !cut_set.contains(&g.edge_index(u, v).unwrap()));
            assert!(!crate::traversal::is_connected(&h));
        }
    }

    #[test]
    fn minimum_cuts_on_disconnected_graphs_are_empty() {
        let g = Graph::from_edges(4, [(0, 1), (2, 3)]);
        assert_eq!(minimum_vertex_cut(&g), Some(vec![]));
        assert_eq!(minimum_edge_cut(&g), Some(vec![]));
    }

    #[test]
    fn check_rejects_bad_paths() {
        let g = generators::path(4);
        let bogus = vec![vec![0, 2, 3]];
        assert!(check_edge_disjoint_paths(&g, 0, 3, &bogus).is_err());
        let reused = vec![vec![0, 1, 2, 3], vec![0, 1, 2, 3]];
        assert!(check_edge_disjoint_paths(&g, 0, 3, &reused).is_err());
        assert!(check_vertex_disjoint_paths(&g, 0, 3, &reused).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Menger: the number of extracted disjoint paths equals local
        /// connectivity, and the certificates verify.
        #[test]
        fn menger_paths_verify(seed in 0u64..1000) {
            let g = generators::gnp(14, 0.35, seed);
            let s = 0;
            let t = 13;
            let le = local_edge_connectivity(&g, s, t);
            let ep = edge_disjoint_paths(&g, s, t);
            prop_assert_eq!(ep.len(), le);
            prop_assert!(check_edge_disjoint_paths(&g, s, t, &ep).is_ok());
            if !g.has_edge(s, t) {
                let lv = local_vertex_connectivity(&g, s, t);
                let vp = vertex_disjoint_paths(&g, s, t);
                prop_assert_eq!(vp.len(), lv);
                prop_assert!(check_vertex_disjoint_paths(&g, s, t, &vp).is_ok());
            }
        }

        /// k <= λ <= min degree (Whitney's inequalities).
        #[test]
        fn whitney_inequalities(seed in 0u64..500) {
            let g = generators::gnp(12, 0.4, seed);
            let k = vertex_connectivity(&g);
            let lambda = edge_connectivity(&g);
            let mindeg = g.min_degree().unwrap_or(0);
            prop_assert!(k <= lambda, "k={} lambda={}", k, lambda);
            prop_assert!(lambda <= mindeg, "lambda={} mindeg={}", lambda, mindeg);
        }

        /// Vertex connectivity is invariant under relabeling-free edge
        /// addition monotonicity: adding an edge never decreases k.
        #[test]
        fn monotone_under_edge_addition(seed in 0u64..200) {
            let g = generators::gnp(10, 0.3, seed);
            let k0 = vertex_connectivity(&g);
            // add first missing edge
            let mut added = None;
            'outer: for u in 0..g.n() {
                for v in (u+1)..g.n() {
                    if !g.has_edge(u, v) { added = Some((u, v)); break 'outer; }
                }
            }
            if let Some((u, v)) = added {
                let mut edges: Vec<_> = g.edges().to_vec();
                edges.push((u, v));
                let h = Graph::from_edges(g.n(), edges);
                prop_assert!(vertex_connectivity(&h) >= k0);
            }
        }
    }
}
