//! Dominating sets, connected dominating sets (CDS), and tree checks.
//!
//! Section 2 of the paper defines the objects packed by the decomposition:
//! a *CDS* is a set `S` with `G[S]` connected and every vertex outside `S`
//! adjacent to `S`; a *dominating tree* is a tree subgraph whose vertex set
//! dominates `G`. These checkers are the acceptance tests used throughout
//! the test suite and by the packing verifier (Appendix E's centralized
//! reference behaviour).

use crate::graph::{Graph, NodeId};
use crate::traversal::connected_components;

/// Whether `set` (given as a membership mask) dominates `g`: every vertex
/// is in the set or adjacent to a member.
pub fn is_dominating_set(g: &Graph, member: &[bool]) -> bool {
    assert_eq!(member.len(), g.n(), "mask length mismatch");
    g.vertices()
        .all(|v| member[v] || g.neighbors(v).iter().any(|&u| member[u]))
}

/// Whether `member` induces a connected subgraph of `g` (vacuously false
/// for the empty set, true for singletons).
pub fn is_connected_subset(g: &Graph, member: &[bool]) -> bool {
    assert_eq!(member.len(), g.n(), "mask length mismatch");
    let verts: Vec<NodeId> = g.vertices().filter(|&v| member[v]).collect();
    if verts.is_empty() {
        return false;
    }
    let (sub, _) = g.induced_subgraph(&verts);
    connected_components(&sub).1 == 1
}

/// Whether `member` is a connected dominating set of `g`.
pub fn is_cds(g: &Graph, member: &[bool]) -> bool {
    is_dominating_set(g, member) && is_connected_subset(g, member)
}

/// Whether the edge set `tree_edges` forms a *dominating tree* of `g`:
/// a tree (acyclic + connected on its vertices), all edges present in `g`,
/// and its vertex set dominating.
///
/// A single vertex `v` (empty edge set plus `singleton = Some(v)`) counts
/// as a dominating tree iff `{v}` dominates.
pub fn is_dominating_tree(
    g: &Graph,
    tree_edges: &[(NodeId, NodeId)],
    singleton: Option<NodeId>,
) -> bool {
    if tree_edges.is_empty() {
        return match singleton {
            Some(v) => {
                let mut mask = vec![false; g.n()];
                mask[v] = true;
                is_dominating_set(g, &mask)
            }
            None => false,
        };
    }
    for &(u, v) in tree_edges {
        if !g.has_edge(u, v) {
            return false;
        }
    }
    let mut member = vec![false; g.n()];
    for &(u, v) in tree_edges {
        member[u] = true;
        member[v] = true;
    }
    let count = member.iter().filter(|&&b| b).count();
    if tree_edges.len() + 1 != count {
        return false; // cycle or forest
    }
    // connectivity of the edge set
    let mut uf = crate::unionfind::UnionFind::new(g.n());
    for &(u, v) in tree_edges {
        uf.union(u, v);
    }
    let roots: std::collections::HashSet<usize> = (0..g.n())
        .filter(|&v| member[v])
        .map(|v| uf.find(v))
        .collect();
    if roots.len() != 1 {
        return false;
    }
    is_dominating_set(g, &member)
}

/// Whether `tree_edges` forms a *spanning tree* of `g`.
pub fn is_spanning_tree(g: &Graph, tree_edges: &[(NodeId, NodeId)]) -> bool {
    if g.n() == 0 {
        return false;
    }
    if tree_edges.len() + 1 != g.n() {
        return false;
    }
    for &(u, v) in tree_edges {
        if !g.has_edge(u, v) {
            return false;
        }
    }
    let mut uf = crate::unionfind::UnionFind::new(g.n());
    for &(u, v) in tree_edges {
        if !uf.union(u, v) {
            return false; // cycle
        }
    }
    uf.num_sets() == 1
}

/// Greedy CDS construction (for baselines): BFS tree from vertex 0, then
/// keep all internal (non-leaf) vertices. The internal vertices of any
/// spanning tree form a CDS.
pub fn greedy_cds(g: &Graph) -> Vec<bool> {
    assert!(
        crate::traversal::is_connected(g) && g.n() > 0,
        "greedy_cds requires a connected non-empty graph"
    );
    if g.n() == 1 {
        return vec![true];
    }
    let t = crate::traversal::bfs(g, 0);
    let mut internal = vec![false; g.n()];
    for v in g.vertices() {
        if v != 0 && t.reached(v) {
            internal[t.parent[v]] = true;
        }
    }
    // Roots with children are internal; ensure at least something is kept.
    if !internal.iter().any(|&b| b) {
        internal[0] = true;
    }
    internal
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use proptest::prelude::*;

    #[test]
    fn full_set_is_cds_when_connected() {
        let g = generators::cycle(5);
        assert!(is_cds(&g, &[true; 5]));
    }

    #[test]
    fn empty_set_is_not_cds() {
        let g = generators::cycle(5);
        assert!(!is_cds(&g, &[false; 5]));
    }

    #[test]
    fn star_center_is_cds() {
        let g = generators::star(6);
        let mut mask = vec![false; 6];
        mask[0] = true;
        assert!(is_cds(&g, &mask));
        let mut leaf = vec![false; 6];
        leaf[1] = true;
        assert!(!is_cds(&g, &leaf));
    }

    #[test]
    fn disconnected_subset_rejected() {
        let g = generators::path(5);
        let mask = vec![true, false, false, false, true];
        assert!(!is_connected_subset(&g, &mask));
        assert!(!is_cds(&g, &mask));
    }

    #[test]
    fn path_interior_is_cds() {
        let g = generators::path(5);
        let mask = vec![false, true, true, true, false];
        assert!(is_cds(&g, &mask));
    }

    #[test]
    fn dominating_tree_checks() {
        let g = generators::star(5);
        assert!(is_dominating_tree(&g, &[], Some(0)));
        assert!(!is_dominating_tree(&g, &[], Some(1)));
        assert!(is_dominating_tree(&g, &[(0, 1)], None));
        // cycle rejected
        let c = generators::cycle(4);
        assert!(!is_dominating_tree(
            &c,
            &[(0, 1), (1, 2), (2, 3), (3, 0)],
            None
        ));
        // non-edge rejected
        assert!(!is_dominating_tree(&g, &[(1, 2)], None));
    }

    #[test]
    fn spanning_tree_checks() {
        let g = generators::cycle(4);
        assert!(is_spanning_tree(&g, &[(0, 1), (1, 2), (2, 3)]));
        assert!(!is_spanning_tree(&g, &[(0, 1), (1, 2)]));
        assert!(!is_spanning_tree(&g, &[(0, 1), (1, 2), (0, 2)]));
    }

    #[test]
    fn greedy_cds_is_cds() {
        for seed in 0..10 {
            let g = generators::random_connected(25, 15, seed);
            let cds = greedy_cds(&g);
            assert!(is_cds(&g, &cds), "seed {seed}");
        }
    }

    #[test]
    fn greedy_cds_singleton_graph() {
        let g = Graph::empty(1);
        assert_eq!(greedy_cds(&g), vec![true]);
    }

    #[test]
    fn greedy_cds_two_vertices() {
        let g = Graph::from_edges(2, [(0, 1)]);
        let cds = greedy_cds(&g);
        assert!(is_cds(&g, &cds));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// greedy_cds always yields a valid CDS on connected graphs.
        #[test]
        fn greedy_cds_valid(seed in 0u64..500, n in 2usize..40) {
            let g = generators::random_connected(n, n / 2, seed);
            let cds = greedy_cds(&g);
            prop_assert!(is_cds(&g, &cds));
        }

        /// A BFS spanning tree passes is_spanning_tree.
        #[test]
        fn bfs_tree_spans(seed in 0u64..200, n in 2usize..30) {
            let g = generators::random_connected(n, n, seed);
            let t = crate::traversal::bfs(&g, 0);
            let edges: Vec<_> = t.tree_edges();
            prop_assert!(is_spanning_tree(&g, &edges));
        }
    }
}
