//! Disjoint-set forest (union-find) with path halving and union by rank.
//!
//! Appendix C of the paper tracks the connected components of each class's
//! virtual subgraph with exactly this structure; it is also the engine of
//! Kruskal's MST and of Karger-sample connectivity checks.

/// Disjoint-set forest over elements `0..n`.
///
/// # Example
///
/// ```
/// use decomp_graph::unionfind::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// assert!(uf.union(0, 1));
/// assert!(uf.union(2, 3));
/// assert!(!uf.union(1, 0)); // already joined
/// assert!(uf.same(0, 1));
/// assert!(!uf.same(0, 2));
/// assert_eq!(uf.num_sets(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    num_sets: usize,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            num_sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set (with path halving).
    ///
    /// # Panics
    /// Panics if `x` is out of range.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Representative of `x`'s set **without** path compression — the
    /// same root [`find`](Self::find) would return, reachable through a
    /// shared reference. Lets concurrent readers (the parallel CDS layer
    /// loop farms per-class component queries onto worker threads) share
    /// one forest; compression only shortens paths, never changes roots,
    /// so skipping it cannot change any answer.
    ///
    /// # Panics
    /// Panics if `x` is out of range.
    pub fn find_root(&self, mut x: usize) -> usize {
        while self.parent[x] != x {
            x = self.parent[x];
        }
        x
    }

    /// Merges the sets of `x` and `y`; returns `true` if they were distinct.
    pub fn union(&mut self, x: usize, y: usize) -> bool {
        let (mut rx, mut ry) = (self.find(x), self.find(y));
        if rx == ry {
            return false;
        }
        if self.rank[rx] < self.rank[ry] {
            std::mem::swap(&mut rx, &mut ry);
        }
        self.parent[ry] = rx;
        if self.rank[rx] == self.rank[ry] {
            self.rank[rx] += 1;
        }
        self.num_sets -= 1;
        true
    }

    /// Whether `x` and `y` are in the same set.
    pub fn same(&mut self, x: usize, y: usize) -> bool {
        self.find(x) == self.find(y)
    }

    /// Current number of disjoint sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Dissolves a *closed* block of elements back into singletons.
    ///
    /// `block` must be duplicate-free and closed under set membership: no
    /// element outside the block may share a set with an element inside it
    /// (unions that only ever touch the block — per-stride rebuilds — keep
    /// a block closed by construction). Afterwards every block element is
    /// its own singleton set and `num_sets` is adjusted accordingly. Union-
    /// find cannot split, so dissolving and re-unioning the affected block
    /// from fresh data is the deletion primitive.
    ///
    /// # Panics
    /// Panics if any element is out of range.
    ///
    /// # Example
    ///
    /// ```
    /// use decomp_graph::unionfind::UnionFind;
    ///
    /// let mut uf = UnionFind::new(4);
    /// uf.union(0, 1);
    /// uf.union(2, 3);
    /// uf.reset_block(&[0, 1]);
    /// assert!(!uf.same(0, 1));
    /// assert!(uf.same(2, 3)); // untouched sets keep their structure
    /// assert_eq!(uf.num_sets(), 3);
    /// ```
    pub fn reset_block(&mut self, block: &[usize]) {
        let mut roots: Vec<usize> = block.iter().map(|&x| self.find(x)).collect();
        roots.sort_unstable();
        roots.dedup();
        self.num_sets += block.len() - roots.len();
        for &x in block {
            self.parent[x] = x;
            self.rank[x] = 0;
        }
    }

    /// Canonical labeling: `labels[x]` is the same value for all `x` in one
    /// set, namely the smallest element of that set.
    pub fn labels(&mut self) -> Vec<usize> {
        let n = self.len();
        let mut min_of_root = vec![usize::MAX; n];
        for x in 0..n {
            let r = self.find(x);
            min_of_root[r] = min_of_root[r].min(x);
        }
        (0..n).map(|x| min_of_root[self.find(x)]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn singletons() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.num_sets(), 3);
        for x in 0..3 {
            assert_eq!(uf.find(x), x);
        }
    }

    #[test]
    fn union_chain() {
        let mut uf = UnionFind::new(5);
        for i in 0..4 {
            assert!(uf.union(i, i + 1));
        }
        assert_eq!(uf.num_sets(), 1);
        assert!(uf.same(0, 4));
    }

    #[test]
    fn labels_are_set_minima() {
        let mut uf = UnionFind::new(6);
        uf.union(5, 3);
        uf.union(3, 1);
        uf.union(0, 2);
        let labels = uf.labels();
        assert_eq!(labels[5], 1);
        assert_eq!(labels[3], 1);
        assert_eq!(labels[1], 1);
        assert_eq!(labels[0], 0);
        assert_eq!(labels[2], 0);
        assert_eq!(labels[4], 4);
    }

    #[test]
    fn empty() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.num_sets(), 0);
    }

    #[test]
    fn reset_block_dissolves_only_the_block() {
        // Elements 0..4 form one closed block, 4..8 another.
        let mut uf = UnionFind::new(8);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(4, 5);
        uf.union(6, 7);
        assert_eq!(uf.num_sets(), 3 + 1); // {0,1,2} {3} {4,5} {6,7}
        uf.reset_block(&[0, 1, 2, 3]);
        assert_eq!(uf.num_sets(), 6); // four singletons + {4,5} + {6,7}
        for x in 0..4 {
            assert_eq!(uf.find(x), x);
        }
        assert!(uf.same(4, 5));
        assert!(uf.same(6, 7));
        assert!(!uf.same(4, 6));
    }

    #[test]
    fn rebuild_after_reset_matches_fresh_structure() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(2, 3);
        uf.union(3, 4);
        // Dissolve everything and re-union a strict subset of the chain.
        uf.reset_block(&[0, 1, 2, 3, 4]);
        uf.union(0, 1);
        uf.union(3, 4);
        let mut fresh = UnionFind::new(5);
        fresh.union(0, 1);
        fresh.union(3, 4);
        assert_eq!(uf.num_sets(), fresh.num_sets());
        assert_eq!(uf.labels(), fresh.labels());
    }

    #[test]
    fn find_root_agrees_with_find() {
        let mut uf = UnionFind::new(10);
        for (a, b) in [(0, 1), (1, 2), (5, 6), (6, 7), (2, 7), (8, 9)] {
            uf.union(a, b);
            for x in 0..10 {
                assert_eq!(uf.find_root(x), uf.find(x), "element {x}");
            }
        }
    }

    proptest! {
        /// Union-find agrees with a naive quadratic connectivity oracle.
        #[test]
        fn matches_naive_oracle(ops in proptest::collection::vec((0usize..20, 0usize..20), 0..60)) {
            let n = 20;
            let mut uf = UnionFind::new(n);
            // naive: component label vector updated by full sweeps
            let mut label: Vec<usize> = (0..n).collect();
            for (x, y) in ops {
                uf.union(x, y);
                let (lx, ly) = (label[x], label[y]);
                if lx != ly {
                    for l in label.iter_mut() {
                        if *l == ly { *l = lx; }
                    }
                }
            }
            let mut distinct = label.clone();
            distinct.sort_unstable();
            distinct.dedup();
            prop_assert_eq!(uf.num_sets(), distinct.len());
            for a in 0..n {
                for b in 0..n {
                    prop_assert_eq!(uf.same(a, b), label[a] == label[b]);
                }
            }
        }
    }
}
