//! Convergecast and broadcast over a BFS tree.
//!
//! Used wherever the paper gathers a global quantity at a leader and
//! propagates a decision back — e.g. the MWU termination test of
//! Section 5.1 ("gathering the total cost of the minimum spanning tree over
//! a breadth first search tree rooted at this leader and then propagating
//! the decision").
//!
//! Messages go up the tree as `(UP, parent_id, value)` and down as
//! `(DOWN, _, value)`; in V-CONGEST a node broadcasts and receivers filter
//! by the addressed parent, which conforms to the model.

use crate::bfs::DistBfsTree;
use crate::message::Message;
use crate::sim::{Inbox, NodeCtx, NodeProgram, SimError, Simulator};

/// Aggregation operator for [`tree_aggregate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AggOp {
    /// Sum of `u64` values (wrapping is a caller bug).
    Sum,
    /// Minimum of `u64` values.
    Min,
    /// Maximum of `u64` values.
    Max,
    /// Sum of `f64` values carried as bit patterns.
    SumF64,
}

impl AggOp {
    fn identity(self) -> u64 {
        match self {
            AggOp::Sum => 0,
            AggOp::Min => u64::MAX,
            AggOp::Max => 0,
            AggOp::SumF64 => 0f64.to_bits(),
        }
    }

    fn combine(self, a: u64, b: u64) -> u64 {
        match self {
            AggOp::Sum => a + b,
            AggOp::Min => a.min(b),
            AggOp::Max => a.max(b),
            AggOp::SumF64 => (f64::from_bits(a) + f64::from_bits(b)).to_bits(),
        }
    }
}

const TAG_UP: u64 = 0;
const TAG_DOWN: u64 = 1;

struct AggregateProgram {
    op: AggOp,
    parent: Option<usize>, // None for the root
    num_children: usize,
    acc: u64,
    received_children: usize,
    sent_up: bool,
    result: Option<u64>,
    announced_down: bool,
}

impl NodeProgram for AggregateProgram {
    fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &Inbox<'_>) {
        for (_, m) in inbox {
            match m.word(0) {
                TAG_UP if m.word(1) == ctx.id() as u64 => {
                    self.acc = self.op.combine(self.acc, m.word(2));
                    self.received_children += 1;
                }
                TAG_DOWN
                    if Some(m.word(1) as usize) == self.parent
                    // Only accept the result from our own tree parent.
                    && self.result.is_none() =>
                {
                    self.result = Some(m.word(2));
                }
                _ => {}
            }
        }
        if self.received_children == self.num_children && !self.sent_up {
            self.sent_up = true;
            match self.parent {
                Some(p) => {
                    ctx.broadcast(Message::from_words([TAG_UP, p as u64, self.acc]));
                    return; // one message per round in V-CONGEST
                }
                None => {
                    // Root: aggregation complete.
                    self.result = Some(self.acc);
                }
            }
        }
        if let (Some(r), false) = (self.result, self.announced_down) {
            if self.num_children > 0 {
                ctx.broadcast(Message::from_words([TAG_DOWN, ctx.id() as u64, r]));
            }
            self.announced_down = true;
        }
    }

    fn is_done(&self) -> bool {
        self.announced_down || (self.sent_up && self.result.is_none())
    }
}

/// Aggregates `values` over `tree` with `op`; every tree node learns the
/// global result, which is returned. Takes `O(depth(tree))` rounds.
///
/// # Errors
/// Propagates simulator round-limit errors.
///
/// # Panics
/// Panics if `values.len() != n` or the tree does not span the graph
/// (unreached nodes would deadlock the convergecast).
pub fn tree_aggregate(
    sim: &mut Simulator<'_>,
    tree: &DistBfsTree,
    op: AggOp,
    values: &[u64],
) -> Result<u64, SimError> {
    let n = sim.graph().n();
    assert_eq!(values.len(), n, "one value per node");
    assert!(
        (0..n).all(|v| tree.reached(v)),
        "aggregation tree must span the graph"
    );
    let children = tree.children();
    let programs = (0..n)
        .map(|v| AggregateProgram {
            op,
            parent: if v == tree.root {
                None
            } else {
                Some(tree.parent[v])
            },
            num_children: children[v].len(),
            acc: op.combine(op.identity(), values[v]),
            received_children: 0,
            sent_up: false,
            result: None,
            announced_down: false,
        })
        .collect();
    let (programs, _) = sim.run_to_quiescence(programs)?;
    let root_result = programs[tree.root].result.expect("root must finish");
    debug_assert!(
        programs.iter().all(|p| p.result == Some(root_result)),
        "all nodes must agree on the aggregate"
    );
    Ok(root_result)
}

/// The paper's `O(D)` preamble: builds a BFS tree from `root`, counts the
/// nodes, and returns `(n, diameter_2approx, tree)`.
pub fn preamble(
    sim: &mut Simulator<'_>,
    root: usize,
) -> Result<(usize, usize, DistBfsTree), SimError> {
    let tree = crate::bfs::distributed_bfs(sim, root)?;
    let count = tree_aggregate(sim, &tree, AggOp::Sum, &vec![1u64; sim.graph().n()])?;
    Ok((count as usize, 2 * tree.depth(), tree))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::distributed_bfs;
    use crate::sim::Model;
    use decomp_graph::generators;

    fn setup(g: &decomp_graph::Graph) -> (Simulator<'_>, DistBfsTree) {
        let mut sim = Simulator::new(g, Model::VCongest);
        let tree = distributed_bfs(&mut sim, 0).unwrap();
        (sim, tree)
    }

    #[test]
    fn sum_counts_nodes() {
        let g = generators::random_connected(20, 10, 3);
        let (mut sim, tree) = setup(&g);
        let total = tree_aggregate(&mut sim, &tree, AggOp::Sum, &[1; 20]).unwrap();
        assert_eq!(total, 20);
    }

    #[test]
    fn min_and_max() {
        let g = generators::path(7);
        let (mut sim, tree) = setup(&g);
        let values: Vec<u64> = vec![5, 3, 8, 1, 9, 2, 7];
        assert_eq!(
            tree_aggregate(&mut sim, &tree, AggOp::Min, &values).unwrap(),
            1
        );
        assert_eq!(
            tree_aggregate(&mut sim, &tree, AggOp::Max, &values).unwrap(),
            9
        );
    }

    #[test]
    fn f64_sum() {
        let g = generators::cycle(5);
        let (mut sim, tree) = setup(&g);
        let values: Vec<u64> = [0.5f64, 1.25, 2.0, 0.25, 1.0]
            .iter()
            .map(|x| x.to_bits())
            .collect();
        let sum = f64::from_bits(tree_aggregate(&mut sim, &tree, AggOp::SumF64, &values).unwrap());
        assert!((sum - 5.0).abs() < 1e-12);
    }

    #[test]
    fn single_node() {
        let g = decomp_graph::Graph::empty(1);
        let (mut sim, tree) = setup(&g);
        assert_eq!(
            tree_aggregate(&mut sim, &tree, AggOp::Sum, &[41]).unwrap(),
            41
        );
    }

    #[test]
    fn preamble_learns_n_and_diameter() {
        let g = generators::grid(3, 6);
        let mut sim = Simulator::new(&g, Model::VCongest);
        let (n, d2, _) = preamble(&mut sim, 0).unwrap();
        assert_eq!(n, 18);
        let true_d = decomp_graph::traversal::diameter(&g).unwrap();
        assert!(d2 >= true_d && d2 <= 2 * true_d, "{d2} vs {true_d}");
    }

    #[test]
    fn rounds_scale_with_depth() {
        let g = generators::path(32);
        let (mut sim, tree) = setup(&g);
        let before = sim.stats().rounds;
        tree_aggregate(&mut sim, &tree, AggOp::Sum, &vec![1; 32]).unwrap();
        let spent = sim.stats().rounds - before;
        assert!(
            spent <= 3 * 32 + 10,
            "aggregate on a path should be O(depth), got {spent}"
        );
    }
}
