//! Bounded-size messages.
//!
//! The CONGEST models allow `O(log n)` bits per message. We count message
//! size in *words*: one word holds one `O(log n)`-bit quantity (a node id,
//! a class number, a component id, a rounded weight — footnote 6 of the
//! paper justifies rounding weights to `O(log n)` bits). A message may
//! carry a small constant number of words; the simulator enforces the
//! per-message word budget ([`crate::sim::Simulator::with_word_budget`]).

/// A message payload: a short sequence of words.
///
/// # Example
///
/// ```
/// use decomp_congest::Message;
///
/// let m = Message::from_words([3, 42]);
/// assert_eq!(m.words(), &[3, 42]);
/// assert_eq!(m.len(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Message(Vec<u64>);

impl Message {
    /// An empty message (still counts as one message on the wire).
    pub fn new() -> Self {
        Message(Vec::new())
    }

    /// A message from an iterator of words.
    pub fn from_words(words: impl IntoIterator<Item = u64>) -> Self {
        Message(words.into_iter().collect())
    }

    /// The payload words.
    pub fn words(&self) -> &[u64] {
        &self.0
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Appends a word (builder style).
    pub fn push(mut self, w: u64) -> Self {
        self.0.push(w);
        self
    }

    /// Word at position `i`, if present.
    pub fn get(&self, i: usize) -> Option<u64> {
        self.0.get(i).copied()
    }

    /// Word at position `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn word(&self, i: usize) -> u64 {
        self.0[i]
    }

    /// Word at position `i` reinterpreted as `f64`
    /// (for MWU cost exchange; see module docs).
    pub fn word_as_f64(&self, i: usize) -> f64 {
        f64::from_bits(self.0[i])
    }

    /// Appends an `f64` as its bit pattern.
    pub fn push_f64(self, x: f64) -> Self {
        self.push(x.to_bits())
    }
}

impl Default for Message {
    fn default() -> Self {
        Message::new()
    }
}

impl From<Vec<u64>> for Message {
    fn from(v: Vec<u64>) -> Self {
        Message(v)
    }
}

/// Encodes an `Option<u64>` where `u64::MAX` means `None` (node ids and
/// component ids never reach `u64::MAX`).
pub const NONE_WORD: u64 = u64::MAX;

/// Helper: encode `Option<u64>` into a word.
pub fn encode_opt(x: Option<u64>) -> u64 {
    x.unwrap_or(NONE_WORD)
}

/// Helper: decode a word into `Option<u64>`.
pub fn decode_opt(w: u64) -> Option<u64> {
    if w == NONE_WORD {
        None
    } else {
        Some(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_words() {
        let m = Message::new().push(7).push(9);
        assert_eq!(m.words(), &[7, 9]);
        assert_eq!(m.get(1), Some(9));
        assert_eq!(m.get(2), None);
    }

    #[test]
    fn f64_roundtrip() {
        let m = Message::new().push_f64(3.5);
        assert_eq!(m.word_as_f64(0), 3.5);
    }

    #[test]
    fn opt_encoding() {
        assert_eq!(decode_opt(encode_opt(Some(5))), Some(5));
        assert_eq!(decode_opt(encode_opt(None)), None);
    }

    #[test]
    fn default_is_empty() {
        assert!(Message::default().is_empty());
        assert_eq!(Message::default().len(), 0);
    }

    #[test]
    fn from_vec() {
        let m: Message = vec![1, 2, 3].into();
        assert_eq!(m.len(), 3);
    }
}
