//! Bounded-size messages.
//!
//! The CONGEST models allow `O(log n)` bits per message. We count message
//! size in *words*: one word holds one `O(log n)`-bit quantity (a node id,
//! a class number, a component id, a rounded weight — footnote 6 of the
//! paper justifies rounding weights to `O(log n)` bits). A message may
//! carry a small constant number of words; the simulator enforces the
//! per-message word budget ([`crate::sim::Simulator::with_word_budget`]).
//!
//! ## Representations
//!
//! Because the word budget makes tiny payloads the overwhelmingly common
//! case, [`Message`] stores up to [`INLINE_WORDS`] words *inline* — no
//! heap allocation on [`Message::new`], [`Message::from_words`], or
//! [`Message::push`] for small payloads. Longer payloads spill to a heap
//! `Vec<u64>`. The two representations are observationally identical:
//! every accessor, `Eq`, and `Hash` go through the payload words, never
//! the representation (pinned by the `message_plane` proptest suite).
//!
//! Delivered messages are handed to programs as [`MsgView`]s — `Copy`
//! borrows of the payload words resident in the engine's inbox arena
//! (see [`crate::engine`]) — so delivery never clones payloads.

/// Number of payload words a [`Message`] stores without heap allocation.
pub const INLINE_WORDS: usize = 4;

#[derive(Clone, Debug)]
enum Repr {
    /// Up to [`INLINE_WORDS`] words stored in the struct itself.
    Inline { len: u8, buf: [u64; INLINE_WORDS] },
    /// Heap fallback for longer payloads.
    Heap(Vec<u64>),
}

/// A message payload: a short sequence of words.
///
/// # Example
///
/// ```
/// use decomp_congest::Message;
///
/// let m = Message::from_words([3, 42]);
/// assert_eq!(m.words(), &[3, 42]);
/// assert_eq!(m.len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct Message(Repr);

impl Message {
    /// An empty message (still counts as one message on the wire).
    /// Never allocates.
    pub fn new() -> Self {
        Message(Repr::Inline {
            len: 0,
            buf: [0; INLINE_WORDS],
        })
    }

    /// A message from an iterator of words. Allocation-free for payloads
    /// of at most [`INLINE_WORDS`] words; longer payloads spill to the
    /// heap with one size-hinted allocation.
    pub fn from_words(words: impl IntoIterator<Item = u64>) -> Self {
        let mut it = words.into_iter();
        let mut buf = [0u64; INLINE_WORDS];
        let mut len = 0usize;
        for slot in &mut buf {
            match it.next() {
                Some(w) => {
                    *slot = w;
                    len += 1;
                }
                None => {
                    return Message(Repr::Inline {
                        len: len as u8,
                        buf,
                    })
                }
            }
        }
        match it.next() {
            None => Message(Repr::Inline {
                len: len as u8,
                buf,
            }),
            Some(w) => {
                let (lo, _) = it.size_hint();
                let mut v = Vec::with_capacity(INLINE_WORDS + 1 + lo);
                v.extend_from_slice(&buf);
                v.push(w);
                v.extend(it);
                Message(Repr::Heap(v))
            }
        }
    }

    /// The payload words.
    pub fn words(&self) -> &[u64] {
        match &self.0 {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Heap(v) => v,
        }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        match &self.0 {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Heap(v) => v.len(),
        }
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends a word (builder style). Spills to the heap only past
    /// [`INLINE_WORDS`] words.
    pub fn push(mut self, w: u64) -> Self {
        match &mut self.0 {
            Repr::Inline { len, buf } => {
                if (*len as usize) < INLINE_WORDS {
                    buf[*len as usize] = w;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(INLINE_WORDS + 1);
                    v.extend_from_slice(buf);
                    v.push(w);
                    self.0 = Repr::Heap(v);
                }
            }
            Repr::Heap(v) => v.push(w),
        }
        self
    }

    /// Word at position `i`, if present.
    pub fn get(&self, i: usize) -> Option<u64> {
        self.words().get(i).copied()
    }

    /// Word at position `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn word(&self, i: usize) -> u64 {
        self.words()[i]
    }

    /// Word at position `i` reinterpreted as `f64`
    /// (for MWU cost exchange; see module docs).
    pub fn word_as_f64(&self, i: usize) -> f64 {
        f64::from_bits(self.word(i))
    }

    /// Appends an `f64` as its bit pattern.
    pub fn push_f64(self, x: f64) -> Self {
        self.push(x.to_bits())
    }
}

impl Default for Message {
    fn default() -> Self {
        Message::new()
    }
}

/// Preserves the given allocation: the message keeps the heap
/// representation even for payloads that would fit inline (which the
/// representation-equivalence proptests rely on to pin down a heap twin
/// of any small message). Prefer [`Message::from_words`] on hot paths.
impl From<Vec<u64>> for Message {
    fn from(v: Vec<u64>) -> Self {
        Message(Repr::Heap(v))
    }
}

impl PartialEq for Message {
    fn eq(&self, other: &Self) -> bool {
        self.words() == other.words()
    }
}

impl Eq for Message {}

impl std::hash::Hash for Message {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Hash the words slice (length-prefixed), identical for both
        // representations — and identical to the historical
        // `derive(Hash)` on the `Vec<u64>` newtype.
        self.words().hash(state);
    }
}

/// A borrowed view of one delivered message's payload, resident in the
/// engine's inbox arena. `Copy`-cheap (a fat pointer); mirrors the read
/// API of [`Message`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MsgView<'a>(&'a [u64]);

impl<'a> MsgView<'a> {
    /// A view over `words`.
    pub fn new(words: &'a [u64]) -> Self {
        MsgView(words)
    }

    /// The payload words.
    pub fn words(&self) -> &'a [u64] {
        self.0
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Word at position `i`, if present.
    pub fn get(&self, i: usize) -> Option<u64> {
        self.0.get(i).copied()
    }

    /// Word at position `i`.
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn word(&self, i: usize) -> u64 {
        self.0[i]
    }

    /// Word at position `i` reinterpreted as `f64`.
    pub fn word_as_f64(&self, i: usize) -> f64 {
        f64::from_bits(self.0[i])
    }

    /// An owning copy of this payload.
    pub fn to_message(&self) -> Message {
        Message::from_words(self.0.iter().copied())
    }
}

/// Encodes an `Option<u64>` where `u64::MAX` means `None` (node ids and
/// component ids never reach `u64::MAX`).
pub const NONE_WORD: u64 = u64::MAX;

/// Helper: encode `Option<u64>` into a word.
pub fn encode_opt(x: Option<u64>) -> u64 {
    x.unwrap_or(NONE_WORD)
}

/// Helper: decode a word into `Option<u64>`.
pub fn decode_opt(w: u64) -> Option<u64> {
    if w == NONE_WORD {
        None
    } else {
        Some(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{Hash, Hasher};

    fn hash_of(m: &Message) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        m.hash(&mut h);
        h.finish()
    }

    #[test]
    fn roundtrip_words() {
        let m = Message::new().push(7).push(9);
        assert_eq!(m.words(), &[7, 9]);
        assert_eq!(m.get(1), Some(9));
        assert_eq!(m.get(2), None);
    }

    #[test]
    fn f64_roundtrip() {
        let m = Message::new().push_f64(3.5);
        assert_eq!(m.word_as_f64(0), 3.5);
    }

    #[test]
    fn opt_encoding() {
        assert_eq!(decode_opt(encode_opt(Some(5))), Some(5));
        assert_eq!(decode_opt(encode_opt(None)), None);
    }

    #[test]
    fn default_is_empty() {
        assert!(Message::default().is_empty());
        assert_eq!(Message::default().len(), 0);
    }

    #[test]
    fn from_vec() {
        let m: Message = vec![1, 2, 3].into();
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn spills_past_inline_capacity() {
        let m = Message::from_words(0..INLINE_WORDS as u64 + 3);
        assert_eq!(m.len(), INLINE_WORDS + 3);
        assert_eq!(
            m.words(),
            (0..INLINE_WORDS as u64 + 3).collect::<Vec<_>>().as_slice()
        );
        assert!(matches!(m.0, Repr::Heap(_)));
        let at_cap = Message::from_words(0..INLINE_WORDS as u64);
        assert!(matches!(at_cap.0, Repr::Inline { .. }));
    }

    #[test]
    fn representations_are_observationally_equal() {
        let inline = Message::from_words([1, 2, 3]);
        let heap: Message = vec![1, 2, 3].into();
        assert!(matches!(inline.0, Repr::Inline { .. }));
        assert!(matches!(heap.0, Repr::Heap(_)));
        assert_eq!(inline, heap);
        assert_eq!(hash_of(&inline), hash_of(&heap));
        assert_eq!(inline.words(), heap.words());
        // Pushing keeps them in lockstep.
        assert_eq!(inline.push(9), heap.push(9));
    }

    #[test]
    fn msg_view_mirrors_message() {
        let m = Message::from_words([3, 42, 7]);
        let v = MsgView::new(m.words());
        assert_eq!(v.words(), m.words());
        assert_eq!(v.len(), 3);
        assert_eq!(v.word(1), 42);
        assert_eq!(v.get(3), None);
        assert_eq!(v.to_message(), m);
    }
}
