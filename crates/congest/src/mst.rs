//! Distributed minimum spanning tree (Borůvka-style fragment merging).
//!
//! Stand-in for the Kutten–Peleg `O(D + √n log* n)` MST the paper invokes
//! (Section 5.1 and Appendix B); see DESIGN.md §3. The algorithm is the
//! classical synchronous Borůvka/GHS scheme:
//!
//! 1. identify the fragments of the forest chosen so far
//!    ([`crate::components::component_labels`]),
//! 2. exchange fragment labels with neighbors (1 round),
//! 3. compute each fragment's minimum-weight outgoing edge (MWOE) by
//!    min-flooding inside the fragment (`O(fragment diameter)` rounds),
//! 4. add all MWOEs and repeat — `O(log n)` phases.
//!
//! Edge weights are totally ordered by `(weight, edge index)`, so the MST
//! is unique and the result matches Kruskal's with the same tie-break,
//! which the tests exploit.

use crate::components::component_labels;
use crate::message::Message;
use crate::sim::{Inbox, NodeCtx, NodeProgram, SimError, Simulator};
use decomp_graph::NodeId;

const TAG_FRAG: u64 = 0;
const TAG_CAND: u64 = 1;

/// Candidate key: (weight, edge index) — lexicographic, unique per edge.
type Key = (u64, u64);

struct MwoeProgram {
    frag: u64,
    /// Parallel to the node's neighbor list.
    neighbor_info: Vec<NeighborInfo>,
    /// Best outgoing-edge key known for the own fragment.
    best: Option<Key>,
    dirty: bool,
    initialized: bool,
}

#[derive(Clone, Copy)]
struct NeighborInfo {
    weight: u64,
    edge_index: u64,
    frag: Option<u64>,
}

impl NodeProgram for MwoeProgram {
    fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &Inbox<'_>) {
        if ctx.round() == 0 {
            if ctx.degree() == 0 {
                self.initialized = true;
            } else {
                ctx.broadcast(Message::from_words([TAG_FRAG, self.frag]));
            }
            return;
        }
        for (from, m) in inbox {
            match m.word(0) {
                TAG_FRAG => {
                    let idx = ctx
                        .neighbors()
                        .binary_search(&from)
                        .expect("message from non-neighbor");
                    self.neighbor_info[idx].frag = Some(m.word(1));
                }
                TAG_CAND => {
                    let idx = ctx
                        .neighbors()
                        .binary_search(&from)
                        .expect("message from non-neighbor");
                    // Only same-fragment neighbors participate in the
                    // fragment-internal min-flood.
                    if self.neighbor_info[idx].frag == Some(self.frag) {
                        let cand = (m.word(1), m.word(2));
                        if self.best.is_none_or(|b| cand < b) {
                            self.best = Some(cand);
                            self.dirty = true;
                        }
                    }
                }
                other => panic!("unknown MWOE tag {other}"),
            }
        }
        if !self.initialized && ctx.round() == 1 {
            // All neighbor fragment labels have arrived; seed the flood
            // with the locally best outgoing edge.
            self.initialized = true;
            let local = self
                .neighbor_info
                .iter()
                .filter(|ni| ni.frag.is_some() && ni.frag != Some(self.frag))
                .map(|ni| (ni.weight, ni.edge_index))
                .min();
            if let Some(k) = local {
                if self.best.is_none_or(|b| k < b) {
                    self.best = Some(k);
                    self.dirty = true;
                }
            }
        }
        if self.dirty {
            let (w, e) = self.best.expect("dirty implies a candidate");
            ctx.broadcast(Message::from_words([TAG_CAND, w, e]));
            self.dirty = false;
        }
    }

    fn is_done(&self) -> bool {
        self.initialized && !self.dirty
    }
}

/// Result of a distributed MST computation.
#[derive(Clone, Debug)]
pub struct DistMst {
    /// Indices into `graph.edges()` of the chosen forest, sorted.
    pub edge_indices: Vec<usize>,
    /// Number of Borůvka phases executed.
    pub phases: usize,
}

/// Computes the minimum spanning forest of the simulator's graph under
/// `weights` (indexed by edge index; ties broken by edge index).
///
/// Works in both models. Produces a spanning *forest* on disconnected
/// graphs.
///
/// # Errors
/// Propagates simulator round-limit errors.
///
/// # Panics
/// Panics if `weights.len() != m`.
pub fn distributed_mst(sim: &mut Simulator<'_>, weights: &[u64]) -> Result<DistMst, SimError> {
    let g = sim.graph();
    let n = g.n();
    assert_eq!(weights.len(), g.m(), "one weight per edge");
    // Per-node views of incident edges (owned copies; `g` borrow ends here).
    let neighbor_tables: Vec<Vec<NeighborInfo>> = (0..n)
        .map(|v| {
            g.neighbors(v)
                .iter()
                .map(|&u| {
                    let e = g.edge_index(v, u).expect("adjacency implies edge");
                    NeighborInfo {
                        weight: weights[e],
                        edge_index: e as u64,
                        frag: None,
                    }
                })
                .collect()
        })
        .collect();
    let edges: Vec<(NodeId, NodeId)> = g.edges().to_vec();
    let full_adjacency: Vec<Vec<NodeId>> = (0..n).map(|v| g.neighbors(v).to_vec()).collect();

    let mut chosen = vec![false; edges.len()];
    let mut phases = 0usize;
    loop {
        phases += 1;
        assert!(phases <= 64, "Borůvka must converge in O(log n) phases");
        // 1. fragment identification over the chosen forest
        let sub_adj: Vec<Vec<NodeId>> = (0..n)
            .map(|v| {
                full_adjacency[v]
                    .iter()
                    .copied()
                    .filter(|&u| {
                        let e = edge_index_of(&edges, v, u);
                        chosen[e]
                    })
                    .collect()
            })
            .collect();
        let active = vec![true; n];
        let init: Vec<u64> = (0..n).map(|v| v as u64).collect();
        let labels = component_labels(sim, &active, &sub_adj, &init)?;
        let frag: Vec<u64> = labels.into_iter().map(|l| l.expect("all active")).collect();

        // 2.+3. fragment-label exchange and MWOE min-flood
        let programs = (0..n)
            .map(|v| MwoeProgram {
                frag: frag[v],
                neighbor_info: neighbor_tables[v].clone(),
                best: None,
                dirty: false,
                initialized: false,
            })
            .collect();
        let (programs, _) = sim.run_to_quiescence(programs)?;

        // 4. merge: each fragment adds its MWOE. The owner endpoint
        // notifies the other endpoint across the edge (1 round).
        let mut added_any = false;
        let mut fragment_choice: std::collections::BTreeMap<u64, Key> = Default::default();
        for v in 0..n {
            if let Some(k) = programs[v].best {
                let entry = fragment_choice.entry(frag[v]).or_insert(k);
                *entry = (*entry).min(k);
            }
        }
        for (_frag_label, (_w, e)) in fragment_choice {
            let e = e as usize;
            if !chosen[e] {
                chosen[e] = true;
                added_any = true;
            }
        }
        sim.charge_rounds(1); // merge-announcement round
        if !added_any {
            break;
        }
    }
    let edge_indices: Vec<usize> = (0..edges.len()).filter(|&e| chosen[e]).collect();
    Ok(DistMst {
        edge_indices,
        phases,
    })
}

fn edge_index_of(edges: &[(NodeId, NodeId)], u: NodeId, v: NodeId) -> usize {
    let key = (u.min(v), u.max(v));
    edges.binary_search(&key).expect("edge must exist")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Model;
    use decomp_graph::{generators, mst};
    use rand::{Rng, SeedableRng};

    fn check_against_kruskal(g: &decomp_graph::Graph, weights: &[u64], model: Model) {
        let mut sim = Simulator::new(g, model);
        let dist = distributed_mst(&mut sim, weights).unwrap();
        let reference = mst::minimum_spanning_forest(g, |e| weights[e] as f64);
        assert_eq!(
            dist.edge_indices, reference.edge_indices,
            "distributed MST must match Kruskal with identical tie-break"
        );
    }

    #[test]
    fn unit_weights_spanning_tree() {
        let g = generators::random_connected(20, 15, 5);
        check_against_kruskal(&g, &vec![1; g.m()], Model::VCongest);
    }

    #[test]
    fn random_weights_match_kruskal() {
        for seed in 0..6 {
            let g = generators::random_connected(16, 12, seed);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x5a5a);
            let weights: Vec<u64> = (0..g.m()).map(|_| rng.gen_range(0..1000)).collect();
            check_against_kruskal(&g, &weights, Model::VCongest);
        }
    }

    #[test]
    fn works_in_econgest() {
        let g = generators::harary(4, 14);
        let weights: Vec<u64> = (0..g.m() as u64).rev().collect();
        check_against_kruskal(&g, &weights, Model::ECongest);
    }

    #[test]
    fn disconnected_graph_gives_forest() {
        let g = decomp_graph::Graph::from_edges(6, [(0, 1), (1, 2), (3, 4), (4, 5)]);
        let mut sim = Simulator::new(&g, Model::VCongest);
        let dist = distributed_mst(&mut sim, &vec![1; g.m()]).unwrap();
        assert_eq!(dist.edge_indices.len(), 4);
    }

    #[test]
    fn zero_one_weights_prefer_zero_edges() {
        // Cycle where one edge has weight 1: that edge is excluded.
        let g = generators::cycle(7);
        let mut weights = vec![0u64; 7];
        let heavy = g.edge_index(2, 3).unwrap();
        weights[heavy] = 1;
        let mut sim = Simulator::new(&g, Model::VCongest);
        let dist = distributed_mst(&mut sim, &weights).unwrap();
        assert_eq!(dist.edge_indices.len(), 6);
        assert!(!dist.edge_indices.contains(&heavy));
    }

    #[test]
    fn phase_count_logarithmic() {
        let g = generators::complete(32);
        let mut sim = Simulator::new(&g, Model::VCongest);
        let dist = distributed_mst(&mut sim, &vec![1; g.m()]).unwrap();
        assert!(
            dist.phases <= 7,
            "Borůvka on K32 should need <= log2(32)+2 phases, got {}",
            dist.phases
        );
    }

    #[test]
    fn single_node() {
        let g = decomp_graph::Graph::empty(1);
        let mut sim = Simulator::new(&g, Model::VCongest);
        let dist = distributed_mst(&mut sim, &[]).unwrap();
        assert!(dist.edge_indices.is_empty());
    }
}
