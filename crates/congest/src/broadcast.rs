//! Pipelined tree broadcast as a message-passing protocol.
//!
//! Appendix A's throughput claims rest on the classical fact that a
//! rooted tree of depth `d` pipelines `b` messages to all its vertices in
//! `d + b − 1` rounds (one message per vertex per round — V-CONGEST).
//! This module implements that schedule as an actual [`NodeProgram`], so
//! the schedule-level simulations in `decomp-broadcast` can be
//! cross-validated against genuine message passing.

use crate::bfs::DistBfsTree;
use crate::message::Message;
use crate::sim::{Inbox, NodeCtx, NodeProgram, SimError, Simulator};
use decomp_graph::NodeId;

struct PipelineProgram {
    /// Parent in the broadcast tree (`None` for root / non-members).
    parent: Option<NodeId>,
    /// Whether this node is in the tree.
    member: bool,
    /// Messages queued for forwarding (FIFO), as payload words.
    queue: std::collections::VecDeque<u64>,
    /// All payloads received (for verification).
    received: Vec<u64>,
    /// Messages remaining to inject (root only).
    to_inject: std::collections::VecDeque<u64>,
}

impl NodeProgram for PipelineProgram {
    fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &Inbox<'_>) {
        for (from, m) in inbox {
            // Accept only from the tree parent: the broadcast wave travels
            // root -> leaves; other tree neighbors' broadcasts are their
            // own forwarding of the same wave.
            if self.member && self.parent == Some(from) {
                let w = m.word(0);
                self.received.push(w);
                self.queue.push_back(w);
            }
        }
        if let Some(w) = self.to_inject.pop_front() {
            self.received.push(w);
            ctx.broadcast(Message::from_words([w]));
            return;
        }
        if let Some(w) = self.queue.pop_front() {
            ctx.broadcast(Message::from_words([w]));
        }
    }

    fn is_done(&self) -> bool {
        self.queue.is_empty() && self.to_inject.is_empty()
    }
}

/// Outcome of a pipelined broadcast.
#[derive(Clone, Debug)]
pub struct PipelineReport {
    /// Rounds the run took.
    pub rounds: usize,
    /// Payloads received per node, in arrival order.
    pub received: Vec<Vec<u64>>,
}

/// Broadcasts `payloads` from `tree.root` down `tree`, one message per
/// vertex per round. All tree members receive every payload in
/// `depth + b − 1 (+1 injection)` rounds.
///
/// # Errors
/// Propagates simulator round-limit errors.
pub fn pipelined_broadcast(
    sim: &mut Simulator<'_>,
    tree: &DistBfsTree,
    payloads: &[u64],
) -> Result<PipelineReport, SimError> {
    let n = sim.graph().n();
    let programs = (0..n)
        .map(|v| PipelineProgram {
            parent: if v == tree.root || !tree.reached(v) {
                None
            } else {
                Some(tree.parent[v])
            },
            member: tree.reached(v),
            queue: Default::default(),
            received: Vec::new(),
            to_inject: if v == tree.root {
                payloads.iter().copied().collect()
            } else {
                Default::default()
            },
        })
        .collect();
    let before = sim.stats().rounds;
    let (programs, _) = sim.run_to_quiescence(programs)?;
    Ok(PipelineReport {
        rounds: sim.stats().rounds - before,
        received: programs.into_iter().map(|p| p.received).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::distributed_bfs;
    use crate::sim::Model;
    use decomp_graph::generators;

    #[test]
    fn everyone_receives_everything_in_order() {
        let g = generators::random_connected(20, 10, 4);
        let mut sim = Simulator::new(&g, Model::VCongest);
        let tree = distributed_bfs(&mut sim, 0).unwrap();
        let payloads: Vec<u64> = (100..140).collect();
        let r = pipelined_broadcast(&mut sim, &tree, &payloads).unwrap();
        for v in g.vertices() {
            assert_eq!(r.received[v], payloads, "node {v}");
        }
    }

    #[test]
    fn pipelining_round_bound() {
        // depth + b - 1 (+ slack for injection/quiescence detection).
        let g = generators::path(16);
        let mut sim = Simulator::new(&g, Model::VCongest);
        let tree = distributed_bfs(&mut sim, 0).unwrap();
        let b = 24;
        let payloads: Vec<u64> = (0..b).collect();
        let r = pipelined_broadcast(&mut sim, &tree, &payloads).unwrap();
        let depth = 15;
        assert!(
            r.rounds <= depth + b as usize + 4,
            "rounds {} exceed the pipeline bound {}",
            r.rounds,
            depth + b as usize + 4
        );
        assert!(r.rounds >= depth.max(b as usize));
    }

    #[test]
    fn single_message_takes_depth_rounds() {
        let g = generators::star(9);
        let mut sim = Simulator::new(&g, Model::VCongest);
        let tree = distributed_bfs(&mut sim, 0).unwrap();
        let r = pipelined_broadcast(&mut sim, &tree, &[7]).unwrap();
        assert!(r.rounds <= 4);
        for v in g.vertices() {
            assert_eq!(r.received[v], vec![7]);
        }
    }

    #[test]
    fn empty_payloads() {
        let g = generators::cycle(5);
        let mut sim = Simulator::new(&g, Model::VCongest);
        let tree = distributed_bfs(&mut sim, 0).unwrap();
        let r = pipelined_broadcast(&mut sim, &tree, &[]).unwrap();
        assert!(r.received.iter().all(|rx| rx.is_empty()));
    }
}
