//! Connected-component identification of a marked subgraph.
//!
//! This is our stand-in for Thurimella's component-identification algorithm
//! (paper, Theorem B.2): every node of a subgraph `G_sub` learns the
//! *minimum label* over its `G_sub`-component. We implement it by iterated
//! min-label flooding, which is correct in both CONGEST models and runs in
//! `O(component diameter)` rounds — see DESIGN.md §3 for the substitution
//! rationale (Thurimella achieves `O(D + √n log* n)`; callers that need the
//! theoretical cost charge it via [`thurimella_round_cost`]).
//!
//! Inactive nodes (not in the subgraph) still forward nothing and output
//! `None`.

use crate::message::Message;
use crate::sim::{Inbox, NodeCtx, NodeProgram, SimError, Simulator};
use decomp_graph::NodeId;

struct LabelProgram {
    /// Whether this node participates in the subgraph.
    active: bool,
    /// Neighbors that are also subgraph-neighbors (edge in `G_sub`).
    sub_neighbors: Vec<NodeId>,
    /// Current best (smallest) label.
    label: u64,
    /// Whether `label` must still be announced.
    dirty: bool,
}

impl NodeProgram for LabelProgram {
    fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &Inbox<'_>) {
        if !self.active {
            return;
        }
        for (from, m) in inbox {
            // Receiver-side filtering keeps this V-CONGEST conformant: the
            // broadcast reaches everyone, but only subgraph edges count.
            if self.sub_neighbors.binary_search(&from).is_ok() {
                let cand = m.word(0);
                if cand < self.label {
                    self.label = cand;
                    self.dirty = true;
                }
            }
        }
        if self.dirty {
            ctx.broadcast(Message::from_words([self.label]));
            self.dirty = false;
        }
    }

    fn is_done(&self) -> bool {
        !self.dirty
    }
}

/// Identifies connected components of the subgraph described by
/// `sub_neighbors` (per-node sorted adjacency within the subgraph; empty
/// for non-members together with `active[v] == false`).
///
/// Each active node learns the minimum of `init_label` over its component;
/// returns those labels (`None` for inactive nodes).
///
/// # Errors
/// Propagates simulator round-limit errors.
///
/// # Panics
/// Panics if input lengths disagree with the graph, a subgraph edge is not
/// a real edge, or adjacency is asymmetric.
pub fn component_labels(
    sim: &mut Simulator<'_>,
    active: &[bool],
    sub_neighbors: &[Vec<NodeId>],
    init_label: &[u64],
) -> Result<Vec<Option<u64>>, SimError> {
    let n = sim.graph().n();
    assert_eq!(active.len(), n);
    assert_eq!(sub_neighbors.len(), n);
    assert_eq!(init_label.len(), n);
    for v in 0..n {
        for &u in &sub_neighbors[v] {
            assert!(
                sim.graph().has_edge(u, v),
                "subgraph edge ({u}, {v}) is not a network edge"
            );
            assert!(
                sub_neighbors[u].binary_search(&v).is_ok(),
                "asymmetric subgraph adjacency at ({u}, {v})"
            );
            assert!(
                active[u] && active[v],
                "subgraph edge touches inactive node"
            );
        }
    }
    let programs = (0..n)
        .map(|v| {
            let mut nb = sub_neighbors[v].clone();
            nb.sort_unstable();
            LabelProgram {
                active: active[v],
                sub_neighbors: nb,
                label: init_label[v],
                dirty: active[v],
            }
        })
        .collect();
    let (programs, _) = sim.run_to_quiescence(programs)?;
    Ok(programs
        .iter()
        .map(|p| if p.active { Some(p.label) } else { None })
        .collect())
}

/// The round cost Theorem B.2 would charge for one component-identification
/// invocation: `min(D', D + √n · log* n)` where `D'` bounds the component
/// diameters. Experiments report this next to the measured rounds of the
/// label-propagation substitute.
pub fn thurimella_round_cost(
    n: usize,
    network_diameter: usize,
    component_diameter: usize,
) -> usize {
    let log_star = {
        let mut x = n as f64;
        let mut c = 0usize;
        while x > 1.0 {
            x = x.log2().max(0.0);
            c += 1;
            if c > 8 {
                break;
            }
        }
        c.max(1)
    };
    let kp = network_diameter + ((n as f64).sqrt() as usize) * log_star;
    component_diameter.min(kp).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Model;
    use decomp_graph::generators;

    /// Builds the per-node subgraph adjacency from an edge predicate.
    fn sub_adj(
        g: &decomp_graph::Graph,
        active: &[bool],
        mut keep: impl FnMut(usize, usize) -> bool,
    ) -> Vec<Vec<NodeId>> {
        (0..g.n())
            .map(|v| {
                g.neighbors(v)
                    .iter()
                    .copied()
                    .filter(|&u| active[u] && active[v] && keep(v.min(u), v.max(u)))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn whole_graph_single_component() {
        let g = generators::cycle(8);
        let active = vec![true; 8];
        let adj = sub_adj(&g, &active, |_, _| true);
        let init: Vec<u64> = (0..8).map(|v| v as u64 + 100).collect();
        let mut sim = Simulator::new(&g, Model::VCongest);
        let labels = component_labels(&mut sim, &active, &adj, &init).unwrap();
        assert!(labels.iter().all(|&l| l == Some(100)));
    }

    #[test]
    fn split_subgraph_two_components() {
        // Cycle 0-1-2-3-4-5-0 with subgraph dropping edges (2,3) and (5,0):
        // components {0,1,2} and {3,4,5}.
        let g = generators::cycle(6);
        let active = vec![true; 6];
        let adj = sub_adj(&g, &active, |a, b| !((a, b) == (2, 3) || (a, b) == (0, 5)));
        let init: Vec<u64> = (0..6).map(|v| v as u64).collect();
        let mut sim = Simulator::new(&g, Model::VCongest);
        let labels = component_labels(&mut sim, &active, &adj, &init).unwrap();
        assert_eq!(labels[0], Some(0));
        assert_eq!(labels[1], Some(0));
        assert_eq!(labels[2], Some(0));
        assert_eq!(labels[3], Some(3));
        assert_eq!(labels[4], Some(3));
        assert_eq!(labels[5], Some(3));
    }

    #[test]
    fn inactive_nodes_excluded() {
        let g = generators::path(5);
        let active = vec![true, true, false, true, true];
        let adj = sub_adj(&g, &active, |_, _| true);
        let init: Vec<u64> = (0..5).map(|v| v as u64).collect();
        let mut sim = Simulator::new(&g, Model::VCongest);
        let labels = component_labels(&mut sim, &active, &adj, &init).unwrap();
        assert_eq!(labels[0], Some(0));
        assert_eq!(labels[1], Some(0));
        assert_eq!(labels[2], None);
        assert_eq!(labels[3], Some(3));
        assert_eq!(labels[4], Some(3));
    }

    #[test]
    fn matches_centralized_components() {
        for seed in 0..8 {
            let g = generators::gnp(20, 0.12, seed);
            let active = vec![true; 20];
            let adj = sub_adj(&g, &active, |_, _| true);
            let init: Vec<u64> = (0..20).map(|v| v as u64).collect();
            let mut sim = Simulator::new(&g, Model::VCongest);
            let labels = component_labels(&mut sim, &active, &adj, &init).unwrap();
            let (reference, _) = decomp_graph::traversal::connected_components(&g);
            for u in 0..20 {
                for v in 0..20 {
                    assert_eq!(
                        labels[u] == labels[v],
                        reference[u] == reference[v],
                        "seed {seed}: nodes {u},{v}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "asymmetric")]
    fn rejects_asymmetric_adjacency() {
        let g = generators::path(3);
        let active = vec![true; 3];
        let adj = vec![vec![1], vec![], vec![]];
        let mut sim = Simulator::new(&g, Model::VCongest);
        let _ = component_labels(&mut sim, &active, &adj, &[0, 1, 2]);
    }

    #[test]
    fn thurimella_cost_reasonable() {
        assert!(thurimella_round_cost(100, 5, 3) <= 5);
        let c = thurimella_round_cost(10_000, 10, 100_000);
        assert!(c <= 10 + 100 * 5 + 1);
        assert!(thurimella_round_cost(4, 1, 1) >= 1);
    }
}
