//! The deterministic sharded multi-core engine.
//!
//! Nodes are partitioned into `s` contiguous shards; each shard's
//! programs, RNG streams, and inbox arena are owned exclusively by one
//! scoped worker thread for the whole run (no per-round thread spawns).
//! A round has two phases separated by barriers:
//!
//! 1. **compute** — every worker steps its shard's active nodes (in node
//!    id order); outgoing payloads are written once per destination shard
//!    into per-shard outgoing batches (one word buffer + one
//!    `(to, from, off, len)` entry list each — a broadcast's payload is
//!    never copied per receiver); the shard's send/done flags and
//!    queued-traffic totals are published;
//! 2. **deliver** — after the barrier, every worker drains its mailbox
//!    column (in sender-shard order) into its local `InboxArena` (one
//!    `memcpy` of the words plus offset-rebased entries per batch), and
//!    all workers take the same continue/stop decision from the
//!    published flags.
//!
//! Mailbox cell `[src][dst]` is written only by shard `src` during
//! compute and drained only by shard `dst` during deliver, with the two
//! phases separated by a barrier — the `Mutex` per cell is never
//! contended and exists to keep the exchange in safe code. Batch buffers
//! **rotate** through the cells (sender swaps its filled batch in,
//! receiver swaps a drained one back), so the steady state allocates
//! nothing.
//!
//! Determinism (see the [module docs](super)): node order within a shard
//! is ascending, shards cover ascending id ranges, inbox entries are
//! re-sorted by sender at consumption, RNG streams are per-node, and
//! [`RunStats`] counters are shard-local sums merged in shard order — so
//! a run is bit-identical to the sequential engine for *any* shard
//! count. The peak-memory counters are counted on the *sender* side
//! (payload words once per send, messages once per receiver) and summed
//! across shards through the published per-round totals, so they too are
//! engine-independent.
//!
//! A panic inside program code (model violations are panics by contract)
//! is caught on the worker, propagated through a shared flag so every
//! other worker unblocks at the next barrier, and re-raised on the
//! calling thread.

use super::{
    cutoff_context, is_active, step_node, EngineKind, EngineRun, InboxArena, NetSpec, RoundEngine,
    SequentialEngine,
};
use crate::fault::FaultState;
use crate::sim::{NodeProgram, Outbox, RunStats, SimError};
use decomp_graph::NodeId;
use rand::rngs::StdRng;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};
use std::thread;

/// Scoped-thread worker pool over contiguous node shards.
#[derive(Clone, Copy, Debug)]
pub struct ShardedEngine {
    shards: usize,
}

impl ShardedEngine {
    /// An engine with `shards` worker threads.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn new(shards: usize) -> Self {
        assert!(shards >= 1, "need at least one shard");
        ShardedEngine { shards }
    }
}

/// Balanced contiguous partition of `0..n` into `s` ranges: the first
/// `n % s` shards get one extra node.
#[derive(Clone, Copy)]
struct Partition {
    base: usize,
    rem: usize,
}

impl Partition {
    fn new(n: usize, s: usize) -> Self {
        Partition {
            base: n / s,
            rem: n % s,
        }
    }

    /// Half-open node range `[lo, hi)` owned by `shard`.
    fn range(&self, shard: usize) -> (usize, usize) {
        let lo = shard * self.base + shard.min(self.rem);
        let hi = lo + self.base + usize::from(shard < self.rem);
        (lo, hi)
    }

    /// The shard owning node `v`.
    fn shard_of(&self, v: NodeId) -> usize {
        let fat = self.rem * (self.base + 1);
        if v < fat {
            v / (self.base + 1)
        } else {
            self.rem + (v - fat) / self.base.max(1)
        }
    }
}

/// One shard-to-shard traffic batch: a contiguous word buffer plus
/// `(to, from, off, len)` entries whose offsets index the buffer. A
/// broadcast spanning several receivers in the destination shard stores
/// its payload once, referenced by all their entries.
#[derive(Default)]
struct OutBatch {
    entries: Vec<WireEntry>,
    words: Vec<u64>,
}

impl OutBatch {
    fn clear(&mut self) {
        self.entries.clear();
        self.words.clear();
    }
}

#[derive(Clone, Copy)]
struct WireEntry {
    to: u32,
    from: u32,
    off: u32,
    len: u32,
}

/// One shard's per-round published state, overwritten every round (no
/// reset step needed between rounds).
struct ShardFlags {
    sent: AtomicBool,
    done: AtomicBool,
    /// Messages this shard queued for the next round (sender side).
    queued_msgs: AtomicUsize,
    /// Payload words this shard materialized for the next round, counted
    /// once per send (sender side).
    queued_words: AtomicUsize,
}

impl RoundEngine for ShardedEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Sharded {
            shards: self.shards,
        }
    }

    fn run<P: NodeProgram + Send>(
        &self,
        net: &NetSpec<'_>,
        programs: &mut [P],
        rngs: &mut [StdRng],
        max_rounds: usize,
    ) -> EngineRun {
        let n = net.graph.n();
        let s = self.shards.min(n.max(1));
        if s <= 1 {
            return SequentialEngine.run(net, programs, rngs, max_rounds);
        }
        let part = Partition::new(n, s);

        // Cross-shard mailboxes: cell [src][dst] is written by src in the
        // compute phase and drained by dst in the deliver phase.
        let mailboxes: Vec<Vec<Mutex<OutBatch>>> = (0..s)
            .map(|_| (0..s).map(|_| Mutex::new(OutBatch::default())).collect())
            .collect();
        let flags: Vec<ShardFlags> = (0..s)
            .map(|_| ShardFlags {
                sent: AtomicBool::new(false),
                done: AtomicBool::new(false),
                queued_msgs: AtomicUsize::new(0),
                queued_words: AtomicUsize::new(0),
            })
            .collect();
        let barrier = Barrier::new(s);
        let panicked = AtomicBool::new(false);
        let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

        // Hand each worker exclusive ownership of its shard's programs
        // and RNG streams.
        let mut prog_tail = programs;
        let mut rng_tail = rngs;
        let mut shard_state: Vec<(usize, &mut [P], &mut [StdRng])> = Vec::with_capacity(s);
        for shard in 0..s {
            let (lo, hi) = part.range(shard);
            let (p_head, p_rest) = prog_tail.split_at_mut(hi - lo);
            let (r_head, r_rest) = rng_tail.split_at_mut(hi - lo);
            prog_tail = p_rest;
            rng_tail = r_rest;
            shard_state.push((shard, p_head, r_head));
        }

        let results: Vec<(RunStats, Option<(usize, usize)>)> = thread::scope(|scope| {
            let handles: Vec<_> = shard_state
                .into_iter()
                .map(|(me, progs, my_rngs)| {
                    let mailboxes = &mailboxes;
                    let flags = &flags;
                    let barrier = &barrier;
                    let panicked = &panicked;
                    let panic_payload = &panic_payload;
                    scope.spawn(move || {
                        shard_worker(
                            net,
                            part,
                            s,
                            me,
                            progs,
                            my_rngs,
                            max_rounds,
                            mailboxes,
                            flags,
                            barrier,
                            panicked,
                            panic_payload,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker thread died"))
                .collect()
        });

        if let Some(payload) = panic_payload.into_inner().unwrap() {
            panic::resume_unwind(payload);
        }

        // Shard-local stats, merged in shard order. Rounds advance in
        // lockstep and peaks are global per-round sums every shard
        // observes identically, so those fields agree across shards.
        let mut stats = RunStats::default();
        let mut exceeded: Option<(usize, usize)> = None;
        for (shard_stats, shard_err) in results {
            debug_assert!(stats.rounds == 0 || stats.rounds == shard_stats.rounds);
            debug_assert!(
                stats.peak_queued_messages == 0
                    || stats.peak_queued_messages == shard_stats.peak_queued_messages
            );
            stats.rounds = stats.rounds.max(shard_stats.rounds);
            stats.messages += shard_stats.messages;
            stats.words += shard_stats.words;
            stats.peak_queued_messages = stats
                .peak_queued_messages
                .max(shard_stats.peak_queued_messages);
            stats.peak_arena_words = stats.peak_arena_words.max(shard_stats.peak_arena_words);
            if let Some((undelivered, unfinished)) = shard_err {
                let slot = exceeded.get_or_insert((0, 0));
                slot.0 += undelivered;
                slot.1 += unfinished;
            }
        }
        EngineRun {
            stats,
            error: exceeded.map(|(undelivered, unfinished)| SimError::ExceededMaxRounds {
                max_rounds,
                undelivered,
                unfinished,
            }),
        }
    }
}

/// The per-shard worker loop. Returns this shard's local stats and, when
/// the round limit was hit, its `(undelivered, unfinished)` contribution
/// to the error context.
#[allow(clippy::too_many_arguments)] // the shared-state plumbing of one worker
fn shard_worker<P: NodeProgram + Send>(
    net: &NetSpec<'_>,
    part: Partition,
    s: usize,
    me: usize,
    progs: &mut [P],
    rngs: &mut [StdRng],
    max_rounds: usize,
    mailboxes: &[Vec<Mutex<OutBatch>>],
    flags: &[ShardFlags],
    barrier: &Barrier,
    panicked: &AtomicBool,
    panic_payload: &Mutex<Option<Box<dyn std::any::Any + Send>>>,
) -> (RunStats, Option<(usize, usize)>) {
    let (lo, _hi) = part.range(me);
    let local_n = progs.len();
    let mut stats = RunStats::default();
    // This shard's inbox arena (deliveries into the current round) and
    // per-destination-shard outgoing batches; `scratch` rotates through
    // the mailbox cells during deliver. All reused every round.
    let mut arena = InboxArena::new(local_n);
    let mut outbox = Outbox::new(net.model);
    let mut out_bufs: Vec<OutBatch> = (0..s).map(|_| OutBatch::default()).collect();
    let mut scratch = OutBatch::default();
    // Every worker derives its own fault view from the shared plan and
    // advances it in lockstep — a pure function of (plan, round), so all
    // shards agree on the global dead set without communication.
    let mut faults = net.faults.map(|plan| FaultState::new(plan, net.graph.n()));
    let mut round = 0usize;
    loop {
        // Faults fire at round start, before the cutoff check and before
        // inbox consumption: purge in-flight deliveries the failures
        // invalidated (global sender id, shard-local receiver).
        if let Some(fs) = faults.as_mut() {
            if fs.advance_to(round) {
                arena.purge(|local, from| !fs.deliverable(from, lo + local));
            }
        }
        // All workers share the same lockstep round counter, so they all
        // take this exit in the same round (no barrier crossing needed).
        if round >= max_rounds {
            return (
                stats,
                Some(cutoff_context(&arena, progs, faults.as_ref(), lo)),
            );
        }

        // --- Compute phase -------------------------------------------
        let mut any_sent = false;
        let mut queued_msgs = 0usize;
        let mut queued_words = 0usize;
        // `is_done()` runs inside the same catch_unwind as `round()`: a
        // panicking program (or a panic leaving state that makes
        // `is_done` panic) must never kill the worker before the barrier
        // or the other shards would deadlock there.
        let step = panic::catch_unwind(AssertUnwindSafe(|| {
            for i in 0..local_n {
                let v = lo + i;
                if faults.as_ref().is_some_and(|f| f.is_dead(v)) {
                    continue;
                }
                if !is_active(round, arena.has_mail(i), &progs[i]) {
                    continue;
                }
                arena.sort(i);
                let inbox = arena.inbox(i);
                let bufs = &mut out_bufs;
                let qm = &mut queued_msgs;
                let qw = &mut queued_words;
                let sent = step_node(
                    net,
                    v,
                    round,
                    &mut progs[i],
                    &mut rngs[i],
                    faults.as_ref(),
                    inbox,
                    &mut outbox,
                    &mut stats,
                    &mut |targets, payload| {
                        *qm += targets.len();
                        *qw += payload.len();
                        // Targets are ascending and shards own ascending
                        // contiguous ranges, so same-shard receivers form
                        // runs: one payload copy per destination shard.
                        let mut a = 0;
                        while a < targets.len() {
                            let dst = part.shard_of(targets[a]);
                            let (_, dst_hi) = part.range(dst);
                            let mut b = a + 1;
                            while b < targets.len() && targets[b] < dst_hi {
                                b += 1;
                            }
                            let batch = &mut bufs[dst];
                            let off = u32::try_from(batch.words.len())
                                .expect("shard batch exceeds u32 words");
                            batch.words.extend_from_slice(payload);
                            for &u in &targets[a..b] {
                                batch.entries.push(WireEntry {
                                    to: u as u32,
                                    from: v as u32,
                                    off,
                                    len: payload.len() as u32,
                                });
                            }
                            a = b;
                        }
                    },
                );
                any_sent |= sent;
            }
            progs
                .iter()
                .enumerate()
                .all(|(i, p)| faults.as_ref().is_some_and(|f| f.is_dead(lo + i)) || p.is_done())
        }));
        let local_done = match step {
            Ok(done) => done,
            Err(payload) => {
                panicked.store(true, Ordering::SeqCst);
                panic_payload.lock().unwrap().get_or_insert(payload);
                // Value is irrelevant: every worker exits right after the
                // barrier once the panic flag is up.
                true
            }
        };
        // Publish outgoing batches: swap each filled batch into its
        // mailbox cell, taking back the drained batch the receiver left
        // there (buffer rotation — no allocation).
        for (dst, buf) in out_bufs.iter_mut().enumerate() {
            std::mem::swap(&mut *mailboxes[me][dst].lock().unwrap(), buf);
        }
        flags[me].sent.store(any_sent, Ordering::SeqCst);
        flags[me].done.store(local_done, Ordering::SeqCst);
        flags[me].queued_msgs.store(queued_msgs, Ordering::SeqCst);
        flags[me].queued_words.store(queued_words, Ordering::SeqCst);

        // --- Round barrier: mailboxes and flags are published --------
        barrier.wait();
        if panicked.load(Ordering::SeqCst) {
            return (stats, None);
        }
        let all_done = flags.iter().all(|f| f.done.load(Ordering::SeqCst));
        let any_sent_global = flags.iter().any(|f| f.sent.load(Ordering::SeqCst));
        // Global queued-traffic totals for the coming round: identical
        // sums on every worker, hence engine-independent peaks.
        let round_msgs: usize = flags
            .iter()
            .map(|f| f.queued_msgs.load(Ordering::SeqCst))
            .sum();
        let round_words: usize = flags
            .iter()
            .map(|f| f.queued_words.load(Ordering::SeqCst))
            .sum();
        stats.rounds += 1;
        round += 1;
        stats.note_round_load(round_msgs, round_words);

        // --- Deliver phase (sender-shard order) -----------------------
        arena.reset();
        for src_row in mailboxes {
            std::mem::swap(&mut *src_row[me].lock().unwrap(), &mut scratch);
            let base = arena.push_payload(&scratch.words);
            for e in &scratch.entries {
                arena.push_entry(e.to as usize - lo, e.from as NodeId, base + e.off, e.len);
            }
            scratch.clear();
        }

        // Second barrier: every cell drained and every flag consumed
        // before the next compute phase overwrites them.
        barrier.wait();
        if all_done && !any_sent_global {
            return (stats, None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_balanced_and_invertible() {
        for n in [1usize, 2, 5, 7, 16, 33, 100] {
            for s in 1..=n.min(9) {
                let part = Partition::new(n, s);
                let mut covered = 0;
                for shard in 0..s {
                    let (lo, hi) = part.range(shard);
                    assert!(hi - lo >= n / s && hi - lo <= n / s + 1);
                    assert_eq!(lo, covered, "ranges must be contiguous");
                    covered = hi;
                    for v in lo..hi {
                        assert_eq!(part.shard_of(v), shard, "n={n} s={s} v={v}");
                    }
                }
                assert_eq!(covered, n);
            }
        }
    }
}
