//! The deterministic sharded multi-core engine.
//!
//! Nodes are grouped into `s` shards by a pluggable
//! `Partition` — balanced-contiguous id
//! ranges by default, topology-aware BFS growth under
//! `sharded:<N>:topo`. Each shard's programs, RNG streams, and inbox
//! arenas are owned exclusively by one scoped worker thread for the
//! whole run (no per-round thread spawns). A round has two phases
//! separated by barriers:
//!
//! 1. **compute** — every worker streams its shard's
//!    `ActivitySlab` pending bitset and steps the
//!    active nodes (in ascending node id order). **Same-shard receivers
//!    bypass the mailbox plane entirely**: their deliveries are written
//!    straight into the shard's *next-round* inbox arena (the arenas are
//!    double-buffered, exactly like the sequential engine's). Only
//!    cross-shard receivers go through per-destination-shard outgoing
//!    batches (one word buffer + one `(to, from, off, len)` entry list
//!    each — a payload is stored at most once per destination shard per
//!    send); the shard's send/done flags and queued-traffic totals are
//!    published;
//! 2. **deliver** — after the barrier, every worker drains its mailbox
//!    column (in sender-shard order) into its next-round arena (one
//!    `memcpy` of the words plus offset-rebased entries per batch),
//!    swaps the arena buffers, and all workers take the same
//!    continue/stop decision from the published flags.
//!
//! With a topology-aware partition the mailbox plane carries only the
//! cut fraction of the traffic; the [`RunStats`] `local_words` /
//! `cross_shard_words` split reports the realized ratio.
//!
//! Mailbox cell `[src][dst]` is written only by shard `src` during
//! compute and drained only by shard `dst` during deliver, with the two
//! phases separated by a barrier — the `Mutex` per cell is never
//! contended and exists to keep the exchange in safe code. Batch buffers
//! **rotate** through the cells (sender swaps its filled batch in,
//! receiver swaps a drained one back), so the steady state allocates
//! nothing.
//!
//! Determinism (see the [module docs](super)): node order within a shard
//! is ascending, inbox entries are re-sorted by sender at consumption,
//! RNG streams are per-node, and [`RunStats`] counters are shard-local
//! sums merged in shard order — so a run is bit-identical to the
//! sequential engine for *any* shard count and *any* partition, the
//! locality split excepted. The peak-memory counters are counted on the
//! *sender* side (payload words once per send, messages once per
//! receiver) and summed across shards through the published per-round
//! totals, so they too are engine-independent.
//!
//! A panic inside program code (model violations are panics by contract)
//! is caught on the worker, propagated through a shared flag so every
//! other worker unblocks at the next barrier, and re-raised on the
//! calling thread.

use super::partition::{Partition, PartitionKind};
use super::{
    cutoff_context, step_node, ActivitySlab, EngineKind, EngineRun, InboxArena, NetSpec,
    RoundEngine, SequentialEngine,
};
use crate::fault::FaultState;
use crate::sim::{NodeProgram, Outbox, RunStats, SimError};
use decomp_graph::NodeId;
use rand::rngs::StdRng;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};
use std::thread;

/// Scoped-thread worker pool over partitioned node shards.
#[derive(Clone, Copy, Debug)]
pub struct ShardedEngine {
    shards: usize,
    partition: PartitionKind,
}

impl ShardedEngine {
    /// An engine with `shards` worker threads grouping nodes by
    /// `partition`.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn new(shards: usize, partition: PartitionKind) -> Self {
        assert!(shards >= 1, "need at least one shard");
        ShardedEngine { shards, partition }
    }
}

/// One shard-to-shard traffic batch: a contiguous word buffer plus
/// `(to, from, off, len)` entries whose offsets index the buffer. A
/// broadcast spanning several receivers in the destination shard stores
/// its payload once, referenced by all their entries.
#[derive(Default)]
struct OutBatch {
    entries: Vec<WireEntry>,
    words: Vec<u64>,
}

impl OutBatch {
    fn clear(&mut self) {
        self.entries.clear();
        self.words.clear();
    }
}

#[derive(Clone, Copy)]
struct WireEntry {
    to: u32,
    from: u32,
    off: u32,
    len: u32,
}

/// One shard's per-round published state, overwritten every round (no
/// reset step needed between rounds).
struct ShardFlags {
    sent: AtomicBool,
    done: AtomicBool,
    /// Messages this shard queued for the next round (sender side).
    queued_msgs: AtomicUsize,
    /// Payload words this shard materialized for the next round, counted
    /// once per send (sender side).
    queued_words: AtomicUsize,
}

impl RoundEngine for ShardedEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Sharded {
            shards: self.shards,
            partition: self.partition,
        }
    }

    fn run<P: NodeProgram + Send>(
        &self,
        net: &NetSpec<'_>,
        programs: &mut [P],
        rngs: &mut [StdRng],
        max_rounds: usize,
    ) -> EngineRun {
        let n = net.graph.n();
        let s = self.shards.min(n.max(1));
        if s <= 1 {
            return SequentialEngine.run(net, programs, rngs, max_rounds);
        }
        let part = Partition::build(self.partition, net.graph, s, net.seed);

        // Cross-shard mailboxes: cell [src][dst] is written by src in the
        // compute phase and drained by dst in the deliver phase.
        let mailboxes: Vec<Vec<Mutex<OutBatch>>> = (0..s)
            .map(|_| (0..s).map(|_| Mutex::new(OutBatch::default())).collect())
            .collect();
        let flags: Vec<ShardFlags> = (0..s)
            .map(|_| ShardFlags {
                sent: AtomicBool::new(false),
                done: AtomicBool::new(false),
                queued_msgs: AtomicUsize::new(0),
                queued_words: AtomicUsize::new(0),
            })
            .collect();
        let barrier = Barrier::new(s);
        let panicked = AtomicBool::new(false);
        let panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);

        // Hand each worker exclusive ownership of its shard's programs
        // and RNG streams. Shards own arbitrary (disjoint, covering) node
        // sets, so the hand-off takes each `&mut` out of an option slot
        // rather than splitting slices.
        let mut prog_slots: Vec<Option<&mut P>> = programs.iter_mut().map(Some).collect();
        let mut rng_slots: Vec<Option<&mut StdRng>> = rngs.iter_mut().map(Some).collect();
        let shard_state: Vec<(usize, Vec<&mut P>, Vec<&mut StdRng>)> = (0..s)
            .map(|me| {
                let progs = part
                    .nodes(me)
                    .iter()
                    .map(|&v| {
                        prog_slots[v]
                            .take()
                            .expect("node owned by exactly one shard")
                    })
                    .collect();
                let my_rngs = part
                    .nodes(me)
                    .iter()
                    .map(|&v| {
                        rng_slots[v]
                            .take()
                            .expect("node owned by exactly one shard")
                    })
                    .collect();
                (me, progs, my_rngs)
            })
            .collect();

        let results: Vec<(RunStats, Option<(usize, usize)>)> = thread::scope(|scope| {
            let handles: Vec<_> = shard_state
                .into_iter()
                .map(|(me, mut progs, mut my_rngs)| {
                    let part = &part;
                    let mailboxes = &mailboxes;
                    let flags = &flags;
                    let barrier = &barrier;
                    let panicked = &panicked;
                    let panic_payload = &panic_payload;
                    scope.spawn(move || {
                        shard_worker(
                            net,
                            part,
                            s,
                            me,
                            &mut progs,
                            &mut my_rngs,
                            max_rounds,
                            mailboxes,
                            flags,
                            barrier,
                            panicked,
                            panic_payload,
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker thread died"))
                .collect()
        });

        if let Some(payload) = panic_payload.into_inner().unwrap() {
            panic::resume_unwind(payload);
        }

        // Shard-local stats, merged in shard order. Rounds advance in
        // lockstep and peaks are global per-round sums every shard
        // observes identically, so those fields agree across shards; the
        // locality split is a per-shard sum like messages/words.
        let mut stats = RunStats::default();
        let mut exceeded: Option<(usize, usize)> = None;
        for (shard_stats, shard_err) in results {
            debug_assert!(stats.rounds == 0 || stats.rounds == shard_stats.rounds);
            debug_assert!(
                stats.peak_queued_messages == 0
                    || stats.peak_queued_messages == shard_stats.peak_queued_messages
            );
            stats.rounds = stats.rounds.max(shard_stats.rounds);
            stats.messages += shard_stats.messages;
            stats.words += shard_stats.words;
            stats.local_words += shard_stats.local_words;
            stats.cross_shard_words += shard_stats.cross_shard_words;
            stats.peak_queued_messages = stats
                .peak_queued_messages
                .max(shard_stats.peak_queued_messages);
            stats.peak_arena_words = stats.peak_arena_words.max(shard_stats.peak_arena_words);
            if let Some((undelivered, unfinished)) = shard_err {
                let slot = exceeded.get_or_insert((0, 0));
                slot.0 += undelivered;
                slot.1 += unfinished;
            }
        }
        EngineRun {
            stats,
            error: exceeded.map(|(undelivered, unfinished)| SimError::ExceededMaxRounds {
                max_rounds,
                undelivered,
                unfinished,
            }),
        }
    }
}

/// The per-shard worker loop. Returns this shard's local stats and, when
/// the round limit was hit, its `(undelivered, unfinished)` contribution
/// to the error context.
#[allow(clippy::too_many_arguments)] // the shared-state plumbing of one worker
fn shard_worker<P: NodeProgram + Send>(
    net: &NetSpec<'_>,
    part: &Partition,
    s: usize,
    me: usize,
    progs: &mut [&mut P],
    rngs: &mut [&mut StdRng],
    max_rounds: usize,
    mailboxes: &[Vec<Mutex<OutBatch>>],
    flags: &[ShardFlags],
    barrier: &Barrier,
    panicked: &AtomicBool,
    panic_payload: &Mutex<Option<Box<dyn std::any::Any + Send>>>,
) -> (RunStats, Option<(usize, usize)>) {
    let nodes = part.nodes(me);
    let local_n = nodes.len();
    let mut stats = RunStats::default();
    // This shard's double-buffered inbox arenas (`cur` = deliveries into
    // the current round, `next` = the coming round, fed by the local
    // bypass during compute and the mailbox drain during deliver), the
    // SoA activity slab, and per-destination-shard outgoing batches;
    // `scratch` rotates through the mailbox cells. All reused every
    // round.
    let mut cur = InboxArena::new(local_n);
    let mut next = InboxArena::new(local_n);
    let mut slab = ActivitySlab::new(local_n);
    let mut outbox = Outbox::new(net.model);
    // Per-worker active-neighbor scratch for growable runs (untouched
    // on the settled fast path).
    let mut nbr_scratch: Vec<NodeId> = Vec::new();
    let mut out_bufs: Vec<OutBatch> = (0..s).map(|_| OutBatch::default()).collect();
    let mut scratch = OutBatch::default();
    // Per-destination payload dedup across the runs of one sink call
    // (one `(receivers, payload)` group): stamps record which
    // destinations already hold this group's payload (and at which
    // offset), so a topo partition's interleaved target shards still
    // store one copy per destination — distinct payloads from the same
    // node never share a stamp because every sink call bumps `send_id`.
    let mut send_id = 0u64;
    let mut dst_stamp = vec![0u64; s];
    let mut dst_off = vec![0u32; s];
    // Local running tallies for the locality split (folded into `stats`
    // at exit — the sink closure runs while `stats` is borrowed by
    // `step_node`).
    let mut local_words_total = 0usize;
    let mut cross_words_total = 0usize;
    // Every worker derives its own fault view from the shared plan and
    // advances it in lockstep — a pure function of (plan, round), so all
    // shards agree on the global dead set without communication.
    let mut faults = net.faults.map(|plan| FaultState::new(plan, net.graph.n()));
    // Dormant (not-yet-arrived) vertices start asleep in this shard's
    // slab. The partition was built over the final topology, so an
    // arriving vertex's shard (and local index) is deterministic.
    if let Some(fs) = faults.as_ref() {
        for (i, &v) in nodes.iter().enumerate() {
            if fs.is_dormant(v) {
                slab.mark_asleep(i);
            }
        }
    }
    let mut round = 0usize;
    loop {
        // Faults fire at round start, before the cutoff check and before
        // inbox consumption: purge in-flight deliveries the failures
        // invalidated (global sender id, shard-local receiver), and wake
        // arrivals (a fresh arrival has `done = 0`, so it is stepped
        // this round like its own round 0).
        if let Some(fs) = faults.as_mut() {
            if fs.advance_to(round) {
                cur.purge(|local, from| !fs.deliverable(from, nodes[local]));
                for (i, &v) in nodes.iter().enumerate() {
                    if fs.is_dead(v) {
                        slab.mark_dead(i);
                    } else if !fs.is_dormant(v) {
                        slab.wake(i);
                    }
                }
            }
        }
        // All workers share the same lockstep round counter, so they all
        // take this exit in the same round (no barrier crossing needed).
        if round >= max_rounds {
            stats.local_words = local_words_total;
            stats.cross_shard_words = cross_words_total;
            let ctx = cutoff_context(
                &cur,
                nodes.iter().copied().zip(progs.iter().map(|p| &**p)),
                faults.as_ref(),
            );
            return (stats, Some(ctx));
        }

        // --- Compute phase -------------------------------------------
        let mut any_sent = false;
        let mut queued_msgs = 0usize;
        let mut queued_words = 0usize;
        // `round()` and `is_done()` run inside the same catch_unwind: a
        // panicking program (or a panic leaving state that makes
        // `is_done` panic) must never kill the worker before the barrier
        // or the other shards would deadlock there.
        let step = panic::catch_unwind(AssertUnwindSafe(|| {
            for w in 0..slab.num_words() {
                let mut pend = slab.pending_word(w, cur.mail_bits()[w], round);
                while pend != 0 {
                    let i = w * 64 + pend.trailing_zeros() as usize;
                    pend &= pend - 1;
                    let v = nodes[i];
                    cur.sort(i);
                    let inbox = cur.inbox(i);
                    let nbr_scratch = &mut nbr_scratch;
                    let next_arena = &mut next;
                    let bufs = &mut out_bufs;
                    let qm = &mut queued_msgs;
                    let qw = &mut queued_words;
                    let lw = &mut local_words_total;
                    let cw = &mut cross_words_total;
                    let sid = &mut send_id;
                    let dst_stamp = &mut dst_stamp;
                    let dst_off = &mut dst_off;
                    let sent = step_node(
                        net,
                        v,
                        round,
                        &mut *progs[i],
                        &mut *rngs[i],
                        faults.as_ref(),
                        inbox,
                        &mut outbox,
                        nbr_scratch,
                        &mut stats,
                        &mut |targets, payload| {
                            *qm += targets.len();
                            *qw += payload.len();
                            *sid += 1;
                            let my_send = *sid;
                            // Group consecutive same-shard targets into
                            // runs; each destination (this shard
                            // included) receives at most one payload
                            // copy per send, guarded by the stamps.
                            let mut a = 0;
                            while a < targets.len() {
                                let dst = part.shard_of(targets[a]);
                                let mut b = a + 1;
                                while b < targets.len() && part.shard_of(targets[b]) == dst {
                                    b += 1;
                                }
                                let run_words = payload.len() * (b - a);
                                if dst == me {
                                    // Local bypass: deliver straight into
                                    // the next-round arena, skipping the
                                    // mailbox plane.
                                    *lw += run_words;
                                    if dst_stamp[me] != my_send {
                                        dst_stamp[me] = my_send;
                                        dst_off[me] = next_arena.push_payload(payload);
                                    }
                                    for &u in &targets[a..b] {
                                        next_arena.push_entry(
                                            part.local_of(u),
                                            v,
                                            dst_off[me],
                                            payload.len() as u32,
                                        );
                                    }
                                } else {
                                    *cw += run_words;
                                    let batch = &mut bufs[dst];
                                    if dst_stamp[dst] != my_send {
                                        dst_stamp[dst] = my_send;
                                        dst_off[dst] = u32::try_from(batch.words.len())
                                            .expect("shard batch exceeds u32 words");
                                        batch.words.extend_from_slice(payload);
                                    }
                                    for &u in &targets[a..b] {
                                        batch.entries.push(WireEntry {
                                            to: u as u32,
                                            from: v as u32,
                                            off: dst_off[dst],
                                            len: payload.len() as u32,
                                        });
                                    }
                                }
                                a = b;
                            }
                        },
                    );
                    any_sent |= sent;
                    slab.set_done(i, progs[i].is_done());
                }
            }
            slab.all_done()
        }));
        let local_done = match step {
            Ok(done) => done,
            Err(payload) => {
                panicked.store(true, Ordering::SeqCst);
                panic_payload.lock().unwrap().get_or_insert(payload);
                // Value is irrelevant: every worker exits right after the
                // barrier once the panic flag is up.
                true
            }
        };
        // Publish outgoing batches: swap each filled batch into its
        // mailbox cell, taking back the drained batch the receiver left
        // there (buffer rotation — no allocation). The own-shard cell
        // stays empty: local traffic already sits in `next`.
        for (dst, buf) in out_bufs.iter_mut().enumerate() {
            if dst != me {
                std::mem::swap(&mut *mailboxes[me][dst].lock().unwrap(), buf);
            }
        }
        flags[me].sent.store(any_sent, Ordering::SeqCst);
        flags[me].done.store(local_done, Ordering::SeqCst);
        flags[me].queued_msgs.store(queued_msgs, Ordering::SeqCst);
        flags[me].queued_words.store(queued_words, Ordering::SeqCst);

        // --- Round barrier: mailboxes and flags are published --------
        barrier.wait();
        if panicked.load(Ordering::SeqCst) {
            stats.local_words = local_words_total;
            stats.cross_shard_words = cross_words_total;
            return (stats, None);
        }
        let all_done = flags.iter().all(|f| f.done.load(Ordering::SeqCst));
        let any_sent_global = flags.iter().any(|f| f.sent.load(Ordering::SeqCst));
        // Global queued-traffic totals for the coming round: identical
        // sums on every worker, hence engine-independent peaks.
        let round_msgs: usize = flags
            .iter()
            .map(|f| f.queued_msgs.load(Ordering::SeqCst))
            .sum();
        let round_words: usize = flags
            .iter()
            .map(|f| f.queued_words.load(Ordering::SeqCst))
            .sum();
        stats.rounds += 1;
        round += 1;
        stats.note_round_load(round_msgs, round_words);

        // --- Deliver phase (sender-shard order) -----------------------
        // Cross-shard deliveries join the locally bypassed ones already
        // sitting in `next`; entry order is unobservable (inboxes are
        // re-sorted by sender at consumption).
        for (src, src_row) in mailboxes.iter().enumerate() {
            if src == me {
                continue;
            }
            std::mem::swap(&mut *src_row[me].lock().unwrap(), &mut scratch);
            let base = next.push_payload(&scratch.words);
            for e in &scratch.entries {
                next.push_entry(
                    part.local_of(e.to as NodeId),
                    e.from as NodeId,
                    base + e.off,
                    e.len,
                );
            }
            scratch.clear();
        }
        std::mem::swap(&mut cur, &mut next);
        next.reset();

        // Second barrier: every cell drained and every flag consumed
        // before the next compute phase overwrites them.
        barrier.wait();
        if all_done && !any_sent_global {
            stats.local_words = local_words_total;
            stats.cross_shard_words = cross_words_total;
            return (stats, None);
        }
    }
}
