//! The single-threaded lockstep engine.
//!
//! Two `InboxArena`s double-buffer the rounds: programs read the
//! current round's arena while their sends are written into the next
//! round's; the buffers swap at the round boundary and are reset (not
//! reallocated), so the steady-state loop performs no heap allocation.

use super::{
    cutoff_context, is_active, step_node, EngineKind, EngineRun, InboxArena, NetSpec, RoundEngine,
};
use crate::fault::FaultState;
use crate::sim::{NodeProgram, Outbox, RunStats, SimError};
use rand::rngs::StdRng;

/// Steps every node in id order on the calling thread.
#[derive(Clone, Copy, Debug, Default)]
pub struct SequentialEngine;

impl RoundEngine for SequentialEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Sequential
    }

    fn run<P: NodeProgram + Send>(
        &self,
        net: &NetSpec<'_>,
        programs: &mut [P],
        rngs: &mut [StdRng],
        max_rounds: usize,
    ) -> EngineRun {
        let n = net.graph.n();
        let mut stats = RunStats::default();
        // cur = messages delivered into this round; next = deliveries
        // being queued for the following round.
        let mut cur = InboxArena::new(n);
        let mut next = InboxArena::new(n);
        let mut outbox = Outbox::new(net.model);
        let mut faults = net.faults.map(|plan| FaultState::new(plan, n));
        let mut round = 0usize;
        loop {
            // Faults scheduled for this round fire first: the victims'
            // in-flight deliveries are purged before the cutoff check
            // and before any inbox is consumed.
            if let Some(fs) = faults.as_mut() {
                if fs.advance_to(round) {
                    cur.purge(|local, from| !fs.deliverable(from, local));
                }
            }
            if round >= max_rounds {
                let (undelivered, unfinished) = cutoff_context(&cur, programs, faults.as_ref(), 0);
                return EngineRun {
                    stats,
                    error: Some(SimError::ExceededMaxRounds {
                        max_rounds,
                        undelivered,
                        unfinished,
                    }),
                };
            }
            let mut any_sent = false;
            let mut queued_words = 0usize;
            for v in 0..n {
                if faults.as_ref().is_some_and(|f| f.is_dead(v)) {
                    continue;
                }
                if !is_active(round, cur.has_mail(v), &programs[v]) {
                    continue;
                }
                cur.sort(v);
                let inbox = cur.inbox(v);
                let next_arena = &mut next;
                let queued = &mut queued_words;
                let sent = step_node(
                    net,
                    v,
                    round,
                    &mut programs[v],
                    &mut rngs[v],
                    faults.as_ref(),
                    inbox,
                    &mut outbox,
                    &mut stats,
                    &mut |targets, payload| {
                        *queued += payload.len();
                        let off = next_arena.push_payload(payload);
                        for &u in targets {
                            next_arena.push_entry(u, v, off, payload.len() as u32);
                        }
                    },
                );
                any_sent |= sent;
            }
            stats.rounds += 1;
            round += 1;
            stats.note_round_load(next.total_msgs(), queued_words);
            std::mem::swap(&mut cur, &mut next);
            next.reset();
            let all_done = programs
                .iter()
                .enumerate()
                .all(|(v, p)| faults.as_ref().is_some_and(|f| f.is_dead(v)) || p.is_done());
            if all_done && !any_sent {
                break;
            }
        }
        EngineRun { stats, error: None }
    }
}
