//! The single-threaded lockstep engine.
//!
//! Two `InboxArena`s double-buffer the rounds: programs read the
//! current round's arena while their sends are written into the next
//! round's; the buffers swap at the round boundary and are reset (not
//! reallocated), so the steady-state loop performs no heap allocation.
//! The active scan streams the `ActivitySlab` bitset rows — one word
//! load decides 64 nodes, and fully quiescent blocks are skipped without
//! touching a program struct.

use super::{
    cutoff_context, step_node, ActivitySlab, EngineKind, EngineRun, InboxArena, NetSpec,
    RoundEngine,
};
use crate::fault::FaultState;
use crate::sim::{NodeProgram, Outbox, RunStats, SimError};
use decomp_graph::NodeId;
use rand::rngs::StdRng;

/// Steps every node in id order on the calling thread.
#[derive(Clone, Copy, Debug, Default)]
pub struct SequentialEngine;

impl RoundEngine for SequentialEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Sequential
    }

    fn run<P: NodeProgram + Send>(
        &self,
        net: &NetSpec<'_>,
        programs: &mut [P],
        rngs: &mut [StdRng],
        max_rounds: usize,
    ) -> EngineRun {
        let n = net.graph.n();
        let mut stats = RunStats::default();
        // cur = messages delivered into this round; next = deliveries
        // being queued for the following round.
        let mut cur = InboxArena::new(n);
        let mut next = InboxArena::new(n);
        let mut slab = ActivitySlab::new(n);
        let mut outbox = Outbox::new(net.model);
        // Active-neighbor scratch for growable runs (untouched — and
        // unallocated — on the settled fast path).
        let mut nbr_scratch: Vec<NodeId> = Vec::new();
        let mut faults = net.faults.map(|plan| FaultState::new(plan, n));
        // Not-yet-arrived vertices start dormant: skipped by the pending
        // scan (their RNG streams untouched) but blocking quiescence, so
        // the run idles to the last arrival round if it must.
        if let Some(fs) = faults.as_ref() {
            for v in 0..n {
                if fs.is_dormant(v) {
                    slab.mark_asleep(v);
                }
            }
        }
        let mut round = 0usize;
        loop {
            // Faults scheduled for this round fire first: the victims'
            // in-flight deliveries are purged before the cutoff check
            // and before any inbox is consumed, and arrivals wake (a
            // fresh arrival has `done = 0`, so it is stepped this round
            // like its own round 0).
            if let Some(fs) = faults.as_mut() {
                if fs.advance_to(round) {
                    cur.purge(|local, from| !fs.deliverable(from, local));
                    for v in 0..n {
                        if fs.is_dead(v) {
                            slab.mark_dead(v);
                        } else if !fs.is_dormant(v) {
                            slab.wake(v);
                        }
                    }
                }
            }
            if round >= max_rounds {
                let (undelivered, unfinished) =
                    cutoff_context(&cur, programs.iter().enumerate(), faults.as_ref());
                // One thread owns every node: the whole run is
                // shard-local by definition.
                stats.local_words = stats.words;
                return EngineRun {
                    stats,
                    error: Some(SimError::ExceededMaxRounds {
                        max_rounds,
                        undelivered,
                        unfinished,
                    }),
                };
            }
            let mut any_sent = false;
            let mut queued_words = 0usize;
            for w in 0..slab.num_words() {
                let mut pend = slab.pending_word(w, cur.mail_bits()[w], round);
                while pend != 0 {
                    let v = w * 64 + pend.trailing_zeros() as usize;
                    pend &= pend - 1;
                    cur.sort(v);
                    let inbox = cur.inbox(v);
                    let next_arena = &mut next;
                    let queued = &mut queued_words;
                    let sent = step_node(
                        net,
                        v,
                        round,
                        &mut programs[v],
                        &mut rngs[v],
                        faults.as_ref(),
                        inbox,
                        &mut outbox,
                        &mut nbr_scratch,
                        &mut stats,
                        &mut |targets, payload| {
                            *queued += payload.len();
                            let off = next_arena.push_payload(payload);
                            for &u in targets {
                                next_arena.push_entry(u, v, off, payload.len() as u32);
                            }
                        },
                    );
                    any_sent |= sent;
                    slab.set_done(v, programs[v].is_done());
                }
            }
            stats.rounds += 1;
            round += 1;
            stats.note_round_load(next.total_msgs(), queued_words);
            std::mem::swap(&mut cur, &mut next);
            next.reset();
            if slab.all_done() && !any_sent {
                break;
            }
        }
        stats.local_words = stats.words;
        EngineRun { stats, error: None }
    }
}
