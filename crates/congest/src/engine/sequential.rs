//! The single-threaded lockstep engine (the historical round loop of
//! `Simulator::run`, extracted verbatim).

use super::{is_active, step_node, EngineKind, EngineRun, NetSpec, RoundEngine};
use crate::message::Message;
use crate::sim::{NodeProgram, RunStats, SimError};
use decomp_graph::NodeId;
use rand::rngs::StdRng;

/// Steps every node in id order on the calling thread.
#[derive(Clone, Copy, Debug, Default)]
pub struct SequentialEngine;

impl RoundEngine for SequentialEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Sequential
    }

    fn run<P: NodeProgram + Send>(
        &self,
        net: &NetSpec<'_>,
        programs: &mut [P],
        rngs: &mut [StdRng],
        max_rounds: usize,
    ) -> EngineRun {
        let n = net.graph.n();
        let mut stats = RunStats::default();
        // inboxes[v] = messages to deliver to v at the start of this round
        let mut inboxes: Vec<Vec<(NodeId, Message)>> = vec![Vec::new(); n];
        let mut round = 0usize;
        loop {
            if round >= max_rounds {
                let undelivered = inboxes.iter().map(Vec::len).sum();
                let unfinished = programs.iter().filter(|p| !p.is_done()).count();
                return EngineRun {
                    stats,
                    error: Some(SimError::ExceededMaxRounds {
                        max_rounds,
                        undelivered,
                        unfinished,
                    }),
                };
            }
            let mut next_inboxes: Vec<Vec<(NodeId, Message)>> = vec![Vec::new(); n];
            let mut any_sent = false;
            for v in 0..n {
                if !is_active(round, &inboxes[v], &programs[v]) {
                    continue;
                }
                let sent = step_node(
                    net,
                    v,
                    round,
                    &mut programs[v],
                    &mut rngs[v],
                    &mut inboxes[v],
                    &mut stats,
                    &mut |u, m| next_inboxes[u].push((v, m)),
                );
                any_sent |= sent;
            }
            stats.rounds += 1;
            round += 1;
            inboxes = next_inboxes;
            let all_done = programs.iter().all(|p| p.is_done());
            if all_done && !any_sent {
                break;
            }
        }
        EngineRun { stats, error: None }
    }
}
