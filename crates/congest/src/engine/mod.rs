//! Pluggable round-execution engines.
//!
//! The [`crate::Simulator`] facade owns the network (graph, model, word
//! budget, per-node RNG streams) but delegates the actual round loop to a
//! [`RoundEngine`]. Two backends ship:
//!
//! * [`SequentialEngine`] — the classic single-threaded lockstep loop;
//! * [`ShardedEngine`] — a deterministic multi-core backend that
//!   partitions the nodes into contiguous shards, steps each shard's
//!   programs on its own scoped worker thread, and exchanges cross-shard
//!   traffic through per-shard mailboxes under a round barrier.
//!
//! ## Determinism contract
//!
//! Every engine must produce **bit-identical** results for the same
//! network, programs, and seed — outputs, per-node RNG streams, *and*
//! [`RunStats`]. Three properties of the round semantics make this cheap
//! to guarantee:
//!
//! 1. each node's RNG is an independent seeded stream, advanced only by
//!    that node's own [`NodeProgram::round`] calls, so execution order
//!    across nodes never leaks into the random choices;
//! 2. a node receives at most one message per neighbor per round (in both
//!    models), and inboxes are sorted by sender id before delivery, so the
//!    order in which engines *enqueue* messages is unobservable;
//! 3. message/word counters are commutative sums; the sharded engine
//!    reduces them shard-locally and merges in shard order, which yields
//!    exactly the sequential totals.
//!
//! The equivalence is enforced by `tests/engine_equivalence.rs` (every
//! testkit fixture family, sequential vs. 2- and 4-shard runs) and by the
//! CI job that reruns the simulator-driven suites — golden registry
//! included — under `DECOMP_ENGINE=sharded:4`.

pub mod sequential;
pub mod sharded;

pub use sequential::SequentialEngine;
pub use sharded::ShardedEngine;

use crate::message::Message;
use crate::sim::{Model, NodeCtx, NodeProgram, RunStats, SimError};
use decomp_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use std::fmt;
use std::str::FromStr;

/// Default shard count used by `EngineKind::parse("sharded")`.
pub const DEFAULT_SHARDS: usize = 4;

/// Selects the round-execution backend of a [`crate::Simulator`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Single-threaded lockstep loop (the default).
    Sequential,
    /// Scoped-thread worker pool over `shards` contiguous node shards.
    Sharded {
        /// Number of shards (worker threads). Clamped to `n` at run time;
        /// `1` degenerates to the sequential loop.
        shards: usize,
    },
}

impl EngineKind {
    /// Parses `"sequential"`, `"sharded"` (= [`DEFAULT_SHARDS`] shards),
    /// or `"sharded:<N>"`.
    ///
    /// # Errors
    /// Returns a human-readable message on unknown names or bad shard
    /// counts.
    pub fn parse(s: &str) -> Result<EngineKind, String> {
        match s {
            "sequential" | "seq" => Ok(EngineKind::Sequential),
            "sharded" => Ok(EngineKind::Sharded {
                shards: DEFAULT_SHARDS,
            }),
            _ => match s.strip_prefix("sharded:") {
                Some(num) => match num.parse::<usize>() {
                    Ok(shards) if shards >= 1 => Ok(EngineKind::Sharded { shards }),
                    _ => Err(format!("bad shard count in engine spec '{s}'")),
                },
                None => Err(format!(
                    "unknown engine '{s}' (expected 'sequential', 'sharded', or 'sharded:<N>')"
                )),
            },
        }
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineKind::Sequential => write!(f, "sequential"),
            EngineKind::Sharded { shards } => write!(f, "sharded:{shards}"),
        }
    }
}

impl FromStr for EngineKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        EngineKind::parse(s)
    }
}

/// The immutable network parameters an engine executes against.
pub struct NetSpec<'g> {
    /// Communication topology.
    pub graph: &'g Graph,
    /// The CONGEST variant whose constraints are enforced.
    pub model: Model,
    /// Per-message payload budget in words.
    pub word_budget: usize,
}

/// The outcome of one engine run.
///
/// `stats` is populated even when the run errors, so the facade can keep
/// cumulative accounting for partially executed protocols.
pub struct EngineRun {
    /// Rounds / messages / words executed before termination or error.
    pub stats: RunStats,
    /// `None` on quiescence; the error otherwise.
    pub error: Option<SimError>,
}

/// A round-execution backend.
///
/// An engine steps `programs` (one per node, indexed by node id) in
/// lockstep rounds over `net` until global quiescence (all programs done
/// and no messages in flight) or until `max_rounds` is exhausted,
/// honoring the semantics documented on [`crate::Simulator`]: messages
/// sent in round `r` are delivered (sorted by sender id) at the start of
/// round `r + 1`, and a node is stepped iff it is active (round 0,
/// non-empty inbox, or not done). Implementations must uphold the
/// [determinism contract](self).
pub trait RoundEngine {
    /// This engine's selector (for display and re-configuration).
    fn kind(&self) -> EngineKind;

    /// Runs `programs` to quiescence; see the trait docs for semantics.
    fn run<P: NodeProgram + Send>(
        &self,
        net: &NetSpec<'_>,
        programs: &mut [P],
        rngs: &mut [StdRng],
        max_rounds: usize,
    ) -> EngineRun;
}

/// Whether node `v`'s program must be stepped this round.
pub(crate) fn is_active<P: NodeProgram>(
    round: usize,
    inbox: &[(NodeId, Message)],
    program: &P,
) -> bool {
    round == 0 || !inbox.is_empty() || !program.is_done()
}

/// Executes one node's round: sorts the inbox by sender, runs the program
/// against a fresh outbox, then accounts and routes every outgoing
/// message through `deliver(receiver, payload)`.
///
/// Returns `true` iff the node sent at least one message. Both engines
/// funnel through this helper, so per-node behavior (RNG consumption,
/// model enforcement, stats accounting) is identical by construction.
#[allow(clippy::too_many_arguments)] // the full per-node execution state, threaded once per engine
pub(crate) fn step_node<P: NodeProgram>(
    net: &NetSpec<'_>,
    v: NodeId,
    round: usize,
    program: &mut P,
    rng: &mut StdRng,
    inbox: &mut [(NodeId, Message)],
    stats: &mut RunStats,
    deliver: &mut impl FnMut(NodeId, Message),
) -> bool {
    inbox.sort_by_key(|(from, _)| *from);
    let neighbors = net.graph.neighbors(v);
    let mut outbox = crate::sim::Outbox::new(net.model, neighbors.len());
    {
        let mut ctx = NodeCtx::new(
            v,
            net.graph.n(),
            round,
            neighbors,
            net.model,
            net.word_budget,
            &mut outbox,
            rng,
        );
        program.round(&mut ctx, inbox);
    }
    outbox.drain(neighbors, |u, m| {
        stats.messages += 1;
        stats.words += m.len();
        deliver(u, m);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for kind in [
            EngineKind::Sequential,
            EngineKind::Sharded { shards: 2 },
            EngineKind::Sharded { shards: 7 },
        ] {
            assert_eq!(EngineKind::parse(&kind.to_string()), Ok(kind));
        }
        assert_eq!(
            EngineKind::parse("sharded"),
            Ok(EngineKind::Sharded {
                shards: DEFAULT_SHARDS
            })
        );
        assert_eq!(EngineKind::parse("seq"), Ok(EngineKind::Sequential));
        assert!(EngineKind::parse("async").is_err());
        assert!(EngineKind::parse("sharded:0").is_err());
        assert!(EngineKind::parse("sharded:x").is_err());
        assert_eq!("sharded:3".parse(), Ok(EngineKind::Sharded { shards: 3 }));
    }
}
