//! Pluggable round-execution engines.
//!
//! The [`crate::Simulator`] facade owns the network (graph, model, word
//! budget, per-node RNG streams) but delegates the actual round loop to a
//! [`RoundEngine`]. Two backends ship:
//!
//! * [`SequentialEngine`] — the classic single-threaded lockstep loop;
//! * [`ShardedEngine`] — a deterministic multi-core backend that
//!   partitions the nodes into shards via a pluggable [`partition`]
//!   (balanced-contiguous by default, topology-aware BFS growth under
//!   `sharded:<N>:topo`), steps each shard's programs on its own scoped
//!   worker thread, delivers same-shard traffic directly into the next
//!   round's inbox arena (bypassing the mailbox plane entirely), and
//!   exchanges only cross-shard traffic through per-shard mailboxes
//!   under a round barrier.
//!
//! Both engines keep per-node *activity* state as struct-of-arrays
//! bitset slabs (see `ActivitySlab`): done/dead/mail live in packed
//! per-shard words, so the per-round active scan streams 64 nodes per
//! load instead of chasing one program struct per node.
//!
//! ## Determinism contract
//!
//! Every engine must produce **bit-identical** results for the same
//! network, programs, and seed — outputs, per-node RNG streams, *and*
//! [`RunStats`]. Three properties of the round semantics make this cheap
//! to guarantee:
//!
//! 1. each node's RNG is an independent seeded stream, advanced only by
//!    that node's own [`NodeProgram::round`] calls, so execution order
//!    across nodes never leaks into the random choices;
//! 2. a node receives at most one message per neighbor per round (in both
//!    models), and inboxes are sorted by sender id before delivery, so the
//!    order in which engines *enqueue* messages is unobservable;
//! 3. message/word counters are commutative sums; the sharded engine
//!    reduces them shard-locally and merges in shard order, which yields
//!    exactly the sequential totals — and the peak-memory counters are
//!    counted on the *sender* side (payload words once per send,
//!    messages once per receiver) and summed into identical global
//!    per-round totals on every worker, so they are engine-independent
//!    too.
//!
//! Both engines deliver through flat per-shard `InboxArena`s — one
//! contiguous payload-word buffer plus `(sender, offset, length)`
//! entries per node, reset (never reallocated) at the round boundary —
//! and route sends through a reusable span-based `Outbox`, so the
//! steady-state round loop performs no heap allocation and a broadcast
//! payload is stored once per shard instead of cloned per receiver
//! (the message-plane invariants of `docs/DETERMINISM.md`).
//!
//! The one deliberate exception: the [`RunStats`] locality split
//! (`local_words` / `cross_shard_words`) describes the *partition*, not
//! the protocol — the sequential engine reports everything local, and
//! each sharded partition reports its own cut. Cross-engine comparisons
//! normalize it away with [`RunStats::locality_blind`]; every other
//! counter (including `words == local_words + cross_shard_words`) is
//! engine-independent.
//!
//! The equivalence is enforced by `tests/engine_equivalence.rs` (every
//! testkit fixture family, sequential vs. 2- and 4-shard contiguous and
//! 4-shard topo runs) and by the CI jobs that rerun the simulator-driven
//! suites — golden registry included — under `DECOMP_ENGINE=sharded:4`
//! and `DECOMP_ENGINE=sharded:4:topo`.

pub mod partition;
pub mod sequential;
pub mod sharded;

pub use partition::PartitionKind;
pub use sequential::SequentialEngine;
pub use sharded::ShardedEngine;

use crate::fault::{FaultPlan, FaultState};
use crate::sim::{InEntry, Inbox, Model, NodeCtx, NodeProgram, Outbox, RunStats, SimError};
use decomp_graph::{Graph, GrowableGraph, NodeId, TopologyView};
use rand::rngs::StdRng;
use std::fmt;
use std::str::FromStr;

/// Default shard count used by `EngineKind::parse("sharded")`.
pub const DEFAULT_SHARDS: usize = 4;

/// Selects the round-execution backend of a [`crate::Simulator`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Single-threaded lockstep loop (the default).
    Sequential,
    /// Scoped-thread worker pool over `shards` node shards grouped by
    /// `partition`.
    Sharded {
        /// Number of shards (worker threads). Clamped to `n` at run time;
        /// `1` degenerates to the sequential loop.
        shards: usize,
        /// How nodes are grouped into shards; cannot affect outputs,
        /// only the locality split (see [`partition`]).
        partition: PartitionKind,
    },
}

impl EngineKind {
    /// A sharded engine over balanced contiguous id ranges (the
    /// deterministic default partition).
    pub fn sharded(shards: usize) -> EngineKind {
        EngineKind::Sharded {
            shards,
            partition: PartitionKind::Contiguous,
        }
    }

    /// A sharded engine over the topology-aware BFS-growth partition.
    pub fn sharded_topo(shards: usize) -> EngineKind {
        EngineKind::Sharded {
            shards,
            partition: PartitionKind::Topo,
        }
    }

    /// Parses `"sequential"`, `"sharded"` (= [`DEFAULT_SHARDS`] shards),
    /// `"sharded:<N>"`, or `"sharded:<N>:topo"` /
    /// `"sharded:<N>:contig"` to pick the partitioner.
    ///
    /// # Errors
    /// Returns a human-readable message on unknown names, bad shard
    /// counts, or unknown partition kinds.
    pub fn parse(s: &str) -> Result<EngineKind, String> {
        match s {
            "sequential" | "seq" => Ok(EngineKind::Sequential),
            "sharded" => Ok(EngineKind::sharded(DEFAULT_SHARDS)),
            _ => match s.strip_prefix("sharded:") {
                Some(rest) => {
                    let (num, partition) = match rest.split_once(':') {
                        None => (rest, PartitionKind::Contiguous),
                        Some((num, "topo")) => (num, PartitionKind::Topo),
                        Some((num, "contig" | "contiguous")) => (num, PartitionKind::Contiguous),
                        Some((_, other)) => {
                            return Err(format!(
                                "unknown partition '{other}' in engine spec '{s}' \
                                 (expected 'topo' or 'contig')"
                            ))
                        }
                    };
                    match num.parse::<usize>() {
                        Ok(shards) if shards >= 1 => Ok(EngineKind::Sharded { shards, partition }),
                        _ => Err(format!("bad shard count in engine spec '{s}'")),
                    }
                }
                None => Err(format!(
                    "unknown engine '{s}' (expected 'sequential', 'sharded', \
                     'sharded:<N>', or 'sharded:<N>:topo')"
                )),
            },
        }
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineKind::Sequential => write!(f, "sequential"),
            EngineKind::Sharded {
                shards,
                partition: PartitionKind::Contiguous,
            } => write!(f, "sharded:{shards}"),
            EngineKind::Sharded { shards, partition } => {
                write!(f, "sharded:{shards}:{partition}")
            }
        }
    }
}

impl FromStr for EngineKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        EngineKind::parse(s)
    }
}

/// The immutable network parameters an engine executes against.
pub struct NetSpec<'g> {
    /// Bookkeeping topology: vertex count, partitioning, buffer sizing.
    /// For settled runs this is also the delivery topology; growable
    /// runs deliver over [`NetSpec::view`] instead (`graph` is then the
    /// growable topology's CSR base, which may lack — or after a
    /// compaction, contain-but-never-reveal — future edges).
    pub graph: &'g Graph,
    /// Growable topology, when the run's adjacency is revealed only at
    /// arrival rounds: engines deliver over
    /// [`GrowableGraph::neighbors_at`] with epoch = round, so a program
    /// can never observe a future edge (degree included). `None` keeps
    /// the settled fast path byte-for-byte.
    pub growth: Option<&'g GrowableGraph>,
    /// The CONGEST variant whose constraints are enforced.
    pub model: Model,
    /// Per-message payload budget in words.
    pub word_budget: usize,
    /// Deterministic failure schedule, if any (see [`crate::fault`]).
    /// Engines derive identical per-run `FaultState`s from it — the
    /// sharded backend builds one per worker, advanced in lockstep.
    pub faults: Option<&'g FaultPlan>,
    /// The run's base seed. Engines may use it for *non-observable*
    /// choices only — today, seeding the topology-aware partitioner —
    /// never for anything that reaches program state or RNG streams.
    pub seed: u64,
}

impl<'g> NetSpec<'g> {
    /// The topology view engines deliver over: static for settled runs,
    /// the growable graph otherwise.
    #[inline]
    pub fn view(&self) -> TopologyView<'g> {
        match self.growth {
            None => TopologyView::Static(self.graph),
            Some(gg) => TopologyView::Growable(gg),
        }
    }
}

/// The outcome of one engine run.
///
/// `stats` is populated even when the run errors, so the facade can keep
/// cumulative accounting for partially executed protocols.
pub struct EngineRun {
    /// Rounds / messages / words executed before termination or error.
    pub stats: RunStats,
    /// `None` on quiescence; the error otherwise.
    pub error: Option<SimError>,
}

/// A round-execution backend.
///
/// An engine steps `programs` (one per node, indexed by node id) in
/// lockstep rounds over `net` until global quiescence (all programs done
/// and no messages in flight) or until `max_rounds` is exhausted,
/// honoring the semantics documented on [`crate::Simulator`]: messages
/// sent in round `r` are delivered (sorted by sender id) at the start of
/// round `r + 1`, and a node is stepped iff it is active (round 0,
/// non-empty inbox, or not done). Implementations must uphold the
/// [determinism contract](self).
pub trait RoundEngine {
    /// This engine's selector (for display and re-configuration).
    fn kind(&self) -> EngineKind;

    /// Runs `programs` to quiescence; see the trait docs for semantics.
    fn run<P: NodeProgram + Send>(
        &self,
        net: &NetSpec<'_>,
        programs: &mut [P],
        rngs: &mut [StdRng],
        max_rounds: usize,
    ) -> EngineRun;
}

/// A flat per-shard inbox arena: one contiguous word buffer holding every
/// payload delivered into the current round, plus per-node
/// `(sender, offset, length)` entry lists. Reset — **not** reallocated —
/// each round: `reset` keeps every buffer's capacity, so the steady
/// state allocates nothing (the memory-plane invariant
/// `docs/DETERMINISM.md` documents).
pub(crate) struct InboxArena {
    words: Vec<u64>,
    entries: Vec<Vec<InEntry>>,
    /// Local node indices with at least one entry (so `reset` is
    /// `O(touched)`, not `O(n)`).
    touched: Vec<u32>,
    /// Packed has-mail bits, one per local node — the SoA row the
    /// active scan streams (see [`ActivitySlab::pending_word`]).
    mail: Vec<u64>,
    total_msgs: usize,
}

impl InboxArena {
    pub(crate) fn new(nodes: usize) -> Self {
        InboxArena {
            words: Vec::new(),
            entries: vec![Vec::new(); nodes],
            touched: Vec::new(),
            mail: vec![0; nodes.div_ceil(64)],
            total_msgs: 0,
        }
    }

    /// Clears all deliveries, keeping buffer capacity.
    pub(crate) fn reset(&mut self) {
        for &local in &self.touched {
            self.entries[local as usize].clear();
            self.mail[local as usize / 64] &= !(1 << (local % 64));
        }
        self.touched.clear();
        self.words.clear();
        self.total_msgs = 0;
    }

    /// Appends one payload copy; returns its offset.
    pub(crate) fn push_payload(&mut self, payload: &[u64]) -> u32 {
        let off = u32::try_from(self.words.len()).expect("inbox arena exceeds u32 words");
        self.words.extend_from_slice(payload);
        off
    }

    /// Records a delivery of `(off, len)` from `from` to local node
    /// `local`.
    pub(crate) fn push_entry(&mut self, local: usize, from: NodeId, off: u32, len: u32) {
        if self.entries[local].is_empty() {
            self.touched.push(local as u32);
            self.mail[local / 64] |= 1 << (local % 64);
        }
        self.entries[local].push(InEntry {
            from: from as u32,
            off,
            len,
        });
        self.total_msgs += 1;
    }

    /// The packed has-mail bitset row (64 local nodes per word).
    pub(crate) fn mail_bits(&self) -> &[u64] {
        &self.mail
    }

    /// Sorts `local`'s entries by sender id (senders are unique per
    /// round, so the order is total and engine-independent).
    pub(crate) fn sort(&mut self, local: usize) {
        self.entries[local].sort_unstable_by_key(|e| e.from);
    }

    /// The inbox view for local node `local`.
    pub(crate) fn inbox(&self, local: usize) -> Inbox<'_> {
        Inbox::new(&self.words, &self.entries[local])
    }

    /// Total messages queued across all nodes (the `undelivered` count
    /// at a round-limit cutoff).
    pub(crate) fn total_msgs(&self) -> usize {
        self.total_msgs
    }

    /// Removes every delivery `drop(local, sender)` rejects — the
    /// fault-firing purge (a dead node's pending inbox, and anything a
    /// dead or disconnected sender had in flight toward this shard).
    /// Payload words stay in the buffer until the round-boundary reset;
    /// only the entries (and `total_msgs`) go away.
    pub(crate) fn purge(&mut self, mut drop: impl FnMut(usize, NodeId) -> bool) {
        let mut t = 0;
        while t < self.touched.len() {
            let local = self.touched[t] as usize;
            let before = self.entries[local].len();
            self.entries[local].retain(|e| !drop(local, e.from as NodeId));
            self.total_msgs -= before - self.entries[local].len();
            if self.entries[local].is_empty() {
                self.touched.swap_remove(t);
                self.mail[local / 64] &= !(1 << (local % 64));
            } else {
                t += 1;
            }
        }
    }
}

/// Struct-of-arrays per-shard activity state: packed done/dead bitset
/// rows sized to the shard's node count, combined per 64-node block with
/// the arena's has-mail row to drive the active scan. One word load
/// covers 64 nodes, and fully-quiescent blocks (all done, no mail) are
/// skipped without touching a single program struct.
///
/// `done` caches each program's last reported `is_done()`. That cache is
/// sound because `is_done()` is a pure function of program state, and
/// program state only changes inside that node's own `round()` call —
/// so the bit is refreshed exactly when it can change, right after the
/// step. Nodes skipped in a round keep their (still valid) bit.
pub(crate) struct ActivitySlab {
    done: Vec<u64>,
    dead: Vec<u64>,
    /// Dormant (not-yet-arrived) nodes: masked out of the pending scan
    /// like the dead, but they *block* quiescence (`done` stays 0), so a
    /// run idles until every arrival has fired rather than finishing
    /// without them.
    asleep: Vec<u64>,
    n: usize,
}

impl ActivitySlab {
    pub(crate) fn new(n: usize) -> Self {
        ActivitySlab {
            done: vec![0; n.div_ceil(64)],
            dead: vec![0; n.div_ceil(64)],
            asleep: vec![0; n.div_ceil(64)],
            n,
        }
    }

    pub(crate) fn num_words(&self) -> usize {
        self.done.len()
    }

    /// Refreshes local node `i`'s cached done bit after its step.
    #[inline]
    pub(crate) fn set_done(&mut self, i: usize, done: bool) {
        let mask = 1u64 << (i % 64);
        if done {
            self.done[i / 64] |= mask;
        } else {
            self.done[i / 64] &= !mask;
        }
    }

    /// Marks local node `i` as faulted (never stepped again, excluded
    /// from quiescence).
    #[inline]
    pub(crate) fn mark_dead(&mut self, i: usize) {
        self.dead[i / 64] |= 1 << (i % 64);
    }

    #[cfg(test)]
    pub(crate) fn is_dead(&self, i: usize) -> bool {
        self.dead[i / 64] >> (i % 64) & 1 == 1
    }

    /// Marks local node `i` dormant at init (arrival pending): skipped by
    /// the pending scan but counted against quiescence until it wakes.
    #[inline]
    pub(crate) fn mark_asleep(&mut self, i: usize) {
        self.asleep[i / 64] |= 1 << (i % 64);
    }

    /// Wakes local node `i` (its arrival fired). Idempotent; a freshly
    /// woken node has `done = 0`, so it is stepped like its own round 0
    /// on the next pending scan.
    #[inline]
    pub(crate) fn wake(&mut self, i: usize) {
        self.asleep[i / 64] &= !(1 << (i % 64));
    }

    /// The 64-node pending mask for block `w`: nodes to step this round
    /// (`mail | !done`, round 0 steps everyone), gated on being alive
    /// and in range. `mail_word` is the arena's [`InboxArena::mail_bits`]
    /// word for the same block — together they encode the activation
    /// rule of [`RoundEngine::run`] (round 0, non-empty inbox, or not
    /// done) bit for bit.
    #[inline]
    pub(crate) fn pending_word(&self, w: usize, mail_word: u64, round: usize) -> u64 {
        let tail = if (w + 1) * 64 > self.n {
            !0u64 >> (64 - self.n % 64)
        } else {
            !0u64
        };
        let want = if round == 0 {
            !0u64
        } else {
            mail_word | !self.done[w]
        };
        want & !self.dead[w] & !self.asleep[w] & tail
    }

    /// Whether every live node is done — the shard-local half of the
    /// quiescence test.
    pub(crate) fn all_done(&self) -> bool {
        self.done
            .iter()
            .zip(&self.dead)
            .enumerate()
            .all(|(w, (&done, &dead))| {
                let tail = if (w + 1) * 64 > self.n {
                    !0u64 >> (64 - self.n % 64)
                } else {
                    !0u64
                };
                !done & !dead & tail == 0
            })
    }
}

/// The round-limit error context, counted at one shared point so both
/// engines agree bit-for-bit even when the cap hits with messages in
/// flight mid-round: `undelivered` is the arena's post-purge in-flight
/// count, `unfinished` the surviving (non-faulted) programs still
/// reporting `!is_done()`. The sharded engine calls this per shard with
/// its `(global id, program)` pairs and sums.
pub(crate) fn cutoff_context<'a, P: NodeProgram + 'a>(
    arena: &InboxArena,
    programs: impl Iterator<Item = (NodeId, &'a P)>,
    faults: Option<&FaultState<'_>>,
) -> (usize, usize) {
    let undelivered = arena.total_msgs();
    let unfinished = programs
        .filter(|&(v, p)| faults.is_none_or(|f| !f.is_dead(v)) && !p.is_done())
        .count();
    (undelivered, unfinished)
}

/// Executes one node's round: runs the program against the engine's
/// reusable outbox, then accounts and routes every outgoing
/// `(receivers, payload)` group through `sink` — receivers sharing one
/// payload copy (a local broadcast) arrive in a single call, so delivery
/// never clones payloads.
///
/// Under an active fault schedule, targets that are dead or sit behind a
/// cut edge are filtered *here*, before any accounting: the surviving
/// receivers arrive as maximal contiguous runs, and stats count only
/// what is actually delivered. Both engines get identical runs because
/// the split happens in this shared helper.
///
/// Returns `true` iff the node attempted a send (even one whose targets
/// all died — the attempt still holds the run open one round, matching
/// the degree-0 broadcast semantics). Both engines funnel through this
/// helper, so per-node behavior (RNG consumption, model enforcement,
/// stats accounting) is identical by construction. The caller sorts the
/// inbox (see [`InboxArena::sort`]) before building the view.
#[allow(clippy::too_many_arguments)] // the full per-node execution state, threaded once per engine
pub(crate) fn step_node<P: NodeProgram>(
    net: &NetSpec<'_>,
    v: NodeId,
    round: usize,
    program: &mut P,
    rng: &mut StdRng,
    faults: Option<&FaultState<'_>>,
    inbox: Inbox<'_>,
    outbox: &mut Outbox,
    nbr_scratch: &mut Vec<NodeId>,
    stats: &mut RunStats,
    sink: &mut impl FnMut(&[NodeId], &[u64]),
) -> bool {
    // Delivery runs over the topology view at epoch = round: the static
    // path is the CSR slice (settled runs byte-identical to the
    // pre-growth engines), the growable path materializes the active
    // neighbors into the engine-owned scratch buffer. The list is
    // stable for the whole round (epochs advance only at round starts),
    // so the outbox's per-neighbor spans stay consistent.
    let neighbors =
        net.view()
            .active_neighbors(v, round.min(u32::MAX as usize) as u32, nbr_scratch);
    outbox.reset(neighbors.len());
    {
        let mut ctx = NodeCtx::new(
            v,
            net.graph.n(),
            round,
            neighbors,
            net.model,
            net.word_budget,
            outbox,
            rng,
        );
        program.round(&mut ctx, &inbox);
    }
    let live_faults = faults.filter(|f| f.any_fired());
    outbox.drain(neighbors, |targets, payload| match live_faults {
        None => {
            stats.messages += targets.len();
            stats.words += payload.len() * targets.len();
            sink(targets, payload);
        }
        Some(f) => {
            let mut a = 0;
            while a < targets.len() {
                if !f.deliverable(v, targets[a]) {
                    a += 1;
                    continue;
                }
                let mut b = a + 1;
                while b < targets.len() && f.deliverable(v, targets[b]) {
                    b += 1;
                }
                stats.messages += b - a;
                stats.words += payload.len() * (b - a);
                sink(&targets[a..b], payload);
                a = b;
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for kind in [
            EngineKind::Sequential,
            EngineKind::sharded(2),
            EngineKind::sharded(7),
            EngineKind::sharded_topo(4),
            EngineKind::sharded_topo(1),
        ] {
            assert_eq!(EngineKind::parse(&kind.to_string()), Ok(kind));
        }
        assert_eq!(
            EngineKind::parse("sharded"),
            Ok(EngineKind::sharded(DEFAULT_SHARDS))
        );
        assert_eq!(EngineKind::parse("seq"), Ok(EngineKind::Sequential));
        assert_eq!(
            EngineKind::parse("sharded:4:contig"),
            Ok(EngineKind::sharded(4))
        );
        assert_eq!(
            EngineKind::parse("sharded:8:topo"),
            Ok(EngineKind::sharded_topo(8))
        );
        assert!(EngineKind::parse("async").is_err());
        assert!(EngineKind::parse("sharded:0").is_err());
        assert!(EngineKind::parse("sharded:x").is_err());
        assert!(EngineKind::parse("sharded:4:metis").is_err());
        assert!(EngineKind::parse("sharded:0:topo").is_err());
        assert_eq!("sharded:3".parse(), Ok(EngineKind::sharded(3)));
        assert_eq!("sharded:3:topo".parse(), Ok(EngineKind::sharded_topo(3)));
    }

    #[test]
    fn activity_slab_pending_masks() {
        let mut slab = ActivitySlab::new(70);
        // Round 0 steps every live node, whatever the cached bits say.
        assert_eq!(slab.pending_word(0, 0, 0), !0u64);
        assert_eq!(slab.pending_word(1, 0, 0), 0x3f, "tail mask caps at n");
        // Afterward: mail or not-done, minus the dead.
        slab.set_done(3, true);
        slab.set_done(64, true);
        slab.mark_dead(5);
        assert!(slab.is_dead(5));
        assert_eq!(slab.pending_word(0, 0, 1), !((1u64 << 3) | (1 << 5)));
        assert_eq!(slab.pending_word(0, 1 << 3, 1), !(1u64 << 5));
        assert_eq!(slab.pending_word(1, 0, 1), 0x3f & !1);
        assert!(!slab.all_done());
        for i in 0..70 {
            slab.set_done(i, true);
        }
        assert!(slab.all_done());
        // Dead nodes are excluded from the quiescence test.
        slab.set_done(5, false);
        assert!(slab.all_done(), "dead nodes never block quiescence");
        // Dormant nodes: masked out of the pending scan (even at round
        // 0), but they block quiescence until woken.
        slab.set_done(7, false);
        slab.mark_asleep(7);
        assert_eq!(slab.pending_word(0, 0, 0) & (1 << 7), 0);
        assert_eq!(slab.pending_word(0, 1 << 7, 9) & (1 << 7), 0);
        assert!(!slab.all_done(), "pending arrivals keep the run alive");
        slab.wake(7);
        assert_eq!(slab.pending_word(0, 0, 9) & (1 << 7), 1 << 7);
        slab.set_done(7, true);
        assert!(slab.all_done());
    }
}
