//! Pluggable round-execution engines.
//!
//! The [`crate::Simulator`] facade owns the network (graph, model, word
//! budget, per-node RNG streams) but delegates the actual round loop to a
//! [`RoundEngine`]. Two backends ship:
//!
//! * [`SequentialEngine`] — the classic single-threaded lockstep loop;
//! * [`ShardedEngine`] — a deterministic multi-core backend that
//!   partitions the nodes into contiguous shards, steps each shard's
//!   programs on its own scoped worker thread, and exchanges cross-shard
//!   traffic through per-shard mailboxes under a round barrier.
//!
//! ## Determinism contract
//!
//! Every engine must produce **bit-identical** results for the same
//! network, programs, and seed — outputs, per-node RNG streams, *and*
//! [`RunStats`]. Three properties of the round semantics make this cheap
//! to guarantee:
//!
//! 1. each node's RNG is an independent seeded stream, advanced only by
//!    that node's own [`NodeProgram::round`] calls, so execution order
//!    across nodes never leaks into the random choices;
//! 2. a node receives at most one message per neighbor per round (in both
//!    models), and inboxes are sorted by sender id before delivery, so the
//!    order in which engines *enqueue* messages is unobservable;
//! 3. message/word counters are commutative sums; the sharded engine
//!    reduces them shard-locally and merges in shard order, which yields
//!    exactly the sequential totals — and the peak-memory counters are
//!    counted on the *sender* side (payload words once per send,
//!    messages once per receiver) and summed into identical global
//!    per-round totals on every worker, so they are engine-independent
//!    too.
//!
//! Both engines deliver through flat per-shard `InboxArena`s — one
//! contiguous payload-word buffer plus `(sender, offset, length)`
//! entries per node, reset (never reallocated) at the round boundary —
//! and route sends through a reusable span-based `Outbox`, so the
//! steady-state round loop performs no heap allocation and a broadcast
//! payload is stored once per shard instead of cloned per receiver
//! (the message-plane invariants of `docs/DETERMINISM.md`).
//!
//! The equivalence is enforced by `tests/engine_equivalence.rs` (every
//! testkit fixture family, sequential vs. 2- and 4-shard runs) and by the
//! CI job that reruns the simulator-driven suites — golden registry
//! included — under `DECOMP_ENGINE=sharded:4`.

pub mod sequential;
pub mod sharded;

pub use sequential::SequentialEngine;
pub use sharded::ShardedEngine;

use crate::fault::{FaultPlan, FaultState};
use crate::sim::{InEntry, Inbox, Model, NodeCtx, NodeProgram, Outbox, RunStats, SimError};
use decomp_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use std::fmt;
use std::str::FromStr;

/// Default shard count used by `EngineKind::parse("sharded")`.
pub const DEFAULT_SHARDS: usize = 4;

/// Selects the round-execution backend of a [`crate::Simulator`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Single-threaded lockstep loop (the default).
    Sequential,
    /// Scoped-thread worker pool over `shards` contiguous node shards.
    Sharded {
        /// Number of shards (worker threads). Clamped to `n` at run time;
        /// `1` degenerates to the sequential loop.
        shards: usize,
    },
}

impl EngineKind {
    /// Parses `"sequential"`, `"sharded"` (= [`DEFAULT_SHARDS`] shards),
    /// or `"sharded:<N>"`.
    ///
    /// # Errors
    /// Returns a human-readable message on unknown names or bad shard
    /// counts.
    pub fn parse(s: &str) -> Result<EngineKind, String> {
        match s {
            "sequential" | "seq" => Ok(EngineKind::Sequential),
            "sharded" => Ok(EngineKind::Sharded {
                shards: DEFAULT_SHARDS,
            }),
            _ => match s.strip_prefix("sharded:") {
                Some(num) => match num.parse::<usize>() {
                    Ok(shards) if shards >= 1 => Ok(EngineKind::Sharded { shards }),
                    _ => Err(format!("bad shard count in engine spec '{s}'")),
                },
                None => Err(format!(
                    "unknown engine '{s}' (expected 'sequential', 'sharded', or 'sharded:<N>')"
                )),
            },
        }
    }
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineKind::Sequential => write!(f, "sequential"),
            EngineKind::Sharded { shards } => write!(f, "sharded:{shards}"),
        }
    }
}

impl FromStr for EngineKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        EngineKind::parse(s)
    }
}

/// The immutable network parameters an engine executes against.
pub struct NetSpec<'g> {
    /// Communication topology.
    pub graph: &'g Graph,
    /// The CONGEST variant whose constraints are enforced.
    pub model: Model,
    /// Per-message payload budget in words.
    pub word_budget: usize,
    /// Deterministic failure schedule, if any (see [`crate::fault`]).
    /// Engines derive identical per-run `FaultState`s from it — the
    /// sharded backend builds one per worker, advanced in lockstep.
    pub faults: Option<&'g FaultPlan>,
}

/// The outcome of one engine run.
///
/// `stats` is populated even when the run errors, so the facade can keep
/// cumulative accounting for partially executed protocols.
pub struct EngineRun {
    /// Rounds / messages / words executed before termination or error.
    pub stats: RunStats,
    /// `None` on quiescence; the error otherwise.
    pub error: Option<SimError>,
}

/// A round-execution backend.
///
/// An engine steps `programs` (one per node, indexed by node id) in
/// lockstep rounds over `net` until global quiescence (all programs done
/// and no messages in flight) or until `max_rounds` is exhausted,
/// honoring the semantics documented on [`crate::Simulator`]: messages
/// sent in round `r` are delivered (sorted by sender id) at the start of
/// round `r + 1`, and a node is stepped iff it is active (round 0,
/// non-empty inbox, or not done). Implementations must uphold the
/// [determinism contract](self).
pub trait RoundEngine {
    /// This engine's selector (for display and re-configuration).
    fn kind(&self) -> EngineKind;

    /// Runs `programs` to quiescence; see the trait docs for semantics.
    fn run<P: NodeProgram + Send>(
        &self,
        net: &NetSpec<'_>,
        programs: &mut [P],
        rngs: &mut [StdRng],
        max_rounds: usize,
    ) -> EngineRun;
}

/// Whether node `v`'s program must be stepped this round.
pub(crate) fn is_active<P: NodeProgram>(round: usize, has_mail: bool, program: &P) -> bool {
    round == 0 || has_mail || !program.is_done()
}

/// A flat per-shard inbox arena: one contiguous word buffer holding every
/// payload delivered into the current round, plus per-node
/// `(sender, offset, length)` entry lists. Reset — **not** reallocated —
/// each round: `reset` keeps every buffer's capacity, so the steady
/// state allocates nothing (the memory-plane invariant
/// `docs/DETERMINISM.md` documents).
pub(crate) struct InboxArena {
    words: Vec<u64>,
    entries: Vec<Vec<InEntry>>,
    /// Local node indices with at least one entry (so `reset` is
    /// `O(touched)`, not `O(n)`).
    touched: Vec<u32>,
    total_msgs: usize,
}

impl InboxArena {
    pub(crate) fn new(nodes: usize) -> Self {
        InboxArena {
            words: Vec::new(),
            entries: vec![Vec::new(); nodes],
            touched: Vec::new(),
            total_msgs: 0,
        }
    }

    /// Clears all deliveries, keeping buffer capacity.
    pub(crate) fn reset(&mut self) {
        for &local in &self.touched {
            self.entries[local as usize].clear();
        }
        self.touched.clear();
        self.words.clear();
        self.total_msgs = 0;
    }

    /// Appends one payload copy; returns its offset.
    pub(crate) fn push_payload(&mut self, payload: &[u64]) -> u32 {
        let off = u32::try_from(self.words.len()).expect("inbox arena exceeds u32 words");
        self.words.extend_from_slice(payload);
        off
    }

    /// Records a delivery of `(off, len)` from `from` to local node
    /// `local`.
    pub(crate) fn push_entry(&mut self, local: usize, from: NodeId, off: u32, len: u32) {
        if self.entries[local].is_empty() {
            self.touched.push(local as u32);
        }
        self.entries[local].push(InEntry {
            from: from as u32,
            off,
            len,
        });
        self.total_msgs += 1;
    }

    /// Whether local node `local` has mail this round.
    pub(crate) fn has_mail(&self, local: usize) -> bool {
        !self.entries[local].is_empty()
    }

    /// Sorts `local`'s entries by sender id (senders are unique per
    /// round, so the order is total and engine-independent).
    pub(crate) fn sort(&mut self, local: usize) {
        self.entries[local].sort_unstable_by_key(|e| e.from);
    }

    /// The inbox view for local node `local`.
    pub(crate) fn inbox(&self, local: usize) -> Inbox<'_> {
        Inbox::new(&self.words, &self.entries[local])
    }

    /// Total messages queued across all nodes (the `undelivered` count
    /// at a round-limit cutoff).
    pub(crate) fn total_msgs(&self) -> usize {
        self.total_msgs
    }

    /// Removes every delivery `drop(local, sender)` rejects — the
    /// fault-firing purge (a dead node's pending inbox, and anything a
    /// dead or disconnected sender had in flight toward this shard).
    /// Payload words stay in the buffer until the round-boundary reset;
    /// only the entries (and `total_msgs`) go away.
    pub(crate) fn purge(&mut self, mut drop: impl FnMut(usize, NodeId) -> bool) {
        let mut t = 0;
        while t < self.touched.len() {
            let local = self.touched[t] as usize;
            let before = self.entries[local].len();
            self.entries[local].retain(|e| !drop(local, e.from as NodeId));
            self.total_msgs -= before - self.entries[local].len();
            if self.entries[local].is_empty() {
                self.touched.swap_remove(t);
            } else {
                t += 1;
            }
        }
    }
}

/// The round-limit error context, counted at one shared point so both
/// engines agree bit-for-bit even when the cap hits with messages in
/// flight mid-round: `undelivered` is the arena's post-purge in-flight
/// count, `unfinished` the surviving (non-faulted) programs still
/// reporting `!is_done()`. The sharded engine calls this per shard
/// (`base` = the shard's first global node id) and sums.
pub(crate) fn cutoff_context<P: NodeProgram>(
    arena: &InboxArena,
    programs: &[P],
    faults: Option<&FaultState<'_>>,
    base: NodeId,
) -> (usize, usize) {
    let undelivered = arena.total_msgs();
    let unfinished = programs
        .iter()
        .enumerate()
        .filter(|(i, p)| faults.is_none_or(|f| !f.is_dead(base + i)) && !p.is_done())
        .count();
    (undelivered, unfinished)
}

/// Executes one node's round: runs the program against the engine's
/// reusable outbox, then accounts and routes every outgoing
/// `(receivers, payload)` group through `sink` — receivers sharing one
/// payload copy (a local broadcast) arrive in a single call, so delivery
/// never clones payloads.
///
/// Under an active fault schedule, targets that are dead or sit behind a
/// cut edge are filtered *here*, before any accounting: the surviving
/// receivers arrive as maximal contiguous runs, and stats count only
/// what is actually delivered. Both engines get identical runs because
/// the split happens in this shared helper.
///
/// Returns `true` iff the node attempted a send (even one whose targets
/// all died — the attempt still holds the run open one round, matching
/// the degree-0 broadcast semantics). Both engines funnel through this
/// helper, so per-node behavior (RNG consumption, model enforcement,
/// stats accounting) is identical by construction. The caller sorts the
/// inbox (see [`InboxArena::sort`]) before building the view.
#[allow(clippy::too_many_arguments)] // the full per-node execution state, threaded once per engine
pub(crate) fn step_node<P: NodeProgram>(
    net: &NetSpec<'_>,
    v: NodeId,
    round: usize,
    program: &mut P,
    rng: &mut StdRng,
    faults: Option<&FaultState<'_>>,
    inbox: Inbox<'_>,
    outbox: &mut Outbox,
    stats: &mut RunStats,
    sink: &mut impl FnMut(&[NodeId], &[u64]),
) -> bool {
    let neighbors = net.graph.neighbors(v);
    outbox.reset(neighbors.len());
    {
        let mut ctx = NodeCtx::new(
            v,
            net.graph.n(),
            round,
            neighbors,
            net.model,
            net.word_budget,
            outbox,
            rng,
        );
        program.round(&mut ctx, &inbox);
    }
    let live_faults = faults.filter(|f| f.any_fired());
    outbox.drain(neighbors, |targets, payload| match live_faults {
        None => {
            stats.messages += targets.len();
            stats.words += payload.len() * targets.len();
            sink(targets, payload);
        }
        Some(f) => {
            let mut a = 0;
            while a < targets.len() {
                if !f.deliverable(v, targets[a]) {
                    a += 1;
                    continue;
                }
                let mut b = a + 1;
                while b < targets.len() && f.deliverable(v, targets[b]) {
                    b += 1;
                }
                stats.messages += b - a;
                stats.words += payload.len() * (b - a);
                sink(&targets[a..b], payload);
                a = b;
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for kind in [
            EngineKind::Sequential,
            EngineKind::Sharded { shards: 2 },
            EngineKind::Sharded { shards: 7 },
        ] {
            assert_eq!(EngineKind::parse(&kind.to_string()), Ok(kind));
        }
        assert_eq!(
            EngineKind::parse("sharded"),
            Ok(EngineKind::Sharded {
                shards: DEFAULT_SHARDS
            })
        );
        assert_eq!(EngineKind::parse("seq"), Ok(EngineKind::Sequential));
        assert!(EngineKind::parse("async").is_err());
        assert!(EngineKind::parse("sharded:0").is_err());
        assert!(EngineKind::parse("sharded:x").is_err());
        assert_eq!("sharded:3".parse(), Ok(EngineKind::Sharded { shards: 3 }));
    }
}
