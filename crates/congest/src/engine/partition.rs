//! Node-to-shard partitioning for the sharded engine.
//!
//! A `Partition` assigns every node to exactly one shard and is the
//! *only* thing the engine consults to route traffic — which makes the
//! assignment pluggable. Two [`PartitionKind`]s ship:
//!
//! * [`PartitionKind::Contiguous`] — balanced contiguous id ranges (the
//!   historical default): shard `j` owns `[j·⌈n/s⌉ − …, …)`. Optimal
//!   when node ids correlate with topology (ring-like circulants, grid
//!   row-major ids), pessimal when they do not (random-regular
//!   instances, where nearly every edge crosses a shard boundary).
//! * [`PartitionKind::Topo`] — topology-aware greedy BFS growth: shards
//!   are grown one at a time as BFS balls from seeded roots, with the
//!   same balance caps as the contiguous split (shard sizes differ by at
//!   most one). On graphs with any locality this moves most mailbox
//!   traffic inside a shard, where the engine bypasses the mailbox plane
//!   entirely.
//!
//! ## Determinism contract
//!
//! A partition **cannot** affect outputs, RNG streams, or any
//! [`crate::sim::RunStats`] counter except the `local_words` /
//! `cross_shard_words` locality split: per-node RNG streams are
//! engine-independent, inboxes are re-sorted by sender id before
//! delivery, and stats are commutative sums merged in shard order (see
//! [`crate::engine`]). The topo partitioner is a pure function of
//! `(graph, shard count, seed)` — two builds from the same inputs yield
//! identical assignments, which the proptests below pin together with
//! the balance cap and full-cover invariants for both kinds.

use decomp_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::fmt;

/// Selects how the sharded engine groups nodes into shards.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum PartitionKind {
    /// Balanced contiguous node-id ranges (deterministic default).
    #[default]
    Contiguous,
    /// Seeded greedy BFS growth with balance caps: shards follow graph
    /// topology, so most traffic stays shard-local.
    Topo,
}

impl fmt::Display for PartitionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PartitionKind::Contiguous => write!(f, "contig"),
            PartitionKind::Topo => write!(f, "topo"),
        }
    }
}

/// An immutable node → shard assignment with O(1) lookups both ways:
/// `shard_of` is a flat lookup table (the topo assignment is not
/// invertible by arithmetic, so both kinds share the table), `local_of`
/// maps a node to its index within its shard's ascending node list.
pub(crate) struct Partition {
    shard_of: Vec<u32>,
    local_of: Vec<u32>,
    /// Ascending node ids per shard (node order *within* a shard is
    /// always ascending id, whatever the grouping — workers step their
    /// nodes in this order).
    nodes: Vec<Vec<NodeId>>,
}

impl Partition {
    /// Builds the partition of `kind` over `g` into `s` shards. `seed`
    /// feeds the topo partitioner's root choices; the contiguous kind
    /// ignores it.
    pub(crate) fn build(kind: PartitionKind, g: &Graph, s: usize, seed: u64) -> Self {
        match kind {
            PartitionKind::Contiguous => Self::contiguous(g.n(), s),
            PartitionKind::Topo => Self::topo(g, s, seed),
        }
    }

    /// Balanced contiguous ranges: the first `n % s` shards get one
    /// extra node.
    pub(crate) fn contiguous(n: usize, s: usize) -> Self {
        let mut shard_of = vec![0u32; n];
        let (base, rem) = (n / s, n % s);
        let mut v = 0usize;
        for shard in 0..s {
            let size = base + usize::from(shard < rem);
            for _ in 0..size {
                shard_of[v] = shard as u32;
                v += 1;
            }
        }
        debug_assert_eq!(v, n);
        Self::from_assignment(shard_of, s)
    }

    /// Seeded greedy BFS growth: shard `j` is grown as a BFS ball from a
    /// seeded root over still-unassigned nodes, capped at the same size
    /// the contiguous split would give it (`⌊n/s⌋` or `⌈n/s⌉`), hopping
    /// to a fresh root whenever its frontier dies in an exhausted
    /// region. Deterministic in `(g, s, seed)`: the frontier is a FIFO
    /// queue and neighbors are visited in ascending id order.
    pub(crate) fn topo(g: &Graph, s: usize, seed: u64) -> Self {
        let n = g.n();
        let mut shard_of = vec![u32::MAX; n];
        let mut rng = StdRng::seed_from_u64(seed ^ 0x70b0_70b0_9e37_79b9);
        let mut queue: VecDeque<NodeId> = VecDeque::new();
        let (base, rem) = (n / s, n % s);
        for shard in 0..s {
            let mut need = base + usize::from(shard < rem);
            queue.clear();
            while need > 0 {
                let v = match queue.pop_front() {
                    Some(v) => v,
                    None => {
                        // Fresh root: the first unassigned node at or
                        // (cyclically) after a seeded position.
                        let start = rng.gen_range(0..n);
                        let root = (0..n)
                            .map(|i| (start + i) % n)
                            .find(|&v| shard_of[v] == u32::MAX)
                            .expect("need > 0 implies an unassigned node exists");
                        shard_of[root] = shard as u32;
                        need -= 1;
                        queue.push_back(root);
                        continue;
                    }
                };
                for &u in g.neighbors(v) {
                    if need == 0 {
                        break;
                    }
                    if shard_of[u] == u32::MAX {
                        shard_of[u] = shard as u32;
                        need -= 1;
                        queue.push_back(u);
                    }
                }
            }
        }
        Self::from_assignment(shard_of, s)
    }

    fn from_assignment(shard_of: Vec<u32>, s: usize) -> Self {
        let n = shard_of.len();
        let mut nodes: Vec<Vec<NodeId>> = vec![Vec::new(); s];
        let mut local_of = vec![0u32; n];
        for (v, &shard) in shard_of.iter().enumerate() {
            local_of[v] = nodes[shard as usize].len() as u32;
            nodes[shard as usize].push(v);
        }
        Partition {
            shard_of,
            local_of,
            nodes,
        }
    }

    /// The shard owning node `v` — one table load.
    #[inline]
    pub(crate) fn shard_of(&self, v: NodeId) -> usize {
        self.shard_of[v] as usize
    }

    /// `v`'s index within its shard's ascending node list.
    #[inline]
    pub(crate) fn local_of(&self, v: NodeId) -> usize {
        self.local_of[v] as usize
    }

    /// Ascending node ids owned by `shard`.
    pub(crate) fn nodes(&self, shard: usize) -> &[NodeId] {
        &self.nodes[shard]
    }

    /// Number of shards.
    #[cfg(test)]
    pub(crate) fn num_shards(&self) -> usize {
        self.nodes.len()
    }

    /// Payload words crossing shard boundaries if every node broadcast
    /// one `words`-word message: the partition's *cut fraction*
    /// numerator, used by the observability tests and benches.
    #[cfg(test)]
    pub(crate) fn cut_edges(&self, g: &Graph) -> usize {
        (0..g.n())
            .map(|v| {
                g.neighbors(v)
                    .iter()
                    .filter(|&&u| self.shard_of[u] != self.shard_of[v])
                    .count()
            })
            .sum::<usize>()
            / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp_graph::generators;
    use proptest::prelude::*;

    fn assert_partition_invariants(part: &Partition, n: usize, s: usize, ctx: &str) {
        // Full cover: every node is owned by exactly one shard, and the
        // two lookup tables agree with the per-shard node lists.
        let mut covered = 0usize;
        assert_eq!(part.num_shards(), s, "{ctx}");
        for shard in 0..s {
            let nodes = part.nodes(shard);
            covered += nodes.len();
            // Balance cap: sizes differ by at most one across shards.
            assert!(
                nodes.len() >= n / s && nodes.len() <= n / s + 1,
                "{ctx}: shard {shard} has {} nodes (n={n}, s={s})",
                nodes.len()
            );
            for (i, &v) in nodes.iter().enumerate() {
                if i > 0 {
                    assert!(nodes[i - 1] < v, "{ctx}: shard node order must ascend");
                }
                assert_eq!(part.shard_of(v), shard, "{ctx}: shard_of({v})");
                assert_eq!(part.local_of(v), i, "{ctx}: local_of({v})");
            }
        }
        assert_eq!(covered, n, "{ctx}: every node owned exactly once");
    }

    #[test]
    fn partition_is_balanced_and_invertible() {
        for n in [1usize, 2, 5, 7, 16, 33, 100] {
            for s in 1..=n.min(9) {
                let g = generators::cycle(n.max(3));
                let contig = Partition::contiguous(n, s);
                assert_partition_invariants(&contig, n, s, &format!("contig n={n} s={s}"));
                if n >= 3 {
                    let topo = Partition::topo(&g, s, 7);
                    assert_partition_invariants(&topo, n, s, &format!("topo n={n} s={s}"));
                }
            }
        }
    }

    #[test]
    fn contiguous_matches_historical_ranges() {
        // The contiguous kind must reproduce the old arithmetic split
        // exactly: first n % s shards get one extra node, ranges ascend.
        let part = Partition::contiguous(10, 4);
        assert_eq!(part.nodes(0), &[0, 1, 2]);
        assert_eq!(part.nodes(1), &[3, 4, 5]);
        assert_eq!(part.nodes(2), &[6, 7]);
        assert_eq!(part.nodes(3), &[8, 9]);
    }

    #[test]
    fn topo_groups_follow_cycle_locality() {
        // On a cycle, a BFS-grown shard is an arc: each shard's cut is at
        // most 2 edges, far below a random split's expectation.
        let g = generators::cycle(64);
        let part = Partition::topo(&g, 4, 3);
        assert!(
            part.cut_edges(&g) <= 2 * 4,
            "BFS growth on a cycle must produce arcs (cut = {})",
            part.cut_edges(&g)
        );
    }

    #[test]
    fn topo_cuts_less_than_contiguous_on_random_regular() {
        // The motivating case: random-regular ids are uncorrelated with
        // topology, so the contiguous split is essentially a random
        // partition; BFS growth must beat it. (Deterministic instance —
        // pinned after measurement, like the engine digests.)
        let g = generators::random_regular(2000, 8, 1);
        for s in [2usize, 4, 8] {
            let contig = Partition::contiguous(g.n(), s).cut_edges(&g);
            let topo = Partition::topo(&g, s, 0).cut_edges(&g);
            assert!(
                topo < contig,
                "s={s}: topo cut {topo} must beat contiguous cut {contig}"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Both partitioner kinds, random graphs, random shard counts:
        /// balance cap, full cover, O(1) table consistency, and
        /// build-twice determinism.
        #[test]
        fn both_kinds_balanced_covering_deterministic(
            n in 1usize..120,
            extra in 0usize..60,
            s in 1usize..10,
            seed in 0u64..100,
        ) {
            let s = s.min(n);
            let g = generators::random_connected(n.max(2), extra.min(n * (n - 1) / 2), seed);
            let n = g.n();
            for kind in [PartitionKind::Contiguous, PartitionKind::Topo] {
                let a = Partition::build(kind, &g, s, seed);
                assert_partition_invariants(&a, n, s, &format!("{kind} n={n} s={s} seed={seed}"));
                // Same inputs ⇒ identical assignment, bit for bit.
                let b = Partition::build(kind, &g, s, seed);
                prop_assert_eq!(&a.shard_of, &b.shard_of, "{} must be deterministic", kind);
            }
        }
    }
}
