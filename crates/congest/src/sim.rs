//! The synchronous round-based simulator facade.
//!
//! A [`Simulator`] wraps a [`Graph`] as the communication network and runs
//! [`NodeProgram`]s in lockstep rounds, enforcing the bandwidth constraints
//! of the selected [`Model`] and accounting rounds / messages / words.
//! The round loop itself is pluggable: the facade delegates to a
//! [`crate::engine::RoundEngine`] chosen via [`Simulator::with_engine`]
//! (sequential by default, or the deterministic sharded multi-core
//! backend — see [`crate::engine`] for the bit-for-bit determinism
//! contract between backends).
//!
//! Messages sent in round `r` are delivered at the start of round `r + 1`.
//! A run terminates when every program reports [`NodeProgram::is_done`] and
//! no messages are in flight (quiescence), or errors when `max_rounds` is
//! exceeded.
//!
//! Composite algorithms (the paper's packing constructions are sequences of
//! phases synchronized by round counters) run several programs back to
//! back on one simulator; the cumulative statistics add up across runs.

use crate::engine::{EngineKind, NetSpec, RoundEngine, SequentialEngine, ShardedEngine};
use crate::fault::FaultPlan;
use crate::message::{Message, MsgView};
use decomp_graph::{Graph, GrowableGraph, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// The communication model (paper, Section 1.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Model {
    /// Each node sends one message per round to *all* neighbors
    /// (local broadcast); congestion sits in the vertices.
    VCongest,
    /// One message per round per edge *direction*; the classical CONGEST
    /// model.
    ECongest,
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Model::VCongest => write!(f, "V-CONGEST"),
            Model::ECongest => write!(f, "E-CONGEST"),
        }
    }
}

/// Cost accounting for one run (and cumulatively for a simulator).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Rounds executed.
    pub rounds: usize,
    /// Point-to-point messages delivered (a V-CONGEST broadcast to `d`
    /// neighbors counts as `d` messages).
    pub messages: usize,
    /// Total payload words delivered.
    pub words: usize,
    /// Peak number of point-to-point messages queued for delivery into
    /// any single round (the in-flight traffic at a round boundary).
    pub peak_queued_messages: usize,
    /// Peak payload words materialized for any single round's delivery —
    /// the inbox-arena footprint. A V-CONGEST broadcast's payload counts
    /// **once**, not per receiver (deliveries reference one copy; the
    /// sharded engine holds at most one extra copy per destination shard,
    /// uncounted so the metric stays engine-independent).
    pub peak_arena_words: usize,
    /// Payload words delivered between a same-shard sender/receiver pair
    /// — traffic that never touched the mailbox plane. The sequential
    /// engine (one thread owns every node) reports everything here.
    /// `local_words + cross_shard_words == words`, always.
    ///
    /// **The one engine-dependent field pair**: the split describes the
    /// engine's *partition*, not the protocol — normalize with
    /// [`RunStats::locality_blind`] before cross-engine comparisons.
    pub local_words: usize,
    /// Payload words delivered across a shard boundary (through the
    /// sharded engine's mailbox plane) — the partition's realized cut
    /// traffic. Zero under the sequential engine.
    pub cross_shard_words: usize,
    /// Deliveries the receiving *protocol* judged redundant — e.g. a
    /// non-innovative coded packet under the RLNC gossip regime. The
    /// engines never touch this field: protocols set it after a run
    /// from their own program state, so it is engine-independent by
    /// construction (and zero for protocols that don't track it).
    pub wasted_bandwidth: usize,
    /// Repair actions a *protocol* performed to route around churn —
    /// e.g. messages re-injected onto fresh trees after a fault wave.
    /// Engine-independent, protocol-set, like `wasted_bandwidth`.
    pub repair_events: usize,
    /// Rounds a *protocol* spent in flood fallback (no tree carried the
    /// traffic). Engine-independent, protocol-set; zero on fault-free
    /// runs, and bounded per fault wave when re-extraction restores real
    /// tree schedules between waves.
    pub flood_rounds: usize,
    /// Newcomers a *protocol* admitted into the maintained CDS packing
    /// incrementally (served from trees without a flood fallback or a
    /// from-scratch repack). Engine-independent, protocol-set.
    pub admitted_via_packing: usize,
    /// Newcomers no tree class could absorb, served by flood fallback
    /// instead. Engine-independent, protocol-set; the complement of
    /// `admitted_via_packing` over class-free arrivals.
    pub flood_served: usize,
}

impl RunStats {
    /// Folds another run's totals into this one: counters add, peaks
    /// take the max — the aggregate of running the two phases back to
    /// back (multi-phase protocols report their cumulative cost this
    /// way).
    pub fn absorb(&mut self, other: RunStats) {
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.words += other.words;
        self.local_words += other.local_words;
        self.cross_shard_words += other.cross_shard_words;
        self.wasted_bandwidth += other.wasted_bandwidth;
        self.repair_events += other.repair_events;
        self.flood_rounds += other.flood_rounds;
        self.admitted_via_packing += other.admitted_via_packing;
        self.flood_served += other.flood_served;
        self.peak_queued_messages = self.peak_queued_messages.max(other.peak_queued_messages);
        self.peak_arena_words = self.peak_arena_words.max(other.peak_arena_words);
    }

    /// These stats with the engine-dependent locality split zeroed —
    /// what cross-engine equivalence checks compare, since every other
    /// counter is bit-identical across engines by contract.
    pub fn locality_blind(mut self) -> RunStats {
        self.local_words = 0;
        self.cross_shard_words = 0;
        self
    }

    /// Folds one round's queued-traffic totals into the peak counters.
    pub(crate) fn note_round_load(&mut self, queued_messages: usize, arena_words: usize) {
        self.peak_queued_messages = self.peak_queued_messages.max(queued_messages);
        self.peak_arena_words = self.peak_arena_words.max(arena_words);
    }
}

/// Errors a run can produce.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The protocol did not reach quiescence within `max_rounds`.
    ExceededMaxRounds {
        /// The limit that was hit.
        max_rounds: usize,
        /// Messages delivered for the failed round that no program got to
        /// read (in-flight traffic at the cutoff).
        undelivered: usize,
        /// Programs still reporting `is_done() == false` at the cutoff.
        unfinished: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ExceededMaxRounds {
                max_rounds,
                undelivered,
                unfinished,
            } => {
                write!(
                    f,
                    "protocol did not terminate within {max_rounds} rounds \
                     ({undelivered} messages still in flight, {unfinished} programs not done)"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// One delivered message in an engine inbox arena: the sender plus the
/// payload span in the round's shared word buffer.
#[derive(Clone, Copy, Debug)]
pub(crate) struct InEntry {
    pub(crate) from: u32,
    pub(crate) off: u32,
    pub(crate) len: u32,
}

/// Messages delivered to a node this round, sorted by sender id.
///
/// A `Copy`-cheap view into the engine's per-shard inbox arena: payload
/// words live in one contiguous per-round buffer; each entry is a
/// `(sender, offset, length)` triple. Iteration yields
/// `(NodeId, MsgView)` pairs — delivery never clones payloads.
#[derive(Clone, Copy)]
pub struct Inbox<'a> {
    words: &'a [u64],
    entries: &'a [InEntry],
}

impl<'a> Inbox<'a> {
    pub(crate) fn new(words: &'a [u64], entries: &'a [InEntry]) -> Self {
        Inbox { words, entries }
    }

    /// Number of delivered messages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no message was delivered this round.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `i`-th delivered `(sender, payload)` pair (sender-id order).
    ///
    /// # Panics
    /// Panics if `i` is out of bounds.
    pub fn get(&self, i: usize) -> (NodeId, MsgView<'a>) {
        let e = &self.entries[i];
        let payload = &self.words[e.off as usize..(e.off + e.len) as usize];
        (e.from as NodeId, MsgView::new(payload))
    }

    /// The first delivered pair (smallest sender id), if any.
    pub fn first(&self) -> Option<(NodeId, MsgView<'a>)> {
        if self.is_empty() {
            None
        } else {
            Some(self.get(0))
        }
    }

    /// Iterates over `(sender, payload)` pairs in sender-id order.
    pub fn iter(&self) -> InboxIter<'a> {
        InboxIter {
            inbox: *self,
            next: 0,
        }
    }
}

impl fmt::Debug for Inbox<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list()
            .entries(self.iter().map(|(from, m)| (from, m.words().to_vec())))
            .finish()
    }
}

/// Iterator over an [`Inbox`]'s `(sender, payload)` pairs.
pub struct InboxIter<'a> {
    inbox: Inbox<'a>,
    next: usize,
}

impl<'a> Iterator for InboxIter<'a> {
    type Item = (NodeId, MsgView<'a>);
    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.inbox.len() {
            return None;
        }
        let item = self.inbox.get(self.next);
        self.next += 1;
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.inbox.len() - self.next;
        (rem, Some(rem))
    }
}

impl<'a> IntoIterator for &Inbox<'a> {
    type Item = (NodeId, MsgView<'a>);
    type IntoIter = InboxIter<'a>;
    fn into_iter(self) -> InboxIter<'a> {
        self.iter()
    }
}

/// Sentinel for "no message on this neighbor slot".
const NO_SPAN: (u32, u32) = (u32::MAX, u32::MAX);

/// A node's outgoing traffic for one round. Payload words are written
/// once into a reusable scratch buffer; slots record `(offset, length)`
/// spans, so a broadcast stores its payload a single time no matter the
/// degree. The engine owns one `Outbox` per worker and resets it per
/// node step — the steady state allocates nothing.
pub(crate) struct Outbox {
    words: Vec<u64>,
    kind: OutKind,
}

enum OutKind {
    /// V-CONGEST: at most one local-broadcast payload span.
    Broadcast(Option<(u32, u32)>),
    /// E-CONGEST: at most one payload span per neighbor (indexed like
    /// `graph.neighbors(v)`).
    PerNeighbor(Vec<(u32, u32)>),
}

impl Outbox {
    /// An empty outbox for `model`.
    pub(crate) fn new(model: Model) -> Self {
        Outbox {
            words: Vec::new(),
            kind: match model {
                Model::VCongest => OutKind::Broadcast(None),
                Model::ECongest => OutKind::PerNeighbor(Vec::new()),
            },
        }
    }

    /// Clears the outbox for the next node of degree `degree`,
    /// keeping all buffer capacity.
    pub(crate) fn reset(&mut self, degree: usize) {
        self.words.clear();
        match &mut self.kind {
            OutKind::Broadcast(slot) => *slot = None,
            OutKind::PerNeighbor(slots) => {
                slots.clear();
                slots.resize(degree, NO_SPAN);
            }
        }
    }

    fn push_payload(&mut self, m: &Message) -> (u32, u32) {
        let off = u32::try_from(self.words.len()).expect("outbox exceeds u32 words");
        self.words.extend_from_slice(m.words());
        (off, m.len() as u32)
    }

    /// Feeds every outgoing `(receivers, payload)` group to `sink` —
    /// receivers sharing one payload copy arrive in a single call (a
    /// V-CONGEST broadcast is one call with all neighbors) — and returns
    /// `true` iff the node attempted a send. (A broadcast from a
    /// degree-0 node delivers nothing but still counts as an attempt —
    /// the historical round-loop semantics, which quiescence timing
    /// depends on.)
    pub(crate) fn drain(
        &self,
        neighbors: &[NodeId],
        mut sink: impl FnMut(&[NodeId], &[u64]),
    ) -> bool {
        match &self.kind {
            OutKind::Broadcast(Some((off, len))) => {
                if !neighbors.is_empty() {
                    sink(
                        neighbors,
                        &self.words[*off as usize..(*off + *len) as usize],
                    );
                }
                true
            }
            OutKind::Broadcast(None) => false,
            OutKind::PerNeighbor(slots) => {
                let mut any = false;
                let mut i = 0;
                while i < slots.len() {
                    if slots[i] == NO_SPAN {
                        i += 1;
                        continue;
                    }
                    any = true;
                    // Consecutive slots sharing a span (an E-CONGEST
                    // broadcast) deliver from one payload copy.
                    let mut j = i + 1;
                    while j < slots.len() && slots[j] == slots[i] {
                        j += 1;
                    }
                    let (off, len) = slots[i];
                    sink(
                        &neighbors[i..j],
                        &self.words[off as usize..(off + len) as usize],
                    );
                    i = j;
                }
                any
            }
        }
    }
}

/// Per-round context handed to a [`NodeProgram`].
///
/// Provides the node's identity, topology view (its neighbor list — the
/// `KT1`-style initial knowledge the paper assumes after one round), the
/// global parameters `n` (learned in the standard `O(D)` preamble), a
/// per-node deterministic RNG, and the send API.
pub struct NodeCtx<'a> {
    id: NodeId,
    n: usize,
    round: usize,
    neighbors: &'a [NodeId],
    model: Model,
    word_budget: usize,
    outbox: &'a mut Outbox,
    rng: &'a mut StdRng,
}

impl<'a> NodeCtx<'a> {
    #[allow(clippy::too_many_arguments)] // crate-internal engine plumbing
    pub(crate) fn new(
        id: NodeId,
        n: usize,
        round: usize,
        neighbors: &'a [NodeId],
        model: Model,
        word_budget: usize,
        outbox: &'a mut Outbox,
        rng: &'a mut StdRng,
    ) -> Self {
        NodeCtx {
            id,
            n,
            round,
            neighbors,
            model,
            word_budget,
            outbox,
            rng,
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Number of nodes in the network.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current round number within the running protocol (0-based).
    pub fn round(&self) -> usize {
        self.round
    }

    /// Sorted neighbor ids.
    pub fn neighbors(&self) -> &[NodeId] {
        self.neighbors
    }

    /// Degree.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// The model this network runs.
    pub fn model(&self) -> Model {
        self.model
    }

    /// Per-node deterministic RNG (the "private coins" of the model).
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Sends `m` to all neighbors (allowed in both models; in V-CONGEST it
    /// is the *only* send primitive).
    ///
    /// # Panics
    /// Panics if called twice in one round, after a targeted
    /// [`NodeCtx::send`] this round, or if `m` exceeds the word budget.
    pub fn broadcast(&mut self, m: Message) {
        self.check_budget(&m);
        match &self.outbox.kind {
            OutKind::Broadcast(slot) => {
                assert!(
                    slot.is_none(),
                    "V-CONGEST violation: node {} broadcast twice in round {}",
                    self.id,
                    self.round
                );
                let span = self.outbox.push_payload(&m);
                self.outbox.kind = OutKind::Broadcast(Some(span));
            }
            OutKind::PerNeighbor(slots) => {
                for (i, slot) in slots.iter().enumerate() {
                    assert!(
                        *slot == NO_SPAN,
                        "E-CONGEST violation: node {} already sent to neighbor {} in round {}",
                        self.id,
                        self.neighbors[i],
                        self.round
                    );
                }
                // One payload copy shared by every neighbor slot.
                let span = self.outbox.push_payload(&m);
                if let OutKind::PerNeighbor(slots) = &mut self.outbox.kind {
                    slots.fill(span);
                }
            }
        }
    }

    /// Sends `m` to the single neighbor `to` (E-CONGEST only).
    ///
    /// # Panics
    /// Panics in V-CONGEST, if `to` is not a neighbor, if this edge
    /// direction was already used this round, or on word-budget overflow.
    pub fn send(&mut self, to: NodeId, m: Message) {
        self.check_budget(&m);
        match &self.outbox.kind {
            OutKind::Broadcast(_) => panic!(
                "V-CONGEST violation: node {} attempted a targeted send (only local broadcast is allowed)",
                self.id
            ),
            OutKind::PerNeighbor(slots) => {
                let idx = self
                    .neighbors
                    .binary_search(&to)
                    .unwrap_or_else(|_| panic!("node {} is not a neighbor of {}", to, self.id));
                assert!(
                    slots[idx] == NO_SPAN,
                    "E-CONGEST violation: node {} sent twice to {} in round {}",
                    self.id,
                    to,
                    self.round
                );
                let span = self.outbox.push_payload(&m);
                if let OutKind::PerNeighbor(slots) = &mut self.outbox.kind {
                    slots[idx] = span;
                }
            }
        }
    }

    fn check_budget(&self, m: &Message) {
        assert!(
            m.len() <= self.word_budget,
            "message of {} words exceeds the {}-word budget (node {}, round {})",
            m.len(),
            self.word_budget,
            self.id,
            self.round
        );
    }
}

/// A per-node state machine executed by the simulator.
///
/// `round` is invoked every round while the node is active; a node is
/// *active* in round 0, whenever its inbox is non-empty, and whenever
/// `is_done()` is false. Nodes may therefore go quiet and be reawakened by
/// incoming messages (the pattern used by label-propagation primitives).
///
/// Programs must be [`Send`] so the sharded engine can step disjoint node
/// ranges on worker threads; program state is plain data, so this is
/// automatic in practice.
pub trait NodeProgram {
    /// Executes one round: read `inbox`, update state, send via `ctx`.
    fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &Inbox<'_>);

    /// Local termination flag; the run stops at global quiescence
    /// (all done + no messages in flight).
    fn is_done(&self) -> bool;
}

/// The synchronous simulator facade. See the [module docs](self) for
/// semantics and [`crate::engine`] for the execution backends.
pub struct Simulator<'g> {
    graph: &'g Graph,
    growth: Option<&'g GrowableGraph>,
    model: Model,
    word_budget: usize,
    engine: EngineKind,
    faults: Option<FaultPlan>,
    seed: u64,
    rngs: Vec<StdRng>,
    cumulative: RunStats,
}

/// Default per-message payload budget, in words. Each word models one
/// `O(log n)`-bit field; the paper's messages carry a constant number of
/// ids/labels per message.
pub const DEFAULT_WORD_BUDGET: usize = 8;

impl<'g> Simulator<'g> {
    /// A simulator over `graph` in `model` with the default word budget,
    /// seed 0, and the sequential engine.
    pub fn new(graph: &'g Graph, model: Model) -> Self {
        Self::with_seed(graph, model, 0)
    }

    /// A simulator with an explicit base seed for the nodes' private coins.
    pub fn with_seed(graph: &'g Graph, model: Model, seed: u64) -> Self {
        let rngs = (0..graph.n())
            .map(|v| StdRng::seed_from_u64(seed.wrapping_mul(0x9e3779b97f4a7c15) ^ (v as u64)))
            .collect();
        Simulator {
            graph,
            growth: None,
            model,
            word_budget: DEFAULT_WORD_BUDGET,
            engine: EngineKind::Sequential,
            faults: None,
            seed,
            rngs,
            cumulative: RunStats::default(),
        }
    }

    /// Overrides the per-message word budget.
    pub fn with_word_budget(mut self, words: usize) -> Self {
        self.word_budget = words;
        self
    }

    /// Installs a deterministic failure schedule (see [`crate::fault`]).
    /// Faults fire at the start of their scheduled round, before inbox
    /// consumption: the engines drop the victims' in-flight messages,
    /// silence dead nodes for the rest of the run (their RNG streams stop
    /// advancing), and decide quiescence over surviving programs only.
    /// The plan applies to every subsequent [`Simulator::run`], each run
    /// restarting the schedule from round 0.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The installed failure schedule, if any.
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Delivers over a growing topology view instead of the settled
    /// `graph`: each round `r`, a node's neighbor list is the edges of
    /// `gg` with activation epoch `<= r` (epochs are rounds). The
    /// simulator's `graph` must be `gg.base()` — the engines keep using
    /// it for sizing, partitioning, and RNG streams, none of which
    /// affect outputs.
    ///
    /// Compose with [`Simulator::with_faults`] for arrivals/deaths:
    /// edge *activation* lives in the view, vertex dormancy and cuts
    /// stay with the fault plan.
    ///
    /// # Panics
    /// Panics if `gg.base()` is not the simulator's graph (by vertex
    /// count; full identity is the caller's contract).
    pub fn with_growth(mut self, gg: &'g GrowableGraph) -> Self {
        assert_eq!(
            gg.n(),
            self.graph.n(),
            "growth view must be built over the simulator's graph"
        );
        self.growth = Some(gg);
        self
    }

    /// The installed growing topology view, if any.
    pub fn growth(&self) -> Option<&GrowableGraph> {
        self.growth
    }

    /// Selects the round-execution backend. Engine choice never changes
    /// outputs or statistics (see [`crate::engine`]) beyond the
    /// [`RunStats`] locality split — which describes the engine's
    /// partition, not the protocol — only wall-clock behavior.
    ///
    /// # Example
    ///
    /// ```
    /// use decomp_congest::{EngineKind, Model, Simulator};
    /// use decomp_congest::bfs::distributed_bfs;
    /// use decomp_graph::generators;
    ///
    /// let g = generators::harary(4, 24);
    /// let run = |engine| {
    ///     let mut sim = Simulator::new(&g, Model::VCongest).with_engine(engine);
    ///     let tree = distributed_bfs(&mut sim, 0).unwrap();
    ///     (tree.dist, tree.parent, sim.stats().locality_blind())
    /// };
    /// // Bit-for-bit equivalent across engines and partitions: same
    /// // tree, same stats (modulo the local/cross-shard word split).
    /// assert_eq!(
    ///     run(EngineKind::Sequential),
    ///     run(EngineKind::sharded(4)),
    /// );
    /// assert_eq!(
    ///     run(EngineKind::Sequential),
    ///     run(EngineKind::sharded_topo(4)),
    /// );
    /// ```
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// The underlying network graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The model being simulated.
    pub fn model(&self) -> Model {
        self.model
    }

    /// The selected round-execution backend.
    pub fn engine(&self) -> EngineKind {
        self.engine
    }

    /// Cumulative statistics across all runs on this simulator.
    pub fn stats(&self) -> RunStats {
        self.cumulative
    }

    /// Adds externally-charged rounds to the cumulative statistics.
    ///
    /// Used for the documented substitutions (DESIGN.md §3): when a paper
    /// subroutine is replaced by a centralized oracle, its theoretical
    /// distributed cost is charged here so round totals remain meaningful.
    pub fn charge_rounds(&mut self, rounds: usize) {
        self.cumulative.rounds += rounds;
    }

    /// Runs `programs` (one per node, indexed by node id) until quiescence
    /// on the selected engine.
    ///
    /// Returns the final program states and this run's statistics.
    ///
    /// # Errors
    /// [`SimError::ExceededMaxRounds`] if quiescence is not reached within
    /// `max_rounds`.
    ///
    /// # Panics
    /// Panics if `programs.len() != graph.n()`, or on model violations
    /// inside program code (see [`NodeCtx`]); the sharded engine re-raises
    /// worker panics on the calling thread.
    pub fn run<P: NodeProgram + Send>(
        &mut self,
        mut programs: Vec<P>,
        max_rounds: usize,
    ) -> Result<(Vec<P>, RunStats), SimError> {
        let n = self.graph.n();
        assert_eq!(programs.len(), n, "need one program per node");
        let net = NetSpec {
            graph: self.graph,
            growth: self.growth,
            model: self.model,
            word_budget: self.word_budget,
            faults: self.faults.as_ref(),
            seed: self.seed,
        };
        let outcome =
            match self.engine {
                EngineKind::Sequential => {
                    SequentialEngine.run(&net, &mut programs, &mut self.rngs, max_rounds)
                }
                EngineKind::Sharded { shards, partition } => ShardedEngine::new(shards, partition)
                    .run(&net, &mut programs, &mut self.rngs, max_rounds),
            };
        self.cumulative.absorb(outcome.stats);
        match outcome.error {
            Some(err) => Err(err),
            None => Ok((programs, outcome.stats)),
        }
    }

    /// [`Simulator::run`] with a generous default round limit of
    /// `64 * n + 4096`.
    pub fn run_to_quiescence<P: NodeProgram + Send>(
        &mut self,
        programs: Vec<P>,
    ) -> Result<(Vec<P>, RunStats), SimError> {
        let limit = 64 * self.graph.n() + 4096;
        self.run(programs, limit)
    }
}

impl fmt::Debug for Simulator<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("n", &self.graph.n())
            .field("model", &self.model)
            .field("engine", &self.engine)
            .field("stats", &self.cumulative)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp_graph::generators;

    /// Every node broadcasts its id once; neighbors record what they heard.
    struct HelloOnce {
        heard: Vec<NodeId>,
        sent: bool,
    }

    impl NodeProgram for HelloOnce {
        fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &Inbox<'_>) {
            for (from, _m) in inbox {
                self.heard.push(from);
            }
            if !self.sent {
                ctx.broadcast(Message::from_words([ctx.id() as u64]));
                self.sent = true;
            }
        }
        fn is_done(&self) -> bool {
            self.sent
        }
    }

    fn engines() -> [EngineKind; 4] {
        [
            EngineKind::Sequential,
            EngineKind::sharded(2),
            EngineKind::sharded(4),
            EngineKind::sharded_topo(4),
        ]
    }

    #[test]
    fn exceeded_max_rounds_display_renders_all_context_fields() {
        let err = SimError::ExceededMaxRounds {
            max_rounds: 17,
            undelivered: 3,
            unfinished: 5,
        };
        let msg = err.to_string();
        assert_eq!(
            msg,
            "protocol did not terminate within 17 rounds \
             (3 messages still in flight, 5 programs not done)"
        );
    }

    #[test]
    fn exceeded_max_rounds_error_carries_observed_context() {
        // A program that never finishes and floods every round: the limit
        // error must report the actual in-flight traffic and stragglers.
        #[derive(Debug)]
        struct Chatter;
        impl NodeProgram for Chatter {
            fn round(&mut self, ctx: &mut NodeCtx<'_>, _inbox: &Inbox<'_>) {
                ctx.broadcast(Message::from_words([ctx.id() as u64]));
            }
            fn is_done(&self) -> bool {
                false
            }
        }
        let g = generators::cycle(4);
        let mut sim = Simulator::new(&g, Model::VCongest);
        let err = sim
            .run(vec![Chatter, Chatter, Chatter, Chatter], 3)
            .unwrap_err();
        match err {
            SimError::ExceededMaxRounds {
                max_rounds,
                undelivered,
                unfinished,
            } => {
                assert_eq!(max_rounds, 3);
                assert_eq!(undelivered, 8, "4 nodes × 2 neighbors in flight");
                assert_eq!(unfinished, 4);
                let msg = err.to_string();
                for needle in ["3 rounds", "8 messages", "4 programs"] {
                    assert!(msg.contains(needle), "`{msg}` missing `{needle}`");
                }
            }
        }
    }

    #[test]
    fn hello_exchange_on_cycle() {
        for engine in engines() {
            let g = generators::cycle(5);
            let mut sim = Simulator::new(&g, Model::VCongest).with_engine(engine);
            let programs = (0..5)
                .map(|_| HelloOnce {
                    heard: Vec::new(),
                    sent: false,
                })
                .collect();
            let (programs, stats) = sim.run(programs, 10).unwrap();
            // Each node hears exactly its two neighbors.
            for (v, p) in programs.iter().enumerate() {
                let mut heard = p.heard.clone();
                heard.sort_unstable();
                assert_eq!(heard, g.neighbors(v), "{engine}");
            }
            assert_eq!(stats.rounds, 2, "{engine}"); // send round + delivery round
            assert_eq!(stats.messages, 10, "{engine}"); // 5 broadcasts x degree 2
        }
    }

    #[test]
    fn exceeding_round_limit_errors_with_context() {
        #[derive(Debug)]
        struct Chatter;
        impl NodeProgram for Chatter {
            fn round(&mut self, ctx: &mut NodeCtx<'_>, _inbox: &Inbox<'_>) {
                ctx.broadcast(Message::new());
            }
            fn is_done(&self) -> bool {
                false
            }
        }
        for engine in engines() {
            let g = generators::path(3);
            let mut sim = Simulator::new(&g, Model::VCongest).with_engine(engine);
            let err = sim.run(vec![Chatter, Chatter, Chatter], 5).unwrap_err();
            // Round 4's sends (2 path ends x 1 + middle x 2 = 4 messages)
            // are still in flight at the cutoff; no program ever finishes.
            assert_eq!(
                err,
                SimError::ExceededMaxRounds {
                    max_rounds: 5,
                    undelivered: 4,
                    unfinished: 3,
                },
                "{engine}"
            );
            let shown = err.to_string();
            assert!(shown.contains("5 rounds"), "{shown}");
            assert!(shown.contains("4 messages"), "{shown}");
            assert!(shown.contains("3 programs"), "{shown}");
        }
    }

    #[test]
    #[should_panic(expected = "V-CONGEST violation")]
    fn double_broadcast_panics() {
        struct Bad;
        impl NodeProgram for Bad {
            fn round(&mut self, ctx: &mut NodeCtx<'_>, _inbox: &Inbox<'_>) {
                ctx.broadcast(Message::new());
                ctx.broadcast(Message::new());
            }
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = generators::path(2);
        let mut sim = Simulator::new(&g, Model::VCongest);
        let _ = sim.run(vec![Bad, Bad], 3);
    }

    #[test]
    #[should_panic(expected = "V-CONGEST violation")]
    fn sharded_engine_propagates_program_panics() {
        struct Bad;
        impl NodeProgram for Bad {
            fn round(&mut self, ctx: &mut NodeCtx<'_>, _inbox: &Inbox<'_>) {
                ctx.broadcast(Message::new());
                ctx.broadcast(Message::new());
            }
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = generators::path(4);
        let mut sim = Simulator::new(&g, Model::VCongest).with_engine(EngineKind::sharded(2));
        let _ = sim.run(vec![Bad, Bad, Bad, Bad], 3);
    }

    #[test]
    #[should_panic(expected = "targeted send")]
    fn vcongest_rejects_targeted_send() {
        struct Bad;
        impl NodeProgram for Bad {
            fn round(&mut self, ctx: &mut NodeCtx<'_>, _inbox: &Inbox<'_>) {
                let to = ctx.neighbors()[0];
                ctx.send(to, Message::new());
            }
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = generators::path(2);
        let mut sim = Simulator::new(&g, Model::VCongest);
        let _ = sim.run(vec![Bad, Bad], 3);
    }

    #[test]
    #[should_panic(expected = "word budget")]
    fn word_budget_enforced() {
        struct Fat;
        impl NodeProgram for Fat {
            fn round(&mut self, ctx: &mut NodeCtx<'_>, _inbox: &Inbox<'_>) {
                ctx.broadcast(Message::from_words(0..100));
            }
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = generators::path(2);
        let mut sim = Simulator::new(&g, Model::VCongest);
        let _ = sim.run(vec![Fat, Fat], 3);
    }

    #[test]
    fn econgest_targeted_sends() {
        /// Node 0 sends distinct words to each neighbor.
        struct Sender;
        struct Receiver {
            got: Option<u64>,
        }
        enum P {
            S(Sender),
            R(Receiver),
        }
        impl NodeProgram for P {
            fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &Inbox<'_>) {
                match self {
                    P::S(_) => {
                        if ctx.round() == 0 {
                            for (i, &nb) in ctx.neighbors().to_vec().iter().enumerate() {
                                ctx.send(nb, Message::from_words([i as u64 * 10]));
                            }
                        }
                    }
                    P::R(r) => {
                        if let Some((_, m)) = inbox.first() {
                            r.got = Some(m.word(0));
                        }
                    }
                }
            }
            fn is_done(&self) -> bool {
                true
            }
        }
        for engine in engines() {
            let g = generators::star(4); // center 0
            let mut sim = Simulator::new(&g, Model::ECongest).with_engine(engine);
            let programs = vec![
                P::S(Sender),
                P::R(Receiver { got: None }),
                P::R(Receiver { got: None }),
                P::R(Receiver { got: None }),
            ];
            let (programs, _) = sim.run(programs, 5).unwrap();
            for (i, p) in programs.iter().enumerate().skip(1) {
                if let P::R(r) = p {
                    assert_eq!(r.got, Some((i as u64 - 1) * 10), "{engine}");
                }
            }
        }
    }

    #[test]
    fn degree_zero_broadcast_counts_as_send_attempt() {
        // Historical quiescence timing: a broadcast from an isolated node
        // delivers nothing but still holds the run open one extra round.
        // Two isolated nodes so the sharded engine genuinely shards
        // (n = 1 would clamp to the sequential path).
        for engine in engines() {
            let g = decomp_graph::Graph::empty(2);
            let mut sim = Simulator::new(&g, Model::VCongest).with_engine(engine);
            let programs = (0..2)
                .map(|_| HelloOnce {
                    heard: Vec::new(),
                    sent: false,
                })
                .collect();
            let (_, stats) = sim.run(programs, 10).unwrap();
            assert_eq!(stats.rounds, 2, "{engine}");
            assert_eq!(stats.messages, 0, "{engine}");
        }
    }

    /// Counts everything heard and rebroadcasts its id for `chatty`
    /// rounds — the fault-path workhorse.
    struct Counter {
        heard: usize,
        chatty: usize,
    }

    impl NodeProgram for Counter {
        fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &Inbox<'_>) {
            self.heard += inbox.len();
            if self.chatty > 0 {
                self.chatty -= 1;
                ctx.broadcast(Message::from_words([ctx.id() as u64]));
            }
        }
        fn is_done(&self) -> bool {
            self.chatty == 0
        }
    }

    #[test]
    fn vertex_fault_silences_node_and_drops_in_flight() {
        use crate::fault::{Fault, FaultPlan, ScheduledFault};
        // Triangle, everyone chats for 4 rounds; node 2 dies at the
        // start of round 1, so its round-0 broadcast (in flight into
        // round 1) is dropped and nobody ever hears from it.
        for engine in engines() {
            let g = generators::cycle(3);
            let plan = FaultPlan::new([ScheduledFault {
                round: 1,
                fault: Fault::Vertex(2),
            }]);
            let mut sim = Simulator::new(&g, Model::VCongest)
                .with_engine(engine)
                .with_faults(plan);
            let programs = (0..3)
                .map(|_| Counter {
                    heard: 0,
                    chatty: 4,
                })
                .collect();
            let (ps, _) = sim.run(programs, 20).unwrap();
            // 0 and 1 hear only each other: 4 broadcasts each.
            assert_eq!(ps[0].heard, 4, "{engine}");
            assert_eq!(ps[1].heard, 4, "{engine}");
            // The dead node was stepped only in round 0.
            assert_eq!(ps[2].chatty, 3, "{engine}");
            assert_eq!(ps[2].heard, 0, "{engine}");
        }
    }

    #[test]
    fn edge_fault_cuts_both_directions_but_keeps_endpoints() {
        use crate::fault::{Fault, FaultPlan, ScheduledFault};
        for engine in engines() {
            let g = generators::cycle(3);
            let plan = FaultPlan::new([ScheduledFault {
                round: 0,
                fault: Fault::Edge(0, 1),
            }]);
            let mut sim = Simulator::new(&g, Model::VCongest)
                .with_engine(engine)
                .with_faults(plan);
            let programs = (0..3)
                .map(|_| Counter {
                    heard: 0,
                    chatty: 2,
                })
                .collect();
            let (ps, stats) = sim.run(programs, 20).unwrap();
            // Each endpoint of the cut edge hears only node 2; node 2
            // still hears both.
            assert_eq!(ps[0].heard, 2, "{engine}");
            assert_eq!(ps[1].heard, 2, "{engine}");
            assert_eq!(ps[2].heard, 4, "{engine}");
            // 2 rounds × (2 + 2 + 2 deliveries minus 2 cut per round).
            assert_eq!(stats.messages, 8, "{engine}");
        }
    }

    #[test]
    fn quiescence_ignores_dead_stragglers() {
        use crate::fault::{Fault, FaultPlan, ScheduledFault};
        // Node 1 would chat forever, but dies at round 2: the run must
        // still reach quiescence instead of spinning to the limit.
        for engine in engines() {
            let g = generators::path(3);
            let plan = FaultPlan::new([ScheduledFault {
                round: 2,
                fault: Fault::Vertex(1),
            }]);
            let mut sim = Simulator::new(&g, Model::VCongest)
                .with_engine(engine)
                .with_faults(plan);
            let programs = vec![
                Counter {
                    heard: 0,
                    chatty: 1,
                },
                Counter {
                    heard: 0,
                    chatty: usize::MAX,
                },
                Counter {
                    heard: 0,
                    chatty: 1,
                },
            ];
            let (_, stats) = sim.run(programs, 50).unwrap();
            assert!(stats.rounds <= 4, "{engine}: {}", stats.rounds);
        }
    }

    #[test]
    fn faulted_runs_bit_identical_across_engines() {
        use crate::fault::FaultPlan;
        let g = generators::harary(4, 20);
        let plan = FaultPlan::random_vertices(&g, 3, (1, 6), 42);
        let run = |engine| {
            let mut sim = Simulator::with_seed(&g, Model::VCongest, 9)
                .with_engine(engine)
                .with_faults(plan.clone());
            let programs = (0..g.n())
                .map(|_| Counter {
                    heard: 0,
                    chatty: 8,
                })
                .collect();
            let (ps, stats) = sim.run(programs, 100).unwrap();
            // Invariant first: the locality split always partitions the
            // delivered words, whatever the engine.
            assert_eq!(stats.local_words + stats.cross_shard_words, stats.words);
            (
                ps.into_iter()
                    .map(|p| (p.heard, p.chatty))
                    .collect::<Vec<_>>(),
                stats.locality_blind(),
            )
        };
        let baseline = run(EngineKind::Sequential);
        for engine in engines() {
            assert_eq!(run(engine), baseline, "{engine}");
        }
    }

    #[test]
    fn arriving_vertex_is_dormant_then_joins_mid_run() {
        use crate::fault::{Fault, FaultPlan, ScheduledFault};
        // Triangle; node 2 arrives at round 2. While dormant it is never
        // stepped and no traffic crosses its edges; after arrival it
        // chats like everyone else.
        for engine in engines() {
            let g = generators::cycle(3);
            let plan = FaultPlan::new([ScheduledFault {
                round: 2,
                fault: Fault::AddVertex(2),
            }]);
            let mut sim = Simulator::new(&g, Model::VCongest)
                .with_engine(engine)
                .with_faults(plan);
            let programs = (0..3)
                .map(|_| Counter {
                    heard: 0,
                    chatty: 3,
                })
                .collect();
            let (ps, _) = sim.run(programs, 20).unwrap();
            // 0 and 1 hear each other's 3 broadcasts, plus node 2's 3
            // post-arrival broadcasts.
            assert_eq!(ps[0].heard, 6, "{engine}");
            assert_eq!(ps[1].heard, 6, "{engine}");
            // Node 2 was first stepped at round 2, so it hears only the
            // round-2+ broadcasts of 0 and 1 — one each (their chatty
            // budget ran out at rounds 0..=2).
            assert_eq!(ps[2].chatty, 0, "{engine}");
            assert_eq!(ps[2].heard, 2, "{engine}");
        }
    }

    #[test]
    fn run_idles_until_the_last_arrival_fires() {
        use crate::fault::{Fault, FaultPlan, ScheduledFault};
        // Everyone else is done by round 1, but node 3's arrival at
        // round 6 must hold the run open (quiescence waits for it).
        for engine in engines() {
            let g = generators::cycle(4);
            let plan = FaultPlan::new([ScheduledFault {
                round: 6,
                fault: Fault::AddVertex(3),
            }]);
            let mut sim = Simulator::new(&g, Model::VCongest)
                .with_engine(engine)
                .with_faults(plan);
            let programs = (0..4)
                .map(|_| Counter {
                    heard: 0,
                    chatty: 1,
                })
                .collect();
            let (ps, stats) = sim.run(programs, 50).unwrap();
            assert!(stats.rounds >= 7, "{engine}: {}", stats.rounds);
            assert_eq!(ps[3].chatty, 0, "{engine}");
            // Its single broadcast lands on live neighbors 0 and 2.
            assert_eq!(ps[0].heard, 2, "{engine}");
            assert_eq!(ps[2].heard, 2, "{engine}");
        }
    }

    #[test]
    fn edge_arrival_activates_link_mid_run() {
        use crate::fault::{Fault, FaultPlan, ScheduledFault};
        // Cycle of 3 with edge {0, 1} inactive until round 1: the
        // round-0 broadcasts crossing it are dropped, later ones pass.
        for engine in engines() {
            let g = generators::cycle(3);
            let plan = FaultPlan::new([ScheduledFault {
                round: 1,
                fault: Fault::AddEdge(0, 1),
            }]);
            let mut sim = Simulator::new(&g, Model::VCongest)
                .with_engine(engine)
                .with_faults(plan);
            let programs = (0..3)
                .map(|_| Counter {
                    heard: 0,
                    chatty: 2,
                })
                .collect();
            let (ps, _) = sim.run(programs, 20).unwrap();
            // Round-0 sends over {0,1} (in flight into round 1, when the
            // edge activates) are filtered at send time in round 0; the
            // round-1 sends cross. So 0 and 1 miss one message each.
            assert_eq!(ps[0].heard, 3, "{engine}");
            assert_eq!(ps[1].heard, 3, "{engine}");
            assert_eq!(ps[2].heard, 4, "{engine}");
        }
    }

    #[test]
    fn churn_runs_bit_identical_across_engines() {
        use crate::fault::FaultPlan;
        let g = generators::harary(4, 20);
        let plan = FaultPlan::random_vertices(&g, 3, (2, 6), 42)
            .merged(&FaultPlan::random_arrivals(&g, 4, (1, 7), 42));
        assert_eq!(plan.validate(&g), Ok(()));
        let run = |engine| {
            let mut sim = Simulator::with_seed(&g, Model::VCongest, 9)
                .with_engine(engine)
                .with_faults(plan.clone());
            let programs = (0..g.n())
                .map(|_| Counter {
                    heard: 0,
                    chatty: 8,
                })
                .collect();
            let (ps, stats) = sim.run(programs, 200).unwrap();
            assert_eq!(stats.local_words + stats.cross_shard_words, stats.words);
            (
                ps.into_iter()
                    .map(|p| (p.heard, p.chatty))
                    .collect::<Vec<_>>(),
                stats.locality_blind(),
            )
        };
        let baseline = run(EngineKind::Sequential);
        for engine in engines() {
            assert_eq!(run(engine), baseline, "{engine}");
        }
    }

    #[test]
    fn growth_view_with_no_overlay_matches_static_run() {
        // A growth view whose overlay is empty is the settled graph:
        // every output and statistic must be byte-identical to the
        // plain Static path.
        let g = generators::harary(4, 16);
        let gg = GrowableGraph::from_base(g.clone());
        let run = |growth: bool| {
            let mut sim = Simulator::with_seed(&g, Model::VCongest, 7);
            if growth {
                sim = sim.with_growth(&gg);
            }
            let programs = (0..g.n())
                .map(|_| Counter {
                    heard: 0,
                    chatty: 3,
                })
                .collect();
            let (ps, stats) = sim.run(programs, 100).unwrap();
            (
                ps.into_iter()
                    .map(|p| (p.heard, p.chatty))
                    .collect::<Vec<_>>(),
                stats,
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn growth_run_reveals_adjacency_only_at_arrival_and_is_engine_equivalent() {
        use crate::fault::{Fault, FaultPlan, ScheduledFault};
        // Base: cycle on 0..4; newcomers 4 and 5 are *isolated* in the
        // base CSR — their adjacency exists only in the growth view,
        // activating at the arrival rounds. This is the end of the
        // settled model: no engine ever sees the final adjacency up
        // front.
        let base = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let plan = FaultPlan::new([
            ScheduledFault {
                round: 2,
                fault: Fault::AddVertex(4),
            },
            ScheduledFault {
                round: 2,
                fault: Fault::AddEdge(0, 4),
            },
            ScheduledFault {
                round: 2,
                fault: Fault::AddEdge(2, 4),
            },
            ScheduledFault {
                round: 5,
                fault: Fault::AddVertex(5),
            },
            ScheduledFault {
                round: 5,
                fault: Fault::AddEdge(4, 5),
            },
        ]);
        assert_eq!(plan.validate(&base), Ok(()));
        let gg = plan.growth_topology(&base);
        assert_eq!(gg.overlay_len(), 3, "all three edges are new to the base");
        let run = |engine| {
            let mut sim = Simulator::with_seed(&base, Model::VCongest, 11)
                .with_engine(engine)
                .with_growth(&gg)
                .with_faults(plan.clone());
            let programs = (0..6)
                .map(|_| Counter {
                    heard: 0,
                    chatty: 4,
                })
                .collect();
            let (ps, stats) = sim.run(programs, 100).unwrap();
            assert_eq!(stats.local_words + stats.cross_shard_words, stats.words);
            (
                ps.into_iter()
                    .map(|p| (p.heard, p.chatty))
                    .collect::<Vec<_>>(),
                stats.locality_blind(),
            )
        };
        let baseline = run(EngineKind::Sequential);
        // Newcomer 5's only link is to fellow newcomer 4 — adjacency
        // revealed at round 5, well after both nodes existed in the
        // base. It still hears traffic (4's remaining broadcasts).
        assert!(baseline.0[5].0 > 0, "vertex 5 heard nothing");
        assert_eq!(baseline.0[5].1, 0, "vertex 5 never drained its budget");
        for engine in engines() {
            assert_eq!(run(engine), baseline, "{engine}");
        }
    }

    #[test]
    fn locality_split_partitions_words_and_sequential_is_all_local() {
        let g = generators::harary(4, 20);
        let run = |engine| {
            let mut sim = Simulator::with_seed(&g, Model::VCongest, 9).with_engine(engine);
            let programs = (0..g.n())
                .map(|_| Counter {
                    heard: 0,
                    chatty: 4,
                })
                .collect();
            sim.run(programs, 100).unwrap().1
        };
        let seq = run(EngineKind::Sequential);
        assert_eq!(seq.local_words, seq.words, "one thread owns every node");
        assert_eq!(seq.cross_shard_words, 0);
        for engine in [EngineKind::sharded(4), EngineKind::sharded_topo(4)] {
            let stats = run(engine);
            assert_eq!(
                stats.local_words + stats.cross_shard_words,
                stats.words,
                "{engine}"
            );
            assert!(
                stats.cross_shard_words > 0,
                "{engine}: 4 shards on harary(4,20) must cut something"
            );
            assert_eq!(stats.locality_blind(), seq.locality_blind(), "{engine}");
        }
        // Topo shards on a circulant follow the ring, contiguous shards
        // are already arcs: both cut, topo never cuts more than the
        // random-looking assignment a mismatched id order would give.
        let contig = run(EngineKind::sharded(4));
        let topo = run(EngineKind::sharded_topo(4));
        assert_eq!(contig.words, topo.words);
    }

    #[test]
    fn charge_rounds_accumulates() {
        let g = generators::path(2);
        let mut sim = Simulator::new(&g, Model::VCongest);
        sim.charge_rounds(100);
        assert_eq!(sim.stats().rounds, 100);
    }

    #[test]
    fn rng_deterministic_per_seed_and_engine() {
        use rand::Rng;
        struct Roll {
            value: Option<u64>,
        }
        impl NodeProgram for Roll {
            fn round(&mut self, ctx: &mut NodeCtx<'_>, _inbox: &Inbox<'_>) {
                if self.value.is_none() {
                    self.value = Some(ctx.rng().gen());
                }
            }
            fn is_done(&self) -> bool {
                self.value.is_some()
            }
        }
        let g = generators::path(3);
        let roll = |seed, engine| {
            let mut sim = Simulator::with_seed(&g, Model::VCongest, seed).with_engine(engine);
            let (ps, _) = sim
                .run((0..3).map(|_| Roll { value: None }).collect(), 4)
                .unwrap();
            ps.into_iter().map(|p| p.value.unwrap()).collect::<Vec<_>>()
        };
        for engine in engines() {
            assert_eq!(roll(7, engine), roll(7, EngineKind::Sequential));
            assert_eq!(roll(7, engine), roll(7, engine));
            assert_ne!(roll(7, engine), roll(8, engine));
        }
    }
}
