//! The synchronous round-based simulator facade.
//!
//! A [`Simulator`] wraps a [`Graph`] as the communication network and runs
//! [`NodeProgram`]s in lockstep rounds, enforcing the bandwidth constraints
//! of the selected [`Model`] and accounting rounds / messages / words.
//! The round loop itself is pluggable: the facade delegates to a
//! [`crate::engine::RoundEngine`] chosen via [`Simulator::with_engine`]
//! (sequential by default, or the deterministic sharded multi-core
//! backend — see [`crate::engine`] for the bit-for-bit determinism
//! contract between backends).
//!
//! Messages sent in round `r` are delivered at the start of round `r + 1`.
//! A run terminates when every program reports [`NodeProgram::is_done`] and
//! no messages are in flight (quiescence), or errors when `max_rounds` is
//! exceeded.
//!
//! Composite algorithms (the paper's packing constructions are sequences of
//! phases synchronized by round counters) run several programs back to
//! back on one simulator; the cumulative statistics add up across runs.

use crate::engine::{EngineKind, NetSpec, RoundEngine, SequentialEngine, ShardedEngine};
use crate::message::Message;
use decomp_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// The communication model (paper, Section 1.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Model {
    /// Each node sends one message per round to *all* neighbors
    /// (local broadcast); congestion sits in the vertices.
    VCongest,
    /// One message per round per edge *direction*; the classical CONGEST
    /// model.
    ECongest,
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Model::VCongest => write!(f, "V-CONGEST"),
            Model::ECongest => write!(f, "E-CONGEST"),
        }
    }
}

/// Cost accounting for one run (and cumulatively for a simulator).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Rounds executed.
    pub rounds: usize,
    /// Point-to-point messages delivered (a V-CONGEST broadcast to `d`
    /// neighbors counts as `d` messages).
    pub messages: usize,
    /// Total payload words delivered.
    pub words: usize,
}

impl RunStats {
    fn absorb(&mut self, other: RunStats) {
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.words += other.words;
    }
}

/// Errors a run can produce.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The protocol did not reach quiescence within `max_rounds`.
    ExceededMaxRounds {
        /// The limit that was hit.
        max_rounds: usize,
        /// Messages delivered for the failed round that no program got to
        /// read (in-flight traffic at the cutoff).
        undelivered: usize,
        /// Programs still reporting `is_done() == false` at the cutoff.
        unfinished: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ExceededMaxRounds {
                max_rounds,
                undelivered,
                unfinished,
            } => {
                write!(
                    f,
                    "protocol did not terminate within {max_rounds} rounds \
                     ({undelivered} messages still in flight, {unfinished} programs not done)"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Messages delivered to a node this round, as `(sender, message)` pairs
/// sorted by sender id.
pub type Inbox = [(NodeId, Message)];

pub(crate) enum Outbox {
    /// V-CONGEST: at most one local-broadcast message.
    Broadcast(Option<Message>),
    /// E-CONGEST: at most one message per neighbor (indexed like
    /// `graph.neighbors(v)`).
    PerNeighbor(Vec<Option<Message>>),
}

impl Outbox {
    /// An empty outbox for a node of the given degree under `model`.
    pub(crate) fn new(model: Model, degree: usize) -> Self {
        match model {
            Model::VCongest => Outbox::Broadcast(None),
            Model::ECongest => Outbox::PerNeighbor(vec![None; degree]),
        }
    }

    /// Feeds every outgoing `(receiver, payload)` pair to `f`; returns
    /// `true` iff the node attempted a send. (A broadcast from a
    /// degree-0 node delivers nothing but still counts as an attempt —
    /// the historical round-loop semantics, which quiescence timing
    /// depends on.)
    pub(crate) fn drain(self, neighbors: &[NodeId], mut f: impl FnMut(NodeId, Message)) -> bool {
        match self {
            Outbox::Broadcast(Some(m)) => {
                for &u in neighbors {
                    f(u, m.clone());
                }
                true
            }
            Outbox::Broadcast(None) => false,
            Outbox::PerNeighbor(slots) => {
                let mut any = false;
                for (i, slot) in slots.into_iter().enumerate() {
                    if let Some(m) = slot {
                        any = true;
                        f(neighbors[i], m);
                    }
                }
                any
            }
        }
    }
}

/// Per-round context handed to a [`NodeProgram`].
///
/// Provides the node's identity, topology view (its neighbor list — the
/// `KT1`-style initial knowledge the paper assumes after one round), the
/// global parameters `n` (learned in the standard `O(D)` preamble), a
/// per-node deterministic RNG, and the send API.
pub struct NodeCtx<'a> {
    id: NodeId,
    n: usize,
    round: usize,
    neighbors: &'a [NodeId],
    model: Model,
    word_budget: usize,
    outbox: &'a mut Outbox,
    rng: &'a mut StdRng,
}

impl<'a> NodeCtx<'a> {
    #[allow(clippy::too_many_arguments)] // crate-internal engine plumbing
    pub(crate) fn new(
        id: NodeId,
        n: usize,
        round: usize,
        neighbors: &'a [NodeId],
        model: Model,
        word_budget: usize,
        outbox: &'a mut Outbox,
        rng: &'a mut StdRng,
    ) -> Self {
        NodeCtx {
            id,
            n,
            round,
            neighbors,
            model,
            word_budget,
            outbox,
            rng,
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Number of nodes in the network.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current round number within the running protocol (0-based).
    pub fn round(&self) -> usize {
        self.round
    }

    /// Sorted neighbor ids.
    pub fn neighbors(&self) -> &[NodeId] {
        self.neighbors
    }

    /// Degree.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// The model this network runs.
    pub fn model(&self) -> Model {
        self.model
    }

    /// Per-node deterministic RNG (the "private coins" of the model).
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Sends `m` to all neighbors (allowed in both models; in V-CONGEST it
    /// is the *only* send primitive).
    ///
    /// # Panics
    /// Panics if called twice in one round, after a targeted
    /// [`NodeCtx::send`] this round, or if `m` exceeds the word budget.
    pub fn broadcast(&mut self, m: Message) {
        self.check_budget(&m);
        match self.outbox {
            Outbox::Broadcast(slot) => {
                assert!(
                    slot.is_none(),
                    "V-CONGEST violation: node {} broadcast twice in round {}",
                    self.id,
                    self.round
                );
                *slot = Some(m);
            }
            Outbox::PerNeighbor(slots) => {
                for (i, slot) in slots.iter_mut().enumerate() {
                    assert!(
                        slot.is_none(),
                        "E-CONGEST violation: node {} already sent to neighbor {} in round {}",
                        self.id,
                        self.neighbors[i],
                        self.round
                    );
                    *slot = Some(m.clone());
                }
            }
        }
    }

    /// Sends `m` to the single neighbor `to` (E-CONGEST only).
    ///
    /// # Panics
    /// Panics in V-CONGEST, if `to` is not a neighbor, if this edge
    /// direction was already used this round, or on word-budget overflow.
    pub fn send(&mut self, to: NodeId, m: Message) {
        self.check_budget(&m);
        match self.outbox {
            Outbox::Broadcast(_) => panic!(
                "V-CONGEST violation: node {} attempted a targeted send (only local broadcast is allowed)",
                self.id
            ),
            Outbox::PerNeighbor(slots) => {
                let idx = self
                    .neighbors
                    .binary_search(&to)
                    .unwrap_or_else(|_| panic!("node {} is not a neighbor of {}", to, self.id));
                assert!(
                    slots[idx].is_none(),
                    "E-CONGEST violation: node {} sent twice to {} in round {}",
                    self.id,
                    to,
                    self.round
                );
                slots[idx] = Some(m);
            }
        }
    }

    fn check_budget(&self, m: &Message) {
        assert!(
            m.len() <= self.word_budget,
            "message of {} words exceeds the {}-word budget (node {}, round {})",
            m.len(),
            self.word_budget,
            self.id,
            self.round
        );
    }
}

/// A per-node state machine executed by the simulator.
///
/// `round` is invoked every round while the node is active; a node is
/// *active* in round 0, whenever its inbox is non-empty, and whenever
/// `is_done()` is false. Nodes may therefore go quiet and be reawakened by
/// incoming messages (the pattern used by label-propagation primitives).
///
/// Programs must be [`Send`] so the sharded engine can step disjoint node
/// ranges on worker threads; program state is plain data, so this is
/// automatic in practice.
pub trait NodeProgram {
    /// Executes one round: read `inbox`, update state, send via `ctx`.
    fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &Inbox);

    /// Local termination flag; the run stops at global quiescence
    /// (all done + no messages in flight).
    fn is_done(&self) -> bool;
}

/// The synchronous simulator facade. See the [module docs](self) for
/// semantics and [`crate::engine`] for the execution backends.
pub struct Simulator<'g> {
    graph: &'g Graph,
    model: Model,
    word_budget: usize,
    engine: EngineKind,
    rngs: Vec<StdRng>,
    cumulative: RunStats,
}

/// Default per-message payload budget, in words. Each word models one
/// `O(log n)`-bit field; the paper's messages carry a constant number of
/// ids/labels per message.
pub const DEFAULT_WORD_BUDGET: usize = 8;

impl<'g> Simulator<'g> {
    /// A simulator over `graph` in `model` with the default word budget,
    /// seed 0, and the sequential engine.
    pub fn new(graph: &'g Graph, model: Model) -> Self {
        Self::with_seed(graph, model, 0)
    }

    /// A simulator with an explicit base seed for the nodes' private coins.
    pub fn with_seed(graph: &'g Graph, model: Model, seed: u64) -> Self {
        let rngs = (0..graph.n())
            .map(|v| StdRng::seed_from_u64(seed.wrapping_mul(0x9e3779b97f4a7c15) ^ (v as u64)))
            .collect();
        Simulator {
            graph,
            model,
            word_budget: DEFAULT_WORD_BUDGET,
            engine: EngineKind::Sequential,
            rngs,
            cumulative: RunStats::default(),
        }
    }

    /// Overrides the per-message word budget.
    pub fn with_word_budget(mut self, words: usize) -> Self {
        self.word_budget = words;
        self
    }

    /// Selects the round-execution backend. Engine choice never changes
    /// outputs or statistics (see [`crate::engine`]), only wall-clock
    /// behavior.
    ///
    /// # Example
    ///
    /// ```
    /// use decomp_congest::{EngineKind, Model, Simulator};
    /// use decomp_congest::bfs::distributed_bfs;
    /// use decomp_graph::generators;
    ///
    /// let g = generators::harary(4, 24);
    /// let run = |engine| {
    ///     let mut sim = Simulator::new(&g, Model::VCongest).with_engine(engine);
    ///     let tree = distributed_bfs(&mut sim, 0).unwrap();
    ///     (tree.dist, tree.parent, sim.stats())
    /// };
    /// // Bit-for-bit equivalent across engines: same tree, same stats.
    /// assert_eq!(
    ///     run(EngineKind::Sequential),
    ///     run(EngineKind::Sharded { shards: 4 }),
    /// );
    /// ```
    pub fn with_engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// The underlying network graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The model being simulated.
    pub fn model(&self) -> Model {
        self.model
    }

    /// The selected round-execution backend.
    pub fn engine(&self) -> EngineKind {
        self.engine
    }

    /// Cumulative statistics across all runs on this simulator.
    pub fn stats(&self) -> RunStats {
        self.cumulative
    }

    /// Adds externally-charged rounds to the cumulative statistics.
    ///
    /// Used for the documented substitutions (DESIGN.md §3): when a paper
    /// subroutine is replaced by a centralized oracle, its theoretical
    /// distributed cost is charged here so round totals remain meaningful.
    pub fn charge_rounds(&mut self, rounds: usize) {
        self.cumulative.rounds += rounds;
    }

    /// Runs `programs` (one per node, indexed by node id) until quiescence
    /// on the selected engine.
    ///
    /// Returns the final program states and this run's statistics.
    ///
    /// # Errors
    /// [`SimError::ExceededMaxRounds`] if quiescence is not reached within
    /// `max_rounds`.
    ///
    /// # Panics
    /// Panics if `programs.len() != graph.n()`, or on model violations
    /// inside program code (see [`NodeCtx`]); the sharded engine re-raises
    /// worker panics on the calling thread.
    pub fn run<P: NodeProgram + Send>(
        &mut self,
        mut programs: Vec<P>,
        max_rounds: usize,
    ) -> Result<(Vec<P>, RunStats), SimError> {
        let n = self.graph.n();
        assert_eq!(programs.len(), n, "need one program per node");
        let net = NetSpec {
            graph: self.graph,
            model: self.model,
            word_budget: self.word_budget,
        };
        let outcome = match self.engine {
            EngineKind::Sequential => {
                SequentialEngine.run(&net, &mut programs, &mut self.rngs, max_rounds)
            }
            EngineKind::Sharded { shards } => {
                ShardedEngine::new(shards).run(&net, &mut programs, &mut self.rngs, max_rounds)
            }
        };
        self.cumulative.absorb(outcome.stats);
        match outcome.error {
            Some(err) => Err(err),
            None => Ok((programs, outcome.stats)),
        }
    }

    /// [`Simulator::run`] with a generous default round limit of
    /// `64 * n + 4096`.
    pub fn run_to_quiescence<P: NodeProgram + Send>(
        &mut self,
        programs: Vec<P>,
    ) -> Result<(Vec<P>, RunStats), SimError> {
        let limit = 64 * self.graph.n() + 4096;
        self.run(programs, limit)
    }
}

impl fmt::Debug for Simulator<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulator")
            .field("n", &self.graph.n())
            .field("model", &self.model)
            .field("engine", &self.engine)
            .field("stats", &self.cumulative)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp_graph::generators;

    /// Every node broadcasts its id once; neighbors record what they heard.
    struct HelloOnce {
        heard: Vec<NodeId>,
        sent: bool,
    }

    impl NodeProgram for HelloOnce {
        fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &Inbox) {
            for (from, _m) in inbox {
                self.heard.push(*from);
            }
            if !self.sent {
                ctx.broadcast(Message::from_words([ctx.id() as u64]));
                self.sent = true;
            }
        }
        fn is_done(&self) -> bool {
            self.sent
        }
    }

    fn engines() -> [EngineKind; 3] {
        [
            EngineKind::Sequential,
            EngineKind::Sharded { shards: 2 },
            EngineKind::Sharded { shards: 4 },
        ]
    }

    #[test]
    fn exceeded_max_rounds_display_renders_all_context_fields() {
        let err = SimError::ExceededMaxRounds {
            max_rounds: 17,
            undelivered: 3,
            unfinished: 5,
        };
        let msg = err.to_string();
        assert_eq!(
            msg,
            "protocol did not terminate within 17 rounds \
             (3 messages still in flight, 5 programs not done)"
        );
    }

    #[test]
    fn exceeded_max_rounds_error_carries_observed_context() {
        // A program that never finishes and floods every round: the limit
        // error must report the actual in-flight traffic and stragglers.
        #[derive(Debug)]
        struct Chatter;
        impl NodeProgram for Chatter {
            fn round(&mut self, ctx: &mut NodeCtx<'_>, _inbox: &Inbox) {
                ctx.broadcast(Message::from_words([ctx.id() as u64]));
            }
            fn is_done(&self) -> bool {
                false
            }
        }
        let g = generators::cycle(4);
        let mut sim = Simulator::new(&g, Model::VCongest);
        let err = sim
            .run(vec![Chatter, Chatter, Chatter, Chatter], 3)
            .unwrap_err();
        match err {
            SimError::ExceededMaxRounds {
                max_rounds,
                undelivered,
                unfinished,
            } => {
                assert_eq!(max_rounds, 3);
                assert_eq!(undelivered, 8, "4 nodes × 2 neighbors in flight");
                assert_eq!(unfinished, 4);
                let msg = err.to_string();
                for needle in ["3 rounds", "8 messages", "4 programs"] {
                    assert!(msg.contains(needle), "`{msg}` missing `{needle}`");
                }
            }
        }
    }

    #[test]
    fn hello_exchange_on_cycle() {
        for engine in engines() {
            let g = generators::cycle(5);
            let mut sim = Simulator::new(&g, Model::VCongest).with_engine(engine);
            let programs = (0..5)
                .map(|_| HelloOnce {
                    heard: Vec::new(),
                    sent: false,
                })
                .collect();
            let (programs, stats) = sim.run(programs, 10).unwrap();
            // Each node hears exactly its two neighbors.
            for (v, p) in programs.iter().enumerate() {
                let mut heard = p.heard.clone();
                heard.sort_unstable();
                assert_eq!(heard, g.neighbors(v), "{engine}");
            }
            assert_eq!(stats.rounds, 2, "{engine}"); // send round + delivery round
            assert_eq!(stats.messages, 10, "{engine}"); // 5 broadcasts x degree 2
        }
    }

    #[test]
    fn exceeding_round_limit_errors_with_context() {
        #[derive(Debug)]
        struct Chatter;
        impl NodeProgram for Chatter {
            fn round(&mut self, ctx: &mut NodeCtx<'_>, _inbox: &Inbox) {
                ctx.broadcast(Message::new());
            }
            fn is_done(&self) -> bool {
                false
            }
        }
        for engine in engines() {
            let g = generators::path(3);
            let mut sim = Simulator::new(&g, Model::VCongest).with_engine(engine);
            let err = sim.run(vec![Chatter, Chatter, Chatter], 5).unwrap_err();
            // Round 4's sends (2 path ends x 1 + middle x 2 = 4 messages)
            // are still in flight at the cutoff; no program ever finishes.
            assert_eq!(
                err,
                SimError::ExceededMaxRounds {
                    max_rounds: 5,
                    undelivered: 4,
                    unfinished: 3,
                },
                "{engine}"
            );
            let shown = err.to_string();
            assert!(shown.contains("5 rounds"), "{shown}");
            assert!(shown.contains("4 messages"), "{shown}");
            assert!(shown.contains("3 programs"), "{shown}");
        }
    }

    #[test]
    #[should_panic(expected = "V-CONGEST violation")]
    fn double_broadcast_panics() {
        struct Bad;
        impl NodeProgram for Bad {
            fn round(&mut self, ctx: &mut NodeCtx<'_>, _inbox: &Inbox) {
                ctx.broadcast(Message::new());
                ctx.broadcast(Message::new());
            }
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = generators::path(2);
        let mut sim = Simulator::new(&g, Model::VCongest);
        let _ = sim.run(vec![Bad, Bad], 3);
    }

    #[test]
    #[should_panic(expected = "V-CONGEST violation")]
    fn sharded_engine_propagates_program_panics() {
        struct Bad;
        impl NodeProgram for Bad {
            fn round(&mut self, ctx: &mut NodeCtx<'_>, _inbox: &Inbox) {
                ctx.broadcast(Message::new());
                ctx.broadcast(Message::new());
            }
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = generators::path(4);
        let mut sim =
            Simulator::new(&g, Model::VCongest).with_engine(EngineKind::Sharded { shards: 2 });
        let _ = sim.run(vec![Bad, Bad, Bad, Bad], 3);
    }

    #[test]
    #[should_panic(expected = "targeted send")]
    fn vcongest_rejects_targeted_send() {
        struct Bad;
        impl NodeProgram for Bad {
            fn round(&mut self, ctx: &mut NodeCtx<'_>, _inbox: &Inbox) {
                let to = ctx.neighbors()[0];
                ctx.send(to, Message::new());
            }
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = generators::path(2);
        let mut sim = Simulator::new(&g, Model::VCongest);
        let _ = sim.run(vec![Bad, Bad], 3);
    }

    #[test]
    #[should_panic(expected = "word budget")]
    fn word_budget_enforced() {
        struct Fat;
        impl NodeProgram for Fat {
            fn round(&mut self, ctx: &mut NodeCtx<'_>, _inbox: &Inbox) {
                ctx.broadcast(Message::from_words(0..100));
            }
            fn is_done(&self) -> bool {
                true
            }
        }
        let g = generators::path(2);
        let mut sim = Simulator::new(&g, Model::VCongest);
        let _ = sim.run(vec![Fat, Fat], 3);
    }

    #[test]
    fn econgest_targeted_sends() {
        /// Node 0 sends distinct words to each neighbor.
        struct Sender;
        struct Receiver {
            got: Option<u64>,
        }
        enum P {
            S(Sender),
            R(Receiver),
        }
        impl NodeProgram for P {
            fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &Inbox) {
                match self {
                    P::S(_) => {
                        if ctx.round() == 0 {
                            for (i, &nb) in ctx.neighbors().to_vec().iter().enumerate() {
                                ctx.send(nb, Message::from_words([i as u64 * 10]));
                            }
                        }
                    }
                    P::R(r) => {
                        if let Some((_, m)) = inbox.first() {
                            r.got = Some(m.word(0));
                        }
                    }
                }
            }
            fn is_done(&self) -> bool {
                true
            }
        }
        for engine in engines() {
            let g = generators::star(4); // center 0
            let mut sim = Simulator::new(&g, Model::ECongest).with_engine(engine);
            let programs = vec![
                P::S(Sender),
                P::R(Receiver { got: None }),
                P::R(Receiver { got: None }),
                P::R(Receiver { got: None }),
            ];
            let (programs, _) = sim.run(programs, 5).unwrap();
            for (i, p) in programs.iter().enumerate().skip(1) {
                if let P::R(r) = p {
                    assert_eq!(r.got, Some((i as u64 - 1) * 10), "{engine}");
                }
            }
        }
    }

    #[test]
    fn degree_zero_broadcast_counts_as_send_attempt() {
        // Historical quiescence timing: a broadcast from an isolated node
        // delivers nothing but still holds the run open one extra round.
        // Two isolated nodes so the sharded engine genuinely shards
        // (n = 1 would clamp to the sequential path).
        for engine in engines() {
            let g = decomp_graph::Graph::empty(2);
            let mut sim = Simulator::new(&g, Model::VCongest).with_engine(engine);
            let programs = (0..2)
                .map(|_| HelloOnce {
                    heard: Vec::new(),
                    sent: false,
                })
                .collect();
            let (_, stats) = sim.run(programs, 10).unwrap();
            assert_eq!(stats.rounds, 2, "{engine}");
            assert_eq!(stats.messages, 0, "{engine}");
        }
    }

    #[test]
    fn charge_rounds_accumulates() {
        let g = generators::path(2);
        let mut sim = Simulator::new(&g, Model::VCongest);
        sim.charge_rounds(100);
        assert_eq!(sim.stats().rounds, 100);
    }

    #[test]
    fn rng_deterministic_per_seed_and_engine() {
        use rand::Rng;
        struct Roll {
            value: Option<u64>,
        }
        impl NodeProgram for Roll {
            fn round(&mut self, ctx: &mut NodeCtx<'_>, _inbox: &Inbox) {
                if self.value.is_none() {
                    self.value = Some(ctx.rng().gen());
                }
            }
            fn is_done(&self) -> bool {
                self.value.is_some()
            }
        }
        let g = generators::path(3);
        let roll = |seed, engine| {
            let mut sim = Simulator::with_seed(&g, Model::VCongest, seed).with_engine(engine);
            let (ps, _) = sim
                .run((0..3).map(|_| Roll { value: None }).collect(), 4)
                .unwrap();
            ps.into_iter().map(|p| p.value.unwrap()).collect::<Vec<_>>()
        };
        for engine in engines() {
            assert_eq!(roll(7, engine), roll(7, EngineKind::Sequential));
            assert_eq!(roll(7, engine), roll(7, engine));
            assert_ne!(roll(7, engine), roll(8, engine));
        }
    }
}
