//! Distributed BFS-tree construction.
//!
//! The paper's standard preamble (Section 2): "by using a simple and
//! standard BFS tree approach, in `O(D)` rounds, nodes can learn the number
//! of nodes in the network `n`, and also a 2-approximation of the diameter".
//! [`distributed_bfs`] builds the tree; combined with
//! [`crate::aggregate::tree_aggregate`] it yields exactly that preamble.

use crate::message::Message;
use crate::sim::{Inbox, NodeCtx, NodeProgram, SimError, Simulator};
use decomp_graph::NodeId;

/// Per-node outcome of a distributed BFS.
#[derive(Clone, Debug)]
pub struct DistBfsTree {
    /// Root of the tree.
    pub root: NodeId,
    /// Hop distance from the root (`usize::MAX` if unreached).
    pub dist: Vec<usize>,
    /// BFS parent (`usize::MAX` for the root and unreached nodes).
    pub parent: Vec<NodeId>,
}

impl DistBfsTree {
    /// Whether `v` was reached.
    pub fn reached(&self, v: NodeId) -> bool {
        self.dist[v] != usize::MAX
    }

    /// Children lists derived from the parent pointers.
    pub fn children(&self) -> Vec<Vec<NodeId>> {
        let n = self.dist.len();
        let mut ch = vec![Vec::new(); n];
        for v in 0..n {
            if v != self.root && self.reached(v) {
                ch[self.parent[v]].push(v);
            }
        }
        ch
    }

    /// Depth of the tree (max distance over reached nodes).
    pub fn depth(&self) -> usize {
        self.dist
            .iter()
            .copied()
            .filter(|&d| d != usize::MAX)
            .max()
            .unwrap_or(0)
    }
}

/// Node program: flood (distance) waves from the root; first wave wins.
struct BfsProgram {
    root: NodeId,
    dist: Option<u64>,
    parent: Option<NodeId>,
    announced: bool,
}

impl NodeProgram for BfsProgram {
    fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &Inbox<'_>) {
        if self.dist.is_none() {
            if ctx.id() == self.root {
                self.dist = Some(0);
            } else {
                // Adopt the smallest announced distance + 1; ties by
                // smallest sender id (deterministic).
                let best = inbox.iter().map(|(from, m)| (m.word(0), from)).min();
                if let Some((d, from)) = best {
                    self.dist = Some(d + 1);
                    self.parent = Some(from);
                }
            }
        }
        if let (Some(d), false) = (self.dist, self.announced) {
            ctx.broadcast(Message::from_words([d]));
            self.announced = true;
        }
    }

    fn is_done(&self) -> bool {
        // Quiet unless a first message could still arrive; reactivation on
        // message arrival handles the unreached case.
        self.announced || self.dist.is_none()
    }
}

/// Runs a BFS from `root` on `sim`'s network. Takes `depth + O(1)` rounds.
///
/// # Errors
/// Propagates [`SimError`] if the run exceeds the simulator's round limit
/// (cannot happen on finite graphs with the default limit).
pub fn distributed_bfs(sim: &mut Simulator<'_>, root: NodeId) -> Result<DistBfsTree, SimError> {
    assert!(root < sim.graph().n(), "root out of range");
    let programs = (0..sim.graph().n())
        .map(|_| BfsProgram {
            root,
            dist: None,
            parent: None,
            announced: false,
        })
        .collect();
    let (programs, _stats) = sim.run_to_quiescence(programs)?;
    let dist = programs
        .iter()
        .map(|p| p.dist.map(|d| d as usize).unwrap_or(usize::MAX))
        .collect();
    let parent = programs
        .iter()
        .map(|p| p.parent.unwrap_or(usize::MAX))
        .collect();
    Ok(DistBfsTree { root, dist, parent })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Model;
    use decomp_graph::{generators, traversal};

    #[test]
    fn matches_centralized_bfs_distances() {
        for seed in 0..5 {
            let g = generators::random_connected(24, 12, seed);
            let reference = traversal::bfs(&g, 0);
            let mut sim = Simulator::new(&g, Model::VCongest);
            let tree = distributed_bfs(&mut sim, 0).unwrap();
            assert_eq!(tree.dist, reference.dist, "seed {seed}");
        }
    }

    #[test]
    fn parent_is_one_closer() {
        let g = generators::grid(4, 5);
        let mut sim = Simulator::new(&g, Model::ECongest);
        let t = distributed_bfs(&mut sim, 7).unwrap();
        for v in g.vertices() {
            if v != 7 && t.reached(v) {
                assert_eq!(t.dist[t.parent[v]] + 1, t.dist[v]);
                assert!(g.has_edge(v, t.parent[v]));
            }
        }
    }

    #[test]
    fn unreached_nodes_marked() {
        let g = decomp_graph::Graph::from_edges(4, [(0, 1), (2, 3)]);
        let mut sim = Simulator::new(&g, Model::VCongest);
        let t = distributed_bfs(&mut sim, 0).unwrap();
        assert!(t.reached(1));
        assert!(!t.reached(2));
        assert!(!t.reached(3));
    }

    #[test]
    fn round_count_tracks_depth() {
        let g = generators::path(30);
        let mut sim = Simulator::new(&g, Model::VCongest);
        let t = distributed_bfs(&mut sim, 0).unwrap();
        assert_eq!(t.depth(), 29);
        let rounds = sim.stats().rounds;
        assert!(
            (29..=35).contains(&rounds),
            "BFS on a 30-path should take ~30 rounds, got {rounds}"
        );
    }

    #[test]
    fn children_consistent() {
        let g = generators::star(6);
        let mut sim = Simulator::new(&g, Model::VCongest);
        let t = distributed_bfs(&mut sim, 0).unwrap();
        let ch = t.children();
        assert_eq!(ch[0].len(), 5);
        assert!(ch[1].is_empty());
    }
}
