//! Deterministic fault injection: seeded vertex/edge deletion schedules.
//!
//! A [`FaultPlan`] is a list of [`ScheduledFault`]s — vertex or edge
//! deletions, each pinned to a round — that the round engines apply
//! mid-run: when round `r` begins, every fault scheduled at a round
//! `≤ r` fires *before* inboxes are consumed, so a dying node's
//! in-flight messages (sent in round `r − 1`) are dropped along with it.
//! From that point the node is silenced — it is never stepped again, its
//! RNG stream stops advancing, and quiescence is decided over the
//! surviving programs only. Cut edges drop traffic in both directions
//! but leave their endpoints running.
//!
//! Plans are pure data built from explicit seeds ([`FaultPlan::random_vertices`]
//! et al. derive everything from a `u64`), so the same plan + seed +
//! engine reproduces the identical failure schedule, message trace, and
//! stats on every run — the determinism contract of
//! `docs/DETERMINISM.md` extends to the failure path. The paper's
//! robustness claim (Theorem 1.1: a `k`-connected packing survives up to
//! `k − 1` failures) is exercised by choosing `f < k` faults and
//! checking delivery still completes over the surviving trees.

use decomp_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One injected failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Fault {
    /// Vertex `v` crashes: silenced from its fault round on, all
    /// incident traffic (in-flight included) dropped.
    Vertex(NodeId),
    /// Edge `{u, v}` is cut in both directions; endpoints keep running.
    /// Stored normalized (`u < v`).
    Edge(NodeId, NodeId),
}

impl Fault {
    /// Normalizes an edge fault so `u < v`; vertex faults pass through.
    fn normalized(self) -> Fault {
        match self {
            Fault::Edge(u, v) if u > v => Fault::Edge(v, u),
            other => other,
        }
    }
}

/// A [`Fault`] pinned to the round at whose *start* it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ScheduledFault {
    /// Round index (0-based, in the running protocol's round counter) at
    /// whose start the fault fires.
    pub round: usize,
    /// What fails.
    pub fault: Fault,
}

/// A deterministic failure schedule, sorted by round.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<ScheduledFault>,
}

impl FaultPlan {
    /// The empty plan (no faults ever fire).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan from explicit events. Edge faults are normalized and the
    /// schedule is stably sorted by round, so logically equal plans
    /// compare equal regardless of construction order.
    pub fn new(events: impl IntoIterator<Item = ScheduledFault>) -> Self {
        let mut events: Vec<ScheduledFault> = events
            .into_iter()
            .map(|e| ScheduledFault {
                round: e.round,
                fault: e.fault.normalized(),
            })
            .collect();
        events.sort_by_key(|e| e.round);
        FaultPlan { events }
    }

    /// `f` distinct vertices chosen uniformly at random (seeded), each
    /// failing at a round drawn uniformly from `rounds` (inclusive
    /// bounds). `f` is clamped to `g.n()`.
    pub fn random_vertices(g: &Graph, f: usize, rounds: (usize, usize), seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfa17_0001);
        let mut ids: Vec<NodeId> = (0..g.n()).collect();
        let f = f.min(ids.len());
        // Partial Fisher–Yates: the first f slots become the sample.
        for i in 0..f {
            let j = rng.gen_range(i..ids.len());
            ids.swap(i, j);
        }
        Self::new(ids[..f].iter().map(|&v| ScheduledFault {
            round: draw_round(&mut rng, rounds),
            fault: Fault::Vertex(v),
        }))
    }

    /// The worst-case vertex policy: the `f` highest-degree vertices
    /// (ties broken toward lower ids), all failing at `round`.
    pub fn worst_case_vertices(g: &Graph, f: usize, round: usize) -> Self {
        let mut ids: Vec<NodeId> = (0..g.n()).collect();
        ids.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
        Self::new(ids.into_iter().take(f).map(|v| ScheduledFault {
            round,
            fault: Fault::Vertex(v),
        }))
    }

    /// `f` distinct edges chosen uniformly at random (seeded), each cut
    /// at a round drawn uniformly from `rounds`. `f` is clamped to
    /// `g.m()`.
    pub fn random_edges(g: &Graph, f: usize, rounds: (usize, usize), seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfa17_0002);
        let mut edges: Vec<(NodeId, NodeId)> = g.edges().to_vec();
        let f = f.min(edges.len());
        for i in 0..f {
            let j = rng.gen_range(i..edges.len());
            edges.swap(i, j);
        }
        Self::new(edges[..f].iter().map(|&(u, v)| ScheduledFault {
            round: draw_round(&mut rng, rounds),
            fault: Fault::Edge(u, v),
        }))
    }

    /// The worst-case edge policy: the `f` edges with the largest
    /// endpoint-degree sum (ties broken lexicographically), all cut at
    /// `round`.
    pub fn worst_case_edges(g: &Graph, f: usize, round: usize) -> Self {
        let mut edges: Vec<(NodeId, NodeId)> = g.edges().to_vec();
        edges.sort_by_key(|&(u, v)| (std::cmp::Reverse(g.degree(u) + g.degree(v)), u, v));
        Self::new(edges.into_iter().take(f).map(|(u, v)| ScheduledFault {
            round,
            fault: Fault::Edge(u, v),
        }))
    }

    /// The schedule, sorted by round.
    pub fn events(&self) -> &[ScheduledFault] {
        &self.events
    }

    /// Whether the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Distinct rounds at which at least one fault fires, ascending.
    pub fn fault_rounds(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self.events.iter().map(|e| e.round).collect();
        out.dedup();
        out
    }

    /// Vertices dead once every fault scheduled at a round `≤ round` has
    /// fired, ascending.
    pub fn dead_vertices_after(&self, round: usize) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .events
            .iter()
            .take_while(|e| e.round <= round)
            .filter_map(|e| match e.fault {
                Fault::Vertex(v) => Some(v),
                Fault::Edge(..) => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The surviving topology after every fault scheduled at a round
    /// `≤ round`: same vertex set (dead vertices become isolated), minus
    /// cut edges and every edge incident to a dead vertex.
    pub fn surviving_graph(&self, g: &Graph, round: usize) -> Graph {
        let dead = self.dead_vertices_after(round);
        let cut: Vec<(NodeId, NodeId)> = self
            .events
            .iter()
            .take_while(|e| e.round <= round)
            .filter_map(|e| match e.fault {
                Fault::Edge(u, v) => Some((u, v)),
                Fault::Vertex(_) => None,
            })
            .collect();
        g.edge_subgraph(|u, v| {
            dead.binary_search(&u).is_err()
                && dead.binary_search(&v).is_err()
                && !cut.contains(&(u.min(v), u.max(v)))
        })
    }
}

fn draw_round(rng: &mut StdRng, (lo, hi): (usize, usize)) -> usize {
    assert!(lo <= hi, "empty fault round range {lo}..={hi}");
    rng.gen_range(lo..=hi)
}

/// The engines' live view of a plan: which faults have fired so far.
/// Each sharded worker derives its own copy from the shared plan and
/// advances it in lockstep — the state is a pure function of
/// `(plan, round)`, so all workers agree without communication.
pub(crate) struct FaultState<'p> {
    plan: &'p FaultPlan,
    /// Index of the first unfired event.
    next: usize,
    dead: Vec<bool>,
    /// Fired edge cuts, normalized and sorted for binary search.
    cut_edges: Vec<(u32, u32)>,
    any: bool,
}

impl<'p> FaultState<'p> {
    pub(crate) fn new(plan: &'p FaultPlan, n: usize) -> Self {
        FaultState {
            plan,
            next: 0,
            dead: vec![false; n],
            cut_edges: Vec::new(),
            any: false,
        }
    }

    /// Fires every event scheduled at a round `≤ round`; returns whether
    /// any event fired in this call (the purge trigger).
    pub(crate) fn advance_to(&mut self, round: usize) -> bool {
        let events = self.plan.events();
        let mut fired = false;
        while self.next < events.len() && events[self.next].round <= round {
            match events[self.next].fault {
                Fault::Vertex(v) => {
                    if v < self.dead.len() {
                        self.dead[v] = true;
                    }
                }
                Fault::Edge(u, v) => {
                    let key = (u as u32, v as u32);
                    if let Err(pos) = self.cut_edges.binary_search(&key) {
                        self.cut_edges.insert(pos, key);
                    }
                }
            }
            self.next += 1;
            fired = true;
            self.any = true;
        }
        fired
    }

    /// Whether any fault has fired so far (fast path: `false` means
    /// delivery filtering can be skipped wholesale).
    pub(crate) fn any_fired(&self) -> bool {
        self.any
    }

    pub(crate) fn is_dead(&self, v: NodeId) -> bool {
        self.dead[v]
    }

    /// Whether a message from `from` to `to` survives: both endpoints
    /// live and the edge between them not cut.
    pub(crate) fn deliverable(&self, from: NodeId, to: NodeId) -> bool {
        !self.dead[from]
            && !self.dead[to]
            && self
                .cut_edges
                .binary_search(&(from.min(to) as u32, from.max(to) as u32))
                .is_err()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp_graph::generators;

    #[test]
    fn new_normalizes_edges_and_sorts_by_round() {
        let plan = FaultPlan::new([
            ScheduledFault {
                round: 5,
                fault: Fault::Edge(3, 1),
            },
            ScheduledFault {
                round: 2,
                fault: Fault::Vertex(0),
            },
        ]);
        assert_eq!(plan.events()[0].round, 2);
        assert_eq!(plan.events()[1].fault, Fault::Edge(1, 3));
        assert_eq!(plan.fault_rounds(), vec![2, 5]);
    }

    #[test]
    fn random_plans_are_seed_deterministic_and_distinct_across_seeds() {
        let g = generators::harary(4, 24);
        let a = FaultPlan::random_vertices(&g, 3, (1, 9), 7);
        let b = FaultPlan::random_vertices(&g, 3, (1, 9), 7);
        assert_eq!(a, b);
        let c = FaultPlan::random_vertices(&g, 3, (1, 9), 8);
        assert_ne!(a, c);
        // Distinct vertices, rounds inside the window.
        let mut vs: Vec<NodeId> = a
            .events()
            .iter()
            .map(|e| match e.fault {
                Fault::Vertex(v) => v,
                _ => unreachable!(),
            })
            .collect();
        vs.sort_unstable();
        vs.dedup();
        assert_eq!(vs.len(), 3);
        assert!(a.events().iter().all(|e| (1..=9).contains(&e.round)));

        let e1 = FaultPlan::random_edges(&g, 4, (0, 3), 5);
        assert_eq!(e1, FaultPlan::random_edges(&g, 4, (0, 3), 5));
        assert_eq!(e1.len(), 4);
    }

    #[test]
    fn worst_case_vertices_picks_highest_degree_ties_to_low_id() {
        // star(4): center 0 has degree 3, leaves degree 1.
        let g = generators::star(4);
        let plan = FaultPlan::worst_case_vertices(&g, 2, 1);
        assert_eq!(
            plan.events().iter().map(|e| e.fault).collect::<Vec<_>>(),
            vec![Fault::Vertex(0), Fault::Vertex(1)]
        );
    }

    #[test]
    fn surviving_graph_isolates_dead_vertices_and_drops_cut_edges() {
        let g = generators::cycle(5);
        let plan = FaultPlan::new([
            ScheduledFault {
                round: 1,
                fault: Fault::Vertex(0),
            },
            ScheduledFault {
                round: 3,
                fault: Fault::Edge(2, 3),
            },
        ]);
        let after1 = plan.surviving_graph(&g, 1);
        assert_eq!(after1.n(), 5);
        assert_eq!(after1.degree(0), 0);
        assert_eq!(after1.m(), g.m() - 2);
        let after3 = plan.surviving_graph(&g, 3);
        assert_eq!(after3.m(), g.m() - 3);
        assert_eq!(plan.dead_vertices_after(3), vec![0]);
    }

    #[test]
    fn fault_state_fires_in_round_order_and_filters_delivery() {
        let plan = FaultPlan::new([
            ScheduledFault {
                round: 2,
                fault: Fault::Vertex(1),
            },
            ScheduledFault {
                round: 4,
                fault: Fault::Edge(0, 2),
            },
        ]);
        let mut fs = FaultState::new(&plan, 4);
        assert!(!fs.advance_to(1));
        assert!(!fs.any_fired());
        assert!(fs.deliverable(0, 1));
        assert!(fs.advance_to(2));
        assert!(fs.is_dead(1));
        assert!(!fs.deliverable(0, 1));
        assert!(!fs.deliverable(1, 0));
        assert!(fs.deliverable(0, 2));
        assert!(!fs.advance_to(3));
        assert!(fs.advance_to(4));
        assert!(!fs.deliverable(0, 2));
        assert!(!fs.deliverable(2, 0));
        assert!(fs.deliverable(2, 3));
    }
}
