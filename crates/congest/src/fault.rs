//! Deterministic fault injection: seeded vertex/edge deletion schedules.
//!
//! A [`FaultPlan`] is a list of [`ScheduledFault`]s — vertex or edge
//! deletions, each pinned to a round — that the round engines apply
//! mid-run: when round `r` begins, every fault scheduled at a round
//! `≤ r` fires *before* inboxes are consumed, so a dying node's
//! in-flight messages (sent in round `r − 1`) are dropped along with it.
//! From that point the node is silenced — it is never stepped again, its
//! RNG stream stops advancing, and quiescence is decided over the
//! surviving programs only. Cut edges drop traffic in both directions
//! but leave their endpoints running.
//!
//! Plans are pure data built from explicit seeds ([`FaultPlan::random_vertices`]
//! et al. derive everything from a `u64`), so the same plan + seed +
//! engine reproduces the identical failure schedule, message trace, and
//! stats on every run — the determinism contract of
//! `docs/DETERMINISM.md` extends to the failure path. The paper's
//! robustness claim (Theorem 1.1: a `k`-connected packing survives up to
//! `k − 1` failures) is exercised by choosing `f < k` faults and
//! checking delivery still completes over the surviving trees.
//!
//! **Arrivals** run the same machinery in reverse: the plan's graph is
//! the *final* topology, and [`Fault::AddVertex`] / [`Fault::AddEdge`]
//! events name vertices (edges) that are *dormant* (inactive) from round
//! 0 and activate at their scheduled round. A dormant vertex is never
//! stepped, sends nothing, and receives nothing — every incident edge is
//! implicitly inactive — until its arrival round, at which point it runs
//! its round-0 logic over the final topology (the KT1 assumption is over
//! the final graph; see `docs/DETERMINISM.md` "Churn contract"). Because
//! the final topology is fixed up front, sharded runs partition it once
//! and arriving vertices land in a deterministic shard.

use decomp_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One injected failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Fault {
    /// Vertex `v` crashes: silenced from its fault round on, all
    /// incident traffic (in-flight included) dropped.
    Vertex(NodeId),
    /// Edge `{u, v}` is cut in both directions; endpoints keep running.
    /// Stored normalized (`u < v`).
    Edge(NodeId, NodeId),
    /// Vertex `v` *arrives*: dormant from round 0, it joins the live
    /// topology at the start of its scheduled round. Its incident edges
    /// are implicitly inactive while it is dormant, so a plain
    /// `AddVertex` is all a joining vertex needs.
    AddVertex(NodeId),
    /// Edge `{u, v}` of the final topology *activates* at its round —
    /// a new link between two already-present vertices. Stored
    /// normalized (`u < v`).
    AddEdge(NodeId, NodeId),
}

impl Fault {
    /// Normalizes an edge event so `u < v`; vertex events pass through.
    fn normalized(self) -> Fault {
        match self {
            Fault::Edge(u, v) if u > v => Fault::Edge(v, u),
            Fault::AddEdge(u, v) if u > v => Fault::AddEdge(v, u),
            other => other,
        }
    }
}

/// A [`Fault`] pinned to the round at whose *start* it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ScheduledFault {
    /// Round index (0-based, in the running protocol's round counter) at
    /// whose start the fault fires.
    pub round: usize,
    /// What fails.
    pub fault: Fault,
}

/// A deterministic failure schedule, sorted by round.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<ScheduledFault>,
}

impl FaultPlan {
    /// The empty plan (no faults ever fire).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan from explicit events. Edge faults are normalized and the
    /// schedule is stably sorted by round, so logically equal plans
    /// compare equal regardless of construction order.
    pub fn new(events: impl IntoIterator<Item = ScheduledFault>) -> Self {
        let mut events: Vec<ScheduledFault> = events
            .into_iter()
            .map(|e| ScheduledFault {
                round: e.round,
                fault: e.fault.normalized(),
            })
            .collect();
        events.sort_by_key(|e| e.round);
        FaultPlan { events }
    }

    /// `f` distinct vertices chosen uniformly at random (seeded), each
    /// failing at a round drawn uniformly from `rounds` (inclusive
    /// bounds). `f` is clamped to `g.n()`.
    pub fn random_vertices(g: &Graph, f: usize, rounds: (usize, usize), seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfa17_0001);
        let mut ids: Vec<NodeId> = (0..g.n()).collect();
        let f = f.min(ids.len());
        // Partial Fisher–Yates: the first f slots become the sample.
        for i in 0..f {
            let j = rng.gen_range(i..ids.len());
            ids.swap(i, j);
        }
        Self::new(ids[..f].iter().map(|&v| ScheduledFault {
            round: draw_round(&mut rng, rounds),
            fault: Fault::Vertex(v),
        }))
    }

    /// The worst-case vertex policy: the `f` highest-degree vertices
    /// (ties broken toward lower ids), all failing at `round`.
    pub fn worst_case_vertices(g: &Graph, f: usize, round: usize) -> Self {
        let mut ids: Vec<NodeId> = (0..g.n()).collect();
        ids.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
        Self::new(ids.into_iter().take(f).map(|v| ScheduledFault {
            round,
            fault: Fault::Vertex(v),
        }))
    }

    /// `f` distinct edges chosen uniformly at random (seeded), each cut
    /// at a round drawn uniformly from `rounds`. `f` is clamped to
    /// `g.m()`.
    pub fn random_edges(g: &Graph, f: usize, rounds: (usize, usize), seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfa17_0002);
        let mut edges: Vec<(NodeId, NodeId)> = g.edges().to_vec();
        let f = f.min(edges.len());
        for i in 0..f {
            let j = rng.gen_range(i..edges.len());
            edges.swap(i, j);
        }
        Self::new(edges[..f].iter().map(|&(u, v)| ScheduledFault {
            round: draw_round(&mut rng, rounds),
            fault: Fault::Edge(u, v),
        }))
    }

    /// The worst-case edge policy: the `f` edges with the largest
    /// endpoint-degree sum (ties broken lexicographically), all cut at
    /// `round`.
    pub fn worst_case_edges(g: &Graph, f: usize, round: usize) -> Self {
        let mut edges: Vec<(NodeId, NodeId)> = g.edges().to_vec();
        edges.sort_by_key(|&(u, v)| (std::cmp::Reverse(g.degree(u) + g.degree(v)), u, v));
        Self::new(edges.into_iter().take(f).map(|(u, v)| ScheduledFault {
            round,
            fault: Fault::Edge(u, v),
        }))
    }

    /// `a` distinct vertices of the final topology `g` chosen uniformly
    /// at random (seeded) to be dormant from round 0, each arriving at a
    /// round drawn uniformly from `rounds` (inclusive bounds). `a` is
    /// clamped to `g.n()`.
    pub fn random_arrivals(g: &Graph, a: usize, rounds: (usize, usize), seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfa17_0003);
        let mut ids: Vec<NodeId> = (0..g.n()).collect();
        let a = a.min(ids.len());
        for i in 0..a {
            let j = rng.gen_range(i..ids.len());
            ids.swap(i, j);
        }
        Self::new(ids[..a].iter().map(|&v| ScheduledFault {
            round: draw_round(&mut rng, rounds),
            fault: Fault::AddVertex(v),
        }))
    }

    /// `a` distinct edges of the final topology `g` chosen uniformly at
    /// random (seeded) to be inactive from round 0, each activating at a
    /// round drawn uniformly from `rounds`. `a` is clamped to `g.m()`.
    pub fn random_edge_arrivals(g: &Graph, a: usize, rounds: (usize, usize), seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xfa17_0004);
        let mut edges: Vec<(NodeId, NodeId)> = g.edges().to_vec();
        let a = a.min(edges.len());
        for i in 0..a {
            let j = rng.gen_range(i..edges.len());
            edges.swap(i, j);
        }
        Self::new(edges[..a].iter().map(|&(u, v)| ScheduledFault {
            round: draw_round(&mut rng, rounds),
            fault: Fault::AddEdge(u, v),
        }))
    }

    /// Merges two plans into one schedule (events re-sorted by round) —
    /// the way kill waves and arrival waves are combined into a single
    /// churn scenario.
    pub fn merged(&self, other: &FaultPlan) -> Self {
        Self::new(self.events.iter().chain(other.events.iter()).copied())
    }

    /// The schedule, sorted by round.
    pub fn events(&self) -> &[ScheduledFault] {
        &self.events
    }

    /// Whether the plan contains no faults.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Distinct rounds at which at least one fault fires, ascending.
    pub fn fault_rounds(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self.events.iter().map(|e| e.round).collect();
        out.dedup();
        out
    }

    /// Whether the plan contains any arrival events
    /// ([`Fault::AddVertex`] / [`Fault::AddEdge`]).
    pub fn has_arrivals(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e.fault, Fault::AddVertex(_) | Fault::AddEdge(..)))
    }

    /// Vertices dead once every fault scheduled at a round `≤ round` has
    /// fired, ascending. Kills only — dormancy is reported by
    /// [`FaultPlan::dormant_vertices_after`].
    pub fn dead_vertices_after(&self, round: usize) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .events
            .iter()
            .take_while(|e| e.round <= round)
            .filter_map(|e| match e.fault {
                Fault::Vertex(v) => Some(v),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Vertices still dormant once every event scheduled at a round
    /// `≤ round` has fired, ascending: [`Fault::AddVertex`] targets whose
    /// (earliest) arrival round is `> round`.
    pub fn dormant_vertices_after(&self, round: usize) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .events
            .iter()
            .filter_map(|e| match e.fault {
                Fault::AddVertex(v) if e.round > round => Some(v),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        // A duplicate arrival (flagged by `validate`) wakes at its
        // earliest round: drop targets with any event already fired.
        let awake = self.arrived_vertices_after(round);
        out.retain(|v| awake.binary_search(v).is_err());
        out
    }

    fn arrived_vertices_after(&self, round: usize) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .events
            .iter()
            .take_while(|e| e.round <= round)
            .filter_map(|e| match e.fault {
                Fault::AddVertex(v) => Some(v),
                _ => None,
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The live topology after every event scheduled at a round
    /// `≤ round`: same vertex set (dead and still-dormant vertices become
    /// isolated), minus cut edges, still-inactive edges, and every edge
    /// incident to a dead or dormant vertex.
    pub fn surviving_graph(&self, g: &Graph, round: usize) -> Graph {
        let mut gone = self.dead_vertices_after(round);
        gone.extend(self.dormant_vertices_after(round));
        gone.sort_unstable();
        gone.dedup();
        let cut: Vec<(NodeId, NodeId)> = self
            .events
            .iter()
            .take_while(|e| e.round <= round)
            .filter_map(|e| match e.fault {
                Fault::Edge(u, v) => Some((u, v)),
                _ => None,
            })
            .collect();
        let inactive: Vec<(NodeId, NodeId)> = self
            .events
            .iter()
            .filter_map(|e| match e.fault {
                Fault::AddEdge(u, v) if e.round > round => Some((u, v)),
                _ => None,
            })
            .collect();
        g.edge_subgraph(|u, v| {
            let key = (u.min(v), u.max(v));
            gone.binary_search(&u).is_err()
                && gone.binary_search(&v).is_err()
                && !cut.contains(&key)
                && !inactive.contains(&key)
        })
    }

    /// Checks the plan against the (final) topology `g` and returns the
    /// first authoring error found, in schedule order. Opt-in: the
    /// engines deliberately tolerate sloppy plans (out-of-range ids are
    /// ignored, redundant events are no-ops) so that adversarial
    /// schedules never panic mid-run — call this at the front door when
    /// a plan is meant to be well-formed (the churn entry points do).
    pub fn validate(&self, g: &Graph) -> Result<(), FaultPlanError> {
        let n = g.n();
        let mut killed_at: Vec<Option<usize>> = vec![None; n];
        let mut arrived = vec![false; n];
        // Earliest arrival round per vertex, pre-scanned: an edge event
        // may be scheduled before its endpoint's `AddVertex` appears in
        // round order, and growth plans must reject that shape.
        let mut arrives_at: Vec<Option<usize>> = vec![None; n];
        for e in &self.events {
            if let Fault::AddVertex(v) = e.fault {
                if v < n && arrives_at[v].is_none() {
                    arrives_at[v] = Some(e.round);
                }
            }
        }
        for e in &self.events {
            let named: [Option<NodeId>; 2] = match e.fault {
                Fault::Vertex(v) | Fault::AddVertex(v) => [Some(v), None],
                Fault::Edge(u, v) | Fault::AddEdge(u, v) => [Some(u), Some(v)],
            };
            for v in named.into_iter().flatten() {
                if v >= n {
                    return Err(FaultPlanError::NodeOutOfRange {
                        node: v,
                        n,
                        round: e.round,
                    });
                }
            }
            match e.fault {
                Fault::Vertex(v) => {
                    if killed_at[v].is_some() {
                        return Err(FaultPlanError::DoubleKill {
                            node: v,
                            round: e.round,
                        });
                    }
                    killed_at[v] = Some(e.round);
                }
                Fault::AddVertex(v) => {
                    if arrived[v] {
                        return Err(FaultPlanError::DoubleArrival {
                            node: v,
                            round: e.round,
                        });
                    }
                    arrived[v] = true;
                }
                Fault::Edge(u, v) | Fault::AddEdge(u, v) => {
                    for end in [u, v] {
                        if killed_at[end].is_some_and(|r| r < e.round) {
                            return Err(FaultPlanError::EdgeFaultOnDeadEndpoint {
                                u,
                                v,
                                endpoint: end,
                                round: e.round,
                            });
                        }
                        if let Some(arrival) = arrives_at[end] {
                            if e.round < arrival {
                                return Err(FaultPlanError::EdgeBeforeArrival {
                                    u,
                                    v,
                                    endpoint: end,
                                    round: e.round,
                                    arrival,
                                });
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Builds the growable topology this plan describes over `base`:
    /// every [`Fault::AddEdge`] event whose edge is absent from `base`
    /// becomes an overlay edge activating at the event's round (epoch =
    /// round). `base` holds only the adjacency known before round 0, so
    /// an engine delivering over the resulting
    /// [`GrowableGraph`](decomp_graph::GrowableGraph) genuinely reveals
    /// a newcomer's edges no earlier than their arrival — the end of
    /// the settled model's "final adjacency at build time" requirement.
    ///
    /// `AddEdge` events whose edge *is* already in `base` keep the
    /// settled semantics (present but inactive until the round, purged
    /// by the delivery filter), so mixed plans compose. Validate the
    /// plan first: [`FaultPlan::validate`] rejects growth plans that
    /// reference a vertex's edge before its `AddVertex` round.
    pub fn growth_topology(&self, base: &Graph) -> decomp_graph::GrowableGraph {
        let mut gg = decomp_graph::GrowableGraph::from_base(base.clone());
        for e in &self.events {
            if let Fault::AddEdge(u, v) = e.fault {
                if u < gg.n() && v < gg.n() && u != v && gg.edge_epoch(u, v).is_none() {
                    gg.add_edge(u, v, e.round.min(u32::MAX as usize) as u32);
                }
            }
        }
        gg
    }
}

/// An authoring error in a [`FaultPlan`], reported by
/// [`FaultPlan::validate`] as a typed result instead of a panic (or a
/// silent no-op) deep inside an engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultPlanError {
    /// An event names a vertex id `≥ n`.
    NodeOutOfRange {
        /// The offending id.
        node: NodeId,
        /// The topology's vertex count.
        n: usize,
        /// The event's scheduled round.
        round: usize,
    },
    /// The same vertex is killed twice.
    DoubleKill {
        /// The vertex killed twice.
        node: NodeId,
        /// The round of the *second* kill.
        round: usize,
    },
    /// An edge event (cut or activation) names an endpoint killed at a
    /// strictly earlier round — the edge is already gone.
    EdgeFaultOnDeadEndpoint {
        /// Edge endpoint `u` (normalized, `u < v`).
        u: NodeId,
        /// Edge endpoint `v`.
        v: NodeId,
        /// The endpoint that is already dead.
        endpoint: NodeId,
        /// The edge event's scheduled round.
        round: usize,
    },
    /// The same vertex arrives twice.
    DoubleArrival {
        /// The vertex with a second [`Fault::AddVertex`] event.
        node: NodeId,
        /// The round of the second arrival.
        round: usize,
    },
    /// An edge event (cut or activation) references an endpoint
    /// *before* its scheduled [`Fault::AddVertex`] round. Under
    /// topology growth the edge does not exist yet — the settled model
    /// used to accept this silently (the edge was simply inactive), but
    /// growth plans must be causally ordered: a vertex's edges may be
    /// referenced no earlier than the vertex itself.
    EdgeBeforeArrival {
        /// Edge endpoint `u` (normalized, `u < v`).
        u: NodeId,
        /// Edge endpoint `v`.
        v: NodeId,
        /// The endpoint that has not arrived yet.
        endpoint: NodeId,
        /// The edge event's scheduled round.
        round: usize,
        /// The endpoint's (earliest) arrival round.
        arrival: usize,
    },
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::NodeOutOfRange { node, n, round } => {
                write!(f, "fault at round {round} names vertex {node}, but n = {n}")
            }
            FaultPlanError::DoubleKill { node, round } => {
                write!(f, "vertex {node} killed a second time at round {round}")
            }
            FaultPlanError::EdgeFaultOnDeadEndpoint {
                u,
                v,
                endpoint,
                round,
            } => write!(
                f,
                "edge event {{{u}, {v}}} at round {round} names endpoint {endpoint}, \
                 which is already dead"
            ),
            FaultPlanError::DoubleArrival { node, round } => {
                write!(f, "vertex {node} arrives a second time at round {round}")
            }
            FaultPlanError::EdgeBeforeArrival {
                u,
                v,
                endpoint,
                round,
                arrival,
            } => write!(
                f,
                "edge event {{{u}, {v}}} at round {round} references endpoint {endpoint}, \
                 which only arrives at round {arrival}"
            ),
        }
    }
}

impl std::error::Error for FaultPlanError {}

fn draw_round(rng: &mut StdRng, (lo, hi): (usize, usize)) -> usize {
    assert!(lo <= hi, "empty fault round range {lo}..={hi}");
    rng.gen_range(lo..=hi)
}

/// The engines' live view of a plan: which faults have fired so far.
/// Each sharded worker derives its own copy from the shared plan and
/// advances it in lockstep — the state is a pure function of
/// `(plan, round)`, so all workers agree without communication.
pub(crate) struct FaultState<'p> {
    plan: &'p FaultPlan,
    /// Index of the first unfired event.
    next: usize,
    dead: Vec<bool>,
    /// Not-yet-arrived vertices (pre-scanned from the plan's `AddVertex`
    /// events; cleared as arrivals fire).
    dormant: Vec<bool>,
    /// Fired edge cuts, normalized and sorted for binary search.
    cut_edges: Vec<(u32, u32)>,
    /// Not-yet-activated edges (pre-scanned `AddEdge` events), normalized
    /// and sorted; entries are removed as activations fire.
    inactive_edges: Vec<(u32, u32)>,
    any: bool,
}

impl<'p> FaultState<'p> {
    pub(crate) fn new(plan: &'p FaultPlan, n: usize) -> Self {
        let mut dormant = vec![false; n];
        let mut inactive_edges: Vec<(u32, u32)> = Vec::new();
        for e in plan.events() {
            match e.fault {
                Fault::AddVertex(v) => {
                    if v < n {
                        dormant[v] = true;
                    }
                }
                Fault::AddEdge(u, v) => inactive_edges.push((u as u32, v as u32)),
                Fault::Vertex(_) | Fault::Edge(..) => {}
            }
        }
        inactive_edges.sort_unstable();
        inactive_edges.dedup();
        // Arrivals restrict delivery from round 0 (dormant endpoints and
        // inactive edges), so the filtering fast path must be on before
        // any event fires.
        let any = dormant.iter().any(|&d| d) || !inactive_edges.is_empty();
        FaultState {
            plan,
            next: 0,
            dead: vec![false; n],
            dormant,
            cut_edges: Vec::new(),
            inactive_edges,
            any,
        }
    }

    /// Fires every event scheduled at a round `≤ round`; returns whether
    /// any event fired in this call (the purge + wake trigger).
    pub(crate) fn advance_to(&mut self, round: usize) -> bool {
        let events = self.plan.events();
        let mut fired = false;
        while self.next < events.len() && events[self.next].round <= round {
            match events[self.next].fault {
                Fault::Vertex(v) => {
                    if v < self.dead.len() {
                        self.dead[v] = true;
                    }
                }
                Fault::Edge(u, v) => {
                    let key = (u as u32, v as u32);
                    if let Err(pos) = self.cut_edges.binary_search(&key) {
                        self.cut_edges.insert(pos, key);
                    }
                }
                Fault::AddVertex(v) => {
                    if v < self.dormant.len() {
                        self.dormant[v] = false;
                    }
                }
                Fault::AddEdge(u, v) => {
                    let key = (u as u32, v as u32);
                    if let Ok(pos) = self.inactive_edges.binary_search(&key) {
                        self.inactive_edges.remove(pos);
                    }
                }
            }
            self.next += 1;
            fired = true;
            self.any = true;
        }
        fired
    }

    /// Whether any fault has fired so far — or, with arrivals in the
    /// plan, from round 0 (fast path: `false` means delivery filtering
    /// can be skipped wholesale).
    pub(crate) fn any_fired(&self) -> bool {
        self.any
    }

    pub(crate) fn is_dead(&self, v: NodeId) -> bool {
        self.dead[v]
    }

    /// Whether `v` has not yet arrived.
    pub(crate) fn is_dormant(&self, v: NodeId) -> bool {
        self.dormant[v]
    }

    /// Whether a message from `from` to `to` survives: both endpoints
    /// live (not dead, not dormant) and the edge between them neither
    /// cut nor still inactive.
    pub(crate) fn deliverable(&self, from: NodeId, to: NodeId) -> bool {
        let key = (from.min(to) as u32, from.max(to) as u32);
        !self.dead[from]
            && !self.dead[to]
            && !self.dormant[from]
            && !self.dormant[to]
            && self.cut_edges.binary_search(&key).is_err()
            && self.inactive_edges.binary_search(&key).is_err()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp_graph::generators;

    #[test]
    fn new_normalizes_edges_and_sorts_by_round() {
        let plan = FaultPlan::new([
            ScheduledFault {
                round: 5,
                fault: Fault::Edge(3, 1),
            },
            ScheduledFault {
                round: 2,
                fault: Fault::Vertex(0),
            },
        ]);
        assert_eq!(plan.events()[0].round, 2);
        assert_eq!(plan.events()[1].fault, Fault::Edge(1, 3));
        assert_eq!(plan.fault_rounds(), vec![2, 5]);
    }

    #[test]
    fn random_plans_are_seed_deterministic_and_distinct_across_seeds() {
        let g = generators::harary(4, 24);
        let a = FaultPlan::random_vertices(&g, 3, (1, 9), 7);
        let b = FaultPlan::random_vertices(&g, 3, (1, 9), 7);
        assert_eq!(a, b);
        let c = FaultPlan::random_vertices(&g, 3, (1, 9), 8);
        assert_ne!(a, c);
        // Distinct vertices, rounds inside the window.
        let mut vs: Vec<NodeId> = a
            .events()
            .iter()
            .map(|e| match e.fault {
                Fault::Vertex(v) => v,
                _ => unreachable!(),
            })
            .collect();
        vs.sort_unstable();
        vs.dedup();
        assert_eq!(vs.len(), 3);
        assert!(a.events().iter().all(|e| (1..=9).contains(&e.round)));

        let e1 = FaultPlan::random_edges(&g, 4, (0, 3), 5);
        assert_eq!(e1, FaultPlan::random_edges(&g, 4, (0, 3), 5));
        assert_eq!(e1.len(), 4);
    }

    #[test]
    fn worst_case_vertices_picks_highest_degree_ties_to_low_id() {
        // star(4): center 0 has degree 3, leaves degree 1.
        let g = generators::star(4);
        let plan = FaultPlan::worst_case_vertices(&g, 2, 1);
        assert_eq!(
            plan.events().iter().map(|e| e.fault).collect::<Vec<_>>(),
            vec![Fault::Vertex(0), Fault::Vertex(1)]
        );
    }

    #[test]
    fn surviving_graph_isolates_dead_vertices_and_drops_cut_edges() {
        let g = generators::cycle(5);
        let plan = FaultPlan::new([
            ScheduledFault {
                round: 1,
                fault: Fault::Vertex(0),
            },
            ScheduledFault {
                round: 3,
                fault: Fault::Edge(2, 3),
            },
        ]);
        let after1 = plan.surviving_graph(&g, 1);
        assert_eq!(after1.n(), 5);
        assert_eq!(after1.degree(0), 0);
        assert_eq!(after1.m(), g.m() - 2);
        let after3 = plan.surviving_graph(&g, 3);
        assert_eq!(after3.m(), g.m() - 3);
        assert_eq!(plan.dead_vertices_after(3), vec![0]);
    }

    #[test]
    fn validate_accepts_a_sane_churn_plan() {
        let g = generators::cycle(6);
        let plan = FaultPlan::new([
            ScheduledFault {
                round: 2,
                fault: Fault::AddVertex(5),
            },
            ScheduledFault {
                round: 3,
                fault: Fault::Vertex(0),
            },
            // Same-round edge cut on the dying vertex is allowed (the
            // ordering inside a round is immaterial; both drop traffic).
            ScheduledFault {
                round: 3,
                fault: Fault::Edge(0, 1),
            },
            ScheduledFault {
                round: 4,
                fault: Fault::AddEdge(2, 4),
            },
        ]);
        assert_eq!(plan.validate(&g), Ok(()));
    }

    #[test]
    fn validate_flags_out_of_range_nodes() {
        let g = generators::cycle(4);
        let plan = FaultPlan::new([ScheduledFault {
            round: 1,
            fault: Fault::Vertex(4),
        }]);
        assert_eq!(
            plan.validate(&g),
            Err(FaultPlanError::NodeOutOfRange {
                node: 4,
                n: 4,
                round: 1
            })
        );
        let plan = FaultPlan::new([ScheduledFault {
            round: 2,
            fault: Fault::AddEdge(1, 9),
        }]);
        assert!(matches!(
            plan.validate(&g),
            Err(FaultPlanError::NodeOutOfRange { node: 9, .. })
        ));
    }

    #[test]
    fn validate_flags_double_kill() {
        let g = generators::cycle(4);
        let plan = FaultPlan::new([
            ScheduledFault {
                round: 1,
                fault: Fault::Vertex(2),
            },
            ScheduledFault {
                round: 5,
                fault: Fault::Vertex(2),
            },
        ]);
        assert_eq!(
            plan.validate(&g),
            Err(FaultPlanError::DoubleKill { node: 2, round: 5 })
        );
    }

    #[test]
    fn validate_flags_edge_fault_on_dead_endpoint() {
        let g = generators::cycle(4);
        let plan = FaultPlan::new([
            ScheduledFault {
                round: 1,
                fault: Fault::Vertex(3),
            },
            ScheduledFault {
                round: 2,
                fault: Fault::Edge(2, 3),
            },
        ]);
        assert_eq!(
            plan.validate(&g),
            Err(FaultPlanError::EdgeFaultOnDeadEndpoint {
                u: 2,
                v: 3,
                endpoint: 3,
                round: 2
            })
        );
    }

    #[test]
    fn validate_flags_double_arrival() {
        let g = generators::cycle(4);
        let plan = FaultPlan::new([
            ScheduledFault {
                round: 1,
                fault: Fault::AddVertex(1),
            },
            ScheduledFault {
                round: 3,
                fault: Fault::AddVertex(1),
            },
        ]);
        assert_eq!(
            plan.validate(&g),
            Err(FaultPlanError::DoubleArrival { node: 1, round: 3 })
        );
    }

    #[test]
    fn arrival_plans_are_seed_deterministic() {
        let g = generators::harary(4, 24);
        let a = FaultPlan::random_arrivals(&g, 5, (1, 9), 7);
        assert_eq!(a, FaultPlan::random_arrivals(&g, 5, (1, 9), 7));
        assert_ne!(a, FaultPlan::random_arrivals(&g, 5, (1, 9), 8));
        assert!(a.has_arrivals());
        assert_eq!(a.len(), 5);
        assert_eq!(a.validate(&g), Ok(()));
        let e = FaultPlan::random_edge_arrivals(&g, 3, (0, 4), 11);
        assert_eq!(e, FaultPlan::random_edge_arrivals(&g, 3, (0, 4), 11));
        assert_eq!(e.len(), 3);
        // Kill + arrival plans merge into one sorted schedule.
        let merged = a.merged(&FaultPlan::random_vertices(&g, 2, (2, 6), 3));
        assert_eq!(merged.len(), 7);
        assert!(merged.events().windows(2).all(|w| w[0].round <= w[1].round));
    }

    #[test]
    fn dormant_vertices_and_surviving_graph_track_arrivals() {
        let g = generators::cycle(5);
        let plan = FaultPlan::new([
            ScheduledFault {
                round: 3,
                fault: Fault::AddVertex(2),
            },
            ScheduledFault {
                round: 5,
                fault: Fault::AddEdge(0, 1),
            },
        ]);
        assert_eq!(plan.dormant_vertices_after(0), vec![2]);
        assert_eq!(plan.dormant_vertices_after(2), vec![2]);
        assert!(plan.dormant_vertices_after(3).is_empty());
        let before = plan.surviving_graph(&g, 0);
        // Vertex 2 isolated (drops edges {1,2}, {2,3}) and edge {0,1}
        // inactive.
        assert_eq!(before.degree(2), 0);
        assert_eq!(before.m(), g.m() - 3);
        let mid = plan.surviving_graph(&g, 3);
        assert_eq!(mid.m(), g.m() - 1, "vertex 2 arrived, {{0,1}} still off");
        let after = plan.surviving_graph(&g, 5);
        assert_eq!(after.m(), g.m());
    }

    #[test]
    fn validate_flags_edge_events_before_arrival() {
        let g = generators::cycle(6);
        // Activation of {2, 5} at round 3, but vertex 5 only arrives at
        // round 7 — a growth plan referencing the edge before the vertex.
        let plan = FaultPlan::new([
            ScheduledFault {
                round: 3,
                fault: Fault::AddEdge(2, 5),
            },
            ScheduledFault {
                round: 7,
                fault: Fault::AddVertex(5),
            },
        ]);
        assert_eq!(
            plan.validate(&g),
            Err(FaultPlanError::EdgeBeforeArrival {
                u: 2,
                v: 5,
                endpoint: 5,
                round: 3,
                arrival: 7
            })
        );
        // A cut is an edge reference too.
        let plan = FaultPlan::new([
            ScheduledFault {
                round: 1,
                fault: Fault::Edge(0, 4),
            },
            ScheduledFault {
                round: 2,
                fault: Fault::AddVertex(4),
            },
        ]);
        assert!(matches!(
            plan.validate(&g),
            Err(FaultPlanError::EdgeBeforeArrival {
                endpoint: 4,
                round: 1,
                arrival: 2,
                ..
            })
        ));
        // Same-round and later references are causally fine.
        let plan = FaultPlan::new([
            ScheduledFault {
                round: 2,
                fault: Fault::AddVertex(4),
            },
            ScheduledFault {
                round: 2,
                fault: Fault::AddEdge(0, 4),
            },
            ScheduledFault {
                round: 5,
                fault: Fault::Edge(3, 4),
            },
        ]);
        assert_eq!(plan.validate(&g), Ok(()));
    }

    #[test]
    fn growth_topology_stamps_overlay_edges_with_arrival_rounds() {
        // Base: a path 0-1-2; vertex 3 exists but is isolated until its
        // arrival, when its edges are revealed.
        let base = Graph::from_edges(4, [(0, 1), (1, 2)]);
        let plan = FaultPlan::new([
            ScheduledFault {
                round: 4,
                fault: Fault::AddVertex(3),
            },
            ScheduledFault {
                round: 4,
                fault: Fault::AddEdge(2, 3),
            },
            ScheduledFault {
                round: 6,
                fault: Fault::AddEdge(0, 3),
            },
        ]);
        assert_eq!(plan.validate(&base), Ok(()));
        let gg = plan.growth_topology(&base);
        assert_eq!(gg.n(), 4);
        assert_eq!(gg.edge_epoch(2, 3), Some(4));
        assert_eq!(gg.edge_epoch(0, 3), Some(6));
        assert_eq!(gg.edge_epoch(0, 1), Some(0), "base edges active at 0");
        assert!(gg.neighbors_at(3, 3).next().is_none());
        assert_eq!(gg.neighbors_at(3, 4).collect::<Vec<_>>(), vec![2]);
        assert_eq!(gg.neighbors_at(3, 6).collect::<Vec<_>>(), vec![0, 2]);
        // An AddEdge whose edge is already in the base stays settled
        // (no overlay entry; the delivery filter handles it).
        let settled = FaultPlan::new([ScheduledFault {
            round: 3,
            fault: Fault::AddEdge(0, 1),
        }]);
        let gg = settled.growth_topology(&base);
        assert_eq!(gg.overlay_len(), 0);
        assert_eq!(gg.edge_epoch(0, 1), Some(0));
    }

    #[test]
    fn fault_state_wakes_dormant_vertices_and_activates_edges() {
        let plan = FaultPlan::new([
            ScheduledFault {
                round: 2,
                fault: Fault::AddVertex(1),
            },
            ScheduledFault {
                round: 4,
                fault: Fault::AddEdge(0, 3),
            },
        ]);
        let mut fs = FaultState::new(&plan, 5);
        // Arrivals restrict delivery from round 0: fast path is on even
        // before any event fires.
        assert!(fs.any_fired());
        assert!(fs.is_dormant(1));
        assert!(!fs.deliverable(0, 1));
        assert!(!fs.deliverable(1, 2));
        assert!(!fs.deliverable(0, 3), "inactive edge drops traffic");
        assert!(fs.deliverable(3, 4));
        assert!(!fs.advance_to(1));
        assert!(fs.advance_to(2));
        assert!(!fs.is_dormant(1));
        assert!(fs.deliverable(0, 1));
        assert!(!fs.deliverable(0, 3));
        assert!(fs.advance_to(4));
        assert!(fs.deliverable(0, 3));
        assert!(fs.deliverable(3, 0));
    }

    #[test]
    fn fault_state_fires_in_round_order_and_filters_delivery() {
        let plan = FaultPlan::new([
            ScheduledFault {
                round: 2,
                fault: Fault::Vertex(1),
            },
            ScheduledFault {
                round: 4,
                fault: Fault::Edge(0, 2),
            },
        ]);
        let mut fs = FaultState::new(&plan, 4);
        assert!(!fs.advance_to(1));
        assert!(!fs.any_fired());
        assert!(fs.deliverable(0, 1));
        assert!(fs.advance_to(2));
        assert!(fs.is_dead(1));
        assert!(!fs.deliverable(0, 1));
        assert!(!fs.deliverable(1, 0));
        assert!(fs.deliverable(0, 2));
        assert!(!fs.advance_to(3));
        assert!(fs.advance_to(4));
        assert!(!fs.deliverable(0, 2));
        assert!(!fs.deliverable(2, 0));
        assert!(fs.deliverable(2, 3));
    }
}
