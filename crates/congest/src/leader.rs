//! Leader election by extremum flooding.
//!
//! The spanning-tree packing (Section 5.1) makes its continue/terminate
//! decision "centrally — in a leader node, e.g., the node with the largest
//! id". [`elect_leader`] floods the maximum `(value, id)` pair through the
//! network in `O(D)` rounds; every node learns the winner.

use crate::message::Message;
use crate::sim::{Inbox, NodeCtx, NodeProgram, SimError, Simulator};
use decomp_graph::NodeId;

struct FloodMax {
    /// Best (value, id) seen so far.
    best: (u64, u64),
    /// Whether `best` still needs to be announced.
    dirty: bool,
}

impl NodeProgram for FloodMax {
    fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &Inbox<'_>) {
        for (_, m) in inbox {
            let cand = (m.word(0), m.word(1));
            if cand > self.best {
                self.best = cand;
                self.dirty = true;
            }
        }
        if self.dirty {
            ctx.broadcast(Message::from_words([self.best.0, self.best.1]));
            self.dirty = false;
        }
    }

    fn is_done(&self) -> bool {
        !self.dirty
    }
}

/// Floods the maximum `(value[v], v)` pair; returns the winning node id.
///
/// All nodes learn the same winner (on connected graphs). Runs in
/// `O(D)` rounds.
///
/// # Errors
/// Propagates simulator round-limit errors.
pub fn flood_max(sim: &mut Simulator<'_>, values: &[u64]) -> Result<NodeId, SimError> {
    assert_eq!(values.len(), sim.graph().n(), "one value per node");
    let programs = (0..sim.graph().n())
        .map(|v| FloodMax {
            best: (values[v], v as u64),
            dirty: true,
        })
        .collect();
    let (programs, _) = sim.run_to_quiescence(programs)?;
    Ok(programs[0].best.1 as usize)
}

/// Elects the node with the largest id as leader (all nodes learn it).
pub fn elect_leader(sim: &mut Simulator<'_>) -> Result<NodeId, SimError> {
    let values = vec![0u64; sim.graph().n()];
    flood_max(sim, &values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Model;
    use decomp_graph::generators;

    #[test]
    fn leader_is_max_id() {
        let g = generators::cycle(9);
        let mut sim = Simulator::new(&g, Model::VCongest);
        assert_eq!(elect_leader(&mut sim).unwrap(), 8);
    }

    #[test]
    fn flood_max_finds_value_winner() {
        let g = generators::path(6);
        let mut sim = Simulator::new(&g, Model::VCongest);
        let winner = flood_max(&mut sim, &[1, 9, 3, 9, 2, 0]).unwrap();
        // ties broken by larger id
        assert_eq!(winner, 3);
    }

    #[test]
    fn rounds_proportional_to_diameter() {
        let g = generators::path(40);
        let mut sim = Simulator::new(&g, Model::VCongest);
        flood_max(&mut sim, &(0..40).map(|v| v as u64).collect::<Vec<_>>()).unwrap();
        let rounds = sim.stats().rounds;
        assert!(
            (39..=45).contains(&rounds),
            "flooding a 40-path should take ~40 rounds, got {rounds}"
        );
    }

    #[test]
    fn works_in_econgest() {
        let g = generators::complete(5);
        let mut sim = Simulator::new(&g, Model::ECongest);
        assert_eq!(elect_leader(&mut sim).unwrap(), 4);
    }
}
