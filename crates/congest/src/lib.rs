//! # decomp-congest
//!
//! A deterministic, synchronous message-passing simulator for the
//! **V-CONGEST** and **E-CONGEST** models of Censor-Hillel, Ghaffari &
//! Kuhn (PODC 2014), plus the distributed primitives their algorithms
//! build on.
//!
//! ## Models (paper, Section 1.2)
//!
//! * **V-CONGEST** — per round, each node sends *one* `O(log n)`-bit
//!   message to *all* of its neighbors (local broadcast; congestion sits in
//!   the vertices).
//! * **E-CONGEST** (the classical CONGEST model) — per round, one
//!   `O(log n)`-bit message may cross each *direction of each edge*.
//!
//! The simulator enforces the chosen model's constraints every round and
//! accounts rounds, messages, and words so experiments can report the
//! model-native cost measures the paper's theorems are stated in.
//!
//! ## Engines
//!
//! [`Simulator`] is a facade over a pluggable round-execution layer
//! ([`engine`]): the default [`engine::SequentialEngine`] single-threaded
//! loop, or the [`engine::ShardedEngine`] scoped-thread backend that
//! partitions nodes into contiguous shards and exchanges cross-shard
//! traffic through per-shard mailboxes under a round barrier. Engines are
//! **bit-for-bit equivalent** — identical outputs, RNG streams, and
//! [`RunStats`] for any shard count — so every downstream algorithm
//! scales across cores without changing its [`NodeProgram`]. Select one
//! with [`Simulator::with_engine`].
//!
//! ## Primitives
//!
//! * [`bfs`] — distributed BFS-tree construction (`O(D)` rounds),
//! * [`leader`] — leader election / global max-id flooding,
//! * [`aggregate`] — convergecast + broadcast over a BFS tree,
//! * [`components`] — connected-component identification of a marked
//!   subgraph by iterated min-label flooding,
//! * [`mst`] — distributed Borůvka-style minimum spanning tree.
//!
//! See `DESIGN.md` §3 for how these substitute for the Kutten–Peleg /
//! Thurimella black boxes the paper cites.
//!
//! # Example
//!
//! ```
//! use decomp_graph::generators;
//! use decomp_congest::{Simulator, Model};
//! use decomp_congest::bfs::distributed_bfs;
//!
//! let g = generators::cycle(8);
//! let mut sim = Simulator::new(&g, Model::VCongest);
//! let tree = distributed_bfs(&mut sim, 0).expect("connected");
//! assert_eq!(tree.dist[4], 4);
//! assert!(sim.stats().rounds >= 4);
//! ```

pub mod aggregate;
pub mod bfs;
pub mod broadcast;
pub mod components;
pub mod engine;
pub mod fault;
pub mod leader;
pub mod message;
pub mod mst;
pub mod multiflood;
pub mod sim;

pub use engine::{EngineKind, PartitionKind, RoundEngine, SequentialEngine, ShardedEngine};
pub use fault::{Fault, FaultPlan, FaultPlanError, ScheduledFault};
pub use message::{Message, MsgView, INLINE_WORDS};
pub use sim::{Inbox, InboxIter, Model, NodeCtx, NodeProgram, RunStats, SimError, Simulator};
