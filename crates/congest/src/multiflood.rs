//! Multi-key relaxation flooding.
//!
//! The distributed CDS packing (paper, Appendix B) repeatedly needs, *for
//! every class simultaneously*, component-wide aggregates: minimum ids for
//! component identification, deactivation flags, maximum accepted
//! proposals. Because each node belongs to `O(log n)` classes, all of these
//! fit the same pattern:
//!
//! * every node holds a table `key → value` (`O(log n)` entries),
//! * an edge is *valid for a key* iff **both** endpoints hold the key,
//! * at fixpoint, each node's value for a key is the min/max over the
//!   key-connected component containing it.
//!
//! Messages carry `(key, value)` pairs; when a node has more dirty keys
//! than fit into one bounded message, the rest queue for later rounds —
//! which is exactly how the congestion the V-CONGEST model meters shows up.
//! One round here corresponds to one of the paper's *meta-rounds*
//! (`Θ(log n)` virtual-graph rounds) when the word budget is `Θ(log n)`.

use crate::message::Message;
use crate::sim::{Inbox, NodeCtx, NodeProgram, SimError, Simulator};
use std::collections::HashMap;

/// Combining operator for [`multikey_flood`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Combine {
    /// Keep the minimum value per key-component.
    Min,
    /// Keep the maximum value per key-component.
    Max,
}

impl Combine {
    fn better(self, new: u64, old: u64) -> bool {
        match self {
            Combine::Min => new < old,
            Combine::Max => new > old,
        }
    }
}

struct FloodProgram {
    table: HashMap<u64, u64>,
    combine: Combine,
    /// Keys whose current value still needs announcing, FIFO.
    dirty: std::collections::VecDeque<u64>,
    /// Dedup guard for the dirty queue.
    queued: std::collections::HashSet<u64>,
}

impl FloodProgram {
    fn mark_dirty(&mut self, key: u64) {
        if self.queued.insert(key) {
            self.dirty.push_back(key);
        }
    }
}

impl NodeProgram for FloodProgram {
    fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &Inbox<'_>) {
        for (_, m) in inbox {
            let words = m.words();
            for pair in words.chunks(2) {
                let (key, value) = (pair[0], pair[1]);
                // Edge validity: receiver must hold the key too.
                let mut improved = false;
                if let Some(slot) = self.table.get_mut(&key) {
                    if self.combine.better(value, *slot) {
                        *slot = value;
                        improved = true;
                    }
                }
                if improved {
                    self.mark_dirty(key);
                }
            }
        }
        if !self.dirty.is_empty() {
            let budget_pairs = 4usize; // fixed pairs per message; see below
            let mut words = Vec::with_capacity(2 * budget_pairs);
            while words.len() + 2 <= 2 * budget_pairs {
                match self.dirty.pop_front() {
                    Some(key) => {
                        self.queued.remove(&key);
                        words.push(key);
                        words.push(self.table[&key]);
                    }
                    None => break,
                }
            }
            ctx.broadcast(Message::from_words(words));
        }
    }

    fn is_done(&self) -> bool {
        self.dirty.is_empty()
    }
}

/// Floods every key's values to a component-wide min/max fixpoint.
///
/// `tables[v]` is node `v`'s initial `key → value` table; a key's
/// "subgraph" consists of the edges whose both endpoints hold the key.
/// Returns the fixpoint tables.
///
/// The per-message budget is 4 `(key, value)` pairs (8 words, the default
/// simulator budget); nodes with more dirty keys send across several
/// rounds, which is the meta-round congestion the paper accounts for.
///
/// # Errors
/// Propagates simulator round-limit errors.
pub fn multikey_flood(
    sim: &mut Simulator<'_>,
    tables: Vec<HashMap<u64, u64>>,
    combine: Combine,
) -> Result<Vec<HashMap<u64, u64>>, SimError> {
    assert_eq!(tables.len(), sim.graph().n(), "one table per node");
    let programs = tables
        .into_iter()
        .map(|table| {
            let mut p = FloodProgram {
                table,
                combine,
                dirty: Default::default(),
                queued: Default::default(),
            };
            let keys: Vec<u64> = p.table.keys().copied().collect();
            for k in keys {
                p.mark_dirty(k);
            }
            p
        })
        .collect();
    let (programs, _) = sim.run_to_quiescence(programs)?;
    Ok(programs.into_iter().map(|p| p.table).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Model;
    use decomp_graph::generators;

    fn tables_from(entries: &[&[(u64, u64)]]) -> Vec<HashMap<u64, u64>> {
        entries
            .iter()
            .map(|e| e.iter().copied().collect())
            .collect()
    }

    #[test]
    fn single_key_min_equals_component_min() {
        // Path 0-1-2-3; key 7 held by all; min value should spread.
        let g = generators::path(4);
        let mut sim = Simulator::new(&g, Model::VCongest);
        let tables = tables_from(&[&[(7, 30)], &[(7, 10)], &[(7, 20)], &[(7, 40)]]);
        let out = multikey_flood(&mut sim, tables, Combine::Min).unwrap();
        for t in &out {
            assert_eq!(t[&7], 10);
        }
    }

    #[test]
    fn key_subgraph_respects_holders() {
        // Path 0-1-2-3: key 5 held by {0,1} and {3} — node 3 is isolated
        // for this key (node 2 does not hold it), so keeps its own value.
        let g = generators::path(4);
        let mut sim = Simulator::new(&g, Model::VCongest);
        let tables = tables_from(&[&[(5, 9)], &[(5, 4)], &[], &[(5, 1)]]);
        let out = multikey_flood(&mut sim, tables, Combine::Min).unwrap();
        assert_eq!(out[0][&5], 4);
        assert_eq!(out[1][&5], 4);
        assert!(out[2].is_empty());
        assert_eq!(out[3][&5], 1);
    }

    #[test]
    fn max_combine() {
        let g = generators::cycle(5);
        let mut sim = Simulator::new(&g, Model::VCongest);
        let tables: Vec<HashMap<u64, u64>> = (0..5)
            .map(|v| [(1u64, v as u64)].into_iter().collect())
            .collect();
        let out = multikey_flood(&mut sim, tables, Combine::Max).unwrap();
        for t in &out {
            assert_eq!(t[&1], 4);
        }
    }

    #[test]
    fn many_keys_queue_across_rounds() {
        // Each node holds 20 keys; messages carry 4 pairs, so flooding
        // takes several rounds but must still converge per key.
        let g = generators::path(6);
        let mut sim = Simulator::new(&g, Model::VCongest);
        let tables: Vec<HashMap<u64, u64>> = (0..6)
            .map(|v| (0u64..20).map(|k| (k, (v as u64 + k) % 17)).collect())
            .collect();
        let expect: Vec<u64> = (0u64..20)
            .map(|k| (0..6).map(|v| (v as u64 + k) % 17).min().unwrap())
            .collect();
        let out = multikey_flood(&mut sim, tables, Combine::Min).unwrap();
        for t in &out {
            for k in 0..20u64 {
                assert_eq!(t[&k], expect[k as usize], "key {k}");
            }
        }
    }

    #[test]
    fn matches_per_class_components() {
        // Two "classes" (keys) with different holder sets on a grid;
        // check per-key component minima against centralized components.
        let g = generators::grid(3, 3);
        let holders_a: Vec<bool> = (0..9).map(|v| v % 2 == 0).collect();
        let holders_b: Vec<bool> = (0..9).map(|v| v < 6).collect();
        let tables: Vec<HashMap<u64, u64>> = (0..9)
            .map(|v| {
                let mut t = HashMap::new();
                if holders_a[v] {
                    t.insert(0, v as u64);
                }
                if holders_b[v] {
                    t.insert(1, v as u64);
                }
                t
            })
            .collect();
        let mut sim = Simulator::new(&g, Model::VCongest);
        let out = multikey_flood(&mut sim, tables, Combine::Min).unwrap();
        for (key, holders) in [(0u64, &holders_a), (1u64, &holders_b)] {
            let keep: Vec<usize> = (0..9).filter(|&v| holders[v]).collect();
            let (sub, map) = g.induced_subgraph(&keep);
            let (labels, _) = decomp_graph::traversal::connected_components(&sub);
            for (new_u, &orig_u) in map.iter().enumerate() {
                let min_in_comp = map
                    .iter()
                    .enumerate()
                    .filter(|(new_v, _)| labels[*new_v] == labels[new_u])
                    .map(|(_, &orig)| orig as u64)
                    .min()
                    .unwrap();
                assert_eq!(out[orig_u][&key], min_in_comp);
            }
        }
    }

    #[test]
    fn empty_tables_terminate_instantly() {
        let g = generators::path(3);
        let mut sim = Simulator::new(&g, Model::VCongest);
        let out = multikey_flood(&mut sim, vec![HashMap::new(); 3], Combine::Min).unwrap();
        assert!(out.iter().all(|t| t.is_empty()));
    }

    #[test]
    fn works_in_econgest_too() {
        let g = generators::grid(3, 4);
        let mut sim = Simulator::new(&g, Model::ECongest);
        let tables: Vec<HashMap<u64, u64>> = (0..12)
            .map(|v| [(9u64, 100 - v as u64)].into_iter().collect())
            .collect();
        let out = multikey_flood(&mut sim, tables, Combine::Min).unwrap();
        for t in &out {
            assert_eq!(t[&9], 89);
        }
    }

    #[test]
    fn round_count_scales_with_key_load() {
        // More keys than fit per message -> more rounds (meta-round
        // congestion). Same topology, 1 key vs 40 keys.
        let g = generators::path(10);
        let rounds_for = |keys: u64| {
            let mut sim = Simulator::new(&g, Model::VCongest);
            let tables: Vec<HashMap<u64, u64>> = (0..10)
                .map(|v| (0..keys).map(|k| (k, (v as u64 + k) % 7)).collect())
                .collect();
            multikey_flood(&mut sim, tables, Combine::Min).unwrap();
            sim.stats().rounds
        };
        let light = rounds_for(1);
        let heavy = rounds_for(40);
        assert!(
            heavy > light,
            "40 keys over 4-pair messages must take more rounds: {light} vs {heavy}"
        );
    }
}
