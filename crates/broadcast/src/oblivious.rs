//! Oblivious routing broadcast congestion (Corollary 1.6).
//!
//! The routing is *oblivious*: each broadcast message picks a random tree
//! of the packing with probability proportional to its weight `x_τ / Σx`
//! (the shared [`decomp_core::packing::TreeSampler`]), independent of the
//! load — and the claim is that the expected maximum congestion is
//! competitive with the offline optimum: `O(log n)`-competitive vertex
//! congestion via dominating-tree packings, `O(1)`-competitive edge
//! congestion via spanning-tree packings. Corollary 1.6's routing is
//! weight-proportional for *both* variants: the per-vertex (resp.
//! per-edge) load bound `Σ_{τ ∋ v} x_τ ≤ 1` is what caps the expected
//! congestion, and only weight-proportional sampling inherits it.
//!
//! Offline lower bounds used for the competitive ratios: broadcasting `N`
//! messages forces ≥ `N/k` load on some vertex of every size-`k` vertex
//! cut (resp. `N/λ` on some edge of every size-`λ` edge cut), and every
//! vertex can relay at most one message per round in V-CONGEST, so
//! `OPT_vertex ≥ max(N/k, N·(n−1)/(n·Δ))`; we use the cut bound, which is
//! the binding one on our workloads.

use decomp_core::packing::{DomTreePacking, SpanTreePacking};
use decomp_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Congestion report for oblivious broadcast routing.
#[derive(Clone, Debug)]
pub struct CongestionReport {
    /// Maximum congestion over vertices (resp. edges).
    pub max_congestion: f64,
    /// The offline lower bound `N / connectivity`.
    pub opt_lower_bound: f64,
    /// Competitive ratio `max_congestion / opt_lower_bound`.
    pub competitiveness: f64,
    /// Number of messages routed.
    pub workload: usize,
}

/// Routes `workload` broadcast messages obliviously over
/// weight-proportionally random trees of a dominating-tree packing and
/// reports the vertex-congestion competitiveness against `N/k`
/// (Corollary 1.6: `O(log n)` expected).
///
/// Each message loads every vertex of its tree by 1 (the tree relays the
/// message through each of its vertices once). Trees are drawn with
/// probability `x_τ / Σx` via the shared sampler — the same
/// weight-proportional choice [`edge_congestion`] makes, which is what
/// lets the per-vertex fractional load bound cap the expected congestion.
pub fn vertex_congestion(
    g: &Graph,
    packing: &DomTreePacking,
    k: usize,
    workload: usize,
    seed: u64,
) -> CongestionReport {
    assert!(packing.num_trees() > 0, "need at least one tree");
    assert!(k >= 1, "connectivity must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = g.n();
    let sampler = packing.sampler();
    let tree_vertices: Vec<Vec<usize>> = packing.trees.iter().map(|t| t.vertices(n)).collect();
    let mut load = vec![0u64; n];
    for _ in 0..workload {
        let t = sampler.sample(&mut rng);
        for &v in &tree_vertices[t] {
            load[v] += 1;
        }
    }
    let max_c = load.into_iter().max().unwrap_or(0) as f64;
    let opt = workload as f64 / k as f64;
    CongestionReport {
        max_congestion: max_c,
        opt_lower_bound: opt,
        competitiveness: if opt > 0.0 {
            max_c / opt
        } else {
            f64::INFINITY
        },
        workload,
    }
}

/// Routes `workload` broadcast messages obliviously over the trees of a
/// spanning-tree packing, picking each tree with probability proportional
/// to its weight, and reports edge-congestion competitiveness against
/// `N/λ` (Corollary 1.6: `O(1)` expected).
pub fn edge_congestion(
    g: &Graph,
    packing: &SpanTreePacking,
    lambda: usize,
    workload: usize,
    seed: u64,
) -> CongestionReport {
    assert!(packing.num_trees() > 0, "need at least one tree");
    assert!(lambda >= 1, "connectivity must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    // Weighted tree choice via the shared sampler (bit-identical to the
    // historical inline cumulative-weight walk, fallback arm included).
    let sampler = packing.sampler();
    let mut load = vec![0u64; g.m()];
    for _ in 0..workload {
        let idx = sampler.sample(&mut rng);
        for &e in &packing.trees[idx].edge_indices {
            load[e] += 1;
        }
    }
    let max_c = load.into_iter().max().unwrap_or(0) as f64;
    let opt = workload as f64 / lambda as f64;
    CongestionReport {
        max_congestion: max_c,
        opt_lower_bound: opt,
        competitiveness: if opt > 0.0 {
            max_c / opt
        } else {
            f64::INFINITY
        },
        workload,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp_core::cds::centralized::{cds_packing, CdsPackingConfig};
    use decomp_core::cds::tree_extract::to_dom_tree_packing;
    use decomp_core::stp::mwu::{fractional_stp_mwu, MwuConfig};
    use decomp_graph::generators;

    #[test]
    fn vertex_congestion_polylog_competitive() {
        let g = generators::harary(16, 64);
        let p = cds_packing(&g, &CdsPackingConfig::with_known_k(16, 2));
        let trees = to_dom_tree_packing(&g, &p).packing;
        let r = vertex_congestion(&g, &trees, 16, 2000, 7);
        let logn = (64f64).log2();
        assert!(
            r.competitiveness <= 8.0 * logn,
            "competitiveness {} exceeds O(log n)",
            r.competitiveness
        );
        assert!(r.max_congestion >= r.opt_lower_bound);
    }

    #[test]
    fn edge_congestion_constant_competitive() {
        let g = generators::harary(8, 32); // lambda = 8
        let report = fractional_stp_mwu(&g, 8, &MwuConfig::default());
        let r = edge_congestion(&g, &report.packing, 8, 2000, 3);
        assert!(
            r.competitiveness <= 8.0,
            "competitiveness {} should be O(1)",
            r.competitiveness
        );
    }

    #[test]
    fn edge_congestion_skips_zero_weight_leading_trees() {
        // The sampler's cumulative walk starts at weight-0 trees whose
        // intervals are empty: every pick must fall through to the
        // positive-weight tail (on a single positive tree this exercises
        // the `idx = num_trees - 1` resolution for every draw), so all
        // load lands on the last tree's edges and none on the edge only
        // the zero-weight trees use.
        let g = generators::cycle(4);
        let p = SpanTreePacking {
            trees: vec![
                decomp_core::packing::WeightedSpanTree {
                    weight: 0.0,
                    edge_indices: vec![0, 1, 2],
                },
                decomp_core::packing::WeightedSpanTree {
                    weight: 0.0,
                    edge_indices: vec![0, 1, 2],
                },
                decomp_core::packing::WeightedSpanTree {
                    weight: 1.0,
                    edge_indices: vec![1, 2, 3],
                },
            ],
        };
        let r = edge_congestion(&g, &p, 2, 500, 9);
        assert_eq!(r.workload, 500);
        assert_eq!(r.max_congestion, 500.0, "all load on the weighted tree");
        // Edge 0 belongs only to the zero-weight trees: never loaded.
        // (Recomputed here because the report only carries the max.)
        let sampler = p.sampler();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..500 {
            assert_eq!(sampler.sample(&mut rng), 2);
        }
    }

    #[test]
    fn vertex_congestion_is_weight_proportional() {
        // Two disjoint pair trees on K_{2,8}, one carrying 9× the weight
        // of the other: the heavy tree's private vertices must see far
        // more load than the light tree's.
        let g = generators::complete_bipartite(2, 8);
        let packing = DomTreePacking {
            trees: vec![
                decomp_core::packing::WeightedDomTree {
                    id: 0,
                    weight: 0.1,
                    edges: vec![(0, 2)],
                    singleton: None,
                },
                decomp_core::packing::WeightedDomTree {
                    id: 1,
                    weight: 0.9,
                    edges: vec![(1, 3)],
                    singleton: None,
                },
            ],
        };
        let r = vertex_congestion(&g, &packing, 2, 4000, 11);
        // max congestion = the heavy tree's load ≈ 0.9 · 4000.
        assert!(
            r.max_congestion > 3200.0 && r.max_congestion < 4000.0,
            "expected ≈3600 draws on the weight-0.9 tree, got {}",
            r.max_congestion
        );
    }

    #[test]
    fn zero_workload() {
        let g = generators::cycle(5);
        let p = cds_packing(&g, &CdsPackingConfig::with_classes(1, 0));
        let trees = to_dom_tree_packing(&g, &p).packing;
        let r = vertex_congestion(&g, &trees, 2, 0, 0);
        assert_eq!(r.max_congestion, 0.0);
    }

    #[test]
    fn congestion_scales_linearly_in_workload() {
        let g = generators::harary(8, 32);
        let p = cds_packing(&g, &CdsPackingConfig::with_known_k(8, 1));
        let trees = to_dom_tree_packing(&g, &p).packing;
        let a = vertex_congestion(&g, &trees, 8, 500, 11);
        let b = vertex_congestion(&g, &trees, 8, 2000, 11);
        assert!(b.max_congestion >= 3.0 * a.max_congestion);
    }
}
