//! Oblivious routing broadcast congestion (Corollary 1.6).
//!
//! The routing is *oblivious*: each broadcast message picks a uniformly
//! random tree of the packing, independent of the load — and the claim is
//! that the expected maximum congestion is competitive with the offline
//! optimum: `O(log n)`-competitive vertex congestion via dominating-tree
//! packings, `O(1)`-competitive edge congestion via spanning-tree packings.
//!
//! Offline lower bounds used for the competitive ratios: broadcasting `N`
//! messages forces ≥ `N/k` load on some vertex of every size-`k` vertex
//! cut (resp. `N/λ` on some edge of every size-`λ` edge cut), and every
//! vertex can relay at most one message per round in V-CONGEST, so
//! `OPT_vertex ≥ max(N/k, N·(n−1)/(n·Δ))`; we use the cut bound, which is
//! the binding one on our workloads.

use decomp_core::packing::{DomTreePacking, SpanTreePacking};
use decomp_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Congestion report for oblivious broadcast routing.
#[derive(Clone, Debug)]
pub struct CongestionReport {
    /// Maximum congestion over vertices (resp. edges).
    pub max_congestion: f64,
    /// The offline lower bound `N / connectivity`.
    pub opt_lower_bound: f64,
    /// Competitive ratio `max_congestion / opt_lower_bound`.
    pub competitiveness: f64,
    /// Number of messages routed.
    pub workload: usize,
}

/// Routes `workload` broadcast messages obliviously over random trees of a
/// dominating-tree packing and reports the vertex-congestion
/// competitiveness against `N/k` (Corollary 1.6: `O(log n)` expected).
///
/// Each message loads every vertex of its tree by 1 (the tree relays the
/// message through each of its vertices once).
pub fn vertex_congestion(
    g: &Graph,
    packing: &DomTreePacking,
    k: usize,
    workload: usize,
    seed: u64,
) -> CongestionReport {
    assert!(packing.num_trees() > 0, "need at least one tree");
    assert!(k >= 1, "connectivity must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let n = g.n();
    let tree_vertices: Vec<Vec<usize>> = packing.trees.iter().map(|t| t.vertices(n)).collect();
    let mut load = vec![0u64; n];
    for _ in 0..workload {
        let t = rng.gen_range(0..packing.num_trees());
        for &v in &tree_vertices[t] {
            load[v] += 1;
        }
    }
    let max_c = load.into_iter().max().unwrap_or(0) as f64;
    let opt = workload as f64 / k as f64;
    CongestionReport {
        max_congestion: max_c,
        opt_lower_bound: opt,
        competitiveness: if opt > 0.0 {
            max_c / opt
        } else {
            f64::INFINITY
        },
        workload,
    }
}

/// Routes `workload` broadcast messages obliviously over the trees of a
/// spanning-tree packing, picking each tree with probability proportional
/// to its weight, and reports edge-congestion competitiveness against
/// `N/λ` (Corollary 1.6: `O(1)` expected).
pub fn edge_congestion(
    g: &Graph,
    packing: &SpanTreePacking,
    lambda: usize,
    workload: usize,
    seed: u64,
) -> CongestionReport {
    assert!(packing.num_trees() > 0, "need at least one tree");
    assert!(lambda >= 1, "connectivity must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let total: f64 = packing.size();
    assert!(total > 0.0, "packing must carry weight");
    let mut load = vec![0u64; g.m()];
    for _ in 0..workload {
        // Weighted tree choice.
        let mut pick = rng.gen_range(0.0..total);
        let mut idx = packing.num_trees() - 1;
        for (i, t) in packing.trees.iter().enumerate() {
            if pick < t.weight {
                idx = i;
                break;
            }
            pick -= t.weight;
        }
        for &e in &packing.trees[idx].edge_indices {
            load[e] += 1;
        }
    }
    let max_c = load.into_iter().max().unwrap_or(0) as f64;
    let opt = workload as f64 / lambda as f64;
    CongestionReport {
        max_congestion: max_c,
        opt_lower_bound: opt,
        competitiveness: if opt > 0.0 {
            max_c / opt
        } else {
            f64::INFINITY
        },
        workload,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp_core::cds::centralized::{cds_packing, CdsPackingConfig};
    use decomp_core::cds::tree_extract::to_dom_tree_packing;
    use decomp_core::stp::mwu::{fractional_stp_mwu, MwuConfig};
    use decomp_graph::generators;

    #[test]
    fn vertex_congestion_polylog_competitive() {
        let g = generators::harary(16, 64);
        let p = cds_packing(&g, &CdsPackingConfig::with_known_k(16, 2));
        let trees = to_dom_tree_packing(&g, &p).packing;
        let r = vertex_congestion(&g, &trees, 16, 2000, 7);
        let logn = (64f64).log2();
        assert!(
            r.competitiveness <= 8.0 * logn,
            "competitiveness {} exceeds O(log n)",
            r.competitiveness
        );
        assert!(r.max_congestion >= r.opt_lower_bound);
    }

    #[test]
    fn edge_congestion_constant_competitive() {
        let g = generators::harary(8, 32); // lambda = 8
        let report = fractional_stp_mwu(&g, 8, &MwuConfig::default());
        let r = edge_congestion(&g, &report.packing, 8, 2000, 3);
        assert!(
            r.competitiveness <= 8.0,
            "competitiveness {} should be O(1)",
            r.competitiveness
        );
    }

    #[test]
    fn zero_workload() {
        let g = generators::cycle(5);
        let p = cds_packing(&g, &CdsPackingConfig::with_classes(1, 0));
        let trees = to_dom_tree_packing(&g, &p).packing;
        let r = vertex_congestion(&g, &trees, 2, 0, 0);
        assert_eq!(r.max_congestion, 0.0);
    }

    #[test]
    fn congestion_scales_linearly_in_workload() {
        let g = generators::harary(8, 32);
        let p = cds_packing(&g, &CdsPackingConfig::with_known_k(8, 1));
        let trees = to_dom_tree_packing(&g, &p).packing;
        let a = vertex_congestion(&g, &trees, 8, 500, 11);
        let b = vertex_congestion(&g, &trees, 8, 2000, 11);
        assert!(b.max_congestion >= 3.0 * a.max_congestion);
    }
}
