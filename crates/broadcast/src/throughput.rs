//! Broadcast throughput (Corollaries 1.4 and 1.5).
//!
//! The information-theoretic limits: in V-CONGEST no broadcast algorithm
//! (even with network coding) exceeds `k` messages/round; in E-CONGEST the
//! limit is `λ`. The packings achieve `Ω(k / log n)` resp.
//! `⌈(λ−1)/2⌉(1 − ε)` by pipelining messages along random trees.
//!
//! [`vertex_throughput`] measures the V-CONGEST schedule empirically (via
//! the gossip simulator on a large single-source workload);
//! [`edge_throughput`] computes the E-CONGEST steady-state rate of a
//! spanning-tree packing, which equals its size (each tree pipelines one
//! message per round per unit weight, and per-edge loads ≤ 1 make the
//! time-sharing feasible).

use crate::gossip::{gossip_via_trees_with, GossipConfig};
use decomp_core::packing::{DomTreePacking, SpanTreePacking};
use decomp_graph::Graph;

/// Measured throughput of a dominating-tree packing.
#[derive(Clone, Debug)]
pub struct VertexThroughputReport {
    /// Messages delivered per round in the measured schedule.
    pub messages_per_round: f64,
    /// The single-BFS-tree baseline rate on the same workload.
    pub baseline_messages_per_round: f64,
    /// The information-theoretic limit `k`.
    pub limit: usize,
    /// Number of messages used for the measurement.
    pub workload: usize,
}

/// Measures V-CONGEST broadcast throughput: `workload` messages starting
/// at round-robin sources, disseminated via random trees of `packing`.
///
/// # Panics
/// Propagates the gossip simulator's panics (empty packing etc.).
pub fn vertex_throughput(
    g: &Graph,
    packing: &DomTreePacking,
    k: usize,
    workload: usize,
    seed: u64,
) -> VertexThroughputReport {
    vertex_throughput_with(g, packing, k, workload, seed, GossipConfig::default())
}

/// [`vertex_throughput`] under an explicit [`GossipConfig`] — the
/// weighted tree-choice / time-sharing schedule of the fractional
/// regime. The single-BFS-tree baseline always runs the default config
/// (one tree: nothing to weight), so baselines stay comparable across
/// configs.
///
/// # Panics
/// Propagates the gossip simulator's panics (empty packing etc.).
pub fn vertex_throughput_with(
    g: &Graph,
    packing: &DomTreePacking,
    k: usize,
    workload: usize,
    seed: u64,
    config: GossipConfig,
) -> VertexThroughputReport {
    let origins: Vec<usize> = (0..workload).map(|i| i % g.n()).collect();
    let multi = gossip_via_trees_with(g, packing, &origins, seed, config);
    let single = crate::gossip::gossip_single_tree_baseline(g, &origins, seed);
    VertexThroughputReport {
        messages_per_round: workload as f64 / multi.rounds.max(1) as f64,
        baseline_messages_per_round: workload as f64 / single.rounds.max(1) as f64,
        limit: k,
        workload,
    }
}

/// Steady-state E-CONGEST throughput of a spanning-tree packing.
#[derive(Clone, Debug)]
pub struct EdgeThroughputReport {
    /// Messages per round: the packing size (time-sharing each edge by the
    /// weights of the trees crossing it).
    pub messages_per_round: f64,
    /// The information-theoretic limit `λ`.
    pub limit: usize,
    /// The Tutte–Nash-Williams benchmark `⌈(λ−1)/2⌉`.
    pub tutte_nash_williams: usize,
}

/// Computes the steady-state rate of `packing` (its size), checking
/// feasibility first.
///
/// # Panics
/// Panics if the packing is infeasible on `g`.
pub fn edge_throughput(
    g: &Graph,
    packing: &SpanTreePacking,
    lambda: usize,
) -> EdgeThroughputReport {
    packing
        .validate(g, 1e-6)
        .expect("throughput requires a feasible packing");
    EdgeThroughputReport {
        messages_per_round: packing.size(),
        limit: lambda,
        tutte_nash_williams: ((lambda as f64 - 1.0) / 2.0).ceil() as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp_core::cds::centralized::{cds_packing, CdsPackingConfig};
    use decomp_core::cds::tree_extract::to_dom_tree_packing;
    use decomp_core::stp::mwu::{fractional_stp_mwu, MwuConfig};
    use decomp_graph::generators;

    #[test]
    fn disjoint_trees_raise_throughput() {
        // Vertex-disjoint dominating trees (the k ≫ log n regime): pair
        // trees on K_{8,56}; see gossip::tests for the construction.
        let t = 8;
        let g = generators::complete_bipartite(t, 56);
        let trees = (0..t)
            .map(|i| decomp_core::packing::WeightedDomTree {
                id: i,
                weight: 1.0,
                edges: vec![(i, t + i)],
                singleton: None,
            })
            .collect();
        let packing = DomTreePacking { trees };
        let r = vertex_throughput(&g, &packing, t, 4 * g.n(), 5);
        assert!(
            r.messages_per_round > 2.0 * r.baseline_messages_per_round,
            "{} vs baseline {}",
            r.messages_per_round,
            r.baseline_messages_per_round
        );
        // Never exceeds the information-theoretic limit.
        assert!(r.messages_per_round <= r.limit as f64 + 1e-9);
    }

    #[test]
    fn constructed_packing_throughput_comparable() {
        let g = generators::harary(16, 64);
        let p = cds_packing(&g, &CdsPackingConfig::with_known_k(16, 2));
        let trees = to_dom_tree_packing(&g, &p).packing;
        let r = vertex_throughput(&g, &trees, 16, 2 * g.n(), 5);
        assert!(r.messages_per_round <= r.limit as f64 + 1e-9);
        assert!(
            r.messages_per_round >= 0.4 * r.baseline_messages_per_round,
            "{} vs baseline {}",
            r.messages_per_round,
            r.baseline_messages_per_round
        );
    }

    #[test]
    fn weighted_config_stays_within_limits() {
        // The fractional-regime schedule must respect the same
        // information-theoretic cap and stay comparable to the default
        // on a constructed packing.
        let g = generators::harary(16, 64);
        let p = cds_packing(&g, &CdsPackingConfig::with_known_k(16, 2));
        let trees = to_dom_tree_packing(&g, &p).packing;
        let w = crate::throughput::vertex_throughput_with(
            &g,
            &trees,
            16,
            2 * g.n(),
            5,
            crate::gossip::GossipConfig::weighted(),
        );
        assert!(w.messages_per_round <= w.limit as f64 + 1e-9);
        let d = vertex_throughput(&g, &trees, 16, 2 * g.n(), 5);
        assert!(
            w.messages_per_round >= 0.5 * d.messages_per_round,
            "weighted {} vs default {}",
            w.messages_per_round,
            d.messages_per_round
        );
    }

    #[test]
    fn edge_throughput_near_tutte_nash_williams() {
        let g = generators::harary(8, 24); // lambda = 8
        let report = fractional_stp_mwu(&g, 8, &MwuConfig::default());
        let r = edge_throughput(&g, &report.packing, 8);
        assert_eq!(r.tutte_nash_williams, 4);
        assert!(
            r.messages_per_round >= 4.0 * (1.0 - 0.6),
            "rate {}",
            r.messages_per_round
        );
        assert!(r.messages_per_round <= r.limit as f64);
    }

    #[test]
    #[should_panic(expected = "feasible")]
    fn edge_throughput_rejects_overloaded_packing() {
        let g = generators::cycle(4);
        let mut p = fractional_stp_mwu(&g, 2, &MwuConfig::default()).packing;
        for t in &mut p.trees {
            t.weight = 1.0;
        }
        p.trees.push(p.trees[0].clone());
        edge_throughput(&g, &p, 2);
    }
}
