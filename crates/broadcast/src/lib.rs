//! # decomp-broadcast
//!
//! Information-dissemination applications of connectivity decompositions
//! (paper Sections 1.3.1 and Appendix A):
//!
//! * [`gossip`] — all-to-all broadcast (gossiping) by assigning messages to
//!   random dominating trees and pipelining them up/down each tree
//!   (Appendix A, Corollary A.1); [`gossip::GossipConfig`] selects between
//!   the integral reading (uniform tree choice, greedy relaying) and the
//!   fractional regime Theorem 1.1 actually proves (weight-proportional
//!   choice + weighted per-vertex time-sharing);
//! * [`throughput`] — steady-state broadcast throughput along the trees of
//!   a packing, against the information-theoretic limits `k` / `⌈(λ−1)/2⌉`
//!   (Corollaries 1.4 / 1.5);
//! * [`oblivious`] — oblivious-routing broadcast congestion: the expected
//!   maximum vertex / edge congestion against the offline optimum
//!   (Corollary 1.6);
//! * [`rlnc`] — random linear network coding over GF(2⁸) (beyond the
//!   paper): the field algebra, the incremental-Gaussian-elimination
//!   decoder, and the coded gossip regime
//!   [`gossip::Regime::Rlnc`] selects, where relays broadcast
//!   seeded-random combinations instead of forwarding along committed
//!   trees.
//!
//! All simulations here are *schedule-level*: trees and message
//! assignments come from `decomp-core` packings, and rounds are counted by
//! pipelined tree-broadcast scheduling (the standard telephone-model
//! analysis the paper invokes), not by re-running the CONGEST simulator —
//! the packing construction already paid its rounds there.

pub mod churn;
pub mod gossip;
pub mod gossip_distributed;
pub mod oblivious;
pub mod rlnc;
pub mod throughput;
