//! Random linear network coding (RLNC) over GF(2⁸): the third gossip
//! regime, beyond the paper.
//!
//! The paper's Theorem 1.1 schedules commit each message to one tree of
//! the packing, which produces a convoy effect when trees overlap (the
//! rr regression recorded in BENCH_SIM.md, PR 5). Network coding is
//! convoy-free by construction: messages are grouped into *generations*
//! of [`GossipConfig::rlnc`](crate::gossip::GossipConfig::rlnc)'s
//! `generation_size` symbols, and a relay
//! broadcasts a seeded-random GF(2⁸) combination of everything it has
//! received of one generation — any *innovative* packet (one that grows
//! the receiver's coefficient rank) helps every receiver, no matter
//! which tree "owns" the symbols. A node decodes a generation once its
//! received-coefficient matrix reaches full rank.
//!
//! Three layers live here:
//!
//! * [`gf256`] — the field: log/exp-table multiply plus a full 256×256
//!   product table driving [`gf256::axpy`], the row-update kernel every
//!   elimination and combination step runs on (the `c == 1` path is a
//!   pure XOR loop the compiler vectorizes; general `c` is one table row
//!   per scalar, applied byte-wise over the packed row).
//! * [`RlncDecoder`] — per-(node, generation) state: the coefficient
//!   matrix kept in row-echelon form by incremental Gaussian
//!   elimination, innovative-packet detection (a packet that reduces to
//!   zero against the pivot rows changes nothing and is counted as
//!   wasted bandwidth), rank tracking, and back-substitution decode.
//! * `rlnc_schedule` (crate-internal) — the centralized round loop
//!   behind [`Regime::Rlnc`](crate::gossip::Regime): per round every
//!   vertex holding part of a still-needed generation picks one
//!   seeded-uniform generation among those a neighbor still needs and
//!   broadcasts a seeded-random combination of its rows. All coefficient
//!   draws come from one `StdRng` seeded by `run seed ⊕ mix(rlnc seed)`,
//!   so the relay digest pins the schedule bit-for-bit across runs and
//!   engines (docs/DETERMINISM.md).
//!
//! Fault behaviour differs from the tree schedules by design: there is
//! no repair pass, because there is nothing to repair — coded packets
//! are not bound to trees, so dead vertices only shrink each
//! generation's achievable rank to the span still held by survivors
//! (symbols whose every independent combination died are counted lost,
//! exactly like a tree origin dying before its first relay).

use crate::gossip::{
    relay_hash, BitRows, DegradationSample, FaultTracker, MessageOrigin, ScheduleOutcome,
};
use decomp_congest::fault::FaultPlan;
use decomp_core::packing::DomTreePacking;
use decomp_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Largest supported generation size: coefficients are one GF(2⁸)
/// symbol each and pivot bookkeeping is one byte per column.
pub const MAX_GENERATION: usize = 255;

/// GF(2⁸) arithmetic, x⁸ + x⁴ + x³ + x² + 1 (0x11d), generator α = 2.
///
/// All tables are computed at compile time. Multiplication is the
/// classic log/exp lookup; [`axpy`](gf256::axpy) — `dst ^= c · src` over packed byte
/// rows — instead walks one row of the full 256×256 product table so
/// the inner loop is a single dependent lookup per byte (and a plain
/// vectorizable XOR when `c == 1`).
pub mod gf256 {
    /// The reduction polynomial, sans the x⁸ term.
    const POLY: u16 = 0x11d;

    /// Carry-less multiply mod `POLY` — the compile-time reference the
    /// tables are built from (and the oracle the tests check against).
    const fn mul_slow(mut a: u8, mut b: u8) -> u8 {
        let mut acc = 0u8;
        while b != 0 {
            if b & 1 != 0 {
                acc ^= a;
            }
            let hi = a & 0x80;
            a <<= 1;
            if hi != 0 {
                a ^= (POLY & 0xff) as u8;
            }
            b >>= 1;
        }
        acc
    }

    const fn build_exp_log() -> ([u8; 512], [u8; 256]) {
        let mut exp = [0u8; 512];
        let mut log = [0u8; 256];
        let mut x = 1u8;
        let mut i = 0;
        while i < 255 {
            exp[i] = x;
            log[x as usize] = i as u8;
            x = mul_slow(x, 2);
            i += 1;
        }
        // Mirror the cycle so `exp[log a + log b]` needs no reduction
        // (the sum is at most 508).
        while i < 510 {
            exp[i] = exp[i - 255];
            i += 1;
        }
        (exp, log)
    }

    /// `EXP[i] = α^i` for `i < 510` (doubled period — the mirrored upper half spares `mul` a reduction).
    pub static EXP: [u8; 512] = build_exp_log().0;
    /// `LOG[x] = log_α x` for `x ≠ 0`; `LOG[0]` is unused.
    pub static LOG: [u8; 256] = build_exp_log().1;

    const fn build_mul() -> [[u8; 256]; 256] {
        let mut t = [[0u8; 256]; 256];
        let mut a = 1;
        while a < 256 {
            let mut b = 1;
            while b < 256 {
                t[a][b] = mul_slow(a as u8, b as u8);
                b += 1;
            }
            a += 1;
        }
        t
    }

    /// Full product table: `MUL[a][b] = a · b`. 64 KiB, the price of a
    /// branchless [`axpy`] inner loop.
    pub static MUL: [[u8; 256]; 256] = build_mul();

    /// Field product via log/exp lookup.
    #[inline]
    pub fn mul(a: u8, b: u8) -> u8 {
        if a == 0 || b == 0 {
            0
        } else {
            EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
        }
    }

    /// Multiplicative inverse: `α^(255 − log a)`.
    ///
    /// # Panics
    /// Panics on `a == 0` (zero has no inverse).
    #[inline]
    pub fn inv(a: u8) -> u8 {
        assert!(a != 0, "0 has no inverse in GF(2^8)");
        EXP[255 - LOG[a as usize] as usize]
    }

    /// `a / b` = `a · b⁻¹`.
    ///
    /// # Panics
    /// Panics on `b == 0`.
    #[inline]
    pub fn div(a: u8, b: u8) -> u8 {
        mul(a, inv(b))
    }

    /// `dst[i] ^= c · src[i]` — the row-update kernel (addition in
    /// characteristic 2 is XOR, so this is also the subtraction every
    /// elimination step needs).
    ///
    /// # Panics
    /// Panics if the slices differ in length.
    pub fn axpy(dst: &mut [u8], src: &[u8], c: u8) {
        assert_eq!(dst.len(), src.len(), "axpy rows must match");
        match c {
            0 => {}
            1 => {
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d ^= s;
                }
            }
            _ => {
                let row = &MUL[c as usize];
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d ^= row[s as usize];
                }
            }
        }
    }

    /// `row[i] = c · row[i]` in place.
    pub fn scale(row: &mut [u8], c: u8) {
        match c {
            0 => row.fill(0),
            1 => {}
            _ => {
                let tab = &MUL[c as usize];
                for x in row {
                    *x = tab[*x as usize];
                }
            }
        }
    }
}

/// Bytes of one decoder slab: `size` rows of `size + plen` bytes
/// (coefficients then payload), followed by `size` pivot bytes —
/// `pivots[col] = row index + 1`, 0 meaning the column has no pivot yet.
pub(crate) fn slab_bytes(size: usize, plen: usize) -> usize {
    size * (size + plen) + size
}

/// One incremental Gaussian-elimination step against the echelon rows in
/// `slab`: reduces `packet` (coefficients ++ payload, clobbered) by each
/// pivot row it meets; if a nonzero remainder survives, normalizes it to
/// a leading 1 and installs it as row `rank`, returning `true`
/// (innovative). A packet inside the received span reduces to zero and
/// returns `false`.
pub(crate) fn slab_receive(
    slab: &mut [u8],
    size: usize,
    plen: usize,
    rank: usize,
    packet: &mut [u8],
) -> bool {
    let stride = size + plen;
    debug_assert_eq!(packet.len(), stride);
    let (rows, pivots) = slab.split_at_mut(size * stride);
    for col in 0..size {
        let c = packet[col];
        if c == 0 {
            continue;
        }
        let p = pivots[col] as usize;
        if p == 0 {
            // New pivot column: normalize (entries left of `col` are
            // already zero) and install in echelon order.
            if c != 1 {
                gf256::scale(&mut packet[col..], gf256::inv(c));
            }
            rows[rank * stride..(rank + 1) * stride].copy_from_slice(packet);
            pivots[col] = (rank + 1) as u8;
            return true;
        }
        let row = &rows[(p - 1) * stride..p * stride];
        // Pivot rows are normalized, so subtracting c · row zeroes
        // `packet[col]` (their entries left of `col` are zero too).
        gf256::axpy(&mut packet[col..], &row[col..], c);
    }
    false
}

/// Writes a seeded-random combination of the first `rank` slab rows into
/// `out` (length `size + plen`). Draws exactly `rank` coefficient bytes
/// from `rng`, so the stream position is a function of the decoder rank
/// alone — the determinism contract of the schedule digest.
pub(crate) fn slab_combine(
    slab: &[u8],
    size: usize,
    plen: usize,
    rank: usize,
    rng: &mut impl Rng,
    out: &mut [u8],
) {
    let stride = size + plen;
    debug_assert_eq!(out.len(), stride);
    out.fill(0);
    for r in 0..rank {
        let c: u8 = rng.gen();
        gf256::axpy(out, &slab[r * stride..(r + 1) * stride], c);
    }
}

/// Per-(node, generation) RLNC decoder: received coefficient vectors
/// (plus optional payload bytes) kept in row-echelon form by incremental
/// Gaussian elimination.
///
/// `size` is the generation size (number of coefficient columns, at most
/// [`MAX_GENERATION`]); `payload_len` is the byte length each packet's
/// payload carries alongside its coefficients (0 for coefficient-only
/// tracking, as the centralized schedule does).
pub struct RlncDecoder {
    size: usize,
    plen: usize,
    rank: usize,
    slab: Box<[u8]>,
    scratch: Box<[u8]>,
}

impl RlncDecoder {
    /// An empty decoder for one generation.
    ///
    /// # Panics
    /// Panics if `size` is 0 or exceeds [`MAX_GENERATION`].
    pub fn new(size: usize, payload_len: usize) -> Self {
        assert!(
            (1..=MAX_GENERATION).contains(&size),
            "generation size must be in 1..={MAX_GENERATION}"
        );
        RlncDecoder {
            size,
            plen: payload_len,
            rank: 0,
            slab: vec![0u8; slab_bytes(size, payload_len)].into_boxed_slice(),
            scratch: vec![0u8; size + payload_len].into_boxed_slice(),
        }
    }

    /// Generation size (coefficient columns).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Payload bytes carried per packet.
    pub fn payload_len(&self) -> usize {
        self.plen
    }

    /// Current rank of the received coefficient matrix.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Whether the matrix has full rank (every symbol decodable).
    pub fn is_complete(&self) -> bool {
        self.rank == self.size
    }

    /// Feeds one coded packet (`size` coefficient bytes then
    /// `payload_len` payload bytes); returns whether it was innovative.
    ///
    /// # Panics
    /// Panics if `packet` has the wrong length.
    pub fn receive(&mut self, packet: &[u8]) -> bool {
        assert_eq!(packet.len(), self.size + self.plen, "malformed packet");
        self.scratch.copy_from_slice(packet);
        if slab_receive(
            &mut self.slab,
            self.size,
            self.plen,
            self.rank,
            &mut self.scratch,
        ) {
            self.rank += 1;
            true
        } else {
            false
        }
    }

    /// Feeds the source symbol at coefficient position `pos` (the unit
    /// vector eₚₒₛ) — how origins seed their own generation.
    ///
    /// # Panics
    /// Panics if `pos` is out of range or `payload` has the wrong length.
    pub fn receive_symbol(&mut self, pos: usize, payload: &[u8]) -> bool {
        assert!(pos < self.size, "symbol position out of range");
        assert_eq!(payload.len(), self.plen, "malformed payload");
        self.scratch.fill(0);
        self.scratch[pos] = 1;
        self.scratch[self.size..].copy_from_slice(payload);
        if slab_receive(
            &mut self.slab,
            self.size,
            self.plen,
            self.rank,
            &mut self.scratch,
        ) {
            self.rank += 1;
            true
        } else {
            false
        }
    }

    /// Writes a seeded-random combination of the received rows into
    /// `out` (`size + payload_len` bytes) — what a relay broadcasts.
    /// Draws exactly [`rank`](Self::rank) bytes from `rng`.
    ///
    /// # Panics
    /// Panics if `out` has the wrong length.
    pub fn combine(&self, rng: &mut impl Rng, out: &mut [u8]) {
        assert_eq!(out.len(), self.size + self.plen, "malformed buffer");
        slab_combine(&self.slab, self.size, self.plen, self.rank, rng, out);
    }

    /// Back-substitution decode: the payloads of the `size` source
    /// symbols, in coefficient order. `None` until
    /// [`is_complete`](Self::is_complete).
    pub fn decode(&self) -> Option<Vec<Vec<u8>>> {
        if !self.is_complete() {
            return None;
        }
        let stride = self.size + self.plen;
        let mut rows = self.slab[..self.size * stride].to_vec();
        let pivots = &self.slab[self.size * stride..];
        // Descending column order: once column `col2 > col` is reduced,
        // its pivot row is the unit vector e_{col2} plus payload, so
        // eliminating it from row `col` touches only column `col2` and
        // the payload bytes.
        let mut tmp = vec![0u8; stride];
        for col in (0..self.size).rev() {
            let r = pivots[col] as usize - 1;
            for col2 in col + 1..self.size {
                let f = rows[r * stride + col2];
                if f != 0 {
                    let r2 = pivots[col2] as usize - 1;
                    tmp.copy_from_slice(&rows[r2 * stride..(r2 + 1) * stride]);
                    gf256::axpy(&mut rows[r * stride..(r + 1) * stride], &tmp, f);
                }
            }
        }
        Some(
            (0..self.size)
                .map(|col| {
                    let r = pivots[col] as usize - 1;
                    rows[r * stride + self.size..(r + 1) * stride].to_vec()
                })
                .collect(),
        )
    }
}

impl std::fmt::Debug for RlncDecoder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RlncDecoder")
            .field("size", &self.size)
            .field("payload_len", &self.plen)
            .field("rank", &self.rank)
            .finish_non_exhaustive()
    }
}

/// The source-side encoder of one generation: a seeded-random
/// combination of `symbols` (all of equal length). Returns
/// `(coefficients, payload)` — test harnesses feed these to a decoder to
/// check `decode(encode(msgs))` round-trips.
///
/// # Panics
/// Panics if `symbols` is empty, oversized, or ragged.
pub fn encode_packet(symbols: &[Vec<u8>], rng: &mut impl Rng) -> (Vec<u8>, Vec<u8>) {
    assert!(
        !symbols.is_empty() && symbols.len() <= MAX_GENERATION,
        "generation size must be in 1..={MAX_GENERATION}"
    );
    let plen = symbols[0].len();
    let mut coeffs = vec![0u8; symbols.len()];
    let mut payload = vec![0u8; plen];
    for (c, s) in coeffs.iter_mut().zip(symbols) {
        assert_eq!(s.len(), plen, "ragged generation");
        *c = rng.gen();
        gf256::axpy(&mut payload, s, *c);
    }
    (coeffs, payload)
}

/// The deterministic per-symbol payload word the distributed RLNC
/// protocol ships and verifies (SplitMix64 of the message index) — a
/// known function of `m` so completion can be checked by decoding.
pub fn symbol_word(m: usize) -> u64 {
    let mut z = (m as u64).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Centralized schedule state: one coefficient-only decoder slab per
/// (vertex, generation), allocated on first reception and freed at
/// lossless completion (a full-span decoder can combine without its
/// rows), plus the counters that let senders stop exactly when no
/// neighbor needs a generation anymore.
struct RlncState<'g> {
    g: &'g Graph,
    gens: usize,
    gsize: usize,
    slab_sz: usize,
    slabs: Vec<Option<Box<[u8]>>>,
    /// Rank of vertex `v` in generation `gen`, flat `v * gens + gen`.
    rank: Vec<u8>,
    /// Achievable rank per generation: the generation size, shrunk by
    /// fault passes to the span the survivors still hold.
    cap: Vec<u8>,
    /// Original size per generation (the lossless `cap`).
    full: Vec<u8>,
    /// Live vertices below `cap`, per generation.
    incomplete_at: Vec<u32>,
    /// Σ `incomplete_at` — the loop's termination counter.
    total_incomplete: usize,
    /// Per (vertex, generation): live neighbors below `cap`. A vertex
    /// stops relaying a generation once this hits zero (monotone —
    /// completions and deaths only decrease it).
    nbr_incomplete: Vec<u32>,
    /// Generations a vertex holds rank in, candidates for its one relay
    /// slot per round; entries are pruned lazily once no neighbor needs
    /// them.
    candidates: Vec<Vec<u32>>,
    cur_slab: usize,
    peak_slab: usize,
    cur_cand: usize,
    peak_cand: usize,
    wasted: usize,
}

impl<'g> RlncState<'g> {
    fn new(g: &'g Graph, gens: usize, gsize: usize, nmsg: usize) -> Self {
        let n = g.n();
        let full: Vec<u8> = (0..gens)
            .map(|gen| gsize.min(nmsg - gen * gsize) as u8)
            .collect();
        let mut nbr_incomplete = vec![0u32; n * gens];
        for v in 0..n {
            let deg = g.neighbors(v).len() as u32;
            nbr_incomplete[v * gens..(v + 1) * gens].fill(deg);
        }
        RlncState {
            g,
            gens,
            gsize,
            slab_sz: slab_bytes(gsize, 0),
            slabs: (0..n * gens).map(|_| None).collect(),
            rank: vec![0; n * gens],
            cap: full.clone(),
            full,
            incomplete_at: vec![n as u32; gens],
            total_incomplete: n * gens,
            nbr_incomplete,
            candidates: vec![Vec::new(); n],
            cur_slab: 0,
            peak_slab: 0,
            cur_cand: 0,
            peak_cand: 0,
            wasted: 0,
        }
    }

    /// Marks `(v, gen)` complete: stops it counting toward neighbors'
    /// demand, and frees the slab when the generation is lossless (the
    /// span is the full coordinate space, so combinations need no rows).
    fn complete(&mut self, v: usize, gen: usize) {
        self.incomplete_at[gen] -= 1;
        self.total_incomplete -= 1;
        let g = self.g;
        for &u in g.neighbors(v) {
            self.nbr_incomplete[u * self.gens + gen] -= 1;
        }
        if self.cap[gen] == self.full[gen] && self.slabs[v * self.gens + gen].take().is_some() {
            self.cur_slab -= self.slab_sz;
        }
    }

    /// Delivers one coded packet to `(v, gen)` (`packet` is clobbered);
    /// updates rank/candidate/completion bookkeeping and the wasted
    /// counter. Returns whether the packet was innovative.
    fn receive(&mut self, v: usize, gen: usize, packet: &mut [u8]) -> bool {
        let i = v * self.gens + gen;
        if self.rank[i] == self.cap[gen] {
            self.wasted += 1;
            return false;
        }
        if self.slabs[i].is_none() {
            self.slabs[i] = Some(vec![0u8; self.slab_sz].into_boxed_slice());
            self.cur_slab += self.slab_sz;
            self.peak_slab = self.peak_slab.max(self.cur_slab);
        }
        let (gsize, rank) = (self.gsize, self.rank[i] as usize);
        let slab = self.slabs[i].as_mut().expect("just allocated");
        if !slab_receive(slab, gsize, 0, rank, packet) {
            self.wasted += 1;
            return false;
        }
        self.rank[i] += 1;
        if self.rank[i] == 1 {
            self.candidates[v].push(gen as u32);
            self.cur_cand += 1;
            self.peak_cand = self.peak_cand.max(self.cur_cand);
        }
        if self.rank[i] == self.cap[gen] {
            self.complete(v, gen);
        }
        true
    }

    /// Removes a newly dead vertex from every count and frees its state.
    fn kill(&mut self, v: usize) {
        let g = self.g;
        for gen in 0..self.gens {
            let i = v * self.gens + gen;
            if self.rank[i] < self.cap[gen] {
                self.incomplete_at[gen] -= 1;
                self.total_incomplete -= 1;
                for &u in g.neighbors(v) {
                    self.nbr_incomplete[u * self.gens + gen] -= 1;
                }
            }
            if self.slabs[i].take().is_some() {
                self.cur_slab -= self.slab_sz;
            }
        }
        self.cur_cand -= self.candidates[v].len();
        self.candidates[v].clear();
    }

    /// After deaths: shrinks each incomplete generation's `cap` to the
    /// rank of the survivors' combined span (symbols beyond it are
    /// lost — every independent combination died). Returns the number
    /// of symbols lost by this pass.
    fn shrink_caps(&mut self, ft: &FaultTracker<'_>, scratch: &mut [u8], pkt: &mut [u8]) -> usize {
        let mut lost = 0usize;
        for gen in 0..self.gens {
            if self.incomplete_at[gen] == 0 {
                continue;
            }
            // A live completed vertex witnesses that the whole cap
            // survives.
            if ft.live() as u32 > self.incomplete_at[gen] {
                continue;
            }
            let cap = self.cap[gen] as usize;
            scratch.fill(0);
            let mut srank = 0usize;
            'fold: for v in 0..self.g.n() {
                if ft.is_dead(v) {
                    continue;
                }
                let i = v * self.gens + gen;
                if self.slabs[i].is_none() && self.rank[i] as usize >= cap && cap > 0 {
                    // A completed vertex whose slab was freed: it
                    // witnesses that the entire cap survives. (With
                    // dormant vertices inflating `incomplete_at`, the
                    // live > incomplete early-out above cannot promise
                    // no such vertex reaches this fold.)
                    srank = cap;
                    break 'fold;
                }
                for row in 0..self.rank[i] as usize {
                    let slab = self.slabs[i].as_ref().expect("rank > 0 implies rows");
                    pkt.copy_from_slice(&slab[row * self.gsize..(row + 1) * self.gsize]);
                    if slab_receive(scratch, self.gsize, 0, srank, pkt) {
                        srank += 1;
                        if srank == cap {
                            break 'fold;
                        }
                    }
                }
            }
            if srank < cap {
                lost += cap - srank;
                self.cap[gen] = srank as u8;
                for v in 0..self.g.n() {
                    if !ft.is_dead(v) && self.rank[v * self.gens + gen] as usize == srank {
                        self.complete(v, gen);
                    }
                }
            }
        }
        lost
    }

    /// Words of the flat bookkeeping arrays (rank bytes, demand
    /// counters, slab slots) — the fixed part of the memory footprint.
    fn fixed_words(&self) -> usize {
        self.rank.len().div_ceil(8) + self.nbr_incomplete.len().div_ceil(2) + 2 * self.slabs.len()
    }
}

/// The RLNC round loop behind [`Regime::Rlnc`](crate::gossip::Regime):
/// same V-CONGEST discipline as the tree schedules (one broadcast per
/// vertex per round, choices from round-start state, deliveries applied
/// in ascending sender order), but relays send seeded-random GF(2⁸)
/// combinations of one generation instead of forwarding tree tokens.
/// `packing`/`member` are used only for the degradation curve's
/// `surviving_trees` column — coded packets ride no tree.
#[allow(clippy::too_many_arguments)] // crate-internal schedule plumbing
pub(crate) fn rlnc_schedule(
    g: &Graph,
    packing: &DomTreePacking,
    member: &BitRows,
    origins: &[MessageOrigin],
    seed: u64,
    gsize: usize,
    coeff_seed: u64,
    faults: Option<&FaultPlan>,
) -> ScheduleOutcome {
    let n = g.n();
    let nmsg = origins.len();
    assert!(
        (1..=MAX_GENERATION).contains(&gsize),
        "generation_size must be in 1..={MAX_GENERATION}"
    );
    let mut degradation: Vec<DegradationSample> = Vec::new();
    if nmsg == 0 {
        return ScheduleOutcome {
            rounds: 0,
            schedule_digest: 0,
            peak_state_words: member.words(),
            degradation,
            lost_messages: 0,
            wasted_bandwidth: 0,
            repair_events: 0,
            flood_rounds: 0,
        };
    }
    let gens = nmsg.div_ceil(gsize);
    let mut st = RlncState::new(g, gens, gsize, nmsg);
    // One stream for every coefficient draw: run seed mixed with the
    // regime's own seed, so (seed, rlnc seed) pins the schedule.
    let mut rng = StdRng::seed_from_u64(seed ^ coeff_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));

    // Origins hold their symbols as unit vectors (message m is position
    // m % gsize of generation m / gsize).
    let mut pkt = vec![0u8; gsize];
    for (m, &origin) in origins.iter().enumerate() {
        pkt.fill(0);
        pkt[m % gsize] = 1;
        let innovative = st.receive(origin, m / gsize, &mut pkt);
        debug_assert!(innovative, "distinct unit seeds are always innovative");
    }

    let mut tracker = faults.map(|p| FaultTracker::new(p, n));
    let mut newly_dead: Vec<usize> = Vec::new();
    let mut lost_messages = 0usize;
    let mut rounds = 0usize;
    let mut schedule_digest = 0u64;
    let round_limit = 64 * (n + nmsg) + 1024;
    let mut relays: Vec<(u32, u32)> = Vec::new();
    let mut arena: Vec<u8> = Vec::new();
    let mut scratch_slab = vec![0u8; slab_bytes(gsize, 0)];
    while st.total_incomplete > 0 {
        rounds += 1;
        assert!(
            rounds <= round_limit,
            "gossip schedule failed to complete within {round_limit} rounds"
        );
        // Phase 0 — faults fire before any relay choice (mirrors the
        // tree schedules' round structure).
        if let Some(ft) = tracker.as_mut() {
            newly_dead.clear();
            if ft.advance(rounds, &mut newly_dead) {
                for &v in &newly_dead {
                    st.kill(v);
                }
                let lost = st.shrink_caps(ft, &mut scratch_slab, &mut pkt);
                lost_messages += lost;
                let surviving_trees = packing
                    .trees
                    .iter()
                    .enumerate()
                    .filter(|(t, tree)| ft.tree_ok(g, *t, tree, member))
                    .count();
                degradation.push(DegradationSample {
                    round: rounds,
                    faults_fired: ft.fired(),
                    live_vertices: ft.live(),
                    surviving_trees,
                    incomplete_messages: (0..gens)
                        .filter(|&gen| st.incomplete_at[gen] > 0)
                        .map(|gen| st.cap[gen] as usize)
                        .sum(),
                    reassigned_messages: 0,
                    lost_messages: lost,
                });
                if st.total_incomplete == 0 {
                    rounds -= 1;
                    break;
                }
            }
        }
        // Phase 1 — relay choices from round-start state: each live
        // vertex draws one seeded-uniform generation among those it
        // holds rank in and some neighbor still needs, then a
        // seeded-random combination of its rows. Stale candidates
        // (no needy neighbor — a monotone condition) are pruned as
        // they are drawn.
        relays.clear();
        arena.clear();
        for v in 0..n {
            if tracker
                .as_ref()
                .is_some_and(|t| t.is_dead(v) || t.is_dormant(v))
            {
                continue;
            }
            let gen = loop {
                let len = st.candidates[v].len();
                if len == 0 {
                    break None;
                }
                let i = rng.gen_range(0..len);
                let gen = st.candidates[v][i] as usize;
                if st.nbr_incomplete[v * gens + gen] == 0 {
                    st.candidates[v].swap_remove(i);
                    st.cur_cand -= 1;
                    continue;
                }
                break Some(gen);
            };
            let Some(gen) = gen else { continue };
            let i = v * gens + gen;
            let off = arena.len();
            arena.resize(off + gsize, 0);
            let r = st.rank[i] as usize;
            match st.slabs[i].as_ref() {
                Some(slab) => slab_combine(slab, gsize, 0, r, &mut rng, &mut arena[off..]),
                None => {
                    // Freed at lossless completion: the span is the full
                    // coordinate space of the generation, so a random
                    // combination is just `rank` (= cap) random bytes.
                    for b in &mut arena[off..off + r] {
                        *b = rng.gen();
                    }
                }
            }
            schedule_digest = schedule_digest.wrapping_add(relay_hash(rounds, v, gen));
            relays.push((v as u32, gen as u32));
        }
        // Phase 2 — deliveries in ascending sender order; innovation is
        // judged against receiver state as it updates within the round
        // (same discipline as the tree schedules' reception phase).
        for (ri, &(v, gen)) in relays.iter().enumerate() {
            let coeffs = &arena[ri * gsize..(ri + 1) * gsize];
            for &u in g.neighbors(v as usize) {
                if tracker.as_ref().is_some_and(|t| !t.ok_edge(v as usize, u)) {
                    continue;
                }
                pkt.copy_from_slice(coeffs);
                st.receive(u, gen as usize, &mut pkt);
            }
        }
        if relays.is_empty() && st.total_incomplete > 0 {
            // Idle only while a scheduled arrival is still due (e.g. a
            // dormant origin holds the sole copy of its generation);
            // jump to its eve — idle rounds draw no coefficients, so
            // the RNG stream and digest match a spun-out wait.
            let Some(r) = tracker.as_ref().and_then(|t| t.next_event_round()) else {
                panic!(
                    "gossip schedule stalled: a message can no longer make progress \
                     (is some tree not dominating, or did faults disconnect the survivors?)"
                );
            };
            rounds = rounds.max(r.saturating_sub(1));
        }
    }
    let peak_state_words =
        member.words() + st.fixed_words() + st.peak_slab.div_ceil(8) + st.peak_cand.div_ceil(2);
    ScheduleOutcome {
        rounds,
        schedule_digest,
        peak_state_words,
        degradation,
        lost_messages,
        wasted_bandwidth: st.wasted,
        // The coded regime repairs nothing and floods nothing: loss
        // tolerance comes from the code, not from tree reassignment.
        repair_events: 0,
        flood_rounds: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gossip::{gossip_via_trees_faulty, gossip_via_trees_with, GossipConfig};
    use decomp_congest::fault::{Fault, ScheduledFault};
    use decomp_core::packing::WeightedDomTree;
    use decomp_graph::generators;
    use proptest::prelude::*;

    /// Test-local carry-less multiply mod 0x11d — the oracle the
    /// compile-time tables are checked against.
    fn mul_ref(mut a: u8, mut b: u8) -> u8 {
        let mut acc = 0u8;
        while b != 0 {
            if b & 1 != 0 {
                acc ^= a;
            }
            let hi = a & 0x80;
            a <<= 1;
            if hi != 0 {
                a ^= 0x1d;
            }
            b >>= 1;
        }
        acc
    }

    #[test]
    fn tables_match_carryless_reference_exhaustively() {
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(gf256::mul(a, b), mul_ref(a, b), "mul({a}, {b})");
                assert_eq!(gf256::MUL[a as usize][b as usize], mul_ref(a, b));
            }
        }
    }

    #[test]
    fn every_nonzero_element_has_an_inverse() {
        for a in 1..=255u8 {
            assert_eq!(gf256::mul(a, gf256::inv(a)), 1, "a = {a}");
            assert_eq!(gf256::div(a, a), 1);
        }
    }

    #[test]
    #[should_panic(expected = "no inverse")]
    fn zero_has_no_inverse() {
        gf256::inv(0);
    }

    #[test]
    fn decoder_unit_symbols_roundtrip() {
        let symbols: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i, i ^ 0x5a, 200 + i]).collect();
        let mut dec = RlncDecoder::new(5, 3);
        // Out-of-order unit seeding must still decode in position order.
        for pos in [3, 0, 4, 1, 2] {
            assert!(dec.receive_symbol(pos, &symbols[pos]));
        }
        assert!(dec.is_complete());
        assert_eq!(dec.decode().unwrap(), symbols);
    }

    #[test]
    fn duplicate_packet_is_not_innovative() {
        let mut dec = RlncDecoder::new(4, 2);
        let pkt = [3, 1, 4, 1, 5, 9];
        assert!(dec.receive(&pkt));
        assert!(!dec.receive(&pkt), "an identical packet teaches nothing");
        assert_eq!(dec.rank(), 1);
    }

    #[test]
    fn encode_decode_roundtrip_seeded() {
        let mut rng = StdRng::seed_from_u64(42);
        let symbols: Vec<Vec<u8>> = (0..7)
            .map(|_| (0..4).map(|_| rng.gen()).collect())
            .collect();
        let mut dec = RlncDecoder::new(7, 4);
        let mut attempts = 0;
        while !dec.is_complete() {
            let (coeffs, payload) = encode_packet(&symbols, &mut rng);
            let pkt: Vec<u8> = coeffs.into_iter().chain(payload).collect();
            dec.receive(&pkt);
            attempts += 1;
            assert!(attempts < 64, "random packets must reach full rank");
        }
        assert_eq!(dec.decode().unwrap(), symbols);
    }

    /// A path spanning tree on a small graph — the RLNC regime ignores
    /// trees, but the gossip entry points still require a packing.
    fn path_packing(n: usize) -> DomTreePacking {
        DomTreePacking {
            trees: vec![WeightedDomTree {
                id: 0,
                weight: 1.0,
                edges: (0..n - 1).map(|i| (i, i + 1)).collect(),
                singleton: None,
            }],
        }
    }

    #[test]
    fn schedule_completes_and_double_runs_identically() {
        let g = generators::harary(4, 20);
        let packing = path_packing(20);
        let origins: Vec<usize> = (0..g.n()).collect();
        let config = GossipConfig::rlnc(8, 11);
        let a = gossip_via_trees_with(&g, &packing, &origins, 7, config);
        let b = gossip_via_trees_with(&g, &packing, &origins, 7, config);
        assert_eq!(a, b, "same seeds must reproduce the schedule bit for bit");
        assert!(a.rounds > 0);
        assert_eq!(a.num_messages, 20);
        assert!(
            a.per_tree_load.iter().all(|&l| l == 0),
            "coded packets ride no tree"
        );
        assert!(
            a.wasted_bandwidth > 0,
            "dense all-node gossip must see some non-innovative packets"
        );
        assert_eq!(a.lost_messages, 0);
        // A different coefficient seed draws a different schedule.
        let c = gossip_via_trees_with(&g, &packing, &origins, 7, GossipConfig::rlnc(8, 12));
        assert_ne!(
            a.schedule_digest, c.schedule_digest,
            "coefficient seed must steer the relay schedule"
        );
    }

    #[test]
    fn schedule_handles_partial_last_generation() {
        let g = generators::cycle(9);
        let packing = path_packing(9);
        // 9 messages over generations of 4: sizes 4, 4, 1.
        let origins: Vec<usize> = (0..g.n()).collect();
        let r = gossip_via_trees_with(&g, &packing, &origins, 3, GossipConfig::rlnc(4, 0));
        assert!(r.rounds > 0);
        assert_eq!(r.lost_messages, 0);
    }

    #[test]
    fn schedule_with_generation_exceeding_workload() {
        let g = generators::cycle(8);
        let packing = path_packing(8);
        // One short generation: 3 messages, generation size 16.
        let origins = [0, 3, 5];
        let r = gossip_via_trees_with(&g, &packing, &origins, 1, GossipConfig::rlnc(16, 5));
        assert!(r.rounds > 0);
        assert_eq!(r.lost_messages, 0);
    }

    #[test]
    fn schedule_empty_workload_is_trivial() {
        let g = generators::cycle(5);
        let packing = path_packing(5);
        let r = gossip_via_trees_with(&g, &packing, &[], 0, GossipConfig::rlnc(8, 0));
        assert_eq!(r.rounds, 0);
        assert_eq!(r.schedule_digest, 0);
        assert_eq!(r.wasted_bandwidth, 0);
    }

    #[test]
    fn origin_killed_before_first_relay_loses_exactly_its_symbol() {
        let g = generators::harary(4, 16);
        let packing = path_packing(16);
        let origins: Vec<usize> = (0..g.n()).collect();
        let plan = decomp_congest::fault::FaultPlan::new([ScheduledFault {
            round: 0,
            fault: Fault::Vertex(4),
        }]);
        let r = gossip_via_trees_faulty(&g, &packing, &origins, 7, GossipConfig::rlnc(8, 2), &plan)
            .unwrap();
        assert_eq!(
            r.lost_messages, 1,
            "only the dead origin's never-relayed symbol dies"
        );
        assert_eq!(r.degradation.len(), 1);
        assert_eq!(r.degradation[0].live_vertices, 15);
    }

    #[test]
    fn schedule_degrades_but_completes_under_midrun_faults() {
        let g = generators::harary(4, 16);
        let packing = path_packing(16);
        let origins: Vec<usize> = (0..g.n()).collect();
        let plan = decomp_congest::fault::FaultPlan::new([
            ScheduledFault {
                round: 3,
                fault: Fault::Vertex(2),
            },
            ScheduledFault {
                round: 5,
                fault: Fault::Vertex(9),
            },
        ]);
        let config = GossipConfig::rlnc(8, 17);
        let r = gossip_via_trees_faulty(&g, &packing, &origins, 7, config, &plan).unwrap();
        // By round 3 every symbol has been relayed into its neighborhood,
        // so the survivors' span stays full: degraded, not stalled.
        assert_eq!(r.lost_messages, 0, "f < κ after spreading loses nothing");
        assert_eq!(r.degradation.len(), 2);
        assert!(r.rounds > 0);
        let again = gossip_via_trees_faulty(&g, &packing, &origins, 7, config, &plan).unwrap();
        assert_eq!(r, again, "faulty RLNC runs must be seed-deterministic");
    }

    proptest! {
        #[test]
        fn mul_is_associative_and_commutative(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
            prop_assert_eq!(gf256::mul(a, b), gf256::mul(b, a));
            prop_assert_eq!(
                gf256::mul(gf256::mul(a, b), c),
                gf256::mul(a, gf256::mul(b, c))
            );
        }

        #[test]
        fn mul_distributes_over_xor(a in any::<u8>(), b in any::<u8>(), c in any::<u8>()) {
            prop_assert_eq!(
                gf256::mul(a, b ^ c),
                gf256::mul(a, b) ^ gf256::mul(a, c)
            );
        }

        #[test]
        fn inverses_cancel(a in 0u8..255) {
            let a = a + 1; // 1..=255 (the vendored sampler can't express it)
            prop_assert_eq!(gf256::mul(a, gf256::inv(a)), 1);
            prop_assert_eq!(gf256::inv(gf256::inv(a)), a);
        }

        #[test]
        fn axpy_matches_scalar_loop(
            dst in proptest::collection::vec(any::<u8>(), 1..64),
            c in any::<u8>(),
            seed in any::<u64>(),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let src: Vec<u8> = (0..dst.len()).map(|_| rng.gen()).collect();
            let mut fast = dst.clone();
            gf256::axpy(&mut fast, &src, c);
            let slow: Vec<u8> = dst
                .iter()
                .zip(&src)
                .map(|(&d, &s)| d ^ gf256::mul(c, s))
                .collect();
            prop_assert_eq!(fast, slow);
        }

        #[test]
        fn decoder_rank_is_permutation_invariant(
            size in 1usize..9,
            npackets in 1usize..14,
            seed in any::<u64>(),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            // Consistent packets: every one encodes the SAME symbol set,
            // so any spanning subset solves to the same decode. (Fully
            // random packets form an inconsistent system — rank would
            // still be order-invariant, but the decode would not be.)
            let symbols: Vec<Vec<u8>> = (0..size)
                .map(|_| (0..2).map(|_| rng.gen()).collect())
                .collect();
            let mut packets: Vec<Vec<u8>> = (0..npackets)
                .map(|_| {
                    let (mut c, p) = encode_packet(&symbols, &mut rng);
                    c.extend_from_slice(&p);
                    c
                })
                .collect();
            // Duplicate one packet to force a non-innovative reception in
            // at least one of the two orders.
            let dup = packets[0].clone();
            packets.push(dup);
            let mut forward = RlncDecoder::new(size, 2);
            for p in &packets {
                forward.receive(p);
            }
            let mut shuffled = packets.clone();
            for i in (1..shuffled.len()).rev() {
                shuffled.swap(i, rng.gen_range(0..=i));
            }
            let mut backward = RlncDecoder::new(size, 2);
            for p in &shuffled {
                backward.receive(p);
            }
            prop_assert_eq!(forward.rank(), backward.rank());
            // At full rank both orders must agree on the decode — and on
            // the original symbols.
            if forward.is_complete() {
                prop_assert_eq!(forward.decode(), Some(symbols.clone()));
                prop_assert_eq!(backward.decode(), Some(symbols));
            }
        }

        #[test]
        fn decode_of_encode_roundtrips(
            size in 1usize..11,
            plen in 0usize..9,
            seed in any::<u64>(),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let symbols: Vec<Vec<u8>> = (0..size)
                .map(|_| (0..plen).map(|_| rng.gen()).collect())
                .collect();
            let mut dec = RlncDecoder::new(size, plen);
            // A fresh random combination is non-innovative with
            // probability at most 1/256 while rank < size, so 6·size
            // draws fail with only negligible (and, per seed,
            // deterministic) probability.
            for _ in 0..6 * size {
                if dec.is_complete() {
                    break;
                }
                let (coeffs, payload) = encode_packet(&symbols, &mut rng);
                let pkt: Vec<u8> = coeffs.into_iter().chain(payload).collect();
                dec.receive(&pkt);
            }
            prop_assert!(dec.is_complete());
            prop_assert_eq!(dec.decode().unwrap(), symbols);
        }

        #[test]
        fn recombinations_of_received_rows_are_never_innovative(
            size in 2usize..9,
            nfeed in 1usize..6,
            seed in any::<u64>(),
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut dec = RlncDecoder::new(size, 3);
            for _ in 0..nfeed.min(size.saturating_sub(1)) {
                let pkt: Vec<u8> = (0..size + 3).map(|_| rng.gen()).collect();
                dec.receive(&pkt);
            }
            let rank = dec.rank();
            let mut out = vec![0u8; size + 3];
            for _ in 0..8 {
                dec.combine(&mut rng, &mut out);
                prop_assert!(
                    !dec.receive(&out),
                    "a combination of received rows lies inside the span"
                );
                prop_assert_eq!(dec.rank(), rank);
            }
        }
    }
}
