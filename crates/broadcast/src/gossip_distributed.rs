//! Gossiping as a real V-CONGEST protocol.
//!
//! [`crate::gossip`] simulates the Appendix-A schedule centrally; this
//! module runs the same dissemination as actual message passing on the
//! simulator — each node broadcasts at most one `(message, tree)` token
//! per round, tree members relay tokens of their tree, and every node
//! collects everything it hears. The two implementations must agree on
//! completeness, and their round counts must stay within a small factor
//! (the central scheduler picks relays greedily; the protocol relays
//! FIFO), which the tests check.

use decomp_congest::{Inbox, Message, Model, NodeCtx, NodeProgram, RunStats, SimError, Simulator};
use decomp_core::packing::DomTreePacking;
use decomp_graph::{Graph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct GossipProgram {
    /// Sorted tree ids this node belongs to.
    trees: Vec<u32>,
    /// Tokens to relay, FIFO: (msg id, tree id).
    queue: std::collections::VecDeque<(u64, u64)>,
    /// Which (msg, tree) tokens were already queued/relayed here.
    seen: std::collections::HashSet<u64>,
    /// All message ids received.
    received: std::collections::HashSet<u64>,
    /// Initial injections for messages originating here.
    inject: std::collections::VecDeque<(u64, u64)>,
}

impl GossipProgram {
    fn accept(&mut self, msg: u64, tree: u64) {
        self.received.insert(msg);
        if self.trees.binary_search(&(tree as u32)).is_ok() && self.seen.insert(msg) {
            self.queue.push_back((msg, tree));
        }
    }
}

impl NodeProgram for GossipProgram {
    fn round(&mut self, ctx: &mut NodeCtx<'_>, inbox: &Inbox<'_>) {
        for (_, m) in inbox {
            self.accept(m.word(0), m.word(1));
        }
        if let Some((msg, tree)) = self.inject.pop_front() {
            self.received.insert(msg);
            ctx.broadcast(Message::from_words([msg, tree]));
            return;
        }
        if let Some((msg, tree)) = self.queue.pop_front() {
            ctx.broadcast(Message::from_words([msg, tree]));
        }
    }

    fn is_done(&self) -> bool {
        self.queue.is_empty() && self.inject.is_empty()
    }
}

/// Result of the message-passing gossip run.
#[derive(Clone, Debug)]
pub struct DistGossipReport {
    /// Whether every node received every message.
    pub complete: bool,
    /// Full simulator statistics for the run — rounds, messages, words,
    /// and the peak-memory counters (`peak_queued_messages` /
    /// `peak_arena_words`).
    pub stats: RunStats,
}

/// Runs the Appendix-A gossip as a V-CONGEST protocol on a fresh simulator
/// over `g`: message `i` starts at `origins[i]`, gets a random tree of
/// `packing`, and is relayed FIFO by that tree's members.
///
/// # Errors
/// Propagates simulator round-limit errors.
///
/// # Panics
/// Panics if the packing is empty or `g` is disconnected.
pub fn gossip_protocol(
    g: &Graph,
    packing: &DomTreePacking,
    origins: &[NodeId],
    seed: u64,
) -> Result<DistGossipReport, SimError> {
    assert!(packing.num_trees() > 0, "need at least one tree");
    assert!(
        decomp_graph::traversal::is_connected(g),
        "gossip requires a connected graph"
    );
    let n = g.n();
    let mut rng = StdRng::seed_from_u64(seed);
    // membership[v] = sorted tree ids containing v
    let mut membership: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (t, tree) in packing.trees.iter().enumerate() {
        for v in tree.vertices(n) {
            membership[v].push(t as u32);
        }
    }
    let mut injections: Vec<std::collections::VecDeque<(u64, u64)>> = vec![Default::default(); n];
    for (i, &origin) in origins.iter().enumerate() {
        let tree = rng.gen_range(0..packing.num_trees()) as u64;
        injections[origin].push_back((i as u64, tree));
    }
    let programs: Vec<GossipProgram> = (0..n)
        .map(|v| GossipProgram {
            trees: membership[v].clone(),
            queue: Default::default(),
            seen: Default::default(),
            received: Default::default(),
            inject: std::mem::take(&mut injections[v]),
        })
        .collect();
    let mut sim = Simulator::with_seed(g, Model::VCongest, seed);
    let (programs, stats) = sim.run(programs, 64 * (n + origins.len()) + 4096)?;
    let complete = programs.iter().all(|p| p.received.len() == origins.len());
    Ok(DistGossipReport { complete, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use decomp_core::cds::centralized::{cds_packing, CdsPackingConfig};
    use decomp_core::cds::tree_extract::to_dom_tree_packing;
    use decomp_graph::generators;

    fn packing_for(g: &Graph, k: usize, seed: u64) -> DomTreePacking {
        let p = cds_packing(g, &CdsPackingConfig::with_known_k(k, seed));
        to_dom_tree_packing(g, &p).packing
    }

    #[test]
    fn protocol_delivers_everything() {
        let g = generators::harary(8, 40);
        let packing = packing_for(&g, 8, 1);
        let origins: Vec<usize> = (0..g.n()).collect();
        let r = gossip_protocol(&g, &packing, &origins, 5).unwrap();
        assert!(r.complete, "every node must receive every message");
        assert!(r.stats.rounds > 0);
        assert!(r.stats.messages > 0);
    }

    #[test]
    fn agrees_with_schedule_simulation_on_completion() {
        let g = generators::thick_path(4, 6);
        let packing = packing_for(&g, 4, 3);
        let origins: Vec<usize> = (0..2 * g.n()).map(|i| i % g.n()).collect();
        let protocol = gossip_protocol(&g, &packing, &origins, 7).unwrap();
        let schedule = crate::gossip::gossip_via_trees(&g, &packing, &origins, 7);
        assert!(protocol.complete);
        // FIFO relaying is at most a small factor slower than the greedy
        // central scheduler.
        assert!(
            protocol.stats.rounds <= 4 * schedule.rounds + 16,
            "protocol {} vs schedule {}",
            protocol.stats.rounds,
            schedule.rounds
        );
    }

    #[test]
    fn single_message_floods_fast() {
        let g = generators::cycle(12);
        let packing = packing_for(&g, 2, 0);
        let r = gossip_protocol(&g, &packing, &[4], 1).unwrap();
        assert!(r.complete);
        assert!(r.stats.rounds <= 40);
    }

    #[test]
    fn empty_workload_no_rounds_needed() {
        let g = generators::cycle(5);
        let packing = packing_for(&g, 2, 0);
        let r = gossip_protocol(&g, &packing, &[], 0).unwrap();
        assert!(r.complete);
    }
}
